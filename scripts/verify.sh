#!/usr/bin/env bash
# Tier-1 verification gate for the Zerber+R workspace.
#
# Mirrors .github/workflows/ci.yml so the same checks run locally and in
# CI: rustfmt, release build, full test suite (including the spill-engine
# equivalence proptests, which write page files into a temp-dir spill
# root), the zerber-analyze invariant linter, a debug-assertions parallel
# proptest plus pool-shutdown pass that exercises the lock-rank runtime
# checker, a parallel-vs-sequential proptest with a 2-worker shard pool
# forced, the tiering equivalence proptest (whose engine set includes a
# live-WAL durable spill engine) and a repeated compaction-under-load
# stress loop, a repeated worker-pool shutdown stress loop, the
# fault-injected durable recovery suite plus a repeated
# kill-at-every-injection-point crash stress loop, the fault-injected
# replication suite plus a repeated disconnect-storm stress loop, bench
# compilation, clippy with warnings denied, and hygiene guards asserting
# the tests left no stray on-disk files — page files, `.pages.compact`
# rewrite scratch, WALs, manifests, `.manifest.tmp`/`.manifest.prev`
# checkpoint scratch or replica generation directories — behind.

set -euo pipefail
cd "$(dirname "$0")/.."

SPILL_STAGING="${TMPDIR:-/tmp}/zerber-spill"
DURABLE_STAGING="${TMPDIR:-/tmp}/zerber-durable"
REPLICA_STAGING="${TMPDIR:-/tmp}/zerber-replica"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> zerber-analyze (workspace invariant linter)"
cargo run -p zerber-analyze --release

echo "==> lock-rank checker under load (debug assertions: parallel proptest + pool shutdown)"
# Debug builds arm the lock-rank deadlock detector; the 2-worker parallel
# proptest and the shutdown pass drive real cross-thread shard/pool lock
# traffic through it, so an ordering regression fires deterministically.
ZERBER_TEST_SHARD_WORKERS=2 cargo test --test store_equivalence \
  parallel_rounds_equal_sequential_rounds_across_engines
cargo test --test concurrent_server \
  pool_reconfiguration_and_shutdown_are_clean -- --exact

echo "==> cargo test --release (concurrency + cross-engine + batched-vs-sequential + spill equivalence)"
cargo test --release --test concurrent_server --test store_equivalence --test spill_store

echo "==> parallel-vs-sequential proptest with a 2-worker pool forced (release)"
# 1-CPU runners still exercise real cross-thread handoff: the pool's
# workers are OS threads regardless of core count.
ZERBER_TEST_SHARD_WORKERS=2 cargo test --release --test store_equivalence \
  parallel_rounds_equal_sequential_rounds_across_engines

echo "==> tiering equivalence proptest (release, maintenance forced on every op)"
cargo test --release --test store_equivalence \
  engines_answer_interleaved_workloads_identically

echo "==> compaction-under-load stress (release, repeated)"
for i in 1 2 3 4 5; do
  cargo test --release --test spill_store \
    compaction_under_concurrent_load_never_tears_an_answer -- --exact \
    > /dev/null 2>&1 || {
      echo "compaction-under-load stress failed on iteration $i" >&2
      cargo test --release --test spill_store \
        compaction_under_concurrent_load_never_tears_an_answer -- --exact
      exit 1
    }
done

echo "==> worker-pool shutdown stress (release, repeated)"
for i in 1 2 3 4 5; do
  cargo test --release --test concurrent_server \
    pool_reconfiguration_and_shutdown_are_clean -- --exact \
    > /dev/null 2>&1 || {
      echo "pool shutdown stress failed on iteration $i" >&2
      cargo test --release --test concurrent_server \
        pool_reconfiguration_and_shutdown_are_clean -- --exact
      exit 1
    }
done

echo "==> durable recovery suite (release: fault injection, bit flips, WAL truncation property)"
cargo test --release --test durable_recovery

echo "==> crash-injection stress (release, repeated kill-at-every-injection-point loop)"
for i in 1 2 3 4 5; do
  cargo test --release --test durable_recovery \
    kill_at_every_injection_point_recovers_a_prefix_of_history -- --exact \
    > /dev/null 2>&1 || {
      echo "crash-injection stress failed on iteration $i" >&2
      cargo test --release --test durable_recovery \
        kill_at_every_injection_point_recovers_a_prefix_of_history -- --exact
      exit 1
    }
done

echo "==> replication suite (release: fault matrix, resnapshot, degraded reads, kill-at-every-boundary)"
cargo test --release --test replication

echo "==> disconnect-storm replication stress (release, repeated)"
for i in 1 2 3 4 5; do
  cargo test --release --test replication \
    disconnect_storm_replication_converges -- --exact \
    > /dev/null 2>&1 || {
      echo "disconnect-storm stress failed on iteration $i" >&2
      cargo test --release --test replication \
        disconnect_storm_replication_converges -- --exact
      exit 1
    }
done

echo "==> spill hygiene: no stray page files (or compaction scratch files) after the test runs"
# Covers both live page files (*.pages) and compaction rewrite scratch
# files (*.pages.compact): an aborted or committed compaction must never
# leak its fresh file.
if [ -d "$SPILL_STAGING" ] && [ -n "$(find "$SPILL_STAGING" -type f 2>/dev/null | head -1)" ]; then
  echo "stray spill files left behind under $SPILL_STAGING:" >&2
  find "$SPILL_STAGING" -type f >&2
  exit 1
fi

echo "==> durable hygiene: ephemeral durable roots leave no WALs, manifests or checkpoint scratch behind"
# Temp-dir durable stores (the equivalence proptest engine, unit tests)
# clean their whole root on drop: any leftover *.wal, *.manifest,
# *.manifest.tmp, *.manifest.prev, store.meta or page file is a leak.
if [ -d "$DURABLE_STAGING" ] && [ -n "$(find "$DURABLE_STAGING" -type f 2>/dev/null | head -1)" ]; then
  echo "stray durable-store files left behind under $DURABLE_STAGING:" >&2
  find "$DURABLE_STAGING" -type f >&2
  exit 1
fi

echo "==> replica hygiene: replication tests remove their primary and replica roots"
# Replica roots hold full durable stores (generation dirs with pages,
# WALs and manifests) for both ends of the stream: every test and the
# equivalence proptest must remove its whole root on the way out.
if [ -d "$REPLICA_STAGING" ] && [ -n "$(find "$REPLICA_STAGING" -type f 2>/dev/null | head -1)" ]; then
  echo "stray replica files left behind under $REPLICA_STAGING:" >&2
  find "$REPLICA_STAGING" -type f >&2
  exit 1
fi

echo "==> cargo bench --no-run"
cargo bench --no-run

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "verify: OK"
