#!/usr/bin/env bash
# Tier-1 verification gate for the Zerber+R workspace.
#
# Mirrors .github/workflows/ci.yml so the same checks run locally and in
# CI: rustfmt, release build, full test suite (including the spill-engine
# equivalence proptests, which write page files into a temp-dir spill
# root), bench compilation, clippy with warnings denied, and a hygiene
# guard asserting the tests left no stray on-disk page files behind.

set -euo pipefail
cd "$(dirname "$0")/.."

SPILL_STAGING="${TMPDIR:-/tmp}/zerber-spill"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --release (concurrency + cross-engine + batched-vs-sequential + spill equivalence)"
cargo test --release --test concurrent_server --test store_equivalence --test spill_store

echo "==> spill hygiene: no stray page files after the test runs"
if [ -d "$SPILL_STAGING" ] && [ -n "$(find "$SPILL_STAGING" -type f 2>/dev/null | head -1)" ]; then
  echo "stray spill page files left behind under $SPILL_STAGING:" >&2
  find "$SPILL_STAGING" -type f >&2
  exit 1
fi

echo "==> cargo bench --no-run"
cargo bench --no-run

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "verify: OK"
