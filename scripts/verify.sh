#!/usr/bin/env bash
# Tier-1 verification gate for the Zerber+R workspace.
#
# Mirrors .github/workflows/ci.yml so the same checks run locally and in
# CI: rustfmt, release build, full test suite, bench compilation, and
# clippy with warnings denied.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --release (concurrency + cross-engine + batched-vs-sequential equivalence)"
cargo test --release --test concurrent_server --test store_equivalence

echo "==> cargo bench --no-run"
cargo bench --no-run

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "verify: OK"
