//! Error type for the workload crate.

use std::fmt;

/// Errors produced by query-log generation, cost modelling and experiment
/// orchestration.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadError {
    /// Invalid generator or experiment configuration.
    InvalidConfig(String),
    /// A corpus-level error bubbled up.
    Corpus(String),
    /// An error bubbled up from the Zerber substrate.
    Base(String),
    /// An error bubbled up from the Zerber+R core.
    Core(String),
    /// An error bubbled up from the protocol layer.
    Protocol(String),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            WorkloadError::Corpus(msg) => write!(f, "corpus error: {msg}"),
            WorkloadError::Base(msg) => write!(f, "zerber substrate error: {msg}"),
            WorkloadError::Core(msg) => write!(f, "zerber+r error: {msg}"),
            WorkloadError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for WorkloadError {}

impl From<zerber_corpus::CorpusError> for WorkloadError {
    fn from(e: zerber_corpus::CorpusError) -> Self {
        WorkloadError::Corpus(e.to_string())
    }
}

impl From<zerber_base::ZerberError> for WorkloadError {
    fn from(e: zerber_base::ZerberError) -> Self {
        WorkloadError::Base(e.to_string())
    }
}

impl From<zerber_r::ZerberRError> for WorkloadError {
    fn from(e: zerber_r::ZerberRError) -> Self {
        WorkloadError::Core(e.to_string())
    }
}

impl From<zerber_protocol::ProtocolError> for WorkloadError {
    fn from(e: zerber_protocol::ProtocolError) -> Self {
        WorkloadError::Protocol(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        assert!(WorkloadError::InvalidConfig("bad".into())
            .to_string()
            .contains("bad"));
        let e: WorkloadError = zerber_corpus::CorpusError::UnknownTerm(1).into();
        assert!(matches!(e, WorkloadError::Corpus(_)));
        let e: WorkloadError = zerber_base::ZerberError::UnknownList(1).into();
        assert!(matches!(e, WorkloadError::Base(_)));
        let e: WorkloadError = zerber_r::ZerberRError::UnknownList(1).into();
        assert!(matches!(e, WorkloadError::Core(_)));
        let e: WorkloadError = zerber_protocol::ProtocolError::UnknownList(1).into();
        assert!(matches!(e, WorkloadError::Protocol(_)));
    }
}
