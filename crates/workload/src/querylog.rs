//! Synthetic web-search query log (Section 6.1.3).
//!
//! The paper's workload is a commercial search-engine log: 7 million queries,
//! 2.4 terms per query on average, 135,000 distinct query terms, with query
//! frequencies following a power law and correlating with document
//! frequencies ("though some frequent terms are rarely queried", Section 5.2).
//! The generator reproduces those properties over the synthetic corpora:
//! query popularity ranks are a noisy blend of the document-frequency ranking
//! and a random permutation, and frequencies follow a Zipf law over the
//! popularity ranks.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use zerber_corpus::{CorpusStats, TermId};

use crate::error::WorkloadError;

/// Configuration of the query-log generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryLogConfig {
    /// Number of distinct query terms (paper: 135,000; capped by the corpus
    /// vocabulary).
    pub distinct_terms: usize,
    /// Total number of queries represented by the log (paper: 7 million).
    pub total_queries: u64,
    /// Average number of terms per query (paper: 2.4).
    pub terms_per_query: f64,
    /// Zipf exponent of query frequencies over popularity ranks.
    pub zipf_exponent: f64,
    /// Correlation knob in `[0, 1]`: 1 = query popularity follows document
    /// frequency exactly, 0 = unrelated.
    pub df_correlation: f64,
    /// Number of concrete multi-term query instances to materialize for
    /// protocol-level replay (the aggregated term frequencies cover the rest).
    pub sample_queries: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for QueryLogConfig {
    fn default() -> Self {
        QueryLogConfig {
            distinct_terms: 2_000,
            total_queries: 1_000_000,
            terms_per_query: 2.4,
            zipf_exponent: 1.0,
            df_correlation: 0.7,
            sample_queries: 2_000,
            seed: 0x9e7,
        }
    }
}

/// A generated query log.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryLog {
    term_freqs: Vec<(TermId, u64)>,
    sampled_queries: Vec<Vec<TermId>>,
    total_queries: u64,
    avg_terms_per_query: f64,
}

impl QueryLog {
    /// Generates the log for a corpus.
    pub fn generate(stats: &CorpusStats, config: &QueryLogConfig) -> Result<Self, WorkloadError> {
        if config.distinct_terms == 0 || config.total_queries == 0 {
            return Err(WorkloadError::InvalidConfig(
                "distinct_terms and total_queries must be positive".into(),
            ));
        }
        if !(0.0..=1.0).contains(&config.df_correlation) {
            return Err(WorkloadError::InvalidConfig(format!(
                "df_correlation must be in [0,1], got {}",
                config.df_correlation
            )));
        }
        if config.terms_per_query < 1.0 {
            return Err(WorkloadError::InvalidConfig(
                "terms_per_query must be at least 1".into(),
            ));
        }
        let mut rng = StdRng::seed_from_u64(config.seed);

        // Popularity ranking: blend document-frequency rank with a random
        // permutation.
        let by_df = stats.terms_by_doc_freq();
        if by_df.is_empty() {
            return Err(WorkloadError::InvalidConfig("corpus has no terms".into()));
        }
        let n = by_df.len();
        let mut random_rank: Vec<usize> = (0..n).collect();
        random_rank.shuffle(&mut rng);
        let mut blended: Vec<(TermId, f64)> = by_df
            .iter()
            .enumerate()
            .map(|(df_rank, &term)| {
                let blend = config.df_correlation * df_rank as f64
                    + (1.0 - config.df_correlation) * random_rank[df_rank] as f64;
                (term, blend)
            })
            .collect();
        blended.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));

        let distinct = config.distinct_terms.min(n);
        let chosen: Vec<TermId> = blended.iter().take(distinct).map(|&(t, _)| t).collect();

        // Zipf frequencies over popularity ranks, scaled to total_queries
        // term occurrences (each query contributes ~terms_per_query terms).
        let total_term_draws =
            (config.total_queries as f64 * config.terms_per_query).round() as u64;
        let weights: Vec<f64> = (1..=distinct)
            .map(|i| 1.0 / (i as f64).powf(config.zipf_exponent))
            .collect();
        let weight_sum: f64 = weights.iter().sum();
        let mut term_freqs: Vec<(TermId, u64)> = chosen
            .iter()
            .zip(weights.iter())
            .map(|(&t, &w)| {
                let f = ((w / weight_sum) * total_term_draws as f64).round() as u64;
                (t, f.max(1))
            })
            .collect();
        term_freqs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

        // Materialize a sample of concrete multi-term queries.
        let cdf: Vec<f64> = {
            let mut acc = 0.0;
            let total: f64 = term_freqs.iter().map(|&(_, f)| f as f64).sum();
            term_freqs
                .iter()
                .map(|&(_, f)| {
                    acc += f as f64 / total;
                    acc
                })
                .collect()
        };
        let sample_len = |rng: &mut StdRng| -> usize {
            // Geometric-like length with mean terms_per_query, at least 1.
            let p = 1.0 / config.terms_per_query;
            let mut len = 1usize;
            while rng.gen::<f64>() > p && len < 10 {
                len += 1;
            }
            len
        };
        let mut sampled_queries = Vec::with_capacity(config.sample_queries);
        for _ in 0..config.sample_queries {
            let len = sample_len(&mut rng);
            let mut q = Vec::with_capacity(len);
            for _ in 0..len {
                let u: f64 = rng.gen();
                let idx = cdf.partition_point(|&c| c < u).min(term_freqs.len() - 1);
                q.push(term_freqs[idx].0);
            }
            sampled_queries.push(q);
        }
        let avg_terms_per_query = if sampled_queries.is_empty() {
            config.terms_per_query
        } else {
            sampled_queries.iter().map(Vec::len).sum::<usize>() as f64
                / sampled_queries.len() as f64
        };
        Ok(QueryLog {
            term_freqs,
            sampled_queries,
            total_queries: config.total_queries,
            avg_terms_per_query,
        })
    }

    /// Distinct query terms with their frequencies, most frequent first.
    pub fn term_frequencies(&self) -> &[(TermId, u64)] {
        &self.term_freqs
    }

    /// Number of distinct query terms.
    pub fn distinct_terms(&self) -> usize {
        self.term_freqs.len()
    }

    /// Total number of queries the log represents.
    pub fn total_queries(&self) -> u64 {
        self.total_queries
    }

    /// Average terms per materialized query.
    pub fn avg_terms_per_query(&self) -> f64 {
        self.avg_terms_per_query
    }

    /// Concrete multi-term query instances for protocol replay.
    pub fn sampled_queries(&self) -> &[Vec<TermId>] {
        &self.sampled_queries
    }

    /// The query frequency of a term (0 if never queried).
    pub fn frequency(&self, term: TermId) -> u64 {
        self.term_freqs
            .iter()
            .find(|&&(t, _)| t == term)
            .map(|&(_, f)| f)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerber_corpus::{CorpusGenerator, CorpusStats, CustomProfile, DatasetProfile, SynthConfig};

    fn stats() -> CorpusStats {
        let config = SynthConfig {
            profile: DatasetProfile::Custom(CustomProfile {
                num_docs: 400,
                num_groups: 4,
                vocab_size: 3_000,
                general_vocab_fraction: 0.5,
                topic_mix: 0.3,
                zipf_exponent: 1.0,
                doc_length_median: 80.0,
                doc_length_sigma: 0.7,
                min_doc_length: 20,
                max_doc_length: 400,
            }),
            scale: 1.0,
            seed: 42,
        };
        CorpusStats::compute(&CorpusGenerator::new(config).generate().unwrap())
    }

    #[test]
    fn generation_respects_configuration() {
        let s = stats();
        let config = QueryLogConfig {
            distinct_terms: 500,
            total_queries: 100_000,
            sample_queries: 300,
            ..QueryLogConfig::default()
        };
        let log = QueryLog::generate(&s, &config).unwrap();
        assert_eq!(log.distinct_terms(), 500);
        assert_eq!(log.total_queries(), 100_000);
        assert_eq!(log.sampled_queries().len(), 300);
        assert!((log.avg_terms_per_query() - 2.4).abs() < 0.6);
    }

    #[test]
    fn frequencies_follow_a_heavy_tail() {
        let s = stats();
        let log = QueryLog::generate(&s, &QueryLogConfig::default()).unwrap();
        let freqs = log.term_frequencies();
        assert!(
            freqs.windows(2).all(|w| w[0].1 >= w[1].1),
            "sorted descending"
        );
        let top = freqs[0].1 as f64;
        let mid = freqs[freqs.len() / 2].1 as f64;
        assert!(
            top > 20.0 * mid,
            "head {top} should dominate the median {mid}"
        );
    }

    #[test]
    fn correlation_with_document_frequency_is_positive_but_imperfect() {
        let s = stats();
        let log = QueryLog::generate(
            &s,
            &QueryLogConfig {
                df_correlation: 0.7,
                ..QueryLogConfig::default()
            },
        )
        .unwrap();
        // Spearman-style check: compute the mean document-frequency rank of
        // the 50 most queried terms; it should be far better (smaller) than
        // the corpus average but not exactly 0..50.
        let by_df = s.terms_by_doc_freq();
        let rank_of: std::collections::HashMap<TermId, usize> =
            by_df.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        let top50: Vec<usize> = log
            .term_frequencies()
            .iter()
            .take(50)
            .map(|&(t, _)| rank_of[&t])
            .collect();
        let mean_rank = top50.iter().sum::<usize>() as f64 / 50.0;
        assert!(
            mean_rank < by_df.len() as f64 / 4.0,
            "top queried terms should be frequent in documents (mean rank {mean_rank})"
        );
        let perfectly_sorted = top50.windows(2).all(|w| w[0] < w[1]);
        assert!(!perfectly_sorted, "correlation should not be perfect");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let s = stats();
        let a = QueryLog::generate(&s, &QueryLogConfig::default()).unwrap();
        let b = QueryLog::generate(&s, &QueryLogConfig::default()).unwrap();
        assert_eq!(a.term_frequencies(), b.term_frequencies());
        assert_eq!(a.sampled_queries(), b.sampled_queries());
        let c = QueryLog::generate(
            &s,
            &QueryLogConfig {
                seed: 1,
                ..QueryLogConfig::default()
            },
        )
        .unwrap();
        assert_ne!(a.sampled_queries(), c.sampled_queries());
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let s = stats();
        for bad in [
            QueryLogConfig {
                distinct_terms: 0,
                ..QueryLogConfig::default()
            },
            QueryLogConfig {
                total_queries: 0,
                ..QueryLogConfig::default()
            },
            QueryLogConfig {
                df_correlation: 1.5,
                ..QueryLogConfig::default()
            },
            QueryLogConfig {
                terms_per_query: 0.5,
                ..QueryLogConfig::default()
            },
        ] {
            assert!(QueryLog::generate(&s, &bad).is_err());
        }
    }

    #[test]
    fn frequency_lookup_and_distinct_cap() {
        let s = stats();
        let log = QueryLog::generate(
            &s,
            &QueryLogConfig {
                distinct_terms: 10_000_000,
                ..QueryLogConfig::default()
            },
        )
        .unwrap();
        // Capped by the vocabulary size.
        assert!(log.distinct_terms() <= s.num_terms());
        let (top_term, top_freq) = log.term_frequencies()[0];
        assert_eq!(log.frequency(top_term), top_freq);
        assert_eq!(log.frequency(TermId(123_456_789)), 0);
    }
}
