//! Workload generation, cost models and evaluation metrics for the Zerber+R
//! reproduction.
//!
//! * [`querylog`] — a synthetic web-search query log calibrated to the
//!   paper's workload (power-law query frequencies, 2.4 terms/query,
//!   correlation with document frequency; Section 6.1.3),
//! * [`cost`] — the analytical workload-cost model of Equations 9–12,
//! * [`metrics`] — AvBO (Equation 13), average requests, the
//!   query-efficiency distribution (Equation 14 / Figure 13) and the
//!   cumulative workload curve (Figure 10),
//! * [`experiment`] — the [`experiment::TestBed`] that assembles corpus,
//!   RSTF model, merge plan, ordered index and baselines from one
//!   configuration and replays query workloads against them.

pub mod cost;
pub mod error;
pub mod experiment;
pub mod metrics;
pub mod querylog;

pub use cost::{
    expected_first_position, expected_retrieval_count, requests_for, total_response_size,
    workload_cost, TermCost,
};
pub use error::WorkloadError;
pub use experiment::{MergeKind, TestBed, TestBedConfig};
pub use metrics::{
    average_bandwidth_overhead, average_requests, cumulative_workload_curve,
    efficiency_at_percentiles, efficiency_curve, single_request_fraction, throughput_speedup,
    EfficiencyPoint, QuerySample, ThroughputPoint, WorkloadPoint,
};
pub use querylog::{QueryLog, QueryLogConfig};
