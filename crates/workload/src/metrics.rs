//! Evaluation metrics of Sections 6.4–6.6: average bandwidth overhead
//! (Equation 13), average request counts, query-efficiency distribution
//! (Equation 14, Figure 13) and the cumulative workload curve (Figure 10).

use serde::{Deserialize, Serialize};
use zerber_corpus::TermId;

use crate::cost::TermCost;

/// Result of executing the retrieval protocol for one distinct query term.
///
/// The workload is evaluated per *distinct* term and weighted by the term's
/// query frequency, which is equivalent to replaying every one of the log's
/// queries individually (the protocol is deterministic per term).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuerySample {
    /// The query term.
    pub term: TermId,
    /// Number of log queries that contain the term.
    pub query_freq: u64,
    /// Requests needed (initial + follow-ups).
    pub requests: usize,
    /// Posting elements transferred (`TRes` of Equation 12).
    pub elements_transferred: usize,
    /// Bytes received by the client.
    pub bytes_received: usize,
    /// Whether the desired `k` results were obtained.
    pub satisfied: bool,
}

impl QuerySample {
    /// Query efficiency `QRatio_eff = k / TRes` (Equation 14), clamped to 1.
    pub fn efficiency(&self, k: usize) -> f64 {
        if self.elements_transferred == 0 {
            return 1.0;
        }
        (k as f64 / self.elements_transferred as f64).min(1.0)
    }

    /// Per-query bandwidth overhead `TRes / k` (the summand of Equation 13).
    pub fn bandwidth_overhead(&self, k: usize) -> f64 {
        if k == 0 {
            return 0.0;
        }
        (self.elements_transferred as f64 / k as f64).max(0.0)
    }
}

fn total_weight(samples: &[QuerySample]) -> f64 {
    samples.iter().map(|s| s.query_freq as f64).sum()
}

/// Average bandwidth overhead `AvBO` over the workload (Equation 13):
/// the query-frequency-weighted mean of `TRes / k`.
pub fn average_bandwidth_overhead(samples: &[QuerySample], k: usize) -> f64 {
    let w = total_weight(samples);
    if w == 0.0 {
        return 0.0;
    }
    samples
        .iter()
        .map(|s| s.bandwidth_overhead(k) * s.query_freq as f64)
        .sum::<f64>()
        / w
}

/// Average number of requests per query over the workload (Figure 12).
pub fn average_requests(samples: &[QuerySample]) -> f64 {
    let w = total_weight(samples);
    if w == 0.0 {
        return 0.0;
    }
    samples
        .iter()
        .map(|s| s.requests as f64 * s.query_freq as f64)
        .sum::<f64>()
        / w
}

/// Fraction of the workload satisfied within a single request.
pub fn single_request_fraction(samples: &[QuerySample]) -> f64 {
    let w = total_weight(samples);
    if w == 0.0 {
        return 0.0;
    }
    samples
        .iter()
        .filter(|s| s.requests <= 1 && s.satisfied)
        .map(|s| s.query_freq as f64)
        .sum::<f64>()
        / w
}

/// One point of the query-efficiency distribution of Figure 13.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EfficiencyPoint {
    /// Cumulative share of the query workload (0–100 %), ordered by
    /// efficiency (best queries first — the paper orders by `QRatio_eff`).
    pub workload_percent: f64,
    /// The efficiency of queries at this position.
    pub efficiency: f64,
}

/// Computes the efficiency distribution: queries ordered by `QRatio_eff`
/// descending, x-axis = cumulative percentage of the workload.
pub fn efficiency_curve(samples: &[QuerySample], k: usize) -> Vec<EfficiencyPoint> {
    let w = total_weight(samples);
    if w == 0.0 {
        return Vec::new();
    }
    let mut ordered: Vec<(f64, f64)> = samples
        .iter()
        .map(|s| (s.efficiency(k), s.query_freq as f64))
        .collect();
    ordered.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut acc = 0.0;
    ordered
        .into_iter()
        .map(|(eff, weight)| {
            acc += weight;
            EfficiencyPoint {
                workload_percent: 100.0 * acc / w,
                efficiency: eff,
            }
        })
        .collect()
}

/// Samples the efficiency curve at fixed workload percentiles (for compact
/// reporting of Figure 13).
pub fn efficiency_at_percentiles(
    samples: &[QuerySample],
    k: usize,
    percentiles: &[f64],
) -> Vec<(f64, f64)> {
    let curve = efficiency_curve(samples, k);
    if curve.is_empty() {
        return Vec::new();
    }
    percentiles
        .iter()
        .map(|&p| {
            let eff = curve
                .iter()
                .find(|pt| pt.workload_percent >= p)
                .map(|pt| pt.efficiency)
                .unwrap_or_else(|| curve.last().unwrap().efficiency);
            (p, eff)
        })
        .collect()
}

/// One point of the cumulative workload curve of Figure 10.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadPoint {
    /// 1-based rank of the query term by query frequency (log-scale x axis in
    /// the paper).
    pub rank: usize,
    /// The term's query frequency.
    pub query_freq: u64,
    /// Cumulative fraction (0–1) of the total workload cost covered by the
    /// terms up to this rank.
    pub cumulative_cost_fraction: f64,
}

/// Computes the Figure 10 curve from analytical per-term costs: terms ordered
/// by query frequency, cumulative share of the total workload cost.
pub fn cumulative_workload_curve(per_term: &[TermCost]) -> Vec<WorkloadPoint> {
    let total: f64 = per_term.iter().map(|t| t.weighted_cost).sum();
    if total == 0.0 {
        return Vec::new();
    }
    let mut ordered: Vec<&TermCost> = per_term.iter().collect();
    ordered.sort_by(|a, b| b.query_freq.cmp(&a.query_freq).then(a.term.cmp(&b.term)));
    let mut acc = 0.0;
    ordered
        .into_iter()
        .enumerate()
        .map(|(i, t)| {
            acc += t.weighted_cost;
            WorkloadPoint {
                rank: i + 1,
                query_freq: t.query_freq,
                cumulative_cost_fraction: acc / total,
            }
        })
        .collect()
}

/// One point of the serving-engine throughput scaling experiment: how many
/// queries per second a server configuration sustains at a thread count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputPoint {
    /// Storage engine label ordinal: 0 = single global mutex, otherwise the
    /// shard count of the sharded engine.
    pub shards: usize,
    /// Client thread-pool size.
    pub threads: usize,
    /// Sustained queries per second.
    pub queries_per_second: f64,
}

/// Speedup of each point over the baseline point with the same thread count
/// (`(threads, speedup)` pairs; points without a matching baseline are
/// skipped).  Used to compare the sharded engine against the single-mutex
/// server thread-for-thread.
pub fn throughput_speedup(
    points: &[ThroughputPoint],
    baseline: &[ThroughputPoint],
) -> Vec<(usize, f64)> {
    points
        .iter()
        .filter_map(|p| {
            baseline
                .iter()
                .find(|b| b.threads == p.threads && b.queries_per_second > 0.0)
                .map(|b| (p.threads, p.queries_per_second / b.queries_per_second))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(
        term: u32,
        freq: u64,
        requests: usize,
        elements: usize,
        satisfied: bool,
    ) -> QuerySample {
        QuerySample {
            term: TermId(term),
            query_freq: freq,
            requests,
            elements_transferred: elements,
            bytes_received: elements * 58,
            satisfied,
        }
    }

    #[test]
    fn efficiency_and_overhead_are_reciprocal_when_overloaded() {
        let s = sample(0, 1, 2, 30, true);
        assert!((s.efficiency(10) - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.bandwidth_overhead(10) - 3.0).abs() < 1e-12);
        // A query that transferred fewer than k elements caps efficiency at 1.
        let s = sample(0, 1, 1, 5, false);
        assert_eq!(s.efficiency(10), 1.0);
    }

    #[test]
    fn averages_are_query_frequency_weighted() {
        let samples = vec![
            sample(0, 90, 1, 10, true), // cheap and frequent
            sample(1, 10, 3, 70, true), // expensive and rare
        ];
        let avbo = average_bandwidth_overhead(&samples, 10);
        // 0.9 * 1.0 + 0.1 * 7.0 = 1.6
        assert!((avbo - 1.6).abs() < 1e-9);
        let reqs = average_requests(&samples);
        assert!((reqs - (0.9 + 0.3 * 1.0 + 0.0)).abs() < 1.0); // 0.9*1 + 0.1*3 = 1.2
        assert!((reqs - 1.2).abs() < 1e-9);
        assert!((single_request_fraction(&samples) - 0.9).abs() < 1e-9);
    }

    #[test]
    fn empty_sample_sets_return_zero() {
        assert_eq!(average_bandwidth_overhead(&[], 10), 0.0);
        assert_eq!(average_requests(&[]), 0.0);
        assert_eq!(single_request_fraction(&[]), 0.0);
        assert!(efficiency_curve(&[], 10).is_empty());
        assert!(cumulative_workload_curve(&[]).is_empty());
    }

    #[test]
    fn efficiency_curve_is_ordered_and_covers_the_workload() {
        let samples = vec![
            sample(0, 60, 1, 10, true),
            sample(1, 30, 2, 30, true),
            sample(2, 10, 3, 100, true),
        ];
        let curve = efficiency_curve(&samples, 10);
        assert_eq!(curve.len(), 3);
        assert!(curve.windows(2).all(|w| w[0].efficiency >= w[1].efficiency));
        assert!((curve.last().unwrap().workload_percent - 100.0).abs() < 1e-9);
        // 60% of the workload has efficiency 1.0.
        assert!((curve[0].workload_percent - 60.0).abs() < 1e-9);
        assert!((curve[0].efficiency - 1.0).abs() < 1e-9);
        let pts = efficiency_at_percentiles(&samples, 10, &[50.0, 90.0, 100.0]);
        assert_eq!(pts.len(), 3);
        assert!((pts[0].1 - 1.0).abs() < 1e-9);
        assert!(pts[2].1 <= pts[0].1);
    }

    #[test]
    fn workload_curve_is_monotone_and_reaches_one() {
        let per_term = vec![
            TermCost {
                term: TermId(0),
                query_freq: 100,
                elements_per_query: 20.0,
                weighted_cost: 2_000.0,
            },
            TermCost {
                term: TermId(1),
                query_freq: 10,
                elements_per_query: 30.0,
                weighted_cost: 300.0,
            },
            TermCost {
                term: TermId(2),
                query_freq: 1,
                elements_per_query: 40.0,
                weighted_cost: 40.0,
            },
        ];
        let curve = cumulative_workload_curve(&per_term);
        assert_eq!(curve.len(), 3);
        assert_eq!(curve[0].rank, 1);
        assert!(curve.windows(2).all(|w| {
            w[1].cumulative_cost_fraction >= w[0].cumulative_cost_fraction
                && w[0].query_freq >= w[1].query_freq
        }));
        assert!((curve.last().unwrap().cumulative_cost_fraction - 1.0).abs() < 1e-12);
        // The most frequent term dominates the workload.
        assert!(curve[0].cumulative_cost_fraction > 0.8);
    }

    #[test]
    fn throughput_speedup_matches_points_by_thread_count() {
        let sharded = [
            ThroughputPoint {
                shards: 8,
                threads: 1,
                queries_per_second: 100.0,
            },
            ThroughputPoint {
                shards: 8,
                threads: 4,
                queries_per_second: 360.0,
            },
            ThroughputPoint {
                shards: 8,
                threads: 16,
                queries_per_second: 500.0,
            },
        ];
        let single = [
            ThroughputPoint {
                shards: 0,
                threads: 1,
                queries_per_second: 100.0,
            },
            ThroughputPoint {
                shards: 0,
                threads: 4,
                queries_per_second: 120.0,
            },
        ];
        let speedup = throughput_speedup(&sharded, &single);
        assert_eq!(speedup.len(), 2, "the 16-thread point has no baseline");
        assert!((speedup[0].1 - 1.0).abs() < 1e-12);
        assert!((speedup[1].1 - 3.0).abs() < 1e-12);
    }
}
