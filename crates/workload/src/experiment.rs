//! Experiment orchestration: builds the complete Zerber+R deployment
//! (corpus → split → RSTF model → merge plan → ordered index → server) from a
//! single configuration and runs query workloads against it.
//!
//! Every figure binary in `zerber-bench` and several integration tests use
//! this test bed so that experiment setup is defined exactly once.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use zerber_base::{
    BfmMerge, ConfidentialityParam, MergePlan, MergeScheme, MixedMerge, RandomMerge,
};
use zerber_corpus::{
    sample_split, Corpus, CorpusGenerator, CorpusStats, DatasetProfile, GroupId, SplitConfig,
    SynthConfig, TrainControlSplit,
};
use zerber_crypto::{GroupKeys, MasterKey};
use zerber_index::InvertedIndex;
use zerber_protocol::{AccessControl, IndexServer, StoreEngine};
use zerber_r::{retrieve_topk, GrowthPolicy, OrderedIndex, RetrievalConfig, RstfConfig, RstfModel};
use zerber_store::ShardedStore;

use crate::error::WorkloadError;
use crate::metrics::QuerySample;
use crate::querylog::{QueryLog, QueryLogConfig};

/// Which merging scheme the test bed uses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum MergeKind {
    /// Breadth-first merging (the paper's scheme).
    #[default]
    Bfm,
    /// Frequency-spanning ablation.
    Mixed,
    /// Random grouping ablation.
    Random,
}

/// Configuration of a complete experiment deployment.
#[derive(Debug, Clone)]
pub struct TestBedConfig {
    /// Which dataset profile to synthesize.
    pub dataset: DatasetProfile,
    /// Scale factor relative to the paper's corpus sizes.
    pub scale: f64,
    /// r-confidentiality parameter.
    pub r: f64,
    /// Merging scheme.
    pub merge: MergeKind,
    /// RSTF training configuration.
    pub rstf: RstfConfig,
    /// Training/control split configuration.
    pub split: SplitConfig,
    /// Master RNG seed (corpus, index placement, keys derive from it).
    pub seed: u64,
}

impl TestBedConfig {
    /// A small, fast configuration for the given dataset (used by tests and
    /// the quick modes of the figure binaries).
    pub fn small(dataset: DatasetProfile) -> Self {
        TestBedConfig {
            dataset,
            scale: 0.02,
            r: 3.0,
            merge: MergeKind::Bfm,
            rstf: RstfConfig::default(),
            split: SplitConfig::default(),
            seed: 0xbed,
        }
    }
}

/// A fully built experiment deployment.
pub struct TestBed {
    /// The synthetic corpus.
    pub corpus: Corpus,
    /// Its term statistics.
    pub stats: CorpusStats,
    /// The training/control split used for the RSTF.
    pub split: TrainControlSplit,
    /// The trained RSTF model.
    pub model: RstfModel,
    /// The merge plan.
    pub plan: MergePlan,
    /// The Zerber+R ordered confidential index.
    pub index: OrderedIndex,
    /// An ordinary plaintext index over the same corpus (baseline).
    pub plain_index: InvertedIndex,
    /// The deployment master key.
    pub master: MasterKey,
    /// Group keys for every group (an all-groups member's key ring).
    pub all_memberships: HashMap<GroupId, GroupKeys>,
    /// The configuration the bed was built from.
    pub config: TestBedConfig,
}

impl TestBed {
    /// Builds the full deployment.
    pub fn build(config: TestBedConfig) -> Result<Self, WorkloadError> {
        let synth = SynthConfig {
            profile: config.dataset.clone(),
            scale: config.scale,
            seed: config.seed,
        };
        let corpus = CorpusGenerator::new(synth).generate()?;
        let stats = CorpusStats::compute(&corpus);
        let split = sample_split(&corpus, config.split)?;
        let model = RstfModel::train(&corpus, &split, &config.rstf)?;
        let r = ConfidentialityParam::new(config.r)?;
        let plan = match config.merge {
            MergeKind::Bfm => BfmMerge.plan(&stats, r)?,
            MergeKind::Mixed => MixedMerge.plan(&stats, r)?,
            MergeKind::Random => RandomMerge { seed: config.seed }.plan(&stats, r)?,
        };
        let master = MasterKey::new(master_key_bytes(config.seed));
        let index =
            OrderedIndex::build(&corpus, plan.clone(), &model, &master, config.seed ^ 0xabc)?;
        let plain_index = InvertedIndex::build(&corpus);
        let all_memberships: HashMap<GroupId, GroupKeys> = (0..corpus.num_groups() as u32)
            .map(|g| (GroupId(g), master.group_keys(g)))
            .collect();
        Ok(TestBed {
            corpus,
            stats,
            split,
            model,
            plan,
            index,
            plain_index,
            master,
            all_memberships,
            config,
        })
    }

    /// Generates a query log matched to this corpus.
    pub fn query_log(&self, config: &QueryLogConfig) -> Result<QueryLog, WorkloadError> {
        QueryLog::generate(&self.stats, config)
    }

    /// The user directory used by [`TestBed::build_server`]: `num_users`
    /// all-group members named `user-0`, `user-1`, ...
    fn server_acl(&self, num_users: usize) -> AccessControl {
        let mut acl = AccessControl::new(b"testbed-server");
        let groups: Vec<GroupId> = (0..self.corpus.num_groups() as u32).map(GroupId).collect();
        for i in 0..num_users.max(1) {
            acl.register_user(&format!("user-{i}"), &groups);
        }
        acl
    }

    /// Builds an index server over a copy of the ordered index, partitioned
    /// across `num_shards` storage shards, with `num_users` registered
    /// all-group users (`user-0`, ...).  Used by the concurrency tests and
    /// the server-throughput benchmarks.
    pub fn build_server(&self, num_shards: usize, num_users: usize) -> IndexServer {
        IndexServer::with_store(
            Box::new(ShardedStore::with_shards(self.index.clone(), num_shards)),
            self.server_acl(num_users),
        )
    }

    /// Builds the single-global-mutex baseline server (the pre-sharding
    /// architecture) over a copy of the ordered index.
    pub fn build_single_mutex_server(&self, num_users: usize) -> IndexServer {
        IndexServer::single_mutex(self.index.clone(), self.server_acl(num_users))
    }

    /// Builds a server over the compressed segment engine, partitioned
    /// across `num_shards` shards.
    pub fn build_segment_server(&self, num_shards: usize, num_users: usize) -> IndexServer {
        self.build_engine_server(StoreEngine::Segment, num_shards, num_users)
    }

    /// Builds a server over the on-disk spill engine (page files in a fresh
    /// temp directory, removed when the server drops), partitioned across
    /// `num_shards` shards.
    pub fn build_spill_server(&self, num_shards: usize, num_users: usize) -> IndexServer {
        self.build_engine_server(StoreEngine::Spill, num_shards, num_users)
    }

    /// Builds a spill-engine server with explicit spill and segment tuning —
    /// what the engine-comparison bench uses to pin the resident budget and
    /// page-cache size instead of the roomy defaults.
    pub fn build_tuned_spill_server(
        &self,
        num_shards: usize,
        num_users: usize,
        config: zerber_store::SpillConfig,
        segment: zerber_store::SegmentConfig,
    ) -> IndexServer {
        let store = zerber_store::SpillStore::in_temp_dir_with(
            self.index.clone(),
            num_shards,
            config,
            segment,
        )
        .expect("spill store builds");
        IndexServer::with_store(Box::new(store), self.server_acl(num_users))
    }

    /// Builds a server over an explicitly selected storage engine — the
    /// entry point the engine-comparison benchmarks drive.
    pub fn build_engine_server(
        &self,
        engine: StoreEngine,
        num_shards: usize,
        num_users: usize,
    ) -> IndexServer {
        IndexServer::with_engine(
            self.index.clone(),
            self.server_acl(num_users),
            engine,
            num_shards,
        )
        .expect("engine server builds")
    }

    /// The names registered by [`TestBed::build_server`], ready to hand to
    /// the `netsim` load generator.
    pub fn server_users(num_users: usize) -> Vec<String> {
        (0..num_users.max(1)).map(|i| format!("user-{i}")).collect()
    }

    /// Executes the retrieval protocol once per distinct query term of the
    /// log (as a member of all groups) and returns the per-term samples
    /// weighted by query frequency, ready for the Section 6.4–6.5 metrics.
    pub fn run_workload(
        &self,
        log: &QueryLog,
        k: usize,
        initial_response: usize,
        growth: GrowthPolicy,
    ) -> Result<Vec<QuerySample>, WorkloadError> {
        let config = RetrievalConfig {
            k,
            initial_response,
            growth,
        };
        let mut samples = Vec::with_capacity(log.distinct_terms());
        for &(term, freq) in log.term_frequencies() {
            // Terms that never made it into the corpus vocabulary (possible at
            // small scales) cost one empty round trip.
            let Ok(_) = self.plan.list_of(term) else {
                samples.push(QuerySample {
                    term,
                    query_freq: freq,
                    requests: 1,
                    elements_transferred: 0,
                    bytes_received: 0,
                    satisfied: false,
                });
                continue;
            };
            let outcome = retrieve_topk(&self.index, term, &self.all_memberships, &config)?;
            samples.push(QuerySample {
                term,
                query_freq: freq,
                requests: outcome.requests,
                elements_transferred: outcome.elements_transferred,
                bytes_received: outcome.elements_transferred
                    * (zerber_base::SEALED_PAYLOAD_BYTES + 12),
                satisfied: outcome.satisfied,
            });
        }
        Ok(samples)
    }
}

fn master_key_bytes(seed: u64) -> [u8; 32] {
    let mut key = [0u8; 32];
    for (i, chunk) in key.chunks_mut(8).enumerate() {
        chunk.copy_from_slice(&(seed.wrapping_mul(i as u64 + 1).wrapping_add(17)).to_le_bytes());
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{average_bandwidth_overhead, average_requests};

    fn bed() -> TestBed {
        TestBed::build(TestBedConfig::small(DatasetProfile::StudIp)).unwrap()
    }

    #[test]
    fn small_studip_bed_builds_consistently() {
        let bed = bed();
        assert!(bed.corpus.num_docs() > 100);
        assert_eq!(bed.index.num_lists(), bed.plan.num_lists());
        assert!(bed.index.verify_ordering());
        assert_eq!(
            bed.index.num_elements(),
            bed.corpus
                .docs()
                .map(|(_, d)| d.distinct_terms())
                .sum::<usize>()
        );
        assert_eq!(bed.all_memberships.len(), bed.corpus.num_groups());
    }

    #[test]
    fn workload_execution_produces_weighted_samples() {
        let bed = bed();
        let log = bed
            .query_log(&QueryLogConfig {
                distinct_terms: 100,
                total_queries: 10_000,
                sample_queries: 50,
                ..QueryLogConfig::default()
            })
            .unwrap();
        let samples = bed
            .run_workload(&log, 10, 10, GrowthPolicy::Doubling)
            .unwrap();
        assert_eq!(samples.len(), log.distinct_terms());
        let avbo = average_bandwidth_overhead(&samples, 10);
        let reqs = average_requests(&samples);
        assert!(avbo >= 0.5, "AvBO {avbo}");
        assert!(reqs >= 1.0, "requests {reqs}");
        // With b = k most of the (frequency-weighted) workload should be
        // satisfied quickly (Section 6.5).
        assert!(reqs < 6.0, "requests {reqs}");
    }

    #[test]
    fn built_servers_serve_the_workload_from_a_thread_pool() {
        let bed = bed();
        let sharded = bed.build_server(4, 2);
        let single = bed.build_single_mutex_server(2);
        assert_eq!(sharded.num_elements(), bed.index.num_elements());
        assert_eq!(sharded.store().num_shards(), 4);
        assert_eq!(single.store().num_shards(), 1);
        let users = TestBed::server_users(2);
        let lists: Vec<u64> = (0..sharded.num_lists() as u64).take(8).collect();
        let config = zerber_protocol::LoadConfig {
            threads: 2,
            queries_per_thread: 20,
            k: 5,
        };
        let a = zerber_protocol::drive_raw_queries(&sharded, &users, &lists, &config).unwrap();
        let b = zerber_protocol::drive_raw_queries(&single, &users, &lists, &config).unwrap();
        assert_eq!(a.queries, 40);
        assert_eq!(a.queries, b.queries);
        assert!(a.queries_per_second > 0.0);
        // Both engines ship identical element counts for the same workload.
        assert_eq!(a.elements_sent, b.elements_sent);
        assert_eq!(sharded.open_cursors(), 0);
        // The compressed segment engine serves the same workload with the
        // same element counts from a smaller resident footprint.
        let segmented = bed.build_segment_server(4, 2);
        assert_eq!(segmented.num_elements(), bed.index.num_elements());
        let c = zerber_protocol::drive_raw_queries(&segmented, &users, &lists, &config).unwrap();
        assert_eq!(a.elements_sent, c.elements_sent);
        assert!(segmented.store().resident_bytes() < sharded.store().resident_bytes());
    }

    #[test]
    fn mixed_and_random_merges_also_build() {
        for merge in [MergeKind::Mixed, MergeKind::Random] {
            let config = TestBedConfig {
                merge,
                ..TestBedConfig::small(DatasetProfile::StudIp)
            };
            let bed = TestBed::build(config).unwrap();
            assert!(bed.index.num_lists() > 0);
        }
    }

    #[test]
    fn impossible_r_fails_to_build() {
        let config = TestBedConfig {
            r: 1.0,
            ..TestBedConfig::small(DatasetProfile::StudIp)
        };
        assert!(TestBed::build(config).is_err());
    }

    #[test]
    fn default_merge_kind_is_bfm() {
        assert_eq!(MergeKind::default(), MergeKind::Bfm);
    }
}
