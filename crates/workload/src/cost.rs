//! Analytical workload-cost model (Equations 9–12 of the paper).
//!
//! Inside an ordered merged posting list the elements of every term are
//! (by design of the RSTF) uniformly spread over the list.  For a term `t`
//! with document frequency `n_d(t)` in a list of `T = Σ_{t_i∈L} n_d(t_i)`
//! elements, the expected position of its highest-ranked element is about
//! `T / (n_d(t) + 1)` and the expected number of elements that must be
//! retrieved to cover its top-k is about `k · T / n_d(t)` (capped by `T`).
//! The total workload cost of a query log is the query-frequency-weighted sum
//! of those retrieval counts (Equation 9).

use serde::{Deserialize, Serialize};
use zerber_base::MergePlan;
use zerber_corpus::{CorpusStats, TermId};

use crate::error::WorkloadError;
use crate::querylog::QueryLog;

/// Expected position (1-based) of the first element of `term` inside its
/// merged list, assuming TRS-uniform placement (Equation 10).
pub fn expected_first_position(
    stats: &CorpusStats,
    plan: &MergePlan,
    term: TermId,
) -> Result<f64, WorkloadError> {
    let list = plan.list_of(term)?;
    let members = plan.list_terms(list)?;
    let total: f64 = members
        .iter()
        .map(|&t| stats.doc_freq(t).map(f64::from))
        .collect::<Result<Vec<_>, _>>()?
        .iter()
        .sum();
    let df = f64::from(stats.doc_freq(term)?);
    if df == 0.0 {
        return Ok(total + 1.0);
    }
    Ok((total + 1.0) / (df + 1.0))
}

/// Expected number of elements that must be retrieved from the merged list to
/// obtain the top-k elements of `term` (Equation 11), capped at the list
/// length.
pub fn expected_retrieval_count(
    stats: &CorpusStats,
    plan: &MergePlan,
    term: TermId,
    k: usize,
) -> Result<f64, WorkloadError> {
    let list = plan.list_of(term)?;
    let members = plan.list_terms(list)?;
    let total: f64 = members
        .iter()
        .map(|&t| stats.doc_freq(t).map(f64::from))
        .collect::<Result<Vec<_>, _>>()?
        .iter()
        .sum();
    let df = f64::from(stats.doc_freq(term)?);
    if df == 0.0 {
        return Ok(total);
    }
    Ok((k as f64 * total / df).min(total))
}

/// Total response size after `n` follow-up requests with initial size `b` and
/// doubling growth: `TRes = b · Σ_{i=0..n} 2^i` (Equation 12).
pub fn total_response_size(b: usize, follow_ups: usize) -> usize {
    let mut total = 0usize;
    for i in 0..=follow_ups {
        total = total.saturating_add(b.saturating_mul(1usize << i.min(62)));
    }
    total
}

/// Number of requests (initial + follow-ups) needed to retrieve `needed`
/// elements with initial response size `b` and doubling growth.
pub fn requests_for(needed: usize, b: usize) -> usize {
    if b == 0 {
        return 0;
    }
    let mut served = 0usize;
    let mut requests = 0usize;
    while served < needed {
        let this = b.saturating_mul(1usize << requests.min(62));
        served = served.saturating_add(this);
        requests += 1;
    }
    requests.max(1)
}

/// One term's contribution to the analytical workload cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TermCost {
    /// The query term.
    pub term: TermId,
    /// Its query frequency in the log.
    pub query_freq: u64,
    /// Expected elements retrieved per query of this term.
    pub elements_per_query: f64,
    /// `query_freq * elements_per_query` (the inner product of Equation 9).
    pub weighted_cost: f64,
}

/// Analytical total workload cost `Q ≈ Σ_L Σ_{j∈L} N(L_j) · q_j` (Equation 9).
pub fn workload_cost(
    stats: &CorpusStats,
    plan: &MergePlan,
    log: &QueryLog,
    k: usize,
) -> Result<(f64, Vec<TermCost>), WorkloadError> {
    if k == 0 {
        return Err(WorkloadError::InvalidConfig(
            "k must be greater than 0".into(),
        ));
    }
    let mut per_term = Vec::with_capacity(log.distinct_terms());
    let mut total = 0.0;
    for &(term, freq) in log.term_frequencies() {
        // Terms that are queried but do not occur in the corpus cost one
        // empty round trip; model that as zero elements.
        let elements = if stats.doc_freq(term).is_ok() && plan.list_of(term).is_ok() {
            expected_retrieval_count(stats, plan, term, k)?
        } else {
            0.0
        };
        let weighted = elements * freq as f64;
        total += weighted;
        per_term.push(TermCost {
            term,
            query_freq: freq,
            elements_per_query: elements,
            weighted_cost: weighted,
        });
    }
    Ok((total, per_term))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::querylog::QueryLogConfig;
    use zerber_base::{BfmMerge, ConfidentialityParam, MergeScheme};
    use zerber_corpus::{CorpusGenerator, CustomProfile, DatasetProfile, SynthConfig};

    fn fixture() -> (CorpusStats, MergePlan, QueryLog) {
        let config = SynthConfig {
            profile: DatasetProfile::Custom(CustomProfile {
                num_docs: 300,
                num_groups: 3,
                vocab_size: 1_000,
                general_vocab_fraction: 0.5,
                topic_mix: 0.3,
                zipf_exponent: 1.0,
                doc_length_median: 60.0,
                doc_length_sigma: 0.6,
                min_doc_length: 15,
                max_doc_length: 300,
            }),
            scale: 1.0,
            seed: 7,
        };
        let corpus = CorpusGenerator::new(config).generate().unwrap();
        let stats = CorpusStats::compute(&corpus);
        let plan = BfmMerge
            .plan(&stats, ConfidentialityParam::new(3.0).unwrap())
            .unwrap();
        let log = QueryLog::generate(
            &stats,
            &QueryLogConfig {
                distinct_terms: 300,
                total_queries: 50_000,
                sample_queries: 100,
                ..QueryLogConfig::default()
            },
        )
        .unwrap();
        (stats, plan, log)
    }

    #[test]
    fn first_position_is_earlier_for_frequent_terms() {
        let (stats, plan, _) = fixture();
        let order = stats.terms_by_doc_freq();
        let frequent = order[0];
        let rare = *order.last().unwrap();
        let p_freq = expected_first_position(&stats, &plan, frequent).unwrap();
        let p_rare = expected_first_position(&stats, &plan, rare).unwrap();
        assert!(p_freq >= 1.0);
        // Within its list, a frequent term's first element appears very early.
        assert!(p_freq < 20.0, "frequent first position {p_freq}");
        assert!(p_rare >= 1.0);
    }

    #[test]
    fn retrieval_count_scales_with_k_and_is_capped() {
        let (stats, plan, _) = fixture();
        let term = stats.terms_by_doc_freq()[5];
        let n1 = expected_retrieval_count(&stats, &plan, term, 1).unwrap();
        let n10 = expected_retrieval_count(&stats, &plan, term, 10).unwrap();
        assert!(n10 >= n1);
        let list = plan.list_of(term).unwrap();
        let list_total: f64 = plan
            .list_terms(list)
            .unwrap()
            .iter()
            .map(|&t| f64::from(stats.doc_freq(t).unwrap()))
            .sum();
        let huge = expected_retrieval_count(&stats, &plan, term, 1_000_000).unwrap();
        assert!(
            (huge - list_total).abs() < 1e-9,
            "capped at the list length"
        );
    }

    #[test]
    fn total_response_size_matches_equation_12() {
        assert_eq!(total_response_size(10, 0), 10);
        assert_eq!(total_response_size(10, 1), 30);
        assert_eq!(total_response_size(10, 2), 70);
        assert_eq!(total_response_size(1, 3), 15);
        assert_eq!(total_response_size(0, 5), 0);
    }

    #[test]
    fn requests_for_matches_doubling_schedule() {
        assert_eq!(requests_for(1, 10), 1);
        assert_eq!(requests_for(10, 10), 1);
        assert_eq!(requests_for(11, 10), 2);
        assert_eq!(requests_for(30, 10), 2);
        assert_eq!(requests_for(31, 10), 3);
        assert_eq!(requests_for(0, 10), 1);
        assert_eq!(requests_for(5, 0), 0);
    }

    #[test]
    fn workload_cost_is_dominated_by_frequent_queries() {
        let (stats, plan, log) = fixture();
        let (total, per_term) = workload_cost(&stats, &plan, &log, 10).unwrap();
        assert!(total > 0.0);
        assert_eq!(per_term.len(), log.distinct_terms());
        // The most frequent query terms should account for a disproportionate
        // share of the cost (Figure 10's "most frequent queries constitute
        // nearly the whole workload"): the top 10% of terms must carry far
        // more than 10% of the cost, and the top 30% the majority of it.
        let head = |frac: f64| -> f64 {
            per_term
                .iter()
                .take((per_term.len() as f64 * frac) as usize)
                .map(|t| t.weighted_cost)
                .sum::<f64>()
                / total
        };
        assert!(head(0.1) > 0.3, "top-10% fraction {}", head(0.1));
        assert!(head(0.3) > 0.5, "top-30% fraction {}", head(0.3));
    }

    #[test]
    fn zero_k_is_rejected() {
        let (stats, plan, log) = fixture();
        assert!(workload_cost(&stats, &plan, &log, 0).is_err());
    }
}
