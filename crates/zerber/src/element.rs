//! Encrypted posting elements.
//!
//! Zerber stores "ranking information as well as term and document
//! identifiers within each posting element in an encrypted form"
//! (Section 3.1).  The plaintext payload is a fixed-size record so that every
//! sealed element has the same length — element sizes therefore leak nothing
//! about the term or the document.

use serde::{Deserialize, Serialize};
use zerber_corpus::{DocId, GroupId, TermId};
use zerber_crypto::{DeterministicRng, GroupKeys, OVERHEAD};

use crate::error::ZerberError;
use crate::merge::MergedListId;

/// Plaintext size of a posting payload in bytes.
pub const PAYLOAD_BYTES: usize = 16;
/// Sealed (encrypted + authenticated) size of a posting payload in bytes.
pub const SEALED_PAYLOAD_BYTES: usize = PAYLOAD_BYTES + OVERHEAD;

/// The confidential content of one posting element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PostingPayload {
    /// The term this element belongs to.
    pub term: TermId,
    /// The document containing the term.
    pub doc: DocId,
    /// Raw term frequency.
    pub tf: u32,
    /// Document length `|d|`.
    pub doc_len: u32,
}

impl PostingPayload {
    /// Relevance score `TF / |d|` (Equation 4).
    pub fn relevance(&self) -> f64 {
        if self.doc_len == 0 {
            0.0
        } else {
            f64::from(self.tf) / f64::from(self.doc_len)
        }
    }

    /// Fixed-size little-endian encoding.
    pub fn encode(&self) -> [u8; PAYLOAD_BYTES] {
        let mut out = [0u8; PAYLOAD_BYTES];
        out[0..4].copy_from_slice(&self.term.0.to_le_bytes());
        out[4..8].copy_from_slice(&self.doc.0.to_le_bytes());
        out[8..12].copy_from_slice(&self.tf.to_le_bytes());
        out[12..16].copy_from_slice(&self.doc_len.to_le_bytes());
        out
    }

    /// Decodes a payload produced by [`PostingPayload::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Self, ZerberError> {
        if bytes.len() != PAYLOAD_BYTES {
            return Err(ZerberError::Crypto(format!(
                "payload must be {PAYLOAD_BYTES} bytes, got {}",
                bytes.len()
            )));
        }
        let word =
            |i: usize| u32::from_le_bytes([bytes[i], bytes[i + 1], bytes[i + 2], bytes[i + 3]]);
        Ok(PostingPayload {
            term: TermId(word(0)),
            doc: DocId(word(4)),
            tf: word(8),
            doc_len: word(12),
        })
    }
}

/// One encrypted posting element as stored on the (untrusted) index server.
///
/// The access-control group is visible to the server — it must be, because
/// the server enforces group membership before returning elements
/// (Section 4.1) — but term, document and score are sealed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncryptedElement {
    /// The group whose members may decrypt the payload.
    pub group: GroupId,
    /// AEAD-sealed [`PostingPayload`], bound to the merged list id.
    pub ciphertext: Vec<u8>,
}

impl EncryptedElement {
    /// Seals a payload for storage in `list` under the group's keys.
    pub fn seal(
        payload: &PostingPayload,
        group: GroupId,
        keys: &GroupKeys,
        list: MergedListId,
        rng: &mut DeterministicRng,
    ) -> Result<Self, ZerberError> {
        let nonce = rng.nonce();
        let aad = list.0.to_le_bytes();
        let ciphertext = keys.aead().seal(&nonce, &payload.encode(), &aad)?;
        Ok(EncryptedElement { group, ciphertext })
    }

    /// Opens the element with the group's keys, verifying it belongs to
    /// `list`.
    pub fn open(
        &self,
        keys: &GroupKeys,
        list: MergedListId,
    ) -> Result<PostingPayload, ZerberError> {
        let aad = list.0.to_le_bytes();
        let plain = keys.aead().open(&self.ciphertext, &aad)?;
        PostingPayload::decode(&plain)
    }

    /// Size of the element on the wire / on disk, in bytes (ciphertext plus
    /// the 4-byte group tag).
    pub fn stored_bytes(&self) -> usize {
        self.ciphertext.len() + 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerber_crypto::MasterKey;

    fn keys() -> GroupKeys {
        MasterKey::new([9u8; 32]).group_keys(2)
    }

    fn payload() -> PostingPayload {
        PostingPayload {
            term: TermId(7),
            doc: DocId(42),
            tf: 3,
            doc_len: 12,
        }
    }

    #[test]
    fn payload_encoding_roundtrips() {
        let p = payload();
        let enc = p.encode();
        assert_eq!(enc.len(), PAYLOAD_BYTES);
        assert_eq!(PostingPayload::decode(&enc).unwrap(), p);
    }

    #[test]
    fn payload_decode_rejects_wrong_length() {
        assert!(PostingPayload::decode(&[0u8; 15]).is_err());
        assert!(PostingPayload::decode(&[0u8; 17]).is_err());
    }

    #[test]
    fn relevance_matches_equation_4() {
        assert!((payload().relevance() - 0.25).abs() < 1e-12);
        let zero = PostingPayload {
            doc_len: 0,
            ..payload()
        };
        assert_eq!(zero.relevance(), 0.0);
    }

    #[test]
    fn seal_open_roundtrip() {
        let keys = keys();
        let mut rng = DeterministicRng::from_u64(5);
        let e = EncryptedElement::seal(&payload(), GroupId(2), &keys, MergedListId(3), &mut rng)
            .unwrap();
        assert_eq!(e.ciphertext.len(), SEALED_PAYLOAD_BYTES);
        assert_eq!(e.stored_bytes(), SEALED_PAYLOAD_BYTES + 4);
        assert_eq!(e.open(&keys, MergedListId(3)).unwrap(), payload());
    }

    #[test]
    fn opening_with_wrong_list_or_key_fails() {
        let keys = keys();
        let other_keys = MasterKey::new([9u8; 32]).group_keys(3);
        let mut rng = DeterministicRng::from_u64(6);
        let e = EncryptedElement::seal(&payload(), GroupId(2), &keys, MergedListId(3), &mut rng)
            .unwrap();
        assert!(e.open(&keys, MergedListId(4)).is_err());
        assert!(e.open(&other_keys, MergedListId(3)).is_err());
    }

    #[test]
    fn all_sealed_elements_have_identical_size() {
        let keys = keys();
        let mut rng = DeterministicRng::from_u64(7);
        let sizes: Vec<usize> = (0..20)
            .map(|i| {
                let p = PostingPayload {
                    term: TermId(i),
                    doc: DocId(i * 17),
                    tf: i + 1,
                    doc_len: 100 + i,
                };
                EncryptedElement::seal(&p, GroupId(2), &keys, MergedListId(0), &mut rng)
                    .unwrap()
                    .ciphertext
                    .len()
            })
            .collect();
        assert!(sizes.iter().all(|&s| s == SEALED_PAYLOAD_BYTES));
    }

    #[test]
    fn ciphertexts_of_identical_payloads_differ() {
        let keys = keys();
        let mut rng = DeterministicRng::from_u64(8);
        let a = EncryptedElement::seal(&payload(), GroupId(2), &keys, MergedListId(0), &mut rng)
            .unwrap();
        let b = EncryptedElement::seal(&payload(), GroupId(2), &keys, MergedListId(0), &mut rng)
            .unwrap();
        assert_ne!(
            a.ciphertext, b.ciphertext,
            "fresh nonces must randomize ciphertexts"
        );
    }
}
