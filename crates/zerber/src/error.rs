//! Error type for the Zerber confidential-index substrate.

use std::fmt;

/// Errors produced by the Zerber index and its merging schemes.
#[derive(Debug, Clone, PartialEq)]
pub enum ZerberError {
    /// The requested merged posting list does not exist.
    UnknownList(u64),
    /// The term is not covered by the merge plan.
    UnmergedTerm(u32),
    /// The merge plan violates the r-confidentiality condition.
    ConfidentialityViolation {
        /// The offending merged list.
        list: u64,
        /// Achieved probability-mass sum `Σ p_t`.
        mass: f64,
        /// Required minimum `1 / r`.
        required: f64,
    },
    /// A cryptographic operation failed (wrong key, tampered element, ...).
    Crypto(String),
    /// An invalid parameter was supplied (r <= 1, k == 0, ...).
    InvalidParameter(String),
    /// A corpus-level error bubbled up.
    Corpus(String),
}

impl fmt::Display for ZerberError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZerberError::UnknownList(id) => write!(f, "unknown merged posting list {id}"),
            ZerberError::UnmergedTerm(t) => write!(f, "term {t} is not covered by the merge plan"),
            ZerberError::ConfidentialityViolation { list, mass, required } => write!(
                f,
                "merged list {list} violates r-confidentiality: probability mass {mass:.6} < required {required:.6}"
            ),
            ZerberError::Crypto(msg) => write!(f, "cryptographic failure: {msg}"),
            ZerberError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            ZerberError::Corpus(msg) => write!(f, "corpus error: {msg}"),
        }
    }
}

impl std::error::Error for ZerberError {}

impl From<zerber_crypto::CryptoError> for ZerberError {
    fn from(e: zerber_crypto::CryptoError) -> Self {
        ZerberError::Crypto(e.to_string())
    }
}

impl From<zerber_corpus::CorpusError> for ZerberError {
    fn from(e: zerber_corpus::CorpusError) -> Self {
        ZerberError::Corpus(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_facts() {
        let e = ZerberError::ConfidentialityViolation {
            list: 3,
            mass: 0.1,
            required: 0.5,
        };
        let s = e.to_string();
        assert!(s.contains('3'));
        assert!(s.contains("0.1"));
        assert!(s.contains("0.5"));
        assert!(ZerberError::UnknownList(9).to_string().contains('9'));
        assert!(ZerberError::UnmergedTerm(4).to_string().contains('4'));
    }

    #[test]
    fn conversions_from_substrate_errors() {
        let c: ZerberError = zerber_crypto::CryptoError::AuthenticationFailed.into();
        assert!(matches!(c, ZerberError::Crypto(_)));
        let k: ZerberError = zerber_corpus::CorpusError::UnknownTerm(1).into();
        assert!(matches!(k, ZerberError::Corpus(_)));
    }
}
