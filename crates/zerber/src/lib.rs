//! The Zerber substrate: an r-confidential inverted index over encrypted,
//! randomly placed posting elements (Zerr et al., EDBT 2008), which the
//! Zerber+R paper extends with server-side top-k.
//!
//! Modules:
//!
//! * [`confidentiality`] — Definitions 1 and 2: the r-confidentiality
//!   parameter, per-list probability mass checks, probability amplification.
//! * [`merge`] — term-merging schemes producing r-confidential merged posting
//!   lists: the paper's BFM scheme plus two ablation baselines.
//! * [`element`] — fixed-size encrypted posting elements.
//! * [`index`] — the base Zerber index with random element placement and
//!   client-side top-k (download the whole merged list).
//! * [`false_positive`] — the μ-Serv probabilistic baseline of Section 3.

pub mod confidentiality;
pub mod element;
pub mod error;
pub mod false_positive;
pub mod index;
pub mod merge;

pub use confidentiality::{
    amplification, check_merged_terms, element_term_posterior, ConfidentialityParam,
    ListConfidentiality,
};
pub use element::{EncryptedElement, PostingPayload, PAYLOAD_BYTES, SEALED_PAYLOAD_BYTES};
pub use error::ZerberError;
pub use false_positive::{FalsePositiveIndex, FuzzyResult};
pub use index::{build_bfm_index, ClientTopK, ZerberIndex};
pub use merge::{BfmMerge, MergePlan, MergeScheme, MergedListId, MixedMerge, RandomMerge};
