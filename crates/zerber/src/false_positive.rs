//! μ-Serv-style probabilistic index protection (Bawa et al., VLDB 2003).
//!
//! Section 3 of the paper contrasts Zerber with probabilistic index
//! protection, which "suppresses statistical data introducing a controlled
//! amount of uncertainty by including false positive elements in the index".
//! The price is precision: query results contain documents that do not in
//! fact contain the term.  This module implements that baseline so the
//! evaluation can compare result quality and response sizes across the three
//! designs (ordinary index, false-positive index, Zerber/Zerber+R).

use std::collections::{HashMap, HashSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zerber_corpus::{Corpus, DocId, TermId};

use crate::error::ZerberError;

/// A term query result together with ground-truth bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzyResult {
    /// All document ids the index returns for the term (true + false
    /// positives, unranked — the scheme does not support server-side
    /// ranking).
    pub docs: Vec<DocId>,
    /// How many of them actually contain the term.
    pub true_positives: usize,
}

impl FuzzyResult {
    /// Precision of the response (`1.0` when no false positives exist).
    pub fn precision(&self) -> f64 {
        if self.docs.is_empty() {
            return 1.0;
        }
        self.true_positives as f64 / self.docs.len() as f64
    }
}

/// Inverted index with injected false positives and no ranking information.
#[derive(Debug, Clone)]
pub struct FalsePositiveIndex {
    lists: HashMap<TermId, Vec<DocId>>,
    truth: HashMap<TermId, HashSet<DocId>>,
    fp_ratio: f64,
}

impl FalsePositiveIndex {
    /// Builds the index: for every true posting, `fp_ratio` false postings
    /// (documents *not* containing the term) are added in expectation.
    pub fn build(corpus: &Corpus, fp_ratio: f64, seed: u64) -> Result<Self, ZerberError> {
        if !(fp_ratio.is_finite() && fp_ratio >= 0.0) {
            return Err(ZerberError::InvalidParameter(format!(
                "fp_ratio must be finite and non-negative, got {fp_ratio}"
            )));
        }
        let num_docs = corpus.num_docs() as u32;
        if num_docs == 0 {
            return Err(ZerberError::InvalidParameter("corpus is empty".into()));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut truth: HashMap<TermId, HashSet<DocId>> = HashMap::new();
        for (doc_id, doc) in corpus.docs() {
            for &(term, _) in &doc.term_counts {
                truth.entry(term).or_default().insert(doc_id);
            }
        }
        let mut lists: HashMap<TermId, Vec<DocId>> = HashMap::new();
        for (&term, docs) in &truth {
            let mut list: Vec<DocId> = docs.iter().copied().collect();
            let fp_target = (docs.len() as f64 * fp_ratio).round() as usize;
            let mut added = 0usize;
            let mut attempts = 0usize;
            while added < fp_target && attempts < fp_target * 20 + 20 {
                attempts += 1;
                let candidate = DocId(rng.gen_range(0..num_docs));
                if !docs.contains(&candidate) && !list.contains(&candidate) {
                    list.push(candidate);
                    added += 1;
                }
            }
            list.sort_unstable();
            lists.insert(term, list);
        }
        Ok(FalsePositiveIndex {
            lists,
            truth,
            fp_ratio,
        })
    }

    /// The configured false-positive ratio.
    pub fn fp_ratio(&self) -> f64 {
        self.fp_ratio
    }

    /// Number of posting entries including false positives.
    pub fn num_entries(&self) -> usize {
        self.lists.values().map(Vec::len).sum()
    }

    /// Queries a term, returning all (true and false) matches.
    pub fn query(&self, term: TermId) -> Result<FuzzyResult, ZerberError> {
        let docs = self
            .lists
            .get(&term)
            .cloned()
            .ok_or(ZerberError::UnmergedTerm(term.0))?;
        let truth = &self.truth[&term];
        let true_positives = docs.iter().filter(|d| truth.contains(d)).count();
        Ok(FuzzyResult {
            docs,
            true_positives,
        })
    }

    /// Mean precision over every indexed term.
    pub fn mean_precision(&self) -> f64 {
        if self.lists.is_empty() {
            return 1.0;
        }
        let total: f64 = self
            .lists
            .keys()
            .map(|&t| self.query(t).map(|r| r.precision()).unwrap_or(0.0))
            .sum();
        total / self.lists.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerber_corpus::{CorpusBuilder, Document, GroupId};

    fn corpus() -> Corpus {
        let mut b = CorpusBuilder::new();
        for i in 0..30 {
            let body = if i % 3 == 0 {
                "alpha beta common"
            } else if i % 3 == 1 {
                "beta gamma common"
            } else {
                "gamma delta common"
            };
            b.add_document(Document::new(format!("d{i}"), GroupId(0), body))
                .unwrap();
        }
        b.build()
    }

    #[test]
    fn zero_ratio_gives_exact_results() {
        let c = corpus();
        let idx = FalsePositiveIndex::build(&c, 0.0, 1).unwrap();
        let alpha = c.dictionary().get("alpha").unwrap();
        let r = idx.query(alpha).unwrap();
        assert!((r.precision() - 1.0).abs() < 1e-12);
        assert_eq!(r.docs.len(), r.true_positives);
        assert!((idx.mean_precision() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn false_positives_reduce_precision() {
        let c = corpus();
        let exact = FalsePositiveIndex::build(&c, 0.0, 1).unwrap();
        let fuzzy = FalsePositiveIndex::build(&c, 1.0, 1).unwrap();
        assert!(fuzzy.num_entries() > exact.num_entries());
        assert!(fuzzy.mean_precision() < 1.0);
        assert!(fuzzy.mean_precision() > 0.2);
        assert!((fuzzy.fp_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn true_documents_are_always_contained() {
        let c = corpus();
        let idx = FalsePositiveIndex::build(&c, 2.0, 7).unwrap();
        let alpha = c.dictionary().get("alpha").unwrap();
        let r = idx.query(alpha).unwrap();
        for (doc_id, doc) in c.docs() {
            if doc.term_counts.iter().any(|&(t, _)| t == alpha) {
                assert!(
                    r.docs.contains(&doc_id),
                    "true posting for {doc_id} missing"
                );
            }
        }
    }

    #[test]
    fn unknown_terms_and_bad_ratios_are_rejected() {
        let c = corpus();
        let idx = FalsePositiveIndex::build(&c, 0.5, 3).unwrap();
        assert!(idx.query(TermId(9999)).is_err());
        assert!(FalsePositiveIndex::build(&c, -1.0, 3).is_err());
        assert!(FalsePositiveIndex::build(&c, f64::NAN, 3).is_err());
    }

    #[test]
    fn ubiquitous_terms_cannot_gain_false_positives() {
        let c = corpus();
        let idx = FalsePositiveIndex::build(&c, 1.0, 3).unwrap();
        let common = c.dictionary().get("common").unwrap();
        let r = idx.query(common).unwrap();
        // "common" is in every document: there is no document left to add.
        assert_eq!(r.docs.len(), c.num_docs());
        assert!((r.precision() - 1.0).abs() < 1e-12);
    }
}
