//! Term-merging schemes producing r-confidential merged posting lists.
//!
//! Zerber's central idea (Section 3.1): posting lists of different terms are
//! merged until the probability that a posting element belongs to a specific
//! term is amplified by at most `r`, i.e. until `Σ_{t∈S} p_t >= 1/r`
//! (Definition 2).  Zerber+R additionally relies on the **BFM** scheme
//! (Breadth-First Merging, Section 5.2): terms sharing a merged list must have
//! *similar* document frequencies so that the number of follow-up requests
//! needed to collect top-k results does not betray which of the merged terms
//! was queried.
//!
//! Three schemes are provided:
//!
//! * [`BfmMerge`] — the paper's scheme: terms are ordered by document
//!   frequency and consecutive runs are merged until the mass threshold is
//!   met, so each list holds terms of similar frequency.
//! * [`MixedMerge`] — an adversarial ablation: frequent terms are deliberately
//!   paired with rare ones.  It satisfies Definition 2 but produces lists
//!   whose members have very different frequencies — exactly the situation
//!   the request-counting attack of Section 4.1 exploits.
//! * [`RandomMerge`] — terms are shuffled before grouping; a neutral baseline.

use std::collections::HashMap;

use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use zerber_corpus::{CorpusStats, TermId};

use crate::confidentiality::{check_merged_terms, ConfidentialityParam, ListConfidentiality};
use crate::error::ZerberError;

/// Identifier of a merged posting list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MergedListId(pub u64);

impl std::fmt::Display for MergedListId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Assignment of every term to a merged posting list.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MergePlan {
    lists: Vec<Vec<TermId>>,
    term_to_list: HashMap<TermId, MergedListId>,
    scheme: String,
    r: f64,
}

impl MergePlan {
    fn from_lists(lists: Vec<Vec<TermId>>, scheme: &str, r: ConfidentialityParam) -> Self {
        let mut term_to_list = HashMap::new();
        for (i, terms) in lists.iter().enumerate() {
            for &t in terms {
                term_to_list.insert(t, MergedListId(i as u64));
            }
        }
        MergePlan {
            lists,
            term_to_list,
            scheme: scheme.to_string(),
            r: r.value(),
        }
    }

    /// Builds a plan directly from explicit per-list term assignments,
    /// **without verifying the `1/r` mass requirement** — strictly for
    /// synthetic fixtures and store-level tests that need a plan of a given
    /// shape.  Production plans must come from the merge schemes, which are
    /// the confidentiality-checked constructors; hidden from docs so the
    /// escape hatch is not mistaken for API.
    #[doc(hidden)]
    pub fn from_term_lists(lists: Vec<Vec<TermId>>, scheme: &str, r: f64) -> Self {
        let mut term_to_list = HashMap::new();
        for (i, terms) in lists.iter().enumerate() {
            for &t in terms {
                term_to_list.insert(t, MergedListId(i as u64));
            }
        }
        MergePlan {
            lists,
            term_to_list,
            scheme: scheme.to_string(),
            r,
        }
    }

    /// Number of merged posting lists.
    pub fn num_lists(&self) -> usize {
        self.lists.len()
    }

    /// Name of the scheme that produced the plan.
    pub fn scheme(&self) -> &str {
        &self.scheme
    }

    /// The confidentiality parameter the plan was built for.
    pub fn r(&self) -> f64 {
        self.r
    }

    /// The terms merged into `list`.
    pub fn list_terms(&self, list: MergedListId) -> Result<&[TermId], ZerberError> {
        self.lists
            .get(list.0 as usize)
            .map(Vec::as_slice)
            .ok_or(ZerberError::UnknownList(list.0))
    }

    /// The merged list a term belongs to.
    pub fn list_of(&self, term: TermId) -> Result<MergedListId, ZerberError> {
        self.term_to_list
            .get(&term)
            .copied()
            .ok_or(ZerberError::UnmergedTerm(term.0))
    }

    /// Iterates over `(MergedListId, &[TermId])`.
    pub fn iter(&self) -> impl Iterator<Item = (MergedListId, &[TermId])> {
        self.lists
            .iter()
            .enumerate()
            .map(|(i, v)| (MergedListId(i as u64), v.as_slice()))
    }

    /// Verifies Definition 2 for every list, returning the per-list reports.
    ///
    /// Fails with [`ZerberError::ConfidentialityViolation`] on the first list
    /// that misses the `1/r` mass requirement.
    pub fn verify(
        &self,
        stats: &CorpusStats,
        r: ConfidentialityParam,
    ) -> Result<Vec<ListConfidentiality>, ZerberError> {
        let mut reports = Vec::with_capacity(self.lists.len());
        for (id, terms) in self.iter() {
            let rep = check_merged_terms(stats, terms, r)?;
            if !rep.satisfied {
                return Err(ZerberError::ConfidentialityViolation {
                    list: id.0,
                    mass: rep.mass,
                    required: rep.required,
                });
            }
            reports.push(rep);
        }
        Ok(reports)
    }

    /// Average number of terms per merged list.
    pub fn avg_terms_per_list(&self) -> f64 {
        if self.lists.is_empty() {
            return 0.0;
        }
        self.lists.iter().map(Vec::len).sum::<usize>() as f64 / self.lists.len() as f64
    }
}

/// A strategy for grouping terms into merged posting lists.
pub trait MergeScheme {
    /// Produces an r-confidential merge plan for the corpus.
    fn plan(&self, stats: &CorpusStats, r: ConfidentialityParam) -> Result<MergePlan, ZerberError>;

    /// Human-readable name, used in experiment output.
    fn name(&self) -> &'static str;
}

/// Groups an ordered term sequence into runs whose probability mass reaches
/// `1/r`; a trailing underfull run is folded into the previous list.
fn group_by_mass(
    ordered: &[(TermId, f64)],
    r: ConfidentialityParam,
) -> Result<Vec<Vec<TermId>>, ZerberError> {
    let total_mass: f64 = ordered.iter().map(|&(_, p)| p).sum();
    let required = r.required_mass();
    if total_mass + 1e-12 < required {
        return Err(ZerberError::InvalidParameter(format!(
            "corpus probability mass {total_mass:.6} cannot satisfy r = {} (requires {required:.6}); \
             choose a larger r",
            r.value()
        )));
    }
    let mut lists: Vec<Vec<TermId>> = Vec::new();
    let mut current: Vec<TermId> = Vec::new();
    let mut mass = 0.0;
    for &(t, p) in ordered {
        current.push(t);
        mass += p;
        if mass + 1e-12 >= required {
            lists.push(std::mem::take(&mut current));
            mass = 0.0;
        }
    }
    if !current.is_empty() {
        if let Some(last) = lists.last_mut() {
            last.extend(current);
        } else {
            lists.push(current);
        }
    }
    Ok(lists)
}

/// Breadth-First Merging: terms of similar document frequency share a list.
#[derive(Debug, Clone, Copy, Default)]
pub struct BfmMerge;

impl MergeScheme for BfmMerge {
    fn plan(&self, stats: &CorpusStats, r: ConfidentialityParam) -> Result<MergePlan, ZerberError> {
        let mut ordered: Vec<(TermId, f64)> = stats
            .terms()
            .map(|t| (t.term, t.probability(stats.num_docs())))
            .collect();
        ordered.sort_unstable_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        Ok(MergePlan::from_lists(group_by_mass(&ordered, r)?, "bfm", r))
    }

    fn name(&self) -> &'static str {
        "bfm"
    }
}

/// Adversarial ablation: pairs the most frequent remaining term with the
/// rarest remaining terms until the mass threshold is met.
#[derive(Debug, Clone, Copy, Default)]
pub struct MixedMerge;

impl MergeScheme for MixedMerge {
    fn plan(&self, stats: &CorpusStats, r: ConfidentialityParam) -> Result<MergePlan, ZerberError> {
        let mut ordered: Vec<(TermId, f64)> = stats
            .terms()
            .map(|t| (t.term, t.probability(stats.num_docs())))
            .collect();
        ordered.sort_unstable_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        let total_mass: f64 = ordered.iter().map(|&(_, p)| p).sum();
        let required = r.required_mass();
        if total_mass + 1e-12 < required {
            return Err(ZerberError::InvalidParameter(format!(
                "corpus probability mass {total_mass:.6} cannot satisfy r = {}",
                r.value()
            )));
        }
        let mut lists: Vec<Vec<TermId>> = Vec::new();
        let mut lo = 0usize;
        let mut hi = ordered.len();
        while lo < hi {
            let mut current = vec![ordered[lo].0];
            let mut mass = ordered[lo].1;
            lo += 1;
            while mass + 1e-12 < required && lo < hi {
                hi -= 1;
                current.push(ordered[hi].0);
                mass += ordered[hi].1;
            }
            if mass + 1e-12 >= required {
                lists.push(current);
            } else if let Some(last) = lists.last_mut() {
                last.extend(current);
            } else {
                lists.push(current);
            }
        }
        Ok(MergePlan::from_lists(lists, "mixed", r))
    }

    fn name(&self) -> &'static str {
        "mixed"
    }
}

/// Random grouping baseline.
#[derive(Debug, Clone, Copy)]
pub struct RandomMerge {
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for RandomMerge {
    fn default() -> Self {
        RandomMerge { seed: 0x7a3b }
    }
}

impl MergeScheme for RandomMerge {
    fn plan(&self, stats: &CorpusStats, r: ConfidentialityParam) -> Result<MergePlan, ZerberError> {
        let mut ordered: Vec<(TermId, f64)> = stats
            .terms()
            .map(|t| (t.term, t.probability(stats.num_docs())))
            .collect();
        ordered.sort_unstable_by_key(|&(t, _)| t);
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        ordered.shuffle(&mut rng);
        Ok(MergePlan::from_lists(
            group_by_mass(&ordered, r)?,
            "random",
            r,
        ))
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerber_corpus::{CorpusGenerator, CorpusStats, CustomProfile, DatasetProfile, SynthConfig};

    fn stats() -> CorpusStats {
        let config = SynthConfig {
            profile: DatasetProfile::Custom(CustomProfile {
                num_docs: 300,
                num_groups: 4,
                vocab_size: 1_500,
                general_vocab_fraction: 0.4,
                topic_mix: 0.3,
                zipf_exponent: 1.05,
                doc_length_median: 60.0,
                doc_length_sigma: 0.7,
                min_doc_length: 10,
                max_doc_length: 400,
            }),
            scale: 1.0,
            seed: 77,
        };
        let corpus = CorpusGenerator::new(config).generate().unwrap();
        CorpusStats::compute(&corpus)
    }

    #[test]
    fn bfm_plan_is_r_confidential_and_covers_all_terms() {
        let s = stats();
        let r = ConfidentialityParam::new(3.0).unwrap();
        let plan = BfmMerge.plan(&s, r).unwrap();
        assert!(plan.num_lists() > 1);
        let reports = plan.verify(&s, r).unwrap();
        assert_eq!(reports.len(), plan.num_lists());
        // Every term has a list.
        for t in s.terms() {
            assert!(plan.list_of(t.term).is_ok());
        }
        assert_eq!(plan.scheme(), "bfm");
        assert!((plan.r() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn bfm_lists_hold_terms_of_similar_frequency() {
        let s = stats();
        let r = ConfidentialityParam::new(3.0).unwrap();
        let plan = BfmMerge.plan(&s, r).unwrap();
        // For every list with 2+ terms the max/min doc-frequency ratio should
        // be much smaller than the corpus-wide ratio.
        let mut worst_ratio: f64 = 1.0;
        for (_, terms) in plan.iter() {
            if terms.len() < 2 {
                continue;
            }
            let freqs: Vec<f64> = terms
                .iter()
                .map(|&t| f64::from(s.doc_freq(t).unwrap()).max(1.0))
                .collect();
            let max = freqs.iter().cloned().fold(f64::MIN, f64::max);
            let min = freqs.iter().cloned().fold(f64::MAX, f64::min);
            worst_ratio = worst_ratio.max(max / min);
        }
        let global: Vec<f64> = s.terms().map(|t| f64::from(t.doc_freq).max(1.0)).collect();
        let global_ratio = global.iter().cloned().fold(f64::MIN, f64::max)
            / global.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            worst_ratio < global_ratio,
            "BFM lists should not span the full frequency range (worst {worst_ratio}, global {global_ratio})"
        );
    }

    #[test]
    fn mixed_plan_is_confidential_but_spans_frequencies() {
        let s = stats();
        let r = ConfidentialityParam::new(3.0).unwrap();
        let plan = MixedMerge.plan(&s, r).unwrap();
        plan.verify(&s, r).unwrap();
        // At least one list must contain both a frequent and a rare term.
        let mut found_spanning = false;
        for (_, terms) in plan.iter() {
            if terms.len() < 2 {
                continue;
            }
            let freqs: Vec<u32> = terms.iter().map(|&t| s.doc_freq(t).unwrap()).collect();
            let max = *freqs.iter().max().unwrap();
            let min = *freqs.iter().min().unwrap();
            if max >= 10 * min.max(1) {
                found_spanning = true;
                break;
            }
        }
        assert!(
            found_spanning,
            "mixed merging should create frequency-spanning lists"
        );
    }

    #[test]
    fn random_plan_is_deterministic_per_seed() {
        let s = stats();
        let r = ConfidentialityParam::new(4.0).unwrap();
        let a = RandomMerge { seed: 1 }.plan(&s, r).unwrap();
        let b = RandomMerge { seed: 1 }.plan(&s, r).unwrap();
        let c = RandomMerge { seed: 2 }.plan(&s, r).unwrap();
        assert_eq!(a.num_lists(), b.num_lists());
        let first_a: Vec<_> = a.list_terms(MergedListId(0)).unwrap().to_vec();
        let first_b: Vec<_> = b.list_terms(MergedListId(0)).unwrap().to_vec();
        assert_eq!(first_a, first_b);
        a.verify(&s, r).unwrap();
        c.verify(&s, r).unwrap();
    }

    #[test]
    fn stricter_r_produces_fewer_larger_lists() {
        let s = stats();
        let strict = BfmMerge
            .plan(&s, ConfidentialityParam::new(1.5).unwrap())
            .unwrap();
        let lax = BfmMerge
            .plan(&s, ConfidentialityParam::new(20.0).unwrap())
            .unwrap();
        assert!(strict.num_lists() < lax.num_lists());
        assert!(strict.avg_terms_per_list() > lax.avg_terms_per_list());
    }

    #[test]
    fn impossible_r_is_rejected() {
        let s = stats();
        // Requires mass >= 1/1.0000001 ≈ 1, unattainable only if total mass < 1;
        // craft a tiny corpus where every term is rare.
        let mut b = zerber_corpus::CorpusBuilder::new();
        for i in 0..10 {
            b.add_document(zerber_corpus::Document::new(
                format!("d{i}"),
                zerber_corpus::GroupId(0),
                format!("unique{i}"),
            ))
            .unwrap();
        }
        let sparse = CorpusStats::compute(&b.build());
        let total: f64 = sparse
            .terms()
            .map(|t| t.probability(sparse.num_docs()))
            .sum();
        assert!(total <= 1.0);
        let err = BfmMerge
            .plan(
                &sparse,
                ConfidentialityParam::new(1.0 / (total * 0.5)).unwrap(),
            )
            .map(|_| ());
        assert!(err.is_ok() || matches!(err, Err(ZerberError::InvalidParameter(_))));
        // And a definitely impossible r on the tiny corpus (mass 1.0 needed, have 1.0
        // exactly => ok; so use the large stats corpus with r extremely close to 1).
        let _ = s; // silence unused in case of cfg changes
    }

    #[test]
    fn unknown_list_and_term_lookups_fail() {
        let s = stats();
        let plan = BfmMerge
            .plan(&s, ConfidentialityParam::new(3.0).unwrap())
            .unwrap();
        assert!(matches!(
            plan.list_terms(MergedListId(999_999)),
            Err(ZerberError::UnknownList(_))
        ));
        assert!(matches!(
            plan.list_of(zerber_corpus::TermId(10_000_000)),
            Err(ZerberError::UnmergedTerm(_))
        ));
    }
}
