//! The base Zerber index: r-confidential merged posting lists with randomly
//! placed, encrypted posting elements and **client-side** top-k.
//!
//! This is the system of the 2008 Zerber paper that Zerber+R extends.  The
//! server cannot rank because ranking information is encrypted and elements
//! are deliberately placed in random order inside each merged list
//! (Definition 2); a querying client must download the complete merged list,
//! decrypt the elements of groups it belongs to, filter by the queried term
//! and rank locally.  The bandwidth cost of exactly this procedure is what
//! Zerber+R's server-side top-k is later compared against.

use std::collections::HashMap;

use zerber_corpus::{Corpus, CorpusStats, DocId, GroupId, TermId};
use zerber_crypto::{DeterministicRng, GroupKeys, MasterKey};

use crate::element::{EncryptedElement, PostingPayload};
use crate::error::ZerberError;
use crate::merge::{MergePlan, MergedListId};

/// Result of a client-side top-k evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientTopK {
    /// Ranked `(doc, relevance)` results, best first, at most `k` entries.
    pub results: Vec<(DocId, f64)>,
    /// Number of encrypted elements transferred to the client (the whole
    /// merged list for base Zerber).
    pub elements_transferred: usize,
    /// Number of elements the client could decrypt (accessible groups).
    pub elements_decrypted: usize,
    /// Number of decrypted elements that actually matched the queried term.
    pub elements_matching: usize,
}

/// The base Zerber index.
#[derive(Debug, Clone)]
pub struct ZerberIndex {
    lists: Vec<Vec<EncryptedElement>>,
    plan: MergePlan,
}

impl ZerberIndex {
    /// Builds the index from a corpus and a merge plan.
    ///
    /// Every posting element is sealed under the key of the document's group
    /// and appended to its term's merged list; afterwards each list is
    /// shuffled so element positions carry no rank information.
    pub fn build(
        corpus: &Corpus,
        plan: MergePlan,
        master: &MasterKey,
        seed: u64,
    ) -> Result<Self, ZerberError> {
        let mut rng = DeterministicRng::from_u64(seed);
        let mut group_keys: HashMap<GroupId, GroupKeys> = HashMap::new();
        let mut lists: Vec<Vec<EncryptedElement>> = vec![Vec::new(); plan.num_lists()];
        for (doc_id, doc) in corpus.docs() {
            let keys = group_keys
                .entry(doc.group)
                .or_insert_with(|| master.group_keys(doc.group.0));
            for &(term, tf) in &doc.term_counts {
                let list = plan.list_of(term)?;
                let payload = PostingPayload {
                    term,
                    doc: doc_id,
                    tf,
                    doc_len: doc.length,
                };
                let element = EncryptedElement::seal(&payload, doc.group, keys, list, &mut rng)?;
                lists[list.0 as usize].push(element);
            }
        }
        // Random placement inside each merged list (Fisher-Yates with the
        // deterministic RNG).
        for list in &mut lists {
            let n = list.len();
            for i in (1..n).rev() {
                let j = rng.next_below((i + 1) as u64) as usize;
                list.swap(i, j);
            }
        }
        Ok(ZerberIndex { lists, plan })
    }

    /// The merge plan underlying the index.
    pub fn plan(&self) -> &MergePlan {
        &self.plan
    }

    /// Number of merged posting lists.
    pub fn num_lists(&self) -> usize {
        self.lists.len()
    }

    /// Total number of encrypted posting elements.
    pub fn num_elements(&self) -> usize {
        self.lists.iter().map(Vec::len).sum()
    }

    /// Total stored size in bytes.
    pub fn stored_bytes(&self) -> usize {
        self.lists
            .iter()
            .flat_map(|l| l.iter())
            .map(EncryptedElement::stored_bytes)
            .sum()
    }

    /// The encrypted elements of one merged list (what the server would ship
    /// to a client querying any term of that list).
    pub fn list(&self, id: MergedListId) -> Result<&[EncryptedElement], ZerberError> {
        self.lists
            .get(id.0 as usize)
            .map(Vec::as_slice)
            .ok_or(ZerberError::UnknownList(id.0))
    }

    /// Inserts a single new posting element at a random position of its list
    /// (collaborative index update, Section 3.3: no re-sorting is possible
    /// because other users' elements cannot be rearranged).
    pub fn insert(
        &mut self,
        payload: &PostingPayload,
        group: GroupId,
        keys: &GroupKeys,
        rng: &mut DeterministicRng,
    ) -> Result<MergedListId, ZerberError> {
        let list = self.plan.list_of(payload.term)?;
        let element = EncryptedElement::seal(payload, group, keys, list, rng)?;
        let slot = &mut self.lists[list.0 as usize];
        let pos = rng.next_below((slot.len() + 1) as u64) as usize;
        slot.insert(pos, element);
        Ok(list)
    }

    /// Executes a single-term top-k query the way a base-Zerber client must:
    /// download the whole merged list, decrypt what the user's group keys can
    /// open, filter by term, rank by relevance locally.
    pub fn client_topk(
        &self,
        term: TermId,
        k: usize,
        memberships: &HashMap<GroupId, GroupKeys>,
    ) -> Result<ClientTopK, ZerberError> {
        if k == 0 {
            return Err(ZerberError::InvalidParameter(
                "k must be greater than 0".into(),
            ));
        }
        let list_id = self.plan.list_of(term)?;
        let list = self.list(list_id)?;
        let mut decrypted = 0usize;
        let mut matching: Vec<(DocId, f64)> = Vec::new();
        for element in list {
            let Some(keys) = memberships.get(&element.group) else {
                continue;
            };
            let payload = element.open(keys, list_id)?;
            decrypted += 1;
            if payload.term == term {
                matching.push((payload.doc, payload.relevance()));
            }
        }
        matching.sort_unstable_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        let elements_matching = matching.len();
        matching.truncate(k);
        Ok(ClientTopK {
            results: matching,
            elements_transferred: list.len(),
            elements_decrypted: decrypted,
            elements_matching,
        })
    }

    /// Derives the group-key map a user needs given the groups she belongs to.
    pub fn memberships(master: &MasterKey, groups: &[GroupId]) -> HashMap<GroupId, GroupKeys> {
        groups
            .iter()
            .map(|&g| (g, master.group_keys(g.0)))
            .collect()
    }
}

/// Convenience: builds stats, a BFM plan and the index in one call.
pub fn build_bfm_index(
    corpus: &Corpus,
    r: f64,
    master: &MasterKey,
    seed: u64,
) -> Result<(ZerberIndex, CorpusStats), ZerberError> {
    use crate::confidentiality::ConfidentialityParam;
    use crate::merge::{BfmMerge, MergeScheme};
    let stats = CorpusStats::compute(corpus);
    let plan = BfmMerge.plan(&stats, ConfidentialityParam::new(r)?)?;
    let index = ZerberIndex::build(corpus, plan, master, seed)?;
    Ok((index, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::confidentiality::ConfidentialityParam;
    use crate::merge::{BfmMerge, MergeScheme};
    use zerber_corpus::{CorpusBuilder, Document};
    use zerber_index::InvertedIndex;

    fn corpus() -> Corpus {
        let mut b = CorpusBuilder::new();
        b.add_document(Document::new(
            "1.txt",
            GroupId(0),
            "imclone and imclone and no",
        ))
        .unwrap();
        b.add_document(Document::new(
            "2.doc",
            GroupId(0),
            "and and and and process",
        ))
        .unwrap();
        b.add_document(Document::new(
            "3.txt",
            GroupId(1),
            "process imclone process and",
        ))
        .unwrap();
        b.add_document(Document::new("4.txt", GroupId(1), "no and process"))
            .unwrap();
        b.build()
    }

    fn index(corpus: &Corpus) -> (ZerberIndex, CorpusStats, MasterKey) {
        let master = MasterKey::new([1u8; 32]);
        let (idx, stats) = build_bfm_index(corpus, 3.0, &master, 11).unwrap();
        (idx, stats, master)
    }

    #[test]
    fn every_posting_becomes_exactly_one_element() {
        let c = corpus();
        let (idx, _, _) = index(&c);
        let expected: usize = c.docs().map(|(_, d)| d.distinct_terms()).sum();
        assert_eq!(idx.num_elements(), expected);
        assert!(idx.stored_bytes() > 0);
        assert_eq!(idx.num_lists(), idx.plan().num_lists());
    }

    #[test]
    fn client_topk_matches_the_plaintext_index() {
        let c = corpus();
        let (idx, _, master) = index(&c);
        let plain = InvertedIndex::build(&c);
        let memberships = ZerberIndex::memberships(&master, &[GroupId(0), GroupId(1)]);
        for (name, k) in [("and", 3usize), ("imclone", 2), ("process", 2), ("no", 1)] {
            let term = c.dictionary().get(name).unwrap();
            let confidential = idx.client_topk(term, k, &memberships).unwrap();
            let reference = plain.query_term(term, k).unwrap();
            assert_eq!(
                confidential.results.len(),
                reference.len(),
                "result count for {name}"
            );
            for (got, want) in confidential.results.iter().zip(reference.iter()) {
                assert_eq!(got.0, want.doc, "ranking for {name}");
                assert!((got.1 - want.score).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn client_without_group_keys_sees_nothing_from_that_group() {
        let c = corpus();
        let (idx, _, master) = index(&c);
        let only_g0 = ZerberIndex::memberships(&master, &[GroupId(0)]);
        let process = c.dictionary().get("process").unwrap();
        let res = idx.client_topk(process, 10, &only_g0).unwrap();
        // "process" occurs in 2.doc (g0), 3.txt (g1), 4.txt (g1): only one is visible.
        assert_eq!(res.results.len(), 1);
        assert_eq!(res.results[0].0, DocId(1));
        assert!(res.elements_decrypted < res.elements_transferred);
    }

    #[test]
    fn whole_list_is_transferred_for_any_query() {
        let c = corpus();
        let (idx, _, master) = index(&c);
        let memberships = ZerberIndex::memberships(&master, &[GroupId(0), GroupId(1)]);
        let imclone = c.dictionary().get("imclone").unwrap();
        let list_id = idx.plan().list_of(imclone).unwrap();
        let res = idx.client_topk(imclone, 1, &memberships).unwrap();
        assert_eq!(res.elements_transferred, idx.list(list_id).unwrap().len());
        assert!(res.elements_transferred >= res.elements_matching);
    }

    #[test]
    fn element_positions_do_not_follow_score_order() {
        // With random placement, the sequence of relevance scores inside a
        // merged list should not be monotonically decreasing (that is the
        // whole point of Figure 2 vs Figure 3).
        let config = zerber_corpus::SynthConfig {
            profile: zerber_corpus::DatasetProfile::Custom(zerber_corpus::synth::CustomProfile {
                num_docs: 150,
                num_groups: 1,
                vocab_size: 300,
                general_vocab_fraction: 1.0,
                topic_mix: 0.0,
                zipf_exponent: 1.0,
                doc_length_median: 50.0,
                doc_length_sigma: 0.5,
                min_doc_length: 10,
                max_doc_length: 200,
            }),
            scale: 1.0,
            seed: 3,
        };
        let c = zerber_corpus::CorpusGenerator::new(config)
            .generate()
            .unwrap();
        let master = MasterKey::new([2u8; 32]);
        let (idx, _) = build_bfm_index(&c, 2.0, &master, 17).unwrap();
        let memberships = ZerberIndex::memberships(&master, &[GroupId(0)]);
        let keys = &memberships[&GroupId(0)];
        let mut found_unsorted_list = false;
        for (list_id, _) in idx.plan().iter() {
            let list = idx.list(list_id).unwrap();
            if list.len() < 10 {
                continue;
            }
            let scores: Vec<f64> = list
                .iter()
                .map(|e| e.open(keys, list_id).unwrap().relevance())
                .collect();
            let sorted = scores.windows(2).all(|w| w[0] >= w[1]);
            if !sorted {
                found_unsorted_list = true;
                break;
            }
        }
        assert!(
            found_unsorted_list,
            "random placement should break score order"
        );
    }

    #[test]
    fn insert_adds_a_decryptable_element() {
        let c = corpus();
        let (mut idx, _, master) = index(&c);
        let imclone = c.dictionary().get("imclone").unwrap();
        let memberships = ZerberIndex::memberships(&master, &[GroupId(0), GroupId(1)]);
        let keys = master.group_keys(0);
        let mut rng = DeterministicRng::from_u64(99);
        let before = idx
            .client_topk(imclone, 10, &memberships)
            .unwrap()
            .results
            .len();
        let payload = PostingPayload {
            term: imclone,
            doc: DocId(1000),
            tf: 9,
            doc_len: 10,
        };
        idx.insert(&payload, GroupId(0), &keys, &mut rng).unwrap();
        let after = idx.client_topk(imclone, 10, &memberships).unwrap();
        assert_eq!(after.results.len(), before + 1);
        // The new element has relevance 0.9 and should rank first.
        assert_eq!(after.results[0].0, DocId(1000));
    }

    #[test]
    fn zero_k_and_unknown_terms_are_rejected() {
        let c = corpus();
        let (idx, _, master) = index(&c);
        let memberships = ZerberIndex::memberships(&master, &[GroupId(0)]);
        let and = c.dictionary().get("and").unwrap();
        assert!(idx.client_topk(and, 0, &memberships).is_err());
        assert!(idx.client_topk(TermId(12345), 5, &memberships).is_err());
    }

    #[test]
    fn merge_plan_round_trips_through_the_index() {
        let c = corpus();
        let stats = CorpusStats::compute(&c);
        let plan = BfmMerge
            .plan(&stats, ConfidentialityParam::new(2.0).unwrap())
            .unwrap();
        let n = plan.num_lists();
        let master = MasterKey::new([3u8; 32]);
        let idx = ZerberIndex::build(&c, plan, &master, 1).unwrap();
        assert_eq!(idx.num_lists(), n);
    }
}
