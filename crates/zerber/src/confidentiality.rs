//! r-confidentiality (Definitions 1 and 2 of the paper).
//!
//! r-confidentiality bounds how much an adversary's probability estimate
//! about "term t is in document d" may be amplified by observing the index:
//! `P(X | I, B) / P(X | B) <= r` (Definition 1).  For a merged posting list
//! the operational condition (Definition 2) is
//!
//! ```text
//!     Σ_{t ∈ S} p_t  >=  1 / r
//! ```
//!
//! where `S` is the set of terms merged into the list and `p_t` the term's
//! probability of occurrence in the corpus (its normalized document
//! frequency).  Intuitively: when the adversary sees a posting element of the
//! merged list, the probability that it belongs to a particular term `t` is at
//! most `p_t / Σ p_t <= r * p_t`, i.e. amplified by at most `r`.

use serde::{Deserialize, Serialize};
use zerber_corpus::{CorpusStats, TermId};

use crate::error::ZerberError;

/// The confidentiality parameter `r` (> 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidentialityParam(f64);

impl ConfidentialityParam {
    /// Creates a parameter; `r` must be strictly greater than 1 (r = 1 would
    /// require a single posting list holding the whole corpus).
    pub fn new(r: f64) -> Result<Self, ZerberError> {
        if !(r.is_finite() && r > 1.0) {
            return Err(ZerberError::InvalidParameter(format!(
                "confidentiality parameter r must be finite and > 1, got {r}"
            )));
        }
        Ok(ConfidentialityParam(r))
    }

    /// The raw value of `r`.
    pub fn value(&self) -> f64 {
        self.0
    }

    /// The probability mass `1 / r` that every merged list must reach.
    pub fn required_mass(&self) -> f64 {
        1.0 / self.0
    }
}

/// Report about one merged list's confidentiality.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ListConfidentiality {
    /// Achieved probability mass `Σ_{t∈S} p_t`.
    pub mass: f64,
    /// Required mass `1/r`.
    pub required: f64,
    /// Worst-case amplification over the terms of the list:
    /// `max_t (p_t / Σ p_t) / p_t = 1 / Σ p_t`.
    pub amplification: f64,
    /// Whether the list satisfies Definition 2.
    pub satisfied: bool,
}

/// Checks Definition 2 for one set of merged terms.
pub fn check_merged_terms(
    stats: &CorpusStats,
    terms: &[TermId],
    r: ConfidentialityParam,
) -> Result<ListConfidentiality, ZerberError> {
    let mut mass = 0.0;
    for &t in terms {
        mass += stats.probability(t)?;
    }
    let required = r.required_mass();
    let amplification = if mass > 0.0 {
        1.0 / mass
    } else {
        f64::INFINITY
    };
    Ok(ListConfidentiality {
        mass,
        required,
        amplification,
        satisfied: mass + 1e-12 >= required,
    })
}

/// Probability that a posting element of the merged list belongs to `term`,
/// as estimated by an adversary who knows corpus statistics: the element's
/// term is `t` with probability proportional to `p_t * n` — but since the
/// number of elements contributed by `t` is itself `p_t * |D|`, the posterior
/// simplifies to `p_t / Σ_{s∈S} p_s`.
pub fn element_term_posterior(
    stats: &CorpusStats,
    terms: &[TermId],
    term: TermId,
) -> Result<f64, ZerberError> {
    let mut mass = 0.0;
    let mut target = None;
    for &t in terms {
        let p = stats.probability(t)?;
        mass += p;
        if t == term {
            target = Some(p);
        }
    }
    let target = target.ok_or(ZerberError::UnmergedTerm(term.0))?;
    if mass == 0.0 {
        return Ok(0.0);
    }
    Ok(target / mass)
}

/// Empirical probability amplification for `term` inside a merged list:
/// posterior probability divided by the prior `p_t`.  Definition 1 requires
/// this to stay below `r`.
pub fn amplification(
    stats: &CorpusStats,
    terms: &[TermId],
    term: TermId,
) -> Result<f64, ZerberError> {
    let prior = stats.probability(term)?;
    if prior == 0.0 {
        return Ok(0.0);
    }
    Ok(element_term_posterior(stats, terms, term)? / prior)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerber_corpus::{CorpusBuilder, CorpusStats, Document, GroupId};

    fn stats() -> (zerber_corpus::Corpus, CorpusStats) {
        let mut b = CorpusBuilder::new();
        // "common" appears in 4 of 4 docs, "mid" in 2, "rare" in 1.
        b.add_document(Document::new("1", GroupId(0), "common mid rare"))
            .unwrap();
        b.add_document(Document::new("2", GroupId(0), "common mid"))
            .unwrap();
        b.add_document(Document::new("3", GroupId(0), "common"))
            .unwrap();
        b.add_document(Document::new("4", GroupId(0), "common"))
            .unwrap();
        let c = b.build();
        let s = CorpusStats::compute(&c);
        (c, s)
    }

    #[test]
    fn parameter_validation() {
        assert!(ConfidentialityParam::new(1.0).is_err());
        assert!(ConfidentialityParam::new(0.5).is_err());
        assert!(ConfidentialityParam::new(f64::NAN).is_err());
        let r = ConfidentialityParam::new(4.0).unwrap();
        assert!((r.value() - 4.0).abs() < 1e-12);
        assert!((r.required_mass() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn merged_list_satisfying_definition_2() {
        let (c, s) = stats();
        let common = c.dictionary().get("common").unwrap();
        let rare = c.dictionary().get("rare").unwrap();
        let r = ConfidentialityParam::new(2.0).unwrap();
        // p_common = 1.0, p_rare = 0.25: mass 1.25 >= 0.5.
        let rep = check_merged_terms(&s, &[common, rare], r).unwrap();
        assert!(rep.satisfied);
        assert!((rep.mass - 1.25).abs() < 1e-12);
    }

    #[test]
    fn singleton_rare_list_violates_small_r() {
        let (c, s) = stats();
        let rare = c.dictionary().get("rare").unwrap();
        let r = ConfidentialityParam::new(2.0).unwrap();
        // p_rare = 0.25 < 1/2.
        let rep = check_merged_terms(&s, &[rare], r).unwrap();
        assert!(!rep.satisfied);
        // With a laxer r = 5 the same list is fine (0.25 >= 0.2).
        let rep = check_merged_terms(&s, &[rare], ConfidentialityParam::new(5.0).unwrap()).unwrap();
        assert!(rep.satisfied);
    }

    #[test]
    fn posterior_is_proportional_to_prior_within_a_list() {
        let (c, s) = stats();
        let common = c.dictionary().get("common").unwrap();
        let mid = c.dictionary().get("mid").unwrap();
        let post_common = element_term_posterior(&s, &[common, mid], common).unwrap();
        let post_mid = element_term_posterior(&s, &[common, mid], mid).unwrap();
        assert!((post_common + post_mid - 1.0).abs() < 1e-12);
        assert!((post_common / post_mid - 2.0).abs() < 1e-12); // 1.0 vs 0.5
    }

    #[test]
    fn amplification_is_bounded_by_one_over_mass() {
        let (c, s) = stats();
        let common = c.dictionary().get("common").unwrap();
        let rare = c.dictionary().get("rare").unwrap();
        let amp_rare = amplification(&s, &[common, rare], rare).unwrap();
        let amp_common = amplification(&s, &[common, rare], common).unwrap();
        // Both amplifications equal 1 / Σ p_t = 1 / 1.25 = 0.8.
        assert!((amp_rare - 0.8).abs() < 1e-12);
        assert!((amp_common - 0.8).abs() < 1e-12);
    }

    #[test]
    fn unmerged_term_is_rejected() {
        let (c, s) = stats();
        let common = c.dictionary().get("common").unwrap();
        let rare = c.dictionary().get("rare").unwrap();
        assert!(matches!(
            element_term_posterior(&s, &[common], rare),
            Err(ZerberError::UnmergedTerm(_))
        ));
    }
}
