// virtual: crates/store/src/fixture.rs
// The clean twin: the same lookup surfaces a typed error instead.
fn serve(slot: Option<u64>) -> Result<u64, StoreError> {
    slot.ok_or(StoreError::UnknownList(0))
}
