// virtual: crates/store/src/fixture.rs
// The clean twin: the first guard dies with its block before the second
// shard is locked, so the acquisitions are sequential, never nested.
impl Core {
    fn rebalance(&self, from: usize, to: usize) {
        let moved = {
            let mut src = self.shards[from].write();
            src.drain()
        };
        self.shards[to].write().absorb(moved);
    }
}
