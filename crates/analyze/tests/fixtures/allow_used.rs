// virtual: crates/store/src/fixture.rs
// A reasoned allow on a provably-sound panic site: the scan is clean and
// the directive is counted as used.
fn digest_prefix(digest: [u8; 32]) -> u64 {
    // analyze::allow(panic): an 8-byte prefix of a 32-byte digest always converts
    u64::from_le_bytes(digest[..8].try_into().unwrap())
}
