// virtual: crates/store/src/fixture.rs
// A serving-path unwrap: the panic rule must fire exactly once.
fn serve(slot: Option<u64>) -> u64 {
    slot.unwrap()
}
