// virtual: crates/store/src/durable.rs
// The clean twin: `.get(..)` turns a short read into a typed error.
fn header(buf: &[u8]) -> Result<&[u8], StoreError> {
    buf.get(4..12).ok_or(StoreError::CorruptSegment("truncated header"))
}
