// virtual: crates/store/src/fixture.rs
// Durable IO inside a live shard write guard: every insert on this shard
// stalls behind the disk.  The lock rule must fire exactly once.
impl Core {
    fn checkpoint(&self, shard: usize) {
        let mut guard = self.shards[shard].write();
        guard.flush_pages();
        self.io.sync_all();
    }
}
