// virtual: crates/store/src/fixture.rs
// The clean twin: the dirty pages are taken under the guard, the fsync
// happens after it dies with its block (the off-lock IO contract).
impl Core {
    fn checkpoint(&self, shard: usize) {
        let pages = {
            let mut guard = self.shards[shard].write();
            guard.take_dirty_pages()
        };
        self.io.sync_all();
        self.publish(pages);
    }
}
