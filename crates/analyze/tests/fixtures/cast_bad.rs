// virtual: crates/store/src/spill.rs
// A bare narrowing cast in a codec file silently truncates oversized
// input.  The cast rule must fire exactly once.
fn page_id(raw: u64) -> u32 {
    raw as u32
}
