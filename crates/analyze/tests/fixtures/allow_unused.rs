// virtual: crates/store/src/fixture.rs
// An allow that suppresses nothing must itself be flagged, so exemptions
// cannot outlive the code they excused.
fn safe() -> u64 {
    // analyze::allow(panic): nothing here actually panics
    42
}
