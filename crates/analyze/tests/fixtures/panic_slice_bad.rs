// virtual: crates/store/src/durable.rs
// Range-slicing an untrusted buffer in a codec file: a short read panics
// here, so the panic rule must fire exactly once.
fn header(buf: &[u8]) -> &[u8] {
    &buf[4..12]
}
