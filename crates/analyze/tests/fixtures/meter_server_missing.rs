// virtual: crates/protocol/src/server.rs
// Exports only one of the two getters: paired with `meter_store.rs`, the
// meter rule must fire exactly once (for `orphan_stat`).
fn snapshot(store: &dyn ListStore) -> u64 {
    store.lock_acquisitions()
}
