// virtual: crates/store/src/spill.rs
// The clean twin: `try_from` types the truncation as a corrupt-input
// error instead of wrapping silently.
fn page_id(raw: u64) -> Result<u32, StoreError> {
    u32::try_from(raw).map_err(|_| StoreError::CorruptSegment("page id out of range"))
}
