// virtual: crates/store/src/store.rs
// Two stat getters; whether the meter rule fires depends on which server
// fixture this file is paired with.
pub trait ListStore {
    fn lock_acquisitions(&self) -> u64;
    fn orphan_stat(&self) -> u64;
}
