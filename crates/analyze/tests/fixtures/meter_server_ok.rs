// virtual: crates/protocol/src/server.rs
// The clean twin: every getter of `meter_store.rs` is surfaced.
fn snapshot(store: &dyn ListStore) -> (u64, u64) {
    (store.lock_acquisitions(), store.orphan_stat())
}
