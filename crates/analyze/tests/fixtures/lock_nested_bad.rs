// virtual: crates/store/src/fixture.rs
// A second shard-lock acquisition while the first guard is live: two
// threads rebalancing opposite directions deadlock.  The lock rule must
// fire exactly once.
impl Core {
    fn rebalance(&self, from: usize, to: usize) {
        let src = self.shards[from].write();
        let dst = self.shards[to].write();
        dst.absorb(src.drain());
    }
}
