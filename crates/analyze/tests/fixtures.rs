//! Fixture-driven rule tests plus the workspace gate.
//!
//! Every file under `tests/fixtures/` carries a `// virtual: <path>` header
//! mapping it to the workspace path its rule scopes on (rules key off the
//! crate and file name, so the fixture must *pretend* to live there).  Each
//! `_bad` fixture trips exactly one rule; its `_ok` twin encodes the
//! sanctioned alternative and scans clean.  The final test runs the
//! analyzer over the live workspace — the same file set the bin scans — so
//! `cargo test` fails the moment a violation lands, not just CI.

use std::path::Path;

use zerber_analyze::{analyze_files, collect_workspace, Analysis};

/// Loads one fixture, resolving its `// virtual:` header to the path the
/// analyzer should believe it has.
fn fixture(name: &str) -> (String, String) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name}: {e}"));
    let virt = src
        .lines()
        .next()
        .and_then(|l| l.strip_prefix("// virtual: "))
        .unwrap_or_else(|| panic!("fixture {name} lacks a `// virtual: <path>` header"))
        .trim()
        .to_string();
    (virt, src)
}

fn scan(names: &[&str]) -> Analysis {
    let files: Vec<_> = names.iter().map(|n| fixture(n)).collect();
    analyze_files(&files)
}

/// Asserts the scan found exactly one violation, of the given rule.
fn assert_trips_once(a: &Analysis, rule: &str) {
    assert_eq!(
        a.violations.len(),
        1,
        "expected exactly one `{rule}` violation, got {:#?}",
        a.violations
    );
    assert_eq!(a.violations[0].rule, rule, "{:#?}", a.violations);
}

fn assert_clean(a: &Analysis) {
    assert!(
        a.is_clean(),
        "expected a clean scan, got {:#?}",
        a.violations
    );
}

#[test]
fn unwrap_fixture_trips_panic_and_twin_is_clean() {
    assert_trips_once(&scan(&["panic_unwrap_bad.rs"]), "panic");
    assert_clean(&scan(&["panic_unwrap_ok.rs"]));
}

#[test]
fn range_slicing_fixture_trips_panic_and_twin_is_clean() {
    assert_trips_once(&scan(&["panic_slice_bad.rs"]), "panic");
    assert_clean(&scan(&["panic_slice_ok.rs"]));
}

#[test]
fn nested_lock_fixture_trips_lock_and_twin_is_clean() {
    let a = scan(&["lock_nested_bad.rs"]);
    assert_trips_once(&a, "lock");
    assert!(a.violations[0].message.contains("second shard-lock"));
    assert_clean(&scan(&["lock_nested_ok.rs"]));
}

#[test]
fn io_under_write_guard_fixture_trips_lock_and_twin_is_clean() {
    let a = scan(&["lock_io_bad.rs"]);
    assert_trips_once(&a, "lock");
    assert!(a.violations[0].message.contains("durable IO"));
    assert_clean(&scan(&["lock_io_ok.rs"]));
}

#[test]
fn bare_cast_fixture_trips_cast_and_twin_is_clean() {
    assert_trips_once(&scan(&["cast_bad.rs"]), "cast");
    assert_clean(&scan(&["cast_ok.rs"]));
}

#[test]
fn unexported_getter_fixture_trips_meter_and_twin_is_clean() {
    let a = scan(&["meter_store.rs", "meter_server_missing.rs"]);
    assert_trips_once(&a, "meter");
    assert!(a.violations[0].message.contains("orphan_stat"));
    assert_clean(&scan(&["meter_store.rs", "meter_server_ok.rs"]));
}

#[test]
fn used_allow_suppresses_and_is_counted() {
    let a = scan(&["allow_used.rs"]);
    assert_clean(&a);
    assert_eq!(a.allows.len(), 1, "{:#?}", a.allows);
    assert_eq!(a.allows[0].rule, "panic");
    assert_eq!(a.allows[0].suppressed, 1);
}

#[test]
fn unused_allow_is_itself_flagged() {
    assert_trips_once(&scan(&["allow_unused.rs"]), "unused-allow");
}

/// The workspace gate: the live sources — the exact set the bin scans —
/// must be violation-free, and every allow in them must carry a reason.
#[test]
fn the_workspace_itself_scans_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = collect_workspace(&root).expect("workspace sources are readable");
    assert!(
        files.len() > 50,
        "suspiciously few sources ({}) — did the walker break?",
        files.len()
    );
    let a = analyze_files(&files);
    assert!(
        a.is_clean(),
        "the workspace has analyzer violations:\n{}",
        zerber_analyze::report::render_text(&a)
    );
    for allow in &a.allows {
        assert!(
            !allow.reason.trim().is_empty(),
            "allow at {}:{} has no reason",
            allow.file,
            allow.line
        );
    }
}
