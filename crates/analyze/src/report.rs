//! Report rendering: human-readable text and machine-readable JSON.
//!
//! The JSON (`ANALYZE_REPORT.json`) is hand-rolled like the bench reports —
//! the workspace has no serde_json — and is stable enough to trend the
//! allow-count across PRs.

use crate::Analysis;
use std::fmt::Write as _;

/// Renders the human-readable report (what the bin prints).
pub fn render_text(a: &Analysis) -> String {
    let mut out = String::new();
    for v in &a.violations {
        let _ = writeln!(out, "{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
        if !v.snippet.is_empty() {
            let _ = writeln!(out, "    {}", v.snippet);
        }
    }
    if !a.allows.is_empty() {
        let _ = writeln!(out, "allows in effect ({}):", a.allows.len());
        for al in &a.allows {
            let _ = writeln!(
                out,
                "  {}:{}: allow({}) x{} — {}",
                al.file, al.line, al.rule, al.suppressed, al.reason
            );
        }
    }
    let _ = writeln!(
        out,
        "zerber-analyze: {} file(s) scanned, {} violation(s), {} allow(s)",
        a.files_scanned,
        a.violations.len(),
        a.allows.len()
    );
    out
}

/// Renders `ANALYZE_REPORT.json`.
pub fn render_json(a: &Analysis) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"files_scanned\": {},", a.files_scanned);
    out.push_str("  \"violations\": [\n");
    for (i, v) in a.violations.iter().enumerate() {
        let comma = if i + 1 < a.violations.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"snippet\": {}, \
             \"message\": {}}}{comma}",
            json_str(v.rule),
            json_str(&v.file),
            v.line,
            json_str(&v.snippet),
            json_str(&v.message)
        );
    }
    out.push_str("  ],\n");
    out.push_str("  \"allows\": [\n");
    for (i, al) in a.allows.iter().enumerate() {
        let comma = if i + 1 < a.allows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"suppressed\": {}, \
             \"reason\": {}}}{comma}",
            json_str(&al.rule),
            json_str(&al.file),
            al.line,
            al.suppressed,
            json_str(&al.reason)
        );
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

/// Escapes `s` as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze_files;

    #[test]
    fn json_report_is_well_formed_and_escaped() {
        let src = "fn f() { x.expect(\"quote \\\" and tab\\there\"); }";
        let a = analyze_files(&[("crates/store/src/a.rs".to_string(), src.to_string())]);
        assert_eq!(a.violations.len(), 1);
        let json = render_json(&a);
        assert!(json.contains("\"violations\""));
        assert!(json.contains("\\\""), "quotes in snippets must be escaped");
        // Crude balance check: equal numbers of braces and brackets.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn text_report_carries_file_line_and_snippet() {
        let src = "fn f() { x.unwrap(); }";
        let a = analyze_files(&[("crates/store/src/a.rs".to_string(), src.to_string())]);
        let text = render_text(&a);
        assert!(text.contains("crates/store/src/a.rs:1: [panic]"), "{text}");
        assert!(text.contains("x.unwrap();"));
        assert!(text.contains("1 violation(s)"));
    }
}
