//! The four workspace invariant rules.
//!
//! Every rule is *textual and scoped*: it works on the token stream of one
//! file (the metering rule on two), applies only where the invariant it
//! guards actually holds, and reports file/line/snippet diagnostics.  The
//! rules deliberately err on the side of firing — a false positive costs one
//! written `analyze::allow` with a reason; a false negative costs a panic or
//! a deadlock in production.
//!
//! | rule  | scope | what it catches |
//! |-------|-------|-----------------|
//! | panic | non-test code of `store`, `protocol`, `zerber-r`, `index/src/compress.rs` | `unwrap()`, `expect(`, `panic!`, `unreachable!`, `todo!`, `unimplemented!`; plus range-slicing `&b[i..j]` in the codec files (untrusted-length slicing is the historical panic vector) |
//! | lock  | non-test code of `store`, `protocol` | a second shard-lock acquisition while a shard guard is live in the same function; `fsync`/`sync_all`/`rename`/`File::create` textually inside a live shard *write*-guard scope (the off-lock IO contract) |
//! | cast  | non-test code of `compress.rs`, `segment.rs`, `spill.rs`, `durable.rs`, `replication.rs` (store) | bare `as u8`/`as u32`/`as u64`/`as usize` — require `try_from`/`from` or an allow |
//! | meter | `ListStore` trait vs `server.rs` | a no-arg `&self` getter returning `u64`/`usize` in `ListStore` whose name never appears in the server's stats plumbing |

use crate::lexer::{Kind, Tok};
use crate::source::{matching, SourceFile};

/// One rule violation.
#[derive(Debug, Clone)]
pub struct Violation {
    pub rule: &'static str,
    pub file: String,
    pub line: usize,
    pub snippet: String,
    pub message: String,
}

/// Crates whose non-test code must be panic-free (the serving path).
const SERVING_CRATES: &[&str] = &["store", "protocol", "zerber-r"];

/// Files that parse untrusted / on-disk bytes: the codec set.  Range-slicing
/// and bare narrowing casts are banned here.
const CODEC_FILES: &[&str] = &[
    "compress.rs",
    "segment.rs",
    "spill.rs",
    "durable.rs",
    "replication.rs",
];

/// True when the panic rule applies to this file at all.
fn panic_scope(f: &SourceFile) -> bool {
    SERVING_CRATES.contains(&f.crate_name())
        || (f.crate_name() == "index" && f.is_named("compress.rs"))
}

/// True when the file is in the codec set (index-slicing + cast bans).
fn codec_scope(f: &SourceFile) -> bool {
    (f.crate_name() == "store" || f.crate_name() == "index")
        && CODEC_FILES.iter().any(|n| f.is_named(n))
}

/// True when the lock rule applies (the crates that touch shard locks).
fn lock_scope(f: &SourceFile) -> bool {
    f.crate_name() == "store" || f.crate_name() == "protocol"
}

fn push(out: &mut Vec<Violation>, rule: &'static str, f: &SourceFile, line: usize, msg: String) {
    out.push(Violation {
        rule,
        file: f.path.clone(),
        line,
        snippet: f.snippet(line).to_string(),
        message: msg,
    });
}

// ---------------------------------------------------------------------------
// Rule 1: panic-freedom
// ---------------------------------------------------------------------------

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Scans one file for panic-reachable constructs in non-test code.
pub fn check_panic(f: &SourceFile, out: &mut Vec<Violation>) {
    if !panic_scope(f) {
        return;
    }
    let toks = &f.tokens;
    for (i, t) in toks.iter().enumerate() {
        if f.in_test[i] {
            continue;
        }
        // Method position only (`x.unwrap()`, not `unwrap(` helper names);
        // macros only with their `!`.
        match t.ident() {
            Some("unwrap")
                if toks.get(i + 1).is_some_and(|n| n.is('(')) && i > 0 && toks[i - 1].is('.') =>
            {
                push(
                    out,
                    "panic",
                    f,
                    t.line,
                    "`.unwrap()` on a serving path — return a typed error instead".into(),
                );
            }
            Some("expect")
                if toks.get(i + 1).is_some_and(|n| n.is('(')) && i > 0 && toks[i - 1].is('.') =>
            {
                push(
                    out,
                    "panic",
                    f,
                    t.line,
                    "`.expect(..)` on a serving path — return a typed error instead".into(),
                );
            }
            Some(m) if PANIC_MACROS.contains(&m) && toks.get(i + 1).is_some_and(|n| n.is('!')) => {
                push(
                    out,
                    "panic",
                    f,
                    t.line,
                    format!("`{m}!` is reachable from a serving path"),
                );
            }
            _ => {}
        }
        // Range-slicing in the codec files: `expr[a..b]`, `expr[..n]`,
        // `expr[n..]` — a wrong untrusted length panics here.  Scalar
        // indexing is left to the loop-bound conventions (and clippy).
        if codec_scope(f) && t.is('[') && is_index_position(toks, i) {
            if let Some(close) = matching(toks, i, '[', ']') {
                let inner = &toks[i + 1..close];
                let mut depth = 0i32;
                let mut has_range = false;
                for (k, it) in inner.iter().enumerate() {
                    match it.kind {
                        Kind::Punct('[') | Kind::Punct('(') => depth += 1,
                        Kind::Punct(']') | Kind::Punct(')') => depth -= 1,
                        Kind::Punct('.')
                            if depth == 0 && inner.get(k + 1).is_some_and(|n| n.is('.')) =>
                        {
                            has_range = true;
                        }
                        _ => {}
                    }
                }
                if has_range && !inner.is_empty() {
                    push(
                        out,
                        "panic",
                        f,
                        t.line,
                        "range-slicing in a codec path — use `.get(..)` and surface a corrupt-\
                         input error"
                            .into(),
                    );
                }
            }
        }
    }
}

/// True when the `[` at `i` is indexing (follows an expression) rather than
/// opening an array literal, attribute or type.
fn is_index_position(toks: &[Tok], i: usize) -> bool {
    if i == 0 {
        return false;
    }
    match &toks[i - 1].kind {
        Kind::Ident(name) => {
            // `&mut [T]` / `impl Index<[u8]>` style type positions are rare
            // in expression scans; keywords that *precede* literals are not.
            !matches!(
                name.as_str(),
                "mut" | "dyn" | "in" | "return" | "as" | "else" | "match" | "if" | "impl" | "where"
            )
        }
        Kind::Punct(')') | Kind::Punct(']') => true,
        Kind::Literal => true,
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// Rule 2: lock discipline
// ---------------------------------------------------------------------------

/// How a shard lock might be acquired, textually.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Acq {
    Read,
    Write,
}

/// Helper names that acquire a shard lock internally.  `insert_logged`
/// write-locks the element's shard; the `with_*`/`shard_*` funnels are the
/// only sanctioned acquisition sites after the lock-rank refactor.
const READ_HELPERS: &[&str] = &["with_shard_read", "shard_read"];
const WRITE_HELPERS: &[&str] = &["with_shard_write", "shard_write", "insert_logged"];

/// IO identifiers banned inside a live shard write-guard scope: page-file
/// compaction and checkpoint IO must run off-lock (the off-lock compaction
/// contract), so any durable-IO verb under a write guard needs an explicit,
/// reasoned allow.  Beyond the std verbs, the repo's own durable-IO helper
/// names are listed — a textual rule cannot see through a helper call, so
/// the helpers that fsync/rename internally count as the verb itself.
const WRITE_GUARD_BANNED_IO: &[&str] = &[
    "fsync",
    "sync_all",
    "sync_data",
    "rename",
    "sync_file",
    "commit_manifest",
    "reset_wal",
];

/// Scans every function body for nested shard-lock acquisitions and for
/// durable IO performed under a shard write guard.
pub fn check_lock(f: &SourceFile, out: &mut Vec<Violation>) {
    if !lock_scope(f) {
        return;
    }
    let toks = &f.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].ident() == Some("fn") && !f.in_test[i] {
            if let Some((body_start, body_end)) = fn_body(toks, i) {
                check_lock_body(f, body_start, body_end, out);
                i = body_end;
                continue;
            }
        }
        i += 1;
    }
}

/// Finds the `{`..`}` token span of the function whose `fn` keyword is at
/// `at` (None for trait-declared signatures ending in `;`).
fn fn_body(toks: &[Tok], at: usize) -> Option<(usize, usize)> {
    let mut depth_paren = 0i32;
    let mut depth_angle = 0i32;
    let mut i = at + 1;
    while i < toks.len() {
        match &toks[i].kind {
            Kind::Punct('(') => depth_paren += 1,
            Kind::Punct(')') => depth_paren -= 1,
            Kind::Punct('<') => depth_angle += 1,
            Kind::Punct('>') if depth_angle > 0 => depth_angle -= 1,
            Kind::Punct(';') if depth_paren == 0 => return None,
            Kind::Punct('{') if depth_paren == 0 => {
                let end = matching(toks, i, '{', '}')?;
                return Some((i, end));
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// A live guard scope inside one function body.
#[derive(Debug)]
struct GuardScope {
    mode: Acq,
    /// Token index past which the guard is dead (exclusive).
    end: usize,
    /// Line of the acquisition, for the diagnostic.
    line: usize,
    /// Binding name when `let`-bound (enables `drop(name)` tracking).
    name: Option<String>,
}

/// Walks one function body tracking shard-guard liveness.
fn check_lock_body(f: &SourceFile, start: usize, end: usize, out: &mut Vec<Violation>) {
    let toks = &f.tokens;
    let mut guards: Vec<GuardScope> = Vec::new();
    let mut i = start + 1;
    while i < end {
        guards.retain(|g| g.end > i);
        // `drop(name)` releases a let-bound guard early.
        if toks[i].ident() == Some("drop")
            && toks.get(i + 1).is_some_and(|t| t.is('('))
            && toks.get(i + 3).is_some_and(|t| t.is(')'))
        {
            if let Some(name) = toks.get(i + 2).and_then(|t| t.ident()) {
                guards.retain(|g| g.name.as_deref() != Some(name));
            }
        }
        if let Some(acq) = acquisition_at(toks, i) {
            let line = toks[i].line;
            if let Some(live) = guards.last() {
                push(
                    out,
                    "lock",
                    f,
                    line,
                    format!(
                        "second shard-lock acquisition while the guard taken on line {} is \
                         still live — nested shard locks deadlock under contention",
                        live.line
                    ),
                );
            }
            let (scope_end, name) = guard_extent(toks, i, end);
            guards.push(GuardScope {
                mode: acq,
                end: scope_end,
                line,
                name,
            });
            // Skip past the acquisition tokens themselves so the receiver
            // chain isn't double-counted.
            i += 1;
            continue;
        }
        // Durable IO under a live *write* guard.
        if let Some(id) = toks[i].ident() {
            let under_write = guards.iter().any(|g| g.mode == Acq::Write);
            if under_write {
                let banned = WRITE_GUARD_BANNED_IO.contains(&id)
                    || (id == "File"
                        && toks.get(i + 1).is_some_and(|t| t.is(':'))
                        && toks
                            .get(i + 3)
                            .is_some_and(|t| matches!(t.ident(), Some("create" | "create_new"))));
                if banned {
                    let held = guards
                        .iter()
                        .rev()
                        .find(|g| g.mode == Acq::Write)
                        .map(|g| g.line)
                        .unwrap_or(0);
                    push(
                        out,
                        "lock",
                        f,
                        toks[i].line,
                        format!(
                            "durable IO (`{id}`) inside the shard write guard taken on line \
                             {held} — compaction/checkpoint IO must run off-lock"
                        ),
                    );
                }
            }
        }
        i += 1;
    }
}

/// Is token `i` a shard-lock acquisition?  Either `.read()` / `.write()`
/// with `shards` in the receiver chain, or one of the sanctioned helpers.
fn acquisition_at(toks: &[Tok], i: usize) -> Option<Acq> {
    if let Some(id) = toks[i].ident() {
        if READ_HELPERS.contains(&id) && toks.get(i + 1).is_some_and(|t| t.is('(')) {
            return Some(Acq::Read);
        }
        if WRITE_HELPERS.contains(&id) && toks.get(i + 1).is_some_and(|t| t.is('(')) {
            return Some(Acq::Write);
        }
        if (id == "read" || id == "write")
            && toks.get(i + 1).is_some_and(|t| t.is('('))
            && toks.get(i + 2).is_some_and(|t| t.is(')'))
            && i > 0
            && toks[i - 1].is('.')
            && receiver_mentions_shards(toks, i - 1)
        {
            return Some(if id == "read" { Acq::Read } else { Acq::Write });
        }
    }
    None
}

/// Walks the expression chain leftwards from the `.` at `dot` and reports
/// whether any identifier in the receiver is `shards` (the shard-lock
/// vector).  The walk crosses matched `[..]`/`(..)` groups and `.`/`::`
/// links and stops at anything that cannot continue a method receiver.
fn receiver_mentions_shards(toks: &[Tok], dot: usize) -> bool {
    let mut i = dot as i64 - 1;
    while i >= 0 {
        let t = &toks[i as usize];
        match &t.kind {
            Kind::Ident(name) => {
                if name == "shards" {
                    return true;
                }
                i -= 1;
            }
            Kind::Punct(']') => {
                // Jump to the matching `[`.
                let mut depth = 0i32;
                while i >= 0 {
                    if toks[i as usize].is(']') {
                        depth += 1;
                    } else if toks[i as usize].is('[') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    i -= 1;
                }
                i -= 1;
            }
            Kind::Punct(')') => {
                let mut depth = 0i32;
                while i >= 0 {
                    if toks[i as usize].is(')') {
                        depth += 1;
                    } else if toks[i as usize].is('(') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    i -= 1;
                }
                i -= 1;
            }
            Kind::Punct('.') | Kind::Punct(':') => i -= 1,
            Kind::Literal => i -= 1,
            _ => return false,
        }
    }
    false
}

/// The extent of the guard created by the acquisition at `i`, and its
/// binding name when `let`-bound.
///
/// * `let g = <acq>...;` — lives to the end of the enclosing block.
/// * `with_shard_*(...)` — lives to the closing `)` of the call.
/// * bare temporary — lives to the end of the statement (`;`).
fn guard_extent(toks: &[Tok], i: usize, body_end: usize) -> (usize, Option<String>) {
    // Was this statement introduced by `let`?  Scan back to the nearest
    // statement boundary.
    let mut j = i as i64 - 1;
    let mut let_name: Option<String> = None;
    while j >= 0 {
        match &toks[j as usize].kind {
            Kind::Punct(';') | Kind::Punct('{') | Kind::Punct('}') => break,
            Kind::Ident(k) if k == "let" => {
                // Binding name: first plain ident after `let` (skip `mut`).
                let mut k2 = j as usize + 1;
                while let Some(t) = toks.get(k2) {
                    match t.ident() {
                        Some("mut") => k2 += 1,
                        Some(name) => {
                            let_name = Some(name.to_string());
                            break;
                        }
                        None => break,
                    }
                }
                break;
            }
            _ => j -= 1,
        }
    }
    if let_name.is_some() {
        // To the end of the enclosing block: find the `}` that closes the
        // deepest `{` open at position i.
        let mut depth = 0i32;
        for (k, t) in toks.iter().enumerate().take(body_end + 1).skip(i) {
            if t.is('{') {
                depth += 1;
            } else if t.is('}') {
                depth -= 1;
                if depth < 0 {
                    return (k, let_name);
                }
            }
        }
        return (body_end, let_name);
    }
    // Helper call: extent of its argument list (covers the closure body).
    if toks[i]
        .ident()
        .is_some_and(|id| id.starts_with("with_shard_") || id == "insert_logged")
    {
        if let Some(close) = matching(toks, i + 1, '(', ')') {
            return (close + 1, None);
        }
    }
    // Bare temporary: end of statement.
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().take(body_end).skip(i) {
        match t.kind {
            Kind::Punct('{') | Kind::Punct('(') | Kind::Punct('[') => depth += 1,
            Kind::Punct('}') | Kind::Punct(')') | Kind::Punct(']') => {
                depth -= 1;
                if depth < 0 {
                    return (k, None);
                }
            }
            Kind::Punct(';') if depth == 0 => return (k, None),
            _ => {}
        }
    }
    (body_end, None)
}

// ---------------------------------------------------------------------------
// Rule 3: cast safety
// ---------------------------------------------------------------------------

/// Integer targets whose bare `as` casts are banned in codec files.  A cast
/// that truncates silently is exactly how the PR-5 u32-overflow bug slipped
/// in; `try_from` (or `from` for provable widenings) makes the intent typed.
const BANNED_CAST_TARGETS: &[&str] = &["u8", "u32", "u64", "usize"];

/// Scans codec files for bare `as <int>` casts in non-test code.
pub fn check_cast(f: &SourceFile, out: &mut Vec<Violation>) {
    if !codec_scope(f) {
        return;
    }
    let toks = &f.tokens;
    for (i, t) in toks.iter().enumerate() {
        if f.in_test[i] || t.ident() != Some("as") {
            continue;
        }
        // `as` in a use-rename (`use x as y`) has a non-type ident after it
        // too — but those name bindings, not casts.  Distinguish by the
        // target: only the banned integer names fire.
        if let Some(target) = toks.get(i + 1).and_then(|t| t.ident()) {
            if BANNED_CAST_TARGETS.contains(&target) {
                push(
                    out,
                    "cast",
                    f,
                    t.line,
                    format!(
                        "bare `as {target}` in a codec path — use `{target}::try_from` (or \
                         `::from` for a widening) so truncation is typed"
                    ),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 4: metering discipline
// ---------------------------------------------------------------------------

/// Extracts the stat getters of `trait ListStore` from `store.rs`: no-arg
/// `&self` methods returning `u64` or `usize`.
pub fn list_store_getters(store_rs: &SourceFile) -> Vec<(String, usize)> {
    let toks = &store_rs.tokens;
    let mut getters = Vec::new();
    // Find `trait ListStore { .. }`.
    let mut start = None;
    for (i, t) in toks.iter().enumerate() {
        if t.ident() == Some("trait")
            && toks.get(i + 1).and_then(|t| t.ident()) == Some("ListStore")
        {
            // Body opens at the first `{` after the name (skipping
            // supertrait bounds).
            for (j, t2) in toks.iter().enumerate().skip(i) {
                if t2.is('{') {
                    start = Some(j);
                    break;
                }
            }
            break;
        }
    }
    let Some(open) = start else {
        return getters;
    };
    let Some(close) = matching(toks, open, '{', '}') else {
        return getters;
    };
    let mut i = open + 1;
    while i < close {
        if toks[i].ident() == Some("fn") {
            let name = toks.get(i + 1).and_then(|t| t.ident()).map(str::to_string);
            // Signature shape: fn name ( & self ) -> u64|usize
            let shape = toks.get(i + 2).is_some_and(|t| t.is('('))
                && toks.get(i + 3).is_some_and(|t| t.is('&'))
                && toks.get(i + 4).and_then(|t| t.ident()) == Some("self")
                && toks.get(i + 5).is_some_and(|t| t.is(')'))
                && toks.get(i + 6).is_some_and(|t| t.is('-'))
                && toks.get(i + 7).is_some_and(|t| t.is('>'))
                && matches!(
                    toks.get(i + 8).and_then(|t| t.ident()),
                    Some("u64" | "usize")
                );
            if let (Some(name), true) = (name, shape) {
                getters.push((name, toks[i].line));
            }
            // Skip the whole item (default body or `;`).
            let end = crate::source::item_end(toks, i + 1);
            i = end;
            continue;
        }
        i += 1;
    }
    getters
}

/// Checks that every `ListStore` stat getter surfaces in the server's stats
/// code: a counter or gauge added on the store side but never exported
/// through `ServerStats` is invisible to every bench and operator.
pub fn check_meter(store_rs: &SourceFile, server_rs: &SourceFile, out: &mut Vec<Violation>) {
    let getters = list_store_getters(store_rs);
    for (name, line) in getters {
        let mentioned = server_rs
            .tokens
            .iter()
            .zip(&server_rs.in_test)
            .any(|(t, &in_test)| !in_test && t.ident() == Some(name.as_str()));
        if !mentioned {
            push(
                out,
                "meter",
                store_rs,
                line,
                format!(
                    "`ListStore::{name}` is a stat getter but `{}` never references it — \
                     surface it through `ServerStats` (snapshot/delta or gauge)",
                    server_rs.path
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_panic(path: &str, src: &str) -> Vec<Violation> {
        let f = SourceFile::parse(path, src);
        let mut out = Vec::new();
        check_panic(&f, &mut out);
        out
    }

    #[test]
    fn unwrap_fires_only_in_scope_and_outside_tests() {
        let src = "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod t { fn g() { y.unwrap(); } }";
        assert_eq!(run_panic("crates/store/src/a.rs", src).len(), 1);
        assert_eq!(run_panic("crates/corpus/src/a.rs", src).len(), 0);
        assert_eq!(run_panic("crates/index/src/compress.rs", src).len(), 1);
        assert_eq!(run_panic("crates/index/src/index.rs", src).len(), 0);
    }

    #[test]
    fn unwrap_as_a_free_function_name_does_not_fire() {
        // Only the method position panics: `Wrapper::unwrap(x)` is rare but
        // `unwrap(` as a local helper must not trip the rule.
        let src = "fn f() { let y = unwrap(x); }";
        assert_eq!(run_panic("crates/store/src/a.rs", src).len(), 0);
    }

    #[test]
    fn range_slicing_fires_only_in_codec_files() {
        let src = "fn f(b: &[u8]) -> &[u8] { &b[1..4] }";
        assert_eq!(run_panic("crates/store/src/segment.rs", src).len(), 1);
        assert_eq!(run_panic("crates/store/src/sharded.rs", src).len(), 0);
        // Scalar indexing does not fire (loop-bound conventions cover it).
        let scalar = "fn f(b: &[u8]) -> u8 { b[1] }";
        assert_eq!(run_panic("crates/store/src/segment.rs", scalar).len(), 0);
        // Array literals and attributes are not indexing.
        let lit = "fn f() { let a = [1, 2]; }";
        assert_eq!(run_panic("crates/store/src/segment.rs", lit).len(), 0);
    }

    fn run_lock(src: &str) -> Vec<Violation> {
        let f = SourceFile::parse("crates/store/src/x.rs", src);
        let mut out = Vec::new();
        check_lock(&f, &mut out);
        out
    }

    #[test]
    fn nested_shard_acquisition_fires() {
        let src = "fn f(&self) { let g = self.shards[a].read(); self.shards[b].write(); }";
        let v = run_lock(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("second shard-lock"));
    }

    #[test]
    fn block_scoped_guard_then_reacquire_is_clean() {
        let src = "fn f(&self) { let r = { let g = self.shards[a].read(); g.x() }; \
                   self.shards[a].write().sweep(); }";
        assert_eq!(run_lock(src).len(), 0);
    }

    #[test]
    fn dropped_guard_allows_reacquire() {
        let src = "fn f(&self) { let g = self.shards[a].read(); drop(g); self.shards[a].write(); }";
        assert_eq!(run_lock(src).len(), 0);
    }

    #[test]
    fn helper_funnels_count_as_acquisitions() {
        let src = "fn f(&self) { self.core.with_shard_write(s, |t| { self.shard_read(s); }); }";
        assert_eq!(run_lock(src).len(), 1);
    }

    #[test]
    fn fsync_under_write_guard_fires_but_not_under_read() {
        let w = "fn f(&self) { self.with_shard_write(s, |t| { io.sync_all(); }); }";
        assert_eq!(run_lock(w).len(), 1);
        let r = "fn f(&self) { self.with_shard_read(s, |t| { io.sync_all(); }); }";
        assert_eq!(run_lock(r).len(), 0);
        let off = "fn f(&self) { self.with_shard_write(s, |t| t.x()); io.rename(a, b); }";
        assert_eq!(run_lock(off).len(), 0);
    }

    #[test]
    fn unrelated_rwlocks_do_not_fire() {
        let src = "fn f(&self) { let g = self.pool.read(); self.pool.write(); }";
        assert_eq!(run_lock(src).len(), 0);
    }

    fn run_cast(path: &str, src: &str) -> Vec<Violation> {
        let f = SourceFile::parse(path, src);
        let mut out = Vec::new();
        check_cast(&f, &mut out);
        out
    }

    #[test]
    fn casts_fire_in_codec_files_only() {
        let src = "fn f(x: u64) -> u32 { x as u32 }";
        assert_eq!(run_cast("crates/store/src/spill.rs", src).len(), 1);
        assert_eq!(run_cast("crates/store/src/sharded.rs", src).len(), 0);
        assert_eq!(run_cast("crates/index/src/compress.rs", src).len(), 1);
        // `as u16` / `as f64` are not in the banned set.
        let ok = "fn f(x: u8) -> f64 { x as f64 }";
        assert_eq!(run_cast("crates/store/src/spill.rs", ok).len(), 0);
        // use-renames don't fire.
        let use_as = "use std::io::Error as IoError;";
        assert_eq!(run_cast("crates/store/src/spill.rs", use_as).len(), 0);
    }

    #[test]
    fn meter_rule_catches_a_one_sided_counter() {
        let store = SourceFile::parse(
            "crates/store/src/store.rs",
            "pub trait ListStore { fn good_stat(&self) -> u64; fn bad_stat(&self) -> u64 { 0 } \
             fn fetch(&self, x: usize) -> u64; }",
        );
        let server = SourceFile::parse(
            "crates/protocol/src/server.rs",
            "fn snapshot() { store.good_stat(); }",
        );
        let mut out = Vec::new();
        check_meter(&store, &server, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("bad_stat"));
    }
}
