//! `zerber-analyze` — the workspace invariant linter.
//!
//! Four project-specific rules (panic-freedom, lock discipline, cast safety,
//! metering discipline) run over a lexed token stream of every workspace
//! source file; see [`rules`] for the rule table.  Violations can be
//! suppressed per-site with a reasoned directive:
//!
//! ```text
//! // analyze::allow(cast): page ids are u32 by the on-disk format
//! let id = raw as u32;
//! ```
//!
//! Every allow is counted and printed, an allow with no reason or an unknown
//! rule is itself a violation, and an allow that suppresses nothing is
//! flagged (`unused-allow`) so exemptions can't outlive the code they
//! excused.

pub mod lexer;
pub mod report;
pub mod rules;
pub mod source;

use std::path::{Path, PathBuf};

use rules::Violation;
use source::SourceFile;

/// One allow directive that actually suppressed something, for the report.
#[derive(Debug, Clone)]
pub struct UsedAllow {
    pub file: String,
    pub line: usize,
    pub rule: String,
    pub reason: String,
    /// Number of violations this single directive suppressed.
    pub suppressed: usize,
}

/// The outcome of analyzing a set of files.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Violations that survived allow application, in file/line order.
    pub violations: Vec<Violation>,
    /// Allow directives that suppressed at least one violation.
    pub allows: Vec<UsedAllow>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Analysis {
    /// True when the scan found nothing to complain about.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Collects every `crates/*/src/**.rs` source under `root` as
/// `(workspace-relative path, contents)` pairs, sorted by path — the exact
/// set the `zerber-analyze` bin scans.  The analyzer's own crate is
/// skipped: its docs and tests discuss directive syntax, which would trip
/// the allow parser, and no rule scopes to it anyway.
pub fn collect_workspace(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    for entry in std::fs::read_dir(root.join("crates"))? {
        let dir = entry?.path();
        if dir.file_name().is_some_and(|n| n == "analyze") {
            continue;
        }
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    files.sort();
    let mut inputs = Vec::with_capacity(files.len());
    for path in files {
        let src = std::fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        inputs.push((rel, src));
    }
    Ok(inputs)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Analyzes a set of `(path, contents)` pairs as one workspace.
///
/// Paths are workspace-relative (`crates/<name>/src/...`); the cross-file
/// metering rule activates when both `crates/store/src/store.rs` and
/// `crates/protocol/src/server.rs` are present in the set.
pub fn analyze_files(files: &[(String, String)]) -> Analysis {
    let parsed: Vec<SourceFile> = files
        .iter()
        .map(|(path, src)| SourceFile::parse(path, src))
        .collect();

    let mut raw: Vec<Violation> = Vec::new();
    for f in &parsed {
        rules::check_panic(f, &mut raw);
        rules::check_lock(f, &mut raw);
        rules::check_cast(f, &mut raw);
    }
    let store_rs = parsed
        .iter()
        .find(|f| f.crate_name() == "store" && f.is_named("store.rs"));
    let server_rs = parsed
        .iter()
        .find(|f| f.crate_name() == "protocol" && f.is_named("server.rs"));
    if let (Some(store), Some(server)) = (store_rs, server_rs) {
        rules::check_meter(store, server, &mut raw);
    }

    // Apply allows: a directive suppresses same-rule violations on its
    // target line of its own file.
    let mut analysis = Analysis {
        files_scanned: parsed.len(),
        ..Analysis::default()
    };
    for f in &parsed {
        let mut used = vec![0usize; f.allows.len()];
        for v in raw.iter_mut().filter(|v| v.file == f.path) {
            if let Some(k) = f
                .allows
                .iter()
                .position(|a| a.rule == v.rule && a.target_line == v.line)
            {
                used[k] += 1;
                v.rule = ""; // consumed
            }
        }
        for (a, &n) in f.allows.iter().zip(&used) {
            if n > 0 {
                analysis.allows.push(UsedAllow {
                    file: f.path.clone(),
                    line: a.line,
                    rule: a.rule.clone(),
                    reason: a.reason.clone(),
                    suppressed: n,
                });
            } else {
                analysis.violations.push(Violation {
                    rule: "unused-allow",
                    file: f.path.clone(),
                    line: a.line,
                    snippet: f.snippet(a.line).to_string(),
                    message: format!(
                        "allow({}) suppresses nothing — remove it so exemptions stay honest",
                        a.rule
                    ),
                });
            }
        }
        for b in &f.broken_allows {
            analysis.violations.push(Violation {
                rule: "allow-syntax",
                file: f.path.clone(),
                line: b.line,
                snippet: f.snippet(b.line).to_string(),
                message: b.what.clone(),
            });
        }
    }
    analysis
        .violations
        .extend(raw.into_iter().filter(|v| !v.rule.is_empty()));
    analysis
        .violations
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    analysis
        .allows
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    analysis
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(path: &str, src: &str) -> Analysis {
        analyze_files(&[(path.to_string(), src.to_string())])
    }

    #[test]
    fn an_allow_suppresses_and_is_counted() {
        let src = "// analyze::allow(panic): upheld by the caller\n\
                   fn f() { x.unwrap(); }";
        let a = one("crates/store/src/a.rs", src);
        assert!(a.is_clean(), "{:?}", a.violations);
        assert_eq!(a.allows.len(), 1);
        assert_eq!(a.allows[0].suppressed, 1);
        assert_eq!(a.allows[0].reason, "upheld by the caller");
    }

    #[test]
    fn a_trailing_allow_targets_its_own_line() {
        let src = "fn f(x: u64) -> u32 {\n    x as u32 // analyze::allow(cast): fits, checked\n}";
        let a = one("crates/store/src/spill.rs", src);
        assert!(a.is_clean(), "{:?}", a.violations);
        assert_eq!(a.allows.len(), 1);
    }

    #[test]
    fn wrong_rule_allow_does_not_suppress_and_is_unused() {
        let src = "// analyze::allow(cast): wrong rule for an unwrap\n\
                   fn f() { x.unwrap(); }";
        let a = one("crates/store/src/a.rs", src);
        // Both the original violation and the unused allow surface.
        assert_eq!(a.violations.len(), 2, "{:?}", a.violations);
        assert!(a.violations.iter().any(|v| v.rule == "panic"));
        assert!(a.violations.iter().any(|v| v.rule == "unused-allow"));
    }

    #[test]
    fn broken_allow_is_a_violation() {
        let src = "// analyze::allow(panic):\nfn f() { g(); }";
        let a = one("crates/store/src/a.rs", src);
        assert_eq!(a.violations.len(), 1);
        assert_eq!(a.violations[0].rule, "allow-syntax");
    }

    #[test]
    fn meter_rule_needs_both_files() {
        let store = (
            "crates/store/src/store.rs".to_string(),
            "pub trait ListStore { fn lonely_stat(&self) -> u64; }".to_string(),
        );
        let server = (
            "crates/protocol/src/server.rs".to_string(),
            "fn snapshot() {}".to_string(),
        );
        let a = analyze_files(std::slice::from_ref(&store));
        assert!(a.is_clean(), "meter rule is silent without server.rs");
        let a = analyze_files(&[store, server]);
        assert_eq!(a.violations.len(), 1);
        assert_eq!(a.violations[0].rule, "meter");
    }
}
