//! A minimal Rust lexer: just enough to walk token trees reliably.
//!
//! The analyzer never needs types or full syntax — only a faithful token
//! stream where comments, strings (including raw and byte strings), char
//! literals and lifetimes cannot masquerade as code.  Each token carries the
//! 1-based line it starts on so diagnostics point at real source lines.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// 1-based source line the token starts on.
    pub line: usize,
    /// What the token is.
    pub kind: Kind,
}

/// Token classes the rules care about.  Operators are kept as single
/// punctuation characters; the rules match short sequences where needed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (`fn`, `unwrap`, `as`, ...).
    Ident(String),
    /// Single punctuation character (`.`, `[`, `{`, `!`, ...).
    Punct(char),
    /// String, char, byte or numeric literal (content discarded).
    Literal,
    /// A lifetime such as `'a` (distinct from a char literal).
    Lifetime,
}

impl Tok {
    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            Kind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True when the token is the punctuation character `c`.
    pub fn is(&self, c: char) -> bool {
        self.kind == Kind::Punct(c)
    }
}

/// Lexes `src` into a token stream, discarding comments and whitespace.
///
/// The lexer is intentionally forgiving: an unterminated string or comment
/// consumes to end of input rather than erroring, so a half-edited file
/// still produces diagnostics for everything before the damage.
pub fn lex(src: &str) -> Vec<Tok> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                // Line comment (incl. doc comments): skip to newline.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comment, nesting like Rust's.
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let start = line;
                i = skip_string(bytes, i, &mut line);
                toks.push(Tok {
                    line: start,
                    kind: Kind::Literal,
                });
            }
            'r' | 'b' if starts_raw_or_byte_string(bytes, i) => {
                let start = line;
                i = skip_raw_or_byte_string(bytes, i, &mut line);
                toks.push(Tok {
                    line: start,
                    kind: Kind::Literal,
                });
            }
            '\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                let mut j = i + 1;
                if bytes.get(j) == Some(&b'\\') {
                    // Escaped char literal.
                    i = skip_char_literal(bytes, i);
                    toks.push(Tok {
                        line,
                        kind: Kind::Literal,
                    });
                } else {
                    while j < bytes.len() && is_ident_char(bytes[j]) {
                        j += 1;
                    }
                    if j > i + 1 && bytes.get(j) != Some(&b'\'') {
                        // `'ident` not closed by a quote: lifetime.
                        toks.push(Tok {
                            line,
                            kind: Kind::Lifetime,
                        });
                        i = j;
                    } else {
                        i = skip_char_literal(bytes, i);
                        toks.push(Tok {
                            line,
                            kind: Kind::Literal,
                        });
                    }
                }
            }
            c if c.is_ascii_digit() => {
                // Numeric literal: digits, `_`, type suffixes, hex/bin, and a
                // fractional part — but stop before `..` so ranges survive.
                let mut j = i + 1;
                while j < bytes.len() && (is_ident_char(bytes[j]) || bytes[j] == b'.') {
                    if bytes[j] == b'.' {
                        if bytes.get(j + 1) == Some(&b'.') {
                            break; // `0..n` range, the dots are punctuation
                        }
                        if !bytes
                            .get(j + 1)
                            .is_some_and(|b| b.is_ascii_digit() || is_ident_char(*b))
                        {
                            j += 1; // trailing `1.`
                            break;
                        }
                    }
                    j += 1;
                }
                toks.push(Tok {
                    line,
                    kind: Kind::Literal,
                });
                i = j;
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i + 1;
                while j < bytes.len() && is_ident_char(bytes[j]) {
                    j += 1;
                }
                toks.push(Tok {
                    line,
                    kind: Kind::Ident(src[i..j].to_string()),
                });
                i = j;
            }
            c => {
                toks.push(Tok {
                    line,
                    kind: Kind::Punct(c),
                });
                i += 1;
            }
        }
    }
    toks
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// True when position `i` (at `r` or `b`) starts a raw string (`r"`, `r#`),
/// byte string (`b"`), or raw byte string (`br"`, `br#`).
fn starts_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) == Some(&b'r') {
        j += 1;
        while bytes.get(j) == Some(&b'#') {
            j += 1;
        }
    }
    // Must land on a quote AND have consumed at least one prefix char, and
    // the prefix must not be part of a longer identifier (`radius"...` is
    // not a raw string — but a lone `r`/`b` directly before `"` is).
    j > i && bytes.get(j) == Some(&b'"')
}

/// Skips a `"..."` string with escapes, tracking newlines.
fn skip_string(bytes: &[u8], mut i: usize, line: &mut usize) -> usize {
    i += 1; // opening quote
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skips `r"..."` / `r#"..."#` / `b"..."` / `br##"..."##`.
fn skip_raw_or_byte_string(bytes: &[u8], mut i: usize, line: &mut usize) -> usize {
    let mut raw = false;
    if bytes[i] == b'b' {
        i += 1;
    }
    if bytes.get(i) == Some(&b'r') {
        raw = true;
        i += 1;
    }
    let mut hashes = 0usize;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    i += 1; // opening quote
    while i < bytes.len() {
        match bytes[i] {
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'\\' if !raw => i += 2,
            b'"' => {
                let mut j = i + 1;
                let mut seen = 0usize;
                while seen < hashes && bytes.get(j) == Some(&b'#') {
                    seen += 1;
                    j += 1;
                }
                if seen == hashes {
                    return j;
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skips `'x'` or `'\n'` (called only when the content is a char literal).
fn skip_char_literal(bytes: &[u8], mut i: usize) -> usize {
    i += 1; // opening quote
    if bytes.get(i) == Some(&b'\\') {
        i += 2;
    } else {
        i += 1;
    }
    while i < bytes.len() && bytes[i] != b'\'' {
        i += 1; // unicode escapes `\u{1F600}`
    }
    i + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.kind {
                Kind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_their_contents() {
        let src = r###"
            // unwrap() in a comment
            /* panic! in /* nested */ block */
            let a = "unwrap() in a string";
            let b = r#"expect( in a raw string"#;
            let c = b"unwrap";
            real_ident();
        "###;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
        assert!(!ids.contains(&"expect".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let d = '\\n'; }");
        let lifetimes = toks.iter().filter(|t| t.kind == Kind::Lifetime).count();
        let literals = toks.iter().filter(|t| t.kind == Kind::Literal).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(literals, 2);
    }

    #[test]
    fn ranges_survive_numeric_literals() {
        let toks = lex("&buf[0..4]");
        let dots = toks.iter().filter(|t| t.is('.')).count();
        assert_eq!(dots, 2, "0..4 must lex as literal, dot, dot, literal");
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let src = "a\n/*\n\n*/\nb \"x\ny\" c";
        let toks = lex(src);
        let a = toks.iter().find(|t| t.ident() == Some("a")).unwrap();
        let b = toks.iter().find(|t| t.ident() == Some("b")).unwrap();
        let c = toks.iter().find(|t| t.ident() == Some("c")).unwrap();
        assert_eq!((a.line, b.line, c.line), (1, 5, 6));
    }
}
