//! Per-file source model: token stream, allow directives, test spans.
//!
//! An *allow directive* suppresses one rule on one line:
//!
//! ```text
//! // analyze::allow(panic): index bounded by the loop above
//! let head = &chunk[0];
//! ```
//!
//! The directive must name a known rule and carry a non-empty reason after
//! the `):` — a bare allow is itself a violation (`allow-syntax`).  A
//! standalone directive applies to the next token-bearing line; a trailing
//! directive (after code, on the same line) applies to its own line.  Every
//! allow is counted and printed, and an allow that suppresses nothing is a
//! violation too (`unused-allow`), so stale exemptions can't accumulate.

use crate::lexer::{lex, Kind, Tok};

/// The rule names an allow directive may reference.
pub const RULES: &[&str] = &["panic", "lock", "cast", "meter"];

/// One parsed allow directive.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Line the directive itself sits on (1-based).
    pub line: usize,
    /// The source line the directive suppresses.
    pub target_line: usize,
    /// Rule being allowed (validated against [`RULES`]).
    pub rule: String,
    /// The written justification (non-empty by construction).
    pub reason: String,
}

/// A syntactically broken allow directive (unknown rule, missing reason).
#[derive(Debug, Clone)]
pub struct BrokenAllow {
    pub line: usize,
    pub what: String,
}

/// A lexed source file plus everything the rules need to scope themselves.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path (also how rules decide applicability).
    pub path: String,
    /// Raw source lines for snippet extraction.
    pub lines: Vec<String>,
    /// The token stream (comments/whitespace gone).
    pub tokens: Vec<Tok>,
    /// `in_test[i]` — token `i` sits inside a `#[cfg(test)]` / `#[test]`
    /// item and is exempt from every rule.
    pub in_test: Vec<bool>,
    /// Well-formed allow directives.
    pub allows: Vec<Allow>,
    /// Malformed allow directives (reported as violations).
    pub broken_allows: Vec<BrokenAllow>,
}

impl SourceFile {
    /// Parses `src` as the file at `path` (workspace-relative).
    pub fn parse(path: &str, src: &str) -> SourceFile {
        let tokens = lex(src);
        let in_test = mark_test_spans(&tokens);
        let lines: Vec<String> = src.lines().map(str::to_string).collect();
        let (allows, broken_allows) = parse_allows(&lines, &tokens);
        SourceFile {
            path: path.to_string(),
            lines,
            tokens,
            in_test,
            allows,
            broken_allows,
        }
    }

    /// The trimmed source text of 1-based `line` (for diagnostics).
    pub fn snippet(&self, line: usize) -> &str {
        self.lines
            .get(line.wrapping_sub(1))
            .map(|l| l.trim())
            .unwrap_or("")
    }

    /// True when the file name (last path component) is `name`.
    pub fn is_named(&self, name: &str) -> bool {
        self.path
            .rsplit(['/', '\\'])
            .next()
            .is_some_and(|f| f == name)
    }

    /// The crate directory name this file belongs to (`crates/<name>/...`),
    /// or "" for files outside `crates/`.
    pub fn crate_name(&self) -> &str {
        let mut parts = self.path.split(['/', '\\']);
        match (parts.next(), parts.next()) {
            (Some("crates"), Some(name)) => name,
            _ => "",
        }
    }
}

/// Finds every `analyze::allow` directive in the raw lines and resolves its
/// target line against the token stream.
fn parse_allows(lines: &[String], tokens: &[Tok]) -> (Vec<Allow>, Vec<BrokenAllow>) {
    let mut allows = Vec::new();
    let mut broken = Vec::new();
    for (idx, raw) in lines.iter().enumerate() {
        let line = idx + 1;
        let Some(comment_at) = raw.find("//") else {
            continue;
        };
        let comment = &raw[comment_at..];
        let Some(at) = comment.find("analyze::allow") else {
            continue;
        };
        let rest = &comment[at + "analyze::allow".len()..];
        let Some(rest) = rest.strip_prefix('(') else {
            broken.push(BrokenAllow {
                line,
                what: "expected `analyze::allow(<rule>): <reason>`".into(),
            });
            continue;
        };
        let Some(close) = rest.find(')') else {
            broken.push(BrokenAllow {
                line,
                what: "unterminated rule name in allow directive".into(),
            });
            continue;
        };
        let rule = rest[..close].trim().to_string();
        if !RULES.contains(&rule.as_str()) {
            broken.push(BrokenAllow {
                line,
                what: format!("unknown rule `{rule}` in allow directive"),
            });
            continue;
        }
        let after = &rest[close + 1..];
        let reason = after.strip_prefix(':').unwrap_or("").trim().to_string();
        if reason.is_empty() {
            broken.push(BrokenAllow {
                line,
                what: format!("allow({rule}) carries no reason — every exemption must say why"),
            });
            continue;
        }
        // Standalone comment line => next token-bearing line; trailing
        // comment => the code on this very line.
        let standalone = raw[..comment_at].trim().is_empty();
        let target_line = if standalone {
            tokens
                .iter()
                .map(|t| t.line)
                .find(|&l| l > line)
                .unwrap_or(line)
        } else {
            line
        };
        allows.push(Allow {
            line,
            target_line,
            rule,
            reason,
        });
    }
    (allows, broken)
}

/// Marks every token inside a `#[cfg(test)]`- or `#[test]`-attributed item.
///
/// The walk is purely structural: when an attribute whose tokens mention
/// `cfg` + `test` (covers `#[cfg(test)]` and `#[cfg(any(test, ...))]`) or a
/// bare `#[test]` is seen, the following item — through its matching `}` or
/// terminating `;` — is marked, intervening attributes included.
fn mark_test_spans(tokens: &[Tok]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is('#') && tokens.get(i + 1).is_some_and(|t| t.is('[')) {
            let attr_end = match matching(tokens, i + 1, '[', ']') {
                Some(e) => e,
                None => break,
            };
            let attr = &tokens[i + 1..attr_end];
            let mentions = |name: &str| attr.iter().any(|t| t.ident() == Some(name));
            // `not` guards against `#[cfg(not(test))]` marking live code.
            let is_test_attr = (mentions("cfg") && mentions("test") && !mentions("not"))
                || (attr.len() == 2 && mentions("test"))
                || mentions("should_panic");
            if is_test_attr {
                let item_end = item_end(tokens, attr_end + 1);
                for flag in in_test.iter_mut().take(item_end).skip(i) {
                    *flag = true;
                }
                i = item_end;
                continue;
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    in_test
}

/// The token index one past the end of the item starting at `start`: through
/// the matching `}` of its first top-level `{`, or its terminating `;`.
pub fn item_end(tokens: &[Tok], start: usize) -> usize {
    let mut depth_paren = 0i32;
    let mut depth_bracket = 0i32;
    let mut i = start;
    while i < tokens.len() {
        match &tokens[i].kind {
            Kind::Punct('(') => depth_paren += 1,
            Kind::Punct(')') => depth_paren -= 1,
            Kind::Punct('[') => depth_bracket += 1,
            Kind::Punct(']') => depth_bracket -= 1,
            Kind::Punct('{') if depth_paren == 0 && depth_bracket == 0 => {
                return matching(tokens, i, '{', '}').map_or(tokens.len(), |e| e + 1);
            }
            Kind::Punct(';') if depth_paren == 0 && depth_bracket == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    tokens.len()
}

/// Index of the token closing the bracket opened at `open` (which must hold
/// the `open_c` punctuation).
pub fn matching(tokens: &[Tok], open: usize, open_c: char, close_c: char) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is(open_c) {
            depth += 1;
        } else if t.is(close_c) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_modules_are_marked() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }\n\
                   fn live2() {}";
        let f = SourceFile::parse("crates/store/src/x.rs", src);
        let unwraps: Vec<bool> = f
            .tokens
            .iter()
            .zip(&f.in_test)
            .filter(|(t, _)| t.ident() == Some("unwrap"))
            .map(|(_, &m)| m)
            .collect();
        assert_eq!(unwraps, vec![false, true]);
        let live2 = f
            .tokens
            .iter()
            .zip(&f.in_test)
            .find(|(t, _)| t.ident() == Some("live2"))
            .unwrap();
        assert!(!live2.1, "code after the test module is live again");
    }

    #[test]
    fn cfg_test_on_a_single_fn_and_statement() {
        let src = "#[cfg(test)]\nfn helper() { a.unwrap(); }\nfn live() { b(); }";
        let f = SourceFile::parse("crates/store/src/x.rs", src);
        let unwrap = f
            .tokens
            .iter()
            .zip(&f.in_test)
            .find(|(t, _)| t.ident() == Some("unwrap"))
            .unwrap();
        assert!(unwrap.1);
        let live = f
            .tokens
            .iter()
            .zip(&f.in_test)
            .find(|(t, _)| t.ident() == Some("live"))
            .unwrap();
        assert!(!live.1);
    }

    #[test]
    fn allow_directives_parse_and_resolve_targets() {
        let src = "// analyze::allow(panic): bounded by construction\n\
                   let x = v[0];\n\
                   let y = w[1]; // analyze::allow(cast): proven fits\n\
                   // analyze::allow(nope): bad rule\n\
                   // analyze::allow(panic):\n\
                   fin();";
        let f = SourceFile::parse("crates/store/src/x.rs", src);
        assert_eq!(f.allows.len(), 2);
        assert_eq!(f.allows[0].rule, "panic");
        assert_eq!(f.allows[0].target_line, 2);
        assert_eq!(f.allows[1].rule, "cast");
        assert_eq!(f.allows[1].target_line, 3);
        assert_eq!(f.broken_allows.len(), 2, "unknown rule + missing reason");
    }

    #[test]
    fn crate_and_file_scoping_helpers() {
        let f = SourceFile::parse("crates/store/src/spill.rs", "fn a() {}");
        assert_eq!(f.crate_name(), "store");
        assert!(f.is_named("spill.rs"));
        assert!(!f.is_named("segment.rs"));
    }
}
