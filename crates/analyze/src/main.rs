//! The `zerber-analyze` bin: scans every `crates/*/src/**.rs` file of the
//! workspace, prints the report, writes `ANALYZE_REPORT.json` at the repo
//! root, and exits non-zero when violations remain.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    // The bin lives at crates/analyze, the workspace root two levels up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let root = root.canonicalize().unwrap_or(root);

    let inputs = match zerber_analyze::collect_workspace(&root) {
        Ok(inputs) => inputs,
        Err(e) => {
            eprintln!("zerber-analyze: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let analysis = zerber_analyze::analyze_files(&inputs);
    print!("{}", zerber_analyze::report::render_text(&analysis));

    let json = zerber_analyze::report::render_json(&analysis);
    let report_path = root.join("ANALYZE_REPORT.json");
    if let Err(e) = std::fs::write(&report_path, json) {
        eprintln!(
            "zerber-analyze: cannot write {}: {e}",
            report_path.display()
        );
        return ExitCode::from(2);
    }

    if analysis.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
