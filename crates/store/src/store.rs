//! The `ListStore` trait: the seam between the query protocol and the
//! physical representation of the ordered merged posting lists.
//!
//! The untrusted server of the paper answers two operations: ranged top-k
//! fetches in TRS order (Section 5.2) and position-preserving inserts of
//! sealed elements (Section 5).  Both are per-merged-list operations, and
//! merged lists are independent by construction — which is exactly what makes
//! the index shardable.  This trait captures the contract; implementations
//! decide the concurrency model ([`crate::ShardedStore`],
//! [`crate::SingleMutexStore`]) and, in the future, the physical layout
//! (compressed segments, on-disk shards).

use zerber_base::{MergePlan, MergedListId};
use zerber_corpus::GroupId;
use zerber_r::OrderedElement;

use crate::error::StoreError;

/// Identifier of an open cursor session.  `CursorId(0)` means "no cursor".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CursorId(pub u64);

impl CursorId {
    /// The sentinel "no cursor" value.
    pub const NONE: CursorId = CursorId(0);

    /// Whether this is a real cursor (non-zero id).
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

/// One ranged fetch request against a merged list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangedFetch {
    /// The merged posting list to read.
    pub list: MergedListId,
    /// Number of *visible* elements to skip from the top of the list.
    pub offset: usize,
    /// Maximum number of visible elements to return.
    pub count: usize,
}

/// Result of one ranged or cursor fetch.
#[derive(Debug, Clone, PartialEq)]
pub struct RangedBatch {
    /// Up to `count` accessible elements in descending TRS order.
    pub elements: Vec<OrderedElement>,
    /// Physical list position just past the last scanned element; a cursor
    /// resuming here continues the scan without re-walking the prefix.
    pub next_physical: usize,
    /// Total number of elements of the list visible to the caller.
    pub visible_total: usize,
    /// Whether the scan reached the physical end of the list.
    pub exhausted: bool,
    /// Insert generation of the list when the batch was served.  Opening a
    /// cursor from this batch compares generations: if an insert moved the
    /// list in between, the position is re-derived instead of trusted.
    pub generation: u64,
}

/// Storage engine interface of the untrusted index server.
///
/// All methods take `&self`: implementations provide interior mutability and
/// are safe to share across server worker threads.
pub trait ListStore: Send + Sync + std::fmt::Debug {
    /// The merge plan (term → merged list) underlying the stored index.
    fn plan(&self) -> &MergePlan;

    /// Number of independent shards (1 for unsharded implementations).
    fn num_shards(&self) -> usize;

    /// The shard a merged list is assigned to.
    fn shard_of(&self, list: MergedListId) -> usize;

    /// Number of merged posting lists hosted.
    fn num_lists(&self) -> usize {
        self.plan().num_lists()
    }

    /// Total number of posting elements hosted.
    fn num_elements(&self) -> usize;

    /// Total bytes stored for the index (sealed payloads + TRS).
    fn stored_bytes(&self) -> usize;

    /// Total ciphertext bytes across all elements (for wire-size accounting).
    fn ciphertext_bytes(&self) -> usize;

    /// Physical length of one merged list.
    fn list_len(&self, list: MergedListId) -> Result<usize, StoreError>;

    /// Number of elements of the list visible to a user with access to
    /// `accessible` groups (`None` = unrestricted).
    fn visible_len(
        &self,
        list: MergedListId,
        accessible: Option<&[GroupId]>,
    ) -> Result<usize, StoreError>;

    /// A full copy of one ordered list (audits and tests only).
    fn snapshot_list(&self, list: MergedListId) -> Result<Vec<OrderedElement>, StoreError>;

    /// Serves one ranged fetch: skips `offset` visible elements from the top
    /// of the list, then returns up to `count` visible elements.
    fn fetch_ranged(
        &self,
        fetch: &RangedFetch,
        accessible: Option<&[GroupId]>,
    ) -> Result<RangedBatch, StoreError>;

    /// Serves a batch of ranged fetches.  Implementations group the fetches
    /// by shard and acquire each shard lock only once, so a multi-term query
    /// visits each shard a single time.  Results align with the input order.
    fn fetch_ranged_many(
        &self,
        fetches: &[RangedFetch],
        accessible: Option<&[GroupId]>,
    ) -> Vec<Result<RangedBatch, StoreError>>;

    /// Opens a cursor session continuing after `batch` (previously obtained
    /// from a ranged fetch on `list`).  `owner` is an opaque session tag;
    /// subsequent [`ListStore::cursor_fetch`] calls must present the same
    /// tag.  `delivered` is the number of visible elements (under
    /// `accessible`) the session has received so far: if inserts moved the
    /// list between the fetch and this call (detected via
    /// [`RangedBatch::generation`]), the implementation re-derives the
    /// position from `delivered` instead of trusting the stale
    /// `next_physical`, so follow-ups neither skip nor repeat elements.
    fn open_cursor(
        &self,
        list: MergedListId,
        owner: u64,
        batch: &RangedBatch,
        delivered: usize,
        accessible: Option<&[GroupId]>,
    ) -> Result<CursorId, StoreError>;

    /// Resumes a cursor: scans from the stored physical position, returns up
    /// to `count` visible elements and advances the cursor past the scanned
    /// range.
    fn cursor_fetch(
        &self,
        cursor: CursorId,
        owner: u64,
        count: usize,
        accessible: Option<&[GroupId]>,
    ) -> Result<RangedBatch, StoreError>;

    /// Closes a cursor session (idempotent).  The caller must present the
    /// session's `owner` tag: a foreign tag leaves the session untouched, so
    /// one user cannot tear down another user's session by guessing its id.
    fn close_cursor(&self, cursor: CursorId, owner: u64);

    /// Number of currently open cursors.
    fn open_cursors(&self) -> usize;

    /// Inserts a sealed element at its TRS position, returning the physical
    /// insertion index.  Open cursors on the list positioned after the
    /// insertion point are shifted so they neither skip nor repeat elements.
    fn insert(&self, list: MergedListId, element: OrderedElement) -> Result<usize, StoreError>;

    /// Checks the descending-TRS invariant of every list.
    fn verify_ordering(&self) -> bool;
}

/// Open cursors a session table holds before the oldest is evicted
/// (abandoned sessions must not grow the table without bound).  Applied per
/// shard by the sharded store and to the whole table by the single-mutex
/// store.
pub(crate) const MAX_CURSORS_PER_TABLE: usize = 1024;

/// One cursor session: the local slot of its list and the physical position
/// of the next element to scan.  The position is atomic so a follow-up can
/// advance its own cursor under a shared read lock; inserts adjust positions
/// under the exclusive lock.
#[derive(Debug)]
struct Cursor {
    slot: usize,
    owner: u64,
    position: std::sync::atomic::AtomicUsize,
}

/// The storage state owned by one lock domain — a shard of the sharded
/// store, or the whole single-mutex store: the ordered lists, their insert
/// generations, and the cursor sessions bound to them.  Keeping cursors in
/// the same lock domain as their lists means the position adjustment an
/// insert must apply happens under the same exclusive lock as the insert.
#[derive(Debug, Default)]
pub(crate) struct ListTable {
    lists: Vec<Vec<OrderedElement>>,
    generations: Vec<u64>,
    cursors: std::collections::HashMap<u64, Cursor>,
}

impl ListTable {
    /// Appends one list (used while partitioning an index into tables).
    pub fn push_list(&mut self, list: Vec<OrderedElement>) {
        self.lists.push(list);
        self.generations.push(0);
    }

    /// The list stored at a local slot.
    pub fn list(&self, slot: usize) -> &[OrderedElement] {
        &self.lists[slot]
    }

    /// Total elements across the table's lists.
    pub fn num_elements(&self) -> usize {
        self.lists.iter().map(Vec::len).sum()
    }

    /// Sum of `f` over every element of the table.
    pub fn sum_over_elements(&self, f: impl Fn(&OrderedElement) -> usize) -> usize {
        self.lists.iter().flat_map(|l| l.iter()).map(f).sum()
    }

    /// Serves one ranged fetch against a slot.
    pub fn fetch(
        &self,
        slot: usize,
        offset: usize,
        count: usize,
        accessible: Option<&[GroupId]>,
    ) -> RangedBatch {
        batch_from_scan(
            &self.lists[slot],
            self.generations[slot],
            0,
            offset,
            count,
            accessible,
        )
    }

    /// Opens a cursor session with the caller-allocated id `raw`, continuing
    /// after `batch`.  If inserts moved the list since the batch was served
    /// (generation mismatch), the position is re-derived by skipping the
    /// `delivered` visible elements the session has already received.
    pub fn open_cursor(
        &mut self,
        raw: u64,
        slot: usize,
        owner: u64,
        batch: &RangedBatch,
        delivered: usize,
        accessible: Option<&[GroupId]>,
    ) {
        if self.cursors.len() >= MAX_CURSORS_PER_TABLE {
            // Evict the oldest (smallest-id) abandoned session.
            if let Some(&oldest) = self.cursors.keys().min() {
                self.cursors.remove(&oldest);
            }
        }
        let list = &self.lists[slot];
        let position = if batch.generation == self.generations[slot] {
            batch.next_physical.min(list.len())
        } else {
            position_after_visible(list, delivered, accessible)
        };
        self.cursors.insert(
            raw,
            Cursor {
                slot,
                owner,
                position: std::sync::atomic::AtomicUsize::new(position),
            },
        );
    }

    /// Resumes a cursor: scans from its stored physical position and
    /// advances it past the scanned range.  A compare-exchange loop makes a
    /// concurrent fetch of the same cursor (a retried follow-up) re-scan
    /// from the freshly observed position instead of rewinding or
    /// duplicating elements.
    pub fn cursor_fetch(
        &self,
        raw: u64,
        owner: u64,
        count: usize,
        accessible: Option<&[GroupId]>,
    ) -> Result<RangedBatch, StoreError> {
        use std::sync::atomic::Ordering;
        let cursor = self
            .cursors
            .get(&raw)
            .filter(|c| c.owner == owner)
            .ok_or(StoreError::UnknownCursor(raw))?;
        let list = &self.lists[cursor.slot];
        let generation = self.generations[cursor.slot];
        let mut start = cursor.position.load(Ordering::Acquire);
        loop {
            let batch = batch_from_scan(list, generation, start, 0, count, accessible);
            match cursor.position.compare_exchange(
                start,
                batch.next_physical,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Ok(batch),
                Err(current) => start = current,
            }
        }
    }

    /// Closes a session if `owner` matches its tag (idempotent; a foreign
    /// tag is a no-op).
    pub fn close_cursor(&mut self, raw: u64, owner: u64) {
        if self.cursors.get(&raw).is_some_and(|c| c.owner == owner) {
            self.cursors.remove(&raw);
        }
    }

    /// Number of open sessions.
    pub fn open_cursors(&self) -> usize {
        self.cursors.len()
    }

    /// Inserts an element at its TRS position, bumps the list generation and
    /// shifts cursors that already scanned past the insertion point so they
    /// neither repeat the shifted element nor skip one.  A cursor exactly at
    /// the insertion point stays: the new element is its next in TRS order.
    pub fn insert(&mut self, slot: usize, element: OrderedElement) -> usize {
        use std::sync::atomic::Ordering;
        let pos = insertion_point(&self.lists[slot], element.trs);
        self.lists[slot].insert(pos, element);
        self.generations[slot] += 1;
        for cursor in self.cursors.values() {
            if cursor.slot == slot && cursor.position.load(Ordering::Relaxed) > pos {
                cursor.position.fetch_add(1, Ordering::Relaxed);
            }
        }
        pos
    }

    /// Descending-TRS invariant over every list of the table.
    pub fn ordering_ok(&self) -> bool {
        self.lists
            .iter()
            .all(|l| l.windows(2).all(|w| w[0].trs >= w[1].trs))
    }
}

/// The physical index just past the first `delivered` visible elements —
/// where a session that has received `delivered` elements resumes.
fn position_after_visible(
    list: &[OrderedElement],
    delivered: usize,
    accessible: Option<&[GroupId]>,
) -> usize {
    let mut seen = 0usize;
    for (i, element) in list.iter().enumerate() {
        if seen == delivered {
            return i;
        }
        if is_visible(element, accessible) {
            seen += 1;
        }
    }
    list.len()
}

/// Whether an element is visible to a user restricted to `accessible` groups.
pub(crate) fn is_visible(element: &OrderedElement, accessible: Option<&[GroupId]>) -> bool {
    match accessible {
        None => true,
        Some(groups) => groups.contains(&element.group),
    }
}

/// Counts the elements of `list` visible under `accessible`.
pub(crate) fn visible_count(list: &[OrderedElement], accessible: Option<&[GroupId]>) -> usize {
    match accessible {
        None => list.len(),
        Some(_) => list.iter().filter(|e| is_visible(e, accessible)).count(),
    }
}

/// Scans `list` from physical index `start`, skipping `skip` visible
/// elements, then collecting up to `count` visible elements.  Returns the
/// collected elements and the physical index just past the last scanned
/// element.
pub(crate) fn scan(
    list: &[OrderedElement],
    start: usize,
    skip: usize,
    count: usize,
    accessible: Option<&[GroupId]>,
) -> (Vec<OrderedElement>, usize) {
    let mut elements = Vec::with_capacity(count.min(list.len().saturating_sub(start)));
    let mut skipped = 0usize;
    let mut next = list.len().max(start);
    for (i, element) in list.iter().enumerate().skip(start) {
        if !is_visible(element, accessible) {
            continue;
        }
        if skipped < skip {
            skipped += 1;
            continue;
        }
        elements.push(element.clone());
        if elements.len() == count {
            next = i + 1;
            break;
        }
    }
    (elements, next)
}

/// Builds a [`RangedBatch`] for a scan over `list` at insert generation
/// `generation`.
pub(crate) fn batch_from_scan(
    list: &[OrderedElement],
    generation: u64,
    start: usize,
    skip: usize,
    count: usize,
    accessible: Option<&[GroupId]>,
) -> RangedBatch {
    let visible_total = visible_count(list, accessible);
    let (elements, next_physical) = scan(list, start, skip, count, accessible);
    RangedBatch {
        elements,
        exhausted: next_physical >= list.len(),
        next_physical,
        visible_total,
        generation,
    }
}

/// The TRS insertion position: after every element with a strictly larger
/// TRS, before equal ones (the binary search of Section 5, identical to
/// `OrderedIndex::insert_sealed`).
pub(crate) fn insertion_point(list: &[OrderedElement], trs: f64) -> usize {
    list.partition_point(|e| e.trs > trs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerber_base::EncryptedElement;

    fn element(trs: f64, group: u32) -> OrderedElement {
        OrderedElement {
            trs,
            group: GroupId(group),
            sealed: EncryptedElement {
                group: GroupId(group),
                ciphertext: vec![0u8; 4],
            },
        }
    }

    fn list() -> Vec<OrderedElement> {
        vec![
            element(0.9, 0),
            element(0.8, 1),
            element(0.7, 0),
            element(0.6, 1),
            element(0.5, 0),
        ]
    }

    #[test]
    fn scan_skips_visible_elements_only() {
        let l = list();
        let only_g0 = [GroupId(0)];
        let (elements, next) = scan(&l, 0, 1, 1, Some(&only_g0));
        // Skips the first group-0 element (0.9), returns the second (0.7).
        assert_eq!(elements.len(), 1);
        assert!((elements[0].trs - 0.7).abs() < 1e-12);
        assert_eq!(next, 3);
    }

    #[test]
    fn scan_from_start_resumes_mid_list() {
        let l = list();
        let (elements, next) = scan(&l, 2, 0, 2, None);
        assert_eq!(elements.len(), 2);
        assert!((elements[0].trs - 0.7).abs() < 1e-12);
        assert_eq!(next, 4);
        // Past the end: empty batch, next clamps to the list length.
        let (rest, end) = scan(&l, next, 0, 10, None);
        assert_eq!(rest.len(), 1);
        assert_eq!(end, l.len());
    }

    #[test]
    fn batch_reports_visibility_and_exhaustion() {
        let l = list();
        let only_g1 = [GroupId(1)];
        let batch = batch_from_scan(&l, 7, 0, 0, 10, Some(&only_g1));
        assert_eq!(batch.visible_total, 2);
        assert_eq!(batch.elements.len(), 2);
        assert!(batch.exhausted);
        assert_eq!(batch.generation, 7);
        let partial = batch_from_scan(&l, 0, 0, 0, 2, None);
        assert!(!partial.exhausted);
        assert_eq!(partial.next_physical, 2);
    }

    #[test]
    fn stale_batches_rederive_the_cursor_position() {
        // A table with one list; serve a batch, then let an insert land
        // before the cursor is opened — the TOCTOU the generation guards.
        let mut table = ListTable::default();
        table.push_list(list());
        let batch = table.fetch(0, 0, 2, None);
        assert_eq!(batch.generation, 0);
        // Insert at the head (TRS 1.0): every physical index shifts by one.
        assert_eq!(table.insert(0, element(1.0, 0)), 0);
        // Opening from the stale batch re-derives offset semantics: with 2
        // elements delivered the session resumes after the first 2 visible
        // elements of the *current* list ([1.0, 0.9, 0.8, ...] -> index 2).
        table.open_cursor(42, 0, 9, &batch, 2, None);
        let resumed = table.cursor_fetch(42, 9, 1, None).unwrap();
        assert!((resumed.elements[0].trs - 0.8).abs() < 1e-12);
        // A fresh batch (matching generation) is trusted as-is: it delivered
        // [1.0, 0.9] and resumes exactly at 0.8.
        let fresh = table.fetch(0, 0, 2, None);
        assert_eq!(fresh.generation, 1);
        table.open_cursor(43, 0, 9, &fresh, 2, None);
        let resumed = table.cursor_fetch(43, 9, 1, None).unwrap();
        assert!((resumed.elements[0].trs - 0.8).abs() < 1e-12);
        assert_eq!(table.open_cursors(), 2);
        // A foreign owner tag cannot close the session; the real one can.
        table.close_cursor(42, 1234);
        assert_eq!(table.open_cursors(), 2);
        table.close_cursor(42, 9);
        table.close_cursor(43, 9);
        assert_eq!(table.open_cursors(), 0);
    }

    #[test]
    fn position_after_visible_respects_group_filters() {
        let l = list();
        let only_g0 = [GroupId(0)];
        // After 1 delivered group-0 element the session resumes at index 1
        // (the first index past the 0.9 element); after 2, at index 3.
        assert_eq!(position_after_visible(&l, 0, Some(&only_g0)), 0);
        assert_eq!(position_after_visible(&l, 1, Some(&only_g0)), 1);
        assert_eq!(position_after_visible(&l, 2, Some(&only_g0)), 3);
        assert_eq!(position_after_visible(&l, 3, Some(&only_g0)), 5);
        assert_eq!(position_after_visible(&l, 99, None), 5);
    }

    #[test]
    fn insertion_point_is_stable_for_ties() {
        let l = list();
        // Equal TRS inserts before the existing element.
        assert_eq!(insertion_point(&l, 0.7), 2);
        assert_eq!(insertion_point(&l, 0.95), 0);
        assert_eq!(insertion_point(&l, 0.1), 5);
    }

    #[test]
    fn cursor_id_sentinel() {
        assert!(!CursorId::NONE.is_some());
        assert!(CursorId(3).is_some());
    }
}
