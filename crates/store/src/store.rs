//! The `ListStore` trait: the seam between the query protocol and the
//! physical representation of the ordered merged posting lists.
//!
//! The untrusted server of the paper answers two operations: ranged top-k
//! fetches in TRS order (Section 5.2) and position-preserving inserts of
//! sealed elements (Section 5).  Both are per-merged-list operations, and
//! merged lists are independent by construction — which is exactly what makes
//! the index shardable.  This trait captures the contract; implementations
//! decide the concurrency model ([`crate::ShardedStore`],
//! [`crate::SingleMutexStore`]) and the physical layout: the concurrency
//! machinery in this module is generic over an [`OrderedList`] — the
//! per-list physical representation — so the plain `Vec` layout
//! ([`VecList`]) and the compressed segment layout
//! ([`crate::segment::SegmentList`]) share one cursor-session, generation
//! and locking implementation and cannot diverge behaviourally.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use zerber_base::{EncryptedElement, MergePlan, MergedListId};
use zerber_corpus::GroupId;
use zerber_r::{OrderedElement, TRS_BYTES};

use crate::error::StoreError;

/// Identifier of an open cursor session.  `CursorId(0)` means "no cursor".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CursorId(pub u64);

impl CursorId {
    /// The sentinel "no cursor" value.
    pub const NONE: CursorId = CursorId(0);

    /// Whether this is a real cursor (non-zero id).
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

/// One ranged fetch request against a merged list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangedFetch {
    /// The merged posting list to read.
    pub list: MergedListId,
    /// Number of *visible* elements to skip from the top of the list.
    pub offset: usize,
    /// Maximum number of visible elements to return.
    pub count: usize,
}

/// Result of one ranged or cursor fetch.
#[derive(Debug, Clone, PartialEq)]
pub struct RangedBatch {
    /// Up to `count` accessible elements in descending TRS order.
    pub elements: Vec<OrderedElement>,
    /// Physical list position just past the last scanned element; a cursor
    /// resuming here continues the scan without re-walking the prefix.
    pub next_physical: usize,
    /// Total number of elements of the list visible to the caller.
    pub visible_total: usize,
    /// Whether the scan reached the physical end of the list.
    pub exhausted: bool,
    /// Insert generation of the list when the batch was served.  Opening a
    /// cursor from this batch compares generations: if an insert moved the
    /// list in between, the position is re-derived instead of trusted.
    pub generation: u64,
}

/// One request of a cross-user shard batch: either a fresh ranged fetch or a
/// cursor resumption, tagged with the group filter of the user behind it.
/// Unlike [`ListStore::fetch_ranged_many`] — which serves one user's
/// multi-term round under a single filter — a job batch mixes requests from
/// *different* users, so each job carries its own visibility context.
///
/// The job *owns* its group filter (a shared `Arc` slice): a shard bucket of
/// jobs is a `Send + 'static` unit of work, so a persistent shard worker can
/// execute it without borrowing the scheduler's stack.
#[derive(Debug, Clone)]
pub struct StoreJob {
    /// The ranged fetch parameters.  For cursor jobs only `count` is used
    /// (the session remembers its own list and position).
    pub fetch: RangedFetch,
    /// Cursor session to resume; [`CursorId::NONE`] serves `fetch` as a
    /// fresh ranged scan instead.
    pub cursor: CursorId,
    /// Owner tag of the cursor session (ignored for ranged jobs).
    pub owner: u64,
    /// Groups visible to the requesting user (`None` = unrestricted).
    /// Shared, not borrowed: many jobs of one round typically point at the
    /// same authenticated user's group set.
    pub accessible: Option<Arc<[GroupId]>>,
}

impl StoreJob {
    /// A fresh ranged-fetch job (copies the filter into a shared slice; use
    /// [`StoreJob::ranged_shared`] to reuse one allocation across jobs).
    pub fn ranged(fetch: RangedFetch, accessible: Option<&[GroupId]>) -> Self {
        Self::ranged_shared(fetch, accessible.map(Arc::from))
    }

    /// A fresh ranged-fetch job over an already-shared group filter.
    pub fn ranged_shared(fetch: RangedFetch, accessible: Option<Arc<[GroupId]>>) -> Self {
        StoreJob {
            fetch,
            cursor: CursorId::NONE,
            owner: 0,
            accessible,
        }
    }

    /// A cursor-resumption job (copies the filter into a shared slice; use
    /// [`StoreJob::resume_shared`] to reuse one allocation across jobs).
    pub fn resume(
        cursor: CursorId,
        owner: u64,
        count: usize,
        accessible: Option<&[GroupId]>,
    ) -> Self {
        Self::resume_shared(cursor, owner, count, accessible.map(Arc::from))
    }

    /// A cursor-resumption job over an already-shared group filter.
    pub fn resume_shared(
        cursor: CursorId,
        owner: u64,
        count: usize,
        accessible: Option<Arc<[GroupId]>>,
    ) -> Self {
        StoreJob {
            fetch: RangedFetch {
                list: MergedListId(0),
                offset: 0,
                count,
            },
            cursor,
            owner,
            accessible,
        }
    }

    /// The job's group filter as a plain slice (`None` = unrestricted).
    pub fn accessible(&self) -> Option<&[GroupId]> {
        self.accessible.as_deref()
    }
}

/// Outcome of one [`ListStore::execute_shard_batch`] round.
#[derive(Debug)]
pub struct ShardBatchOutput {
    /// Per-job results, aligned with the input order.
    pub results: Vec<Result<RangedBatch, StoreError>>,
    /// Shard-lock acquisitions the round needed: sharded engines take each
    /// touched shard's lock once, the single-mutex engine takes one lock for
    /// the whole round.
    pub lock_acquisitions: u64,
}

/// One shard's unit of work inside a batch round: the indices (into the
/// round's job slice) of the jobs this bucket serves, all routed to `shard`.
///
/// A bucket is the granularity a shard worker executes at: serving it takes
/// only its own shard's lock, so buckets of *different* shards — and, because
/// batch serving holds the shard lock shared, even buckets of the *same*
/// shard — may run concurrently.  Within a bucket, jobs stay in the engine's
/// serving order (grouped by list / cursor session), and a planner never
/// splits jobs of one cursor session or one list across buckets, so
/// same-session resumptions answer exactly like a sequential round.
#[derive(Debug, Clone)]
pub struct ShardJobBucket {
    /// The shard every job of this bucket routes to.
    pub shard: usize,
    /// Indices into the round's job slice, in serving order.
    pub jobs: Vec<usize>,
}

/// The routing plan of one batch round: executable buckets plus the jobs
/// that could not be routed at all (unknown list, malformed cursor id) —
/// those fail per-job without ever touching a shard.
#[derive(Debug)]
pub struct ShardJobPlan {
    /// Executable buckets, ordered by shard (the sequential execution order).
    pub buckets: Vec<ShardJobBucket>,
    /// `(job index, error)` for jobs no shard can serve.
    pub unroutable: Vec<(usize, StoreError)>,
}

impl ShardJobPlan {
    /// Total jobs across all executable buckets.
    pub fn routed_jobs(&self) -> usize {
        self.buckets.iter().map(|b| b.jobs.len()).sum()
    }

    /// Size of the largest bucket (0 for an empty plan).
    pub fn max_bucket_jobs(&self) -> usize {
        self.buckets.iter().map(|b| b.jobs.len()).max().unwrap_or(0)
    }
}

/// Outcome of executing one [`ShardJobBucket`].
#[derive(Debug)]
pub struct ShardBucketOutput {
    /// Per-job results, aligned with the bucket's `jobs` order.
    pub results: Vec<Result<RangedBatch, StoreError>>,
    /// Shard-lock acquisitions serving the bucket needed.
    pub lock_acquisitions: u64,
}

/// Counters of one session table (aggregated across shards by
/// [`ListStore::session_stats`]): occupancy and eviction pressure of the
/// cursor-session machinery under a query workload.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Sessions currently open.
    pub open: usize,
    /// Sessions opened since the store was built.
    pub opened_total: u64,
    /// Sessions evicted because the table hit [`MAX_CURSORS_PER_TABLE`].
    pub capacity_evictions: u64,
    /// Sessions expired because they sat idle for more than
    /// [`SESSION_TTL_TICKS`] logical clock ticks.
    pub ttl_evictions: u64,
    /// Current logical clock (requests served by the table(s)).
    pub clock: u64,
}

impl SessionStats {
    fn absorb(&mut self, other: SessionStats) {
        self.open += other.open;
        self.opened_total += other.opened_total;
        self.capacity_evictions += other.capacity_evictions;
        self.ttl_evictions += other.ttl_evictions;
        self.clock += other.clock;
    }

    /// Sums per-shard stats into one table-wide view (clocks add up, so the
    /// aggregate clock counts requests across all shards).
    pub fn aggregate(stats: impl IntoIterator<Item = SessionStats>) -> SessionStats {
        let mut total = SessionStats::default();
        for s in stats {
            total.absorb(s);
        }
        total
    }
}

/// Storage engine interface of the untrusted index server.
///
/// All methods take `&self`: implementations provide interior mutability and
/// are safe to share across server worker threads.
pub trait ListStore: Send + Sync + std::fmt::Debug {
    /// The merge plan (term → merged list) underlying the stored index.
    fn plan(&self) -> &MergePlan;

    /// Number of independent shards (1 for unsharded implementations).
    fn num_shards(&self) -> usize;

    /// The shard a merged list is assigned to.
    fn shard_of(&self, list: MergedListId) -> usize;

    /// Number of merged posting lists hosted.
    fn num_lists(&self) -> usize {
        self.plan().num_lists()
    }

    /// Total number of posting elements hosted.
    fn num_elements(&self) -> usize;

    /// Total bytes stored for the index (sealed payloads + TRS).  This is
    /// the *logical* byte accounting of the experiments and is identical
    /// across engines.
    fn stored_bytes(&self) -> usize;

    /// Total ciphertext bytes across all elements (for wire-size accounting).
    fn ciphertext_bytes(&self) -> usize;

    /// Estimated bytes of memory the engine's physical representation
    /// occupies — what the compressed-segment engine is measured against.
    fn resident_bytes(&self) -> usize;

    /// Bytes of index state spilled to secondary storage (0 for the
    /// in-memory engines).  For the spill engine,
    /// `spilled_bytes + resident_bytes` approximates the in-memory segment
    /// engine's resident footprint: the same encoded pages, just cold ones
    /// living on disk.
    fn spilled_bytes(&self) -> usize {
        0
    }

    /// Pages read back (and re-validated) from secondary storage since the
    /// store was built (0 for the in-memory engines).
    fn page_faults(&self) -> u64 {
        0
    }

    /// Pages evicted from the page cache since the store was built (0 for
    /// the in-memory engines).
    fn page_evictions(&self) -> u64 {
        0
    }

    /// Page-cache hits since the store was built (0 for the in-memory
    /// engines).  `hits / (hits + faults)` is the cache hit rate of the
    /// serving workload.
    fn page_cache_hits(&self) -> u64 {
        0
    }

    /// Physical length of the on-disk page files backing the spilled state
    /// (0 for the in-memory engines).  Exceeds [`ListStore::spilled_bytes`]
    /// by the dead bytes interior rebuilds strand in the append-only files.
    fn page_file_bytes(&self) -> usize {
        0
    }

    /// Dead (stranded) bytes in the on-disk page files: space held by pages
    /// that were superseded by rebuilds and await compaction.
    fn dead_page_bytes(&self) -> usize {
        0
    }

    /// Page-file compactions completed since the store was built.
    fn compactions(&self) -> u64 {
        0
    }

    /// Sealed segments promoted from disk to the resident tier by the
    /// access-driven retier pass since the store was built.
    fn promotions(&self) -> u64 {
        0
    }

    /// Sealed segments demoted from the resident tier to disk by the
    /// access-driven retier pass since the store was built.
    fn demotions(&self) -> u64 {
        0
    }

    /// Write-ahead-log records appended since the store was built or opened
    /// (0 for non-durable engines).
    fn wal_appends(&self) -> u64 {
        0
    }

    /// Write-ahead-log bytes appended since the store was built or opened
    /// (0 for non-durable engines).
    fn wal_bytes(&self) -> u64 {
        0
    }

    /// Checkpoint pages read back, validated and adopted during recovery
    /// (0 for non-durable engines and freshly created stores).
    fn recovered_pages(&self) -> u64 {
        0
    }

    /// Torn or corrupt WAL tail records discarded during recovery — the log
    /// was truncated at the last valid record (0 for non-durable engines).
    fn truncated_wal_records(&self) -> u64 {
        0
    }

    /// Replication frames received and applied by this store (0 for
    /// anything that is not a replica).
    fn frames_streamed(&self) -> u64 {
        0
    }

    /// Replication frames skipped as already applied — duplicates and
    /// retransmissions the idempotent apply discarded (0 for non-replicas).
    fn frames_skipped(&self) -> u64 {
        0
    }

    /// Full snapshot re-bootstraps a replica performed because the WAL tail
    /// it needed was no longer available (0 for non-replicas).
    fn resnapshots(&self) -> u64 {
        0
    }

    /// Transport reconnects the replica's catch-up loop performed (0 for
    /// non-replicas).
    fn reconnects(&self) -> u64 {
        0
    }

    /// Current replication lag in sequence numbers — the largest per-shard
    /// gap between the primary's last known head and this store's applied
    /// sequence (0 for non-replicas; a gauge, not a counter).
    fn replica_lag(&self) -> u64 {
        0
    }

    /// Physical length of one merged list.
    fn list_len(&self, list: MergedListId) -> Result<usize, StoreError>;

    /// Number of elements of the list visible to a user with access to
    /// `accessible` groups (`None` = unrestricted).
    fn visible_len(
        &self,
        list: MergedListId,
        accessible: Option<&[GroupId]>,
    ) -> Result<usize, StoreError>;

    /// A full copy of one ordered list (audits and tests only).
    fn snapshot_list(&self, list: MergedListId) -> Result<Vec<OrderedElement>, StoreError>;

    /// Serves one ranged fetch: skips `offset` visible elements from the top
    /// of the list, then returns up to `count` visible elements.
    fn fetch_ranged(
        &self,
        fetch: &RangedFetch,
        accessible: Option<&[GroupId]>,
    ) -> Result<RangedBatch, StoreError>;

    /// Serves a batch of ranged fetches on behalf of one user.
    /// Implementations group the fetches by shard and acquire each shard
    /// lock only once, so a multi-term query visits each shard a single
    /// time.  Results align with the input order.
    fn fetch_ranged_many(
        &self,
        fetches: &[RangedFetch],
        accessible: Option<&[GroupId]>,
    ) -> Vec<Result<RangedBatch, StoreError>> {
        // One shared filter allocation for the whole batch.
        let shared: Option<Arc<[GroupId]>> = accessible.map(Arc::from);
        let jobs: Vec<StoreJob> = fetches
            .iter()
            .map(|&fetch| StoreJob::ranged_shared(fetch, shared.clone()))
            .collect();
        self.execute_shard_batch(&jobs).results
    }

    /// Routes a cross-user batch of fetch/cursor jobs into executable
    /// per-shard buckets.  `max_bucket_jobs` caps the bucket size so a
    /// worker pool can split one hot shard's work into several concurrently
    /// executable (and stealable) units; jobs of one list or one cursor
    /// session are never split across buckets, so same-session resumptions
    /// keep their input order.  Engines whose natural serving unit is the
    /// whole round (the single-mutex store) may ignore the cap.
    fn plan_shard_batch(&self, jobs: &[StoreJob], max_bucket_jobs: usize) -> ShardJobPlan;

    /// Executes one planned bucket, taking only that bucket's shard lock
    /// (shared), so buckets may execute concurrently — on different shards
    /// and even on the same shard.  Results align with the bucket's `jobs`
    /// order; a job that fails (stale cursor) errors individually.
    fn execute_shard_bucket(&self, jobs: &[StoreJob], bucket: &ShardJobBucket)
        -> ShardBucketOutput;

    /// Executes a cross-user batch of fetch/cursor jobs, visiting each shard
    /// under a **single** lock acquisition.  This is the storage half of the
    /// batched scheduler: jobs from many users (each with its own group
    /// filter) are bucketed by shard, every bucket is served under one read
    /// lock, and results are reassembled in input order.  A job that fails
    /// (unknown list, stale cursor) errors individually without disturbing
    /// the rest of the batch.
    ///
    /// Provided in terms of [`ListStore::plan_shard_batch`] (uncapped, one
    /// bucket per touched shard) and [`ListStore::execute_shard_bucket`],
    /// executed sequentially in shard order — the worker pool runs the same
    /// plan/execute seam concurrently.
    fn execute_shard_batch(&self, jobs: &[StoreJob]) -> ShardBatchOutput {
        let plan = self.plan_shard_batch(jobs, usize::MAX);
        let mut results: Vec<Option<Result<RangedBatch, StoreError>>> = vec![None; jobs.len()];
        for (i, e) in plan.unroutable {
            results[i] = Some(Err(e));
        }
        let mut lock_acquisitions = 0u64;
        for bucket in &plan.buckets {
            let out = self.execute_shard_bucket(jobs, bucket);
            lock_acquisitions += out.lock_acquisitions;
            for (&i, result) in bucket.jobs.iter().zip(out.results) {
                results[i] = Some(result);
            }
        }
        ShardBatchOutput {
            results: results
                .into_iter()
                .map(|r| {
                    r.unwrap_or(Err(StoreError::Invariant(
                        "every job is routed or unroutable",
                    )))
                })
                .collect(),
            lock_acquisitions,
        }
    }

    /// Shard-lock acquisitions performed by the serving paths (fetches,
    /// cursor operations, inserts and batch rounds) since the store was
    /// built.  Audit accessors (element/byte totals, ordering checks) are
    /// not metered, so the counter reflects request-serving lock traffic.
    fn lock_acquisitions(&self) -> u64;

    /// Opens a cursor session continuing after `batch` (previously obtained
    /// from a ranged fetch on `list`).  `owner` is an opaque session tag;
    /// subsequent [`ListStore::cursor_fetch`] calls must present the same
    /// tag.  `delivered` is the number of visible elements (under
    /// `accessible`) the session has received so far: if inserts moved the
    /// list between the fetch and this call (detected via
    /// [`RangedBatch::generation`]), the implementation re-derives the
    /// position from `delivered` instead of trusting the stale
    /// `next_physical`, so follow-ups neither skip nor repeat elements.
    fn open_cursor(
        &self,
        list: MergedListId,
        owner: u64,
        batch: &RangedBatch,
        delivered: usize,
        accessible: Option<&[GroupId]>,
    ) -> Result<CursorId, StoreError>;

    /// Resumes a cursor: scans from the stored physical position, returns up
    /// to `count` visible elements and advances the cursor past the scanned
    /// range.
    fn cursor_fetch(
        &self,
        cursor: CursorId,
        owner: u64,
        count: usize,
        accessible: Option<&[GroupId]>,
    ) -> Result<RangedBatch, StoreError>;

    /// Closes a cursor session (idempotent).  The caller must present the
    /// session's `owner` tag: a foreign tag leaves the session untouched, so
    /// one user cannot tear down another user's session by guessing its id.
    fn close_cursor(&self, cursor: CursorId, owner: u64);

    /// Number of currently open cursors.
    fn open_cursors(&self) -> usize;

    /// Occupancy and eviction pressure of the cursor-session tables.
    fn session_stats(&self) -> SessionStats;

    /// Elements individually examined for visibility accounting since the
    /// store was built (the scan-cost assertions read this; cached cursor
    /// follow-ups and block-counted segment lookups leave it untouched).
    fn visibility_scan_cost(&self) -> u64;

    /// Inserts a sealed element at its TRS position, returning the physical
    /// insertion index.  Open cursors on the list positioned after the
    /// insertion point are shifted so they neither skip nor repeat elements.
    fn insert(&self, list: MergedListId, element: OrderedElement) -> Result<usize, StoreError>;

    /// Checks the descending-TRS invariant of every list.
    fn verify_ordering(&self) -> bool;
}

/// The physical representation of one ordered merged list.
///
/// The cursor-session table ([`ListTable`]) and both concurrency wrappers
/// are generic over this trait, so every layout inherits identical session,
/// generation and eviction behaviour.  All positions are *physical* indices
/// in the logical descending-TRS sequence; implementations must agree
/// element-for-element with the reference `Vec` layout.
pub trait OrderedList: Send + Sync + std::fmt::Debug {
    /// Number of elements held.
    fn len(&self) -> usize;

    /// Whether the list holds no elements.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A full ordered copy of the list (audits and tests only).  Layouts
    /// backed by spilled pages may fail here if a page no longer decodes.
    fn snapshot(&self) -> Result<Vec<OrderedElement>, StoreError>;

    /// Number of elements visible under `accessible`.  `meter` counts the
    /// elements *individually examined* to produce the answer — layouts with
    /// aggregate visibility metadata (per-block group counts) answer without
    /// touching elements and charge (almost) nothing.
    fn visible_total(&self, accessible: Option<&[GroupId]>, meter: &AtomicU64) -> usize;

    /// Scans from physical index `start`, skipping `skip` visible elements,
    /// then collecting up to `count` visible elements.  Returns the
    /// collected elements and the physical index just past the last scanned
    /// element (`max(len, start)` if the scan ran off the end).  Fallible:
    /// a layout reading spilled pages surfaces corrupt or unreadable pages
    /// as a [`StoreError`] instead of panicking.
    fn scan(
        &self,
        start: usize,
        skip: usize,
        count: usize,
        accessible: Option<&[GroupId]>,
    ) -> Result<(Vec<OrderedElement>, usize), StoreError>;

    /// The physical index just past the first `delivered` visible elements —
    /// where a session that has received `delivered` elements resumes.
    fn position_after_visible(
        &self,
        delivered: usize,
        accessible: Option<&[GroupId]>,
    ) -> Result<usize, StoreError>;

    /// Inserts an element at its TRS position (after strictly greater,
    /// before equal), returning the physical insertion index.  Fails —
    /// without corrupting the list — if the element cannot be encoded
    /// ([`StoreError::SegmentOverflow`]) or a spilled page it must touch
    /// cannot be read back.
    fn insert(&mut self, element: OrderedElement) -> Result<usize, StoreError>;

    /// Logical bytes stored (sealed payloads + TRS) — identical across
    /// layouts, used by the byte-budget experiments.
    fn stored_bytes(&self) -> usize;

    /// Total ciphertext bytes across the elements.
    fn ciphertext_bytes(&self) -> usize;

    /// Estimated bytes of memory the representation actually occupies
    /// (structs, heap buffers, metadata) — what the compression experiments
    /// compare across engines.
    fn resident_bytes(&self) -> usize;

    /// Checks the descending-TRS invariant.
    fn ordering_ok(&self) -> bool;
}

/// Per-element metadata of the arena layout: the fields scans inspect, plus
/// the span of the element's ciphertext inside the list arena.
#[derive(Debug, Clone, Copy)]
struct ElemMeta {
    trs: f64,
    group: GroupId,
    sealed_group: GroupId,
    offset: usize,
    len: u32,
}

/// The reference layout: per-element metadata in one dense vec plus a single
/// bump arena holding every sealed ciphertext back to back.  The earlier
/// one-heap-`Vec<u8>`-per-element representation paid allocator overhead per
/// element, which made the resident-bytes comparison against the compressed
/// segment engine unfair; one arena per list is what a production `Vec`
/// engine would do anyway.
#[derive(Debug, Default)]
pub struct VecList {
    meta: Vec<ElemMeta>,
    arena: Vec<u8>,
}

impl VecList {
    /// Builds the list from its ordered (descending-TRS) elements.
    pub fn from_elements(elements: Vec<OrderedElement>) -> Self {
        let total: usize = elements.iter().map(|e| e.sealed.ciphertext.len()).sum();
        let mut arena = Vec::with_capacity(total);
        let mut meta = Vec::with_capacity(elements.len());
        for e in elements {
            let offset = arena.len();
            arena.extend_from_slice(&e.sealed.ciphertext);
            meta.push(ElemMeta {
                trs: e.trs,
                group: e.group,
                sealed_group: e.sealed.group,
                offset,
                len: u32::try_from(e.sealed.ciphertext.len())
                    // analyze::allow(panic): oversized ciphertexts are rejected upstream by element_fits and the insert bounds; this constructor is also the test-fixture path
                    .expect("sealed ciphertext exceeds u32 length"),
            });
        }
        VecList { meta, arena }
    }

    /// Rebuilds the full `OrderedElement` at physical index `i`.
    fn materialize(&self, i: usize) -> OrderedElement {
        let m = &self.meta[i];
        OrderedElement {
            trs: m.trs,
            group: m.group,
            sealed: EncryptedElement {
                group: m.sealed_group,
                ciphertext: self.arena[m.offset..m.offset + m.len as usize].to_vec(),
            },
        }
    }
}

impl OrderedList for VecList {
    fn len(&self) -> usize {
        self.meta.len()
    }

    fn snapshot(&self) -> Result<Vec<OrderedElement>, StoreError> {
        Ok((0..self.meta.len()).map(|i| self.materialize(i)).collect())
    }

    fn visible_total(&self, accessible: Option<&[GroupId]>, meter: &AtomicU64) -> usize {
        match accessible {
            None => self.meta.len(),
            Some(groups) => {
                // Group-filtered counts examine every element of the list.
                meter.fetch_add(self.meta.len() as u64, Ordering::Relaxed);
                self.meta
                    .iter()
                    .filter(|m| groups.contains(&m.group))
                    .count()
            }
        }
    }

    fn scan(
        &self,
        start: usize,
        skip: usize,
        count: usize,
        accessible: Option<&[GroupId]>,
    ) -> Result<(Vec<OrderedElement>, usize), StoreError> {
        let mut elements = Vec::with_capacity(count.min(self.meta.len().saturating_sub(start)));
        let mut skipped = 0usize;
        let mut next = self.meta.len().max(start);
        for i in start..self.meta.len() {
            if !is_visible_group(self.meta[i].group, accessible) {
                continue;
            }
            if skipped < skip {
                skipped += 1;
                continue;
            }
            elements.push(self.materialize(i));
            if elements.len() == count {
                next = i + 1;
                break;
            }
        }
        Ok((elements, next))
    }

    fn position_after_visible(
        &self,
        delivered: usize,
        accessible: Option<&[GroupId]>,
    ) -> Result<usize, StoreError> {
        let mut seen = 0usize;
        for (i, m) in self.meta.iter().enumerate() {
            if seen == delivered {
                return Ok(i);
            }
            if is_visible_group(m.group, accessible) {
                seen += 1;
            }
        }
        Ok(self.meta.len())
    }

    fn insert(&mut self, element: OrderedElement) -> Result<usize, StoreError> {
        // After every element with a strictly larger TRS, before equal ones
        // (the binary search of Section 5, identical to
        // `OrderedIndex::insert_sealed`).
        let pos = self.meta.partition_point(|m| m.trs > element.trs);
        let offset = self
            .meta
            .get(pos)
            .map_or(self.arena.len(), |next| next.offset);
        let len = u32::try_from(element.sealed.ciphertext.len())
            .map_err(|_| StoreError::SegmentOverflow)?;
        self.arena.splice(offset..offset, element.sealed.ciphertext);
        for m in &mut self.meta[pos..] {
            m.offset += len as usize;
        }
        self.meta.insert(
            pos,
            ElemMeta {
                trs: element.trs,
                group: element.group,
                sealed_group: element.sealed.group,
                offset,
                len,
            },
        );
        Ok(pos)
    }

    fn stored_bytes(&self) -> usize {
        // `EncryptedElement::stored_bytes` is ciphertext + 4-byte group tag.
        self.arena.len() + self.meta.len() * (4 + TRS_BYTES)
    }

    fn ciphertext_bytes(&self) -> usize {
        self.arena.len()
    }

    fn resident_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.meta.capacity() * std::mem::size_of::<ElemMeta>()
            + self.arena.capacity()
    }

    fn ordering_ok(&self) -> bool {
        self.meta.windows(2).all(|w| w[0].trs >= w[1].trs)
    }
}

/// Open cursors a session table holds before the oldest is evicted
/// (abandoned sessions must not grow the table without bound).  Applied per
/// shard by the sharded store and to the whole table by the single-mutex
/// store.
pub(crate) const MAX_CURSORS_PER_TABLE: usize = 1024;

/// Idle sessions older than this many logical clock ticks (one tick per
/// request the table serves) are expired the next time the session table is
/// written.  Large enough that any live client walking a list keeps its
/// session; small enough that a table of abandoned sessions drains under
/// ongoing traffic instead of waiting for capacity pressure.
pub const SESSION_TTL_TICKS: u64 = 1 << 14;

/// One cursor session: the local slot of its list, the physical position of
/// the next element to scan, and the cached visibility state of its owner.
/// Position and cached count are atomic so a follow-up can read them under a
/// shared read lock; inserts adjust both under the exclusive lock.
#[derive(Debug)]
struct Cursor {
    slot: usize,
    owner: u64,
    position: AtomicUsize,
    /// The group filter the session was opened with (`None` = unrestricted).
    groups: Option<Box<[GroupId]>>,
    /// Cached `visible_total` under `groups`, maintained by the insert path
    /// under the same write lock — follow-ups answer without re-counting.
    visible: AtomicUsize,
    /// Logical clock value of the session's last use (for TTL expiry).
    last_used: AtomicU64,
}

/// The storage state owned by one lock domain — a shard of the sharded
/// store, or the whole single-mutex store: the ordered lists, their insert
/// generations, and the cursor sessions bound to them.  Keeping cursors in
/// the same lock domain as their lists means the position and visibility
/// adjustments an insert must apply happen under the same exclusive lock as
/// the insert.
#[derive(Debug)]
pub(crate) struct ListTable<L> {
    lists: Vec<L>,
    generations: Vec<u64>,
    cursors: std::collections::HashMap<u64, Cursor>,
    /// Logical clock: ticks once per request served by this table.
    clock: AtomicU64,
    /// Elements individually examined for visibility accounting (the
    /// scan-cost assertion of the cursor cache reads this).
    scan_meter: AtomicU64,
    /// Clock value of the last TTL sweep.  Read paths use it to decide when
    /// a sweep is due, so a read-heavy workload still reclaims idle
    /// sessions (writes always sweep).
    last_sweep: AtomicU64,
    opened: u64,
    capacity_evictions: u64,
    ttl_evictions: u64,
}

impl<L> Default for ListTable<L> {
    fn default() -> Self {
        ListTable {
            lists: Vec::new(),
            generations: Vec::new(),
            cursors: std::collections::HashMap::new(),
            clock: AtomicU64::new(0),
            scan_meter: AtomicU64::new(0),
            last_sweep: AtomicU64::new(0),
            opened: 0,
            capacity_evictions: 0,
            ttl_evictions: 0,
        }
    }
}

impl<L: OrderedList> ListTable<L> {
    /// Appends one list (used while partitioning an index into tables).
    pub fn push_list(&mut self, list: L) {
        self.lists.push(list);
        self.generations.push(0);
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The list stored at a local slot.
    pub fn list(&self, slot: usize) -> &L {
        &self.lists[slot]
    }

    /// All lists of the table (tiering/compaction maintenance passes).
    pub fn lists(&self) -> &[L] {
        &self.lists
    }

    /// Mutable access to all lists of the table (tiering/compaction
    /// maintenance passes run under the owning shard's write lock).
    pub fn lists_mut(&mut self) -> &mut [L] {
        &mut self.lists
    }

    /// Total elements across the table's lists.
    pub fn num_elements(&self) -> usize {
        self.lists.iter().map(L::len).sum()
    }

    /// Logical stored bytes across the table's lists.
    pub fn stored_bytes(&self) -> usize {
        self.lists.iter().map(L::stored_bytes).sum()
    }

    /// Ciphertext bytes across the table's lists.
    pub fn ciphertext_bytes(&self) -> usize {
        self.lists.iter().map(L::ciphertext_bytes).sum()
    }

    /// Estimated resident bytes of the physical representation.
    pub fn resident_bytes(&self) -> usize {
        self.lists.iter().map(L::resident_bytes).sum()
    }

    /// Number of elements of a slot visible under `accessible`.
    pub fn visible_total(&self, slot: usize, accessible: Option<&[GroupId]>) -> usize {
        self.lists[slot].visible_total(accessible, &self.scan_meter)
    }

    /// Elements individually examined for visibility accounting so far.
    pub fn visibility_scan_cost(&self) -> u64 {
        self.scan_meter.load(Ordering::Relaxed)
    }

    /// Session-table pressure counters.
    pub fn session_stats(&self) -> SessionStats {
        SessionStats {
            open: self.cursors.len(),
            opened_total: self.opened,
            capacity_evictions: self.capacity_evictions,
            ttl_evictions: self.ttl_evictions,
            clock: self.clock.load(Ordering::Relaxed),
        }
    }

    /// Serves one ranged fetch against a slot.
    pub fn fetch(
        &self,
        slot: usize,
        offset: usize,
        count: usize,
        accessible: Option<&[GroupId]>,
    ) -> Result<RangedBatch, StoreError> {
        self.tick();
        let list = &self.lists[slot];
        let visible_total = list.visible_total(accessible, &self.scan_meter);
        let (elements, next_physical) = list.scan(0, offset, count, accessible)?;
        Ok(RangedBatch {
            elements,
            exhausted: next_physical >= list.len(),
            next_physical,
            visible_total,
            generation: self.generations[slot],
        })
    }

    /// Whether a TTL sweep is due: at most one sweep per
    /// [`SESSION_TTL_TICKS`] window, and only while sessions exist.  Read
    /// paths (cursor advances, shard batch rounds) check this under the
    /// shared lock and upgrade to [`ListTable::sweep_expired`] when true, so
    /// a read-only workload with stable cursors still drains idle sessions.
    pub fn ttl_sweep_due(&self) -> bool {
        !self.cursors.is_empty()
            && self
                .clock
                .load(Ordering::Relaxed)
                .saturating_sub(self.last_sweep.load(Ordering::Relaxed))
                >= SESSION_TTL_TICKS
    }

    /// Expires every session idle for more than [`SESSION_TTL_TICKS`] ticks.
    pub fn sweep_expired(&mut self) {
        let now = self.clock.load(Ordering::Relaxed);
        let before = self.cursors.len();
        self.cursors.retain(|_, c| {
            now.saturating_sub(c.last_used.load(Ordering::Relaxed)) <= SESSION_TTL_TICKS
        });
        self.ttl_evictions += (before - self.cursors.len()) as u64;
        self.last_sweep.store(now, Ordering::Relaxed);
    }

    /// Opens a cursor session with the caller-allocated id `raw`, continuing
    /// after `batch`.  If inserts moved the list since the batch was served
    /// (generation mismatch), the position is re-derived by skipping the
    /// `delivered` visible elements the session has already received.
    /// Before inserting, idle sessions past [`SESSION_TTL_TICKS`] are
    /// expired, then capacity pressure evicts the oldest session.
    pub fn open_cursor(
        &mut self,
        raw: u64,
        slot: usize,
        owner: u64,
        batch: &RangedBatch,
        delivered: usize,
        accessible: Option<&[GroupId]>,
    ) -> Result<(), StoreError> {
        let now = self.tick();
        self.sweep_expired();
        if self.cursors.len() >= MAX_CURSORS_PER_TABLE {
            // Evict the oldest (smallest-id) abandoned session.
            if let Some(&oldest) = self.cursors.keys().min() {
                self.cursors.remove(&oldest);
                self.capacity_evictions += 1;
            }
        }
        let list = &self.lists[slot];
        let (position, visible) = if batch.generation == self.generations[slot] {
            (batch.next_physical.min(list.len()), batch.visible_total)
        } else {
            (
                list.position_after_visible(delivered, accessible)?,
                list.visible_total(accessible, &self.scan_meter),
            )
        };
        self.opened += 1;
        self.cursors.insert(
            raw,
            Cursor {
                slot,
                owner,
                position: AtomicUsize::new(position),
                groups: accessible.map(|g| g.to_vec().into_boxed_slice()),
                visible: AtomicUsize::new(visible),
                last_used: AtomicU64::new(now),
            },
        );
        Ok(())
    }

    /// Resumes a cursor: scans from its stored physical position and
    /// advances it past the scanned range.  A compare-exchange loop makes a
    /// concurrent fetch of the same cursor (a retried follow-up) re-scan
    /// from the freshly observed position instead of rewinding or
    /// duplicating elements.  The visibility total comes from the session
    /// cache when the caller presents the group filter the session was
    /// opened with, so a follow-up never re-counts the list.
    pub fn cursor_fetch(
        &self,
        raw: u64,
        owner: u64,
        count: usize,
        accessible: Option<&[GroupId]>,
    ) -> Result<RangedBatch, StoreError> {
        let now = self.tick();
        let cursor = self
            .cursors
            .get(&raw)
            .filter(|c| c.owner == owner)
            .ok_or(StoreError::UnknownCursor(raw))?;
        cursor.last_used.store(now, Ordering::Relaxed);
        let list = &self.lists[cursor.slot];
        let generation = self.generations[cursor.slot];
        let visible_total = if cursor.groups.as_deref() == accessible {
            cursor.visible.load(Ordering::Relaxed)
        } else {
            // A follow-up under a different filter than the session was
            // opened with (never produced by the protocol): stay correct by
            // paying the full count.
            list.visible_total(accessible, &self.scan_meter)
        };
        let mut start = cursor.position.load(Ordering::Acquire);
        loop {
            let (elements, next_physical) = list.scan(start, 0, count, accessible)?;
            match cursor.position.compare_exchange(
                start,
                next_physical,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    return Ok(RangedBatch {
                        elements,
                        exhausted: next_physical >= list.len(),
                        next_physical,
                        visible_total,
                        generation,
                    })
                }
                Err(current) => start = current,
            }
        }
    }

    /// Closes a session if `owner` matches its tag (idempotent; a foreign
    /// tag is a no-op).
    pub fn close_cursor(&mut self, raw: u64, owner: u64) {
        if self.cursors.get(&raw).is_some_and(|c| c.owner == owner) {
            self.cursors.remove(&raw);
        }
    }

    /// Number of open sessions.
    pub fn open_cursors(&self) -> usize {
        self.cursors.len()
    }

    /// Inserts an element at its TRS position, bumps the list generation and
    /// shifts cursors that already scanned past the insertion point so they
    /// neither repeat the shifted element nor skip one.  A cursor exactly at
    /// the insertion point stays: the new element is its next in TRS order.
    /// Cached visibility totals of sessions that can see the new element are
    /// bumped under this same write lock.
    pub fn insert(&mut self, slot: usize, element: OrderedElement) -> Result<usize, StoreError> {
        let group = element.group;
        let pos = self.lists[slot].insert(element)?;
        self.generations[slot] += 1;
        for cursor in self.cursors.values() {
            if cursor.slot != slot {
                continue;
            }
            if cursor.position.load(Ordering::Relaxed) > pos {
                cursor.position.fetch_add(1, Ordering::Relaxed);
            }
            let sees_it = match cursor.groups.as_deref() {
                None => true,
                Some(groups) => groups.contains(&group),
            };
            if sees_it {
                cursor.visible.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(pos)
    }

    /// Descending-TRS invariant over every list of the table.
    pub fn ordering_ok(&self) -> bool {
        self.lists.iter().all(|l| l.ordering_ok())
    }
}

/// Whether an element is visible to a user restricted to `accessible` groups.
pub(crate) fn is_visible(element: &OrderedElement, accessible: Option<&[GroupId]>) -> bool {
    is_visible_group(element.group, accessible)
}

/// Group-level visibility check (for scan paths that have not materialized
/// an element).
pub(crate) fn is_visible_group(group: GroupId, accessible: Option<&[GroupId]>) -> bool {
    match accessible {
        None => true,
        Some(groups) => groups.contains(&group),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerber_base::EncryptedElement;

    fn element(trs: f64, group: u32) -> OrderedElement {
        OrderedElement {
            trs,
            group: GroupId(group),
            sealed: EncryptedElement {
                group: GroupId(group),
                ciphertext: vec![0u8; 4],
            },
        }
    }

    fn list() -> Vec<OrderedElement> {
        vec![
            element(0.9, 0),
            element(0.8, 1),
            element(0.7, 0),
            element(0.6, 1),
            element(0.5, 0),
        ]
    }

    fn table() -> ListTable<VecList> {
        let mut table = ListTable::default();
        table.push_list(VecList::from_elements(list()));
        table
    }

    #[test]
    fn scan_skips_visible_elements_only() {
        let l = VecList::from_elements(list());
        let only_g0 = [GroupId(0)];
        let (elements, next) = l.scan(0, 1, 1, Some(&only_g0)).unwrap();
        // Skips the first group-0 element (0.9), returns the second (0.7).
        assert_eq!(elements.len(), 1);
        assert!((elements[0].trs - 0.7).abs() < 1e-12);
        assert_eq!(next, 3);
    }

    #[test]
    fn scan_from_start_resumes_mid_list() {
        let l = VecList::from_elements(list());
        let (elements, next) = l.scan(2, 0, 2, None).unwrap();
        assert_eq!(elements.len(), 2);
        assert!((elements[0].trs - 0.7).abs() < 1e-12);
        assert_eq!(next, 4);
        // Past the end: empty batch, next clamps to the list length.
        let (rest, end) = l.scan(next, 0, 10, None).unwrap();
        assert_eq!(rest.len(), 1);
        assert_eq!(end, l.len());
    }

    #[test]
    fn arena_layout_round_trips_and_splices_inserts() {
        let mut l = VecList::from_elements(list());
        assert_eq!(l.snapshot().unwrap(), list());
        assert_eq!(l.ciphertext_bytes(), 5 * 4);
        // An interior insert splices its ciphertext into the arena and
        // shifts the spans of everything after it.
        let e = element(0.65, 1);
        assert_eq!(l.insert(e.clone()).unwrap(), 3);
        let mut expected = list();
        expected.insert(3, e);
        assert_eq!(l.snapshot().unwrap(), expected);
        assert!(l.ordering_ok());
        assert_eq!(l.ciphertext_bytes(), 6 * 4);
        // Resident accounting covers exactly the meta vec and the arena.
        assert!(l.resident_bytes() >= std::mem::size_of::<VecList>() + 6 * 4);
    }

    #[test]
    fn batch_reports_visibility_and_exhaustion() {
        let table = table();
        let only_g1 = [GroupId(1)];
        let batch = table.fetch(0, 0, 10, Some(&only_g1)).unwrap();
        assert_eq!(batch.visible_total, 2);
        assert_eq!(batch.elements.len(), 2);
        assert!(batch.exhausted);
        assert_eq!(batch.generation, 0);
        let partial = table.fetch(0, 0, 2, None).unwrap();
        assert!(!partial.exhausted);
        assert_eq!(partial.next_physical, 2);
    }

    #[test]
    fn stale_batches_rederive_the_cursor_position() {
        // A table with one list; serve a batch, then let an insert land
        // before the cursor is opened — the TOCTOU the generation guards.
        let mut table = table();
        let batch = table.fetch(0, 0, 2, None).unwrap();
        assert_eq!(batch.generation, 0);
        // Insert at the head (TRS 1.0): every physical index shifts by one.
        assert_eq!(table.insert(0, element(1.0, 0)).unwrap(), 0);
        // Opening from the stale batch re-derives offset semantics: with 2
        // elements delivered the session resumes after the first 2 visible
        // elements of the *current* list ([1.0, 0.9, 0.8, ...] -> index 2).
        table.open_cursor(42, 0, 9, &batch, 2, None).unwrap();
        let resumed = table.cursor_fetch(42, 9, 1, None).unwrap();
        assert!((resumed.elements[0].trs - 0.8).abs() < 1e-12);
        // A fresh batch (matching generation) is trusted as-is: it delivered
        // [1.0, 0.9] and resumes exactly at 0.8.
        let fresh = table.fetch(0, 0, 2, None).unwrap();
        assert_eq!(fresh.generation, 1);
        table.open_cursor(43, 0, 9, &fresh, 2, None).unwrap();
        let resumed = table.cursor_fetch(43, 9, 1, None).unwrap();
        assert!((resumed.elements[0].trs - 0.8).abs() < 1e-12);
        assert_eq!(table.open_cursors(), 2);
        // A foreign owner tag cannot close the session; the real one can.
        table.close_cursor(42, 1234);
        assert_eq!(table.open_cursors(), 2);
        table.close_cursor(42, 9);
        table.close_cursor(43, 9);
        assert_eq!(table.open_cursors(), 0);
    }

    #[test]
    fn position_after_visible_respects_group_filters() {
        let l = VecList::from_elements(list());
        let only_g0 = [GroupId(0)];
        // After 1 delivered group-0 element the session resumes at index 1
        // (the first index past the 0.9 element); after 2, at index 3.
        assert_eq!(l.position_after_visible(0, Some(&only_g0)).unwrap(), 0);
        assert_eq!(l.position_after_visible(1, Some(&only_g0)).unwrap(), 1);
        assert_eq!(l.position_after_visible(2, Some(&only_g0)).unwrap(), 3);
        assert_eq!(l.position_after_visible(3, Some(&only_g0)).unwrap(), 5);
        assert_eq!(l.position_after_visible(99, None).unwrap(), 5);
    }

    #[test]
    fn insertion_point_is_stable_for_ties() {
        // Equal TRS inserts before the existing element.
        for (trs, want) in [(0.7, 2), (0.95, 0), (0.1, 5)] {
            let mut l = VecList::from_elements(list());
            assert_eq!(l.insert(element(trs, 0)).unwrap(), want, "trs {trs}");
        }
    }

    #[test]
    fn cursor_cache_answers_follow_ups_without_recounting() {
        let mut table = table();
        let only_g0 = [GroupId(0)];
        let batch = table.fetch(0, 0, 1, Some(&only_g0)).unwrap();
        assert_eq!(batch.visible_total, 3);
        table
            .open_cursor(7, 0, 1, &batch, 1, Some(&only_g0))
            .unwrap();
        let counted = table.visibility_scan_cost();
        // Follow-ups under the session's own filter never re-count.
        for _ in 0..3 {
            let b = table.cursor_fetch(7, 1, 1, Some(&only_g0)).unwrap();
            assert_eq!(b.visible_total, 3);
        }
        assert_eq!(table.visibility_scan_cost(), counted);
        // The insert path maintains the cache under the same lock: a new
        // group-0 element bumps the cached count, a group-1 one does not.
        table.insert(0, element(0.95, 0)).unwrap();
        table.insert(0, element(0.94, 1)).unwrap();
        let b = table.cursor_fetch(7, 1, 1, Some(&only_g0)).unwrap();
        assert_eq!(b.visible_total, 4);
        assert_eq!(table.visibility_scan_cost(), counted);
        assert_eq!(table.visible_total(0, Some(&only_g0)), 4);
        // A mismatched filter pays the full count but stays correct.
        let only_g1 = [GroupId(1)];
        let b = table.cursor_fetch(7, 1, 1, Some(&only_g1)).unwrap();
        assert_eq!(b.visible_total, 3);
        assert!(table.visibility_scan_cost() > counted);
    }

    #[test]
    fn idle_sessions_expire_after_the_ttl() {
        let mut table = table();
        let batch = table.fetch(0, 0, 1, None).unwrap();
        table.open_cursor(11, 0, 1, &batch, 1, None).unwrap();
        // Tick the logical clock past the TTL with plain requests.
        for _ in 0..=SESSION_TTL_TICKS {
            table.fetch(0, 0, 1, None).unwrap();
        }
        // A session used recently survives the sweep; the idle one expires
        // when the table is next written.
        table.open_cursor(12, 0, 1, &batch, 1, None).unwrap();
        assert_eq!(table.open_cursors(), 1);
        assert!(matches!(
            table.cursor_fetch(11, 1, 1, None),
            Err(StoreError::UnknownCursor(11))
        ));
        assert!(table.cursor_fetch(12, 1, 1, None).is_ok());
        let stats = table.session_stats();
        assert_eq!(stats.ttl_evictions, 1);
        assert_eq!(stats.opened_total, 2);
        assert_eq!(stats.open, 1);
        assert_eq!(stats.capacity_evictions, 0);
        assert!(stats.clock > SESSION_TTL_TICKS);
    }

    #[test]
    fn session_stats_aggregate_across_tables() {
        let a = SessionStats {
            open: 1,
            opened_total: 4,
            capacity_evictions: 2,
            ttl_evictions: 1,
            clock: 10,
        };
        let b = SessionStats {
            open: 2,
            opened_total: 3,
            capacity_evictions: 0,
            ttl_evictions: 2,
            clock: 5,
        };
        let total = SessionStats::aggregate([a, b]);
        assert_eq!(total.open, 3);
        assert_eq!(total.opened_total, 7);
        assert_eq!(total.capacity_evictions, 2);
        assert_eq!(total.ttl_evictions, 3);
        assert_eq!(total.clock, 15);
    }

    #[test]
    fn cursor_id_sentinel() {
        assert!(!CursorId::NONE.is_some());
        assert!(CursorId(3).is_some());
    }
}
