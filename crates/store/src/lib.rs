//! # Storage engine for the untrusted index server
//!
//! The layer between the query protocol (`zerber_protocol`) and the ordered
//! confidential index (`zerber_r`).  The paper's server answers ranged top-k
//! fetches over merged posting lists; the lists are independent by
//! construction (BFM, Section 5.2), so the index is embarrassingly shardable
//! by `MergedListId`.
//!
//! * [`ListStore`] — the storage contract: ranged fetches in TRS order,
//!   resumable cursor sessions for follow-up requests (Section 4.1/5.2),
//!   position-preserving inserts, and cross-user shard batches
//!   ([`StoreJob`] / [`ListStore::execute_shard_batch`]: jobs from many
//!   users, each with its own group filter, bucketed by shard and served
//!   under a single lock acquisition per shard per round).  The trait is the
//!   seam for future backends (compressed segments, on-disk shards).
//! * [`ShardedStore`] — lists partitioned across N shards, each behind its
//!   own `RwLock`; queries on different lists never contend and an insert
//!   write-locks exactly one shard.
//! * [`SegmentStore`] — the same sharded concurrency machinery over the
//!   compressed segment layout of [`segment`]: immutable block-encoded
//!   segments with per-block skip entries (first/last TRS, element count,
//!   per-group visible counts) plus a small mutable tail absorbing inserts.
//! * [`SpillStore`] — the same sharded machinery over the on-disk spill
//!   layout of [`spill`]: cold sealed segments live in per-shard page files
//!   (the segment wire format is the page format) behind a byte-budgeted
//!   LRU page cache, with only summaries, tails and the hot working set
//!   resident.
//! * [`SingleMutexStore`] — the pre-sharding architecture (one global mutex),
//!   kept as the contention baseline for the throughput experiments.
//!
//! [`SpillStore`] optionally runs *durable*: a persistent root directory
//! holds a checksummed checkpoint manifest, immutable generation-named page
//! files and a per-shard CRC-framed write-ahead log ([`durable`]), so
//! [`SpillStore::open`] recovers the index after a crash — replaying pages
//! through full segment validation and the WAL tail through the insert
//! path, then re-auditing byte-exact budget accounting and visibility
//! before serving.
//!
//! The durable layout doubles as the replication substrate ([`replication`]):
//! a [`ReplicationSource`] streams checkpoint snapshots and the live WAL
//! tail to [`Replica`]s, which bootstrap through the same validating
//! recovery path, apply frames through the normal logged-insert path and
//! serve bounded-staleness reads behind a [`ReplicaReadStore`].
//!
//! All engines share one generic cursor-session table
//! ([`store::OrderedList`]), so sessions, insert generations, owner checks,
//! TTL expiry and eviction behave identically and the engines answer
//! element-for-element the same.

pub mod convert;
pub mod durable;
pub mod error;
pub mod lockrank;
pub mod replication;
pub mod segment;
pub mod sharded;
pub mod single;
pub mod spill;
pub mod store;

pub use durable::{crc32, DurableConfig, FaultIo, FaultMode, FileIo, PageIo, RealIo, SyncPolicy};
pub use error::StoreError;
pub use lockrank::{LockClass, RankGuard};
pub use replication::{
    Backoff, FaultPlan, FaultTransport, FrameBatch, InProcessTransport, PumpOutcome, Replica,
    ReplicaConfig, ReplicaReadStore, ReplicaStats, ReplicaTransport, ReplicationSource,
    SnapshotFile, SnapshotPayload, TransportError, WireFrame,
};
pub use segment::{Segment, SegmentConfig, SegmentList};
pub use sharded::{SegmentStore, ShardedStore, MAX_SHARDS};
pub use single::SingleMutexStore;
pub use spill::{SpillConfig, SpillList, SpillStore};
pub use store::{
    CursorId, ListStore, OrderedList, RangedBatch, RangedFetch, SessionStats, ShardBatchOutput,
    ShardBucketOutput, ShardJobBucket, ShardJobPlan, StoreJob, VecList, SESSION_TTL_TICKS,
};

#[cfg(test)]
mod tests {
    use super::*;
    use zerber_base::{BfmMerge, ConfidentialityParam, MergeScheme, MergedListId};
    use zerber_corpus::{
        sample_split, Corpus, CorpusGenerator, CorpusStats, CustomProfile, DatasetProfile, GroupId,
        SplitConfig, SynthConfig,
    };
    use zerber_crypto::MasterKey;
    use zerber_r::{OrderedElement, OrderedIndex, RstfConfig, RstfModel};

    fn index() -> OrderedIndex {
        let config = SynthConfig {
            profile: DatasetProfile::Custom(CustomProfile {
                num_docs: 200,
                num_groups: 3,
                vocab_size: 500,
                general_vocab_fraction: 0.5,
                topic_mix: 0.3,
                zipf_exponent: 1.0,
                doc_length_median: 50.0,
                doc_length_sigma: 0.6,
                min_doc_length: 10,
                max_doc_length: 200,
            }),
            scale: 1.0,
            seed: 4242,
        };
        let corpus: Corpus = CorpusGenerator::new(config).generate().unwrap();
        let stats = CorpusStats::compute(&corpus);
        let split = sample_split(&corpus, SplitConfig::default()).unwrap();
        let model = RstfModel::train(&corpus, &split, &RstfConfig::default()).unwrap();
        let plan = BfmMerge
            .plan(&stats, ConfidentialityParam::new(3.0).unwrap())
            .unwrap();
        let master = MasterKey::new([3u8; 32]);
        OrderedIndex::build(&corpus, plan, &model, &master, 11).unwrap()
    }

    fn stores() -> (ShardedStore, SingleMutexStore) {
        let idx = index();
        (
            ShardedStore::with_shards(idx.clone(), 4),
            SingleMutexStore::new(idx),
        )
    }

    fn small_segment_config() -> SegmentConfig {
        // Small blocks/tail so the fixtures exercise block and segment
        // boundaries, sealing and compaction.
        SegmentConfig {
            block_len: 4,
            tail_threshold: 3,
            max_segment_elems: 64,
            max_segments: 4,
            max_payload_bytes: u32::MAX as usize,
        }
    }

    fn segment_store() -> SegmentStore {
        SegmentStore::with_config(index(), 4, small_segment_config()).unwrap()
    }

    fn spill_store() -> SpillStore {
        // Budget 0: every sealed segment spills; a small page cache keeps
        // reads honest about faulting.
        SpillStore::in_temp_dir_with(
            index(),
            4,
            SpillConfig {
                resident_budget_bytes: 0,
                page_cache_pages: 4,
                ..SpillConfig::default().without_tiering()
            },
            small_segment_config(),
        )
        .unwrap()
    }

    fn busiest_list(store: &dyn ListStore) -> MergedListId {
        (0..store.num_lists() as u64)
            .map(MergedListId)
            .max_by_key(|&l| store.list_len(l).unwrap())
            .unwrap()
    }

    #[test]
    fn sharded_partitions_preserve_every_element() {
        let idx = index();
        let expected = idx.num_elements();
        let by_plan: Vec<usize> = (0..idx.num_lists() as u64)
            .map(|l| idx.list_len(MergedListId(l)).unwrap())
            .collect();
        let store = ShardedStore::with_shards(idx, 5);
        assert_eq!(store.num_elements(), expected);
        assert_eq!(store.num_shards(), 5);
        for (l, &len) in by_plan.iter().enumerate() {
            let id = MergedListId(l as u64);
            assert_eq!(store.list_len(id).unwrap(), len);
            assert_eq!(store.shard_of(id), l % 5);
        }
        assert!(store.verify_ordering());
    }

    #[test]
    fn all_stores_serve_identical_ranged_batches() {
        let (sharded, single) = stores();
        let segmented = segment_store();
        let spilled = spill_store();
        let list = busiest_list(&sharded);
        let groups = [GroupId(0), GroupId(2)];
        for offset in [0usize, 3, 10] {
            let fetch = RangedFetch {
                list,
                offset,
                count: 7,
            };
            let a = sharded.fetch_ranged(&fetch, Some(&groups)).unwrap();
            let b = single.fetch_ranged(&fetch, Some(&groups)).unwrap();
            let c = segmented.fetch_ranged(&fetch, Some(&groups)).unwrap();
            let d = spilled.fetch_ranged(&fetch, Some(&groups)).unwrap();
            assert_eq!(a, b);
            assert_eq!(a, c);
            assert_eq!(a, d);
        }
        // The spill engine served from disk: cold pages were faulted in.
        assert!(spilled.page_faults() > 0);
    }

    #[test]
    fn segment_store_matches_snapshots_and_compresses_the_index() {
        let (sharded, _) = stores();
        let segmented = segment_store();
        for l in 0..sharded.num_lists() as u64 {
            let id = MergedListId(l);
            assert_eq!(
                sharded.snapshot_list(id).unwrap(),
                segmented.snapshot_list(id).unwrap()
            );
            assert_eq!(
                sharded.visible_len(id, Some(&[GroupId(1)])).unwrap(),
                segmented.visible_len(id, Some(&[GroupId(1)])).unwrap()
            );
        }
        assert!(segmented.verify_ordering());
        assert_eq!(segmented.num_elements(), sharded.num_elements());
        assert_eq!(segmented.stored_bytes(), sharded.stored_bytes());
        assert_eq!(segmented.ciphertext_bytes(), sharded.ciphertext_bytes());
        let ratio = segmented.resident_bytes() as f64 / sharded.resident_bytes() as f64;
        assert!(
            ratio < 1.0,
            "segments must be smaller than the vec layout, got {ratio:.3}"
        );
        // The group-filtered visible_len calls above were answered from the
        // per-block skip entries: the segment engine examined only tail
        // elements (none here), the vec engine walked every list in full.
        assert_eq!(segmented.visibility_scan_cost(), 0);
        assert!(sharded.visibility_scan_cost() > 0);
    }

    #[test]
    fn cursor_follow_ups_skip_the_visibility_count() {
        for store in [
            Box::new(stores().0) as Box<dyn ListStore>,
            Box::new(segment_store()) as Box<dyn ListStore>,
        ] {
            let list = busiest_list(store.as_ref());
            let groups = [GroupId(0), GroupId(2)];
            let first = store
                .fetch_ranged(
                    &RangedFetch {
                        list,
                        offset: 0,
                        count: 2,
                    },
                    Some(&groups),
                )
                .unwrap();
            let cursor = store
                .open_cursor(list, 5, &first, first.elements.len(), Some(&groups))
                .unwrap();
            let counted = store.visibility_scan_cost();
            // Follow-ups are answered from the per-session cached count: no
            // O(list-length) visibility scan, whatever the engine.
            for _ in 0..4 {
                let batch = store.cursor_fetch(cursor, 5, 2, Some(&groups)).unwrap();
                assert_eq!(batch.visible_total, first.visible_total);
            }
            assert_eq!(store.visibility_scan_cost(), counted);
            store.close_cursor(cursor, 5);
        }
    }

    #[test]
    fn session_stats_track_openings() {
        let (sharded, _) = stores();
        let list = busiest_list(&sharded);
        let head = sharded
            .fetch_ranged(
                &RangedFetch {
                    list,
                    offset: 0,
                    count: 1,
                },
                None,
            )
            .unwrap();
        let cursor = sharded.open_cursor(list, 3, &head, 1, None).unwrap();
        let stats = sharded.session_stats();
        assert_eq!(stats.open, 1);
        assert_eq!(stats.opened_total, 1);
        assert_eq!(stats.capacity_evictions + stats.ttl_evictions, 0);
        assert!(stats.clock > 0);
        sharded.close_cursor(cursor, 3);
        assert_eq!(sharded.session_stats().open, 0);
    }

    #[test]
    fn batched_fetches_match_individual_fetches() {
        let (sharded, _) = stores();
        let fetches: Vec<RangedFetch> = (0..sharded.num_lists().min(9) as u64)
            .map(|l| RangedFetch {
                list: MergedListId(l),
                offset: 1,
                count: 5,
            })
            .chain(std::iter::once(RangedFetch {
                list: MergedListId(999_999),
                offset: 0,
                count: 5,
            }))
            .collect();
        let batched = sharded.fetch_ranged_many(&fetches, None);
        assert_eq!(batched.len(), fetches.len());
        for (fetch, result) in fetches.iter().zip(&batched) {
            match sharded.fetch_ranged(fetch, None) {
                Ok(expected) => assert_eq!(result.as_ref().unwrap(), &expected),
                Err(e) => assert_eq!(result.as_ref().unwrap_err(), &e),
            }
        }
    }

    #[test]
    fn shard_batches_serve_cross_user_jobs_under_one_lock_per_shard() {
        let (sharded, single) = stores();
        let list = busiest_list(&sharded);
        let g0 = [GroupId(0)];
        let g12 = [GroupId(1), GroupId(2)];
        let head = sharded
            .fetch_ranged(
                &RangedFetch {
                    list,
                    offset: 0,
                    count: 2,
                },
                Some(&g0),
            )
            .unwrap();
        let delivered = head.elements.len();
        let cursor = sharded
            .open_cursor(list, 7, &head, delivered, Some(&g0))
            .unwrap();
        let jobs = [
            // Two users with different group filters, one stale list, one
            // live cursor and one bogus cursor — all in one round.
            StoreJob::ranged(
                RangedFetch {
                    list,
                    offset: 0,
                    count: 3,
                },
                Some(&g12),
            ),
            StoreJob::ranged(
                RangedFetch {
                    list: MergedListId(999_999),
                    offset: 0,
                    count: 3,
                },
                None,
            ),
            StoreJob::resume(cursor, 7, 2, Some(&g0)),
            StoreJob::resume(CursorId(0xfe), 9, 2, None),
        ];
        let before = sharded.lock_acquisitions();
        let out = sharded.execute_shard_batch(&jobs);
        // One list => one shard => one lock for the whole cross-user round.
        assert_eq!(out.lock_acquisitions, 1);
        assert_eq!(sharded.lock_acquisitions(), before + 1);
        assert_eq!(
            out.results[0].as_ref().unwrap(),
            &sharded
                .fetch_ranged(
                    &RangedFetch {
                        list,
                        offset: 0,
                        count: 3
                    },
                    Some(&g12)
                )
                .unwrap()
        );
        assert!(matches!(out.results[1], Err(StoreError::UnknownList(_))));
        // The cursor job resumed user 7's session: same elements as a
        // stateless offset scan under the session's own filter.
        let expected = sharded
            .fetch_ranged(
                &RangedFetch {
                    list,
                    offset: delivered,
                    count: 2,
                },
                Some(&g0),
            )
            .unwrap();
        assert_eq!(out.results[2].as_ref().unwrap().elements, expected.elements);
        // A bogus cursor errors alone, not the batch.
        assert!(matches!(out.results[3], Err(StoreError::UnknownCursor(_))));

        // The single-mutex engine serves any round under exactly one lock.
        let before = single.lock_acquisitions();
        let jobs = [
            StoreJob::ranged(
                RangedFetch {
                    list,
                    offset: 0,
                    count: 3,
                },
                None,
            ),
            StoreJob::ranged(
                RangedFetch {
                    list: MergedListId(0),
                    offset: 0,
                    count: 1,
                },
                None,
            ),
        ];
        let out = single.execute_shard_batch(&jobs);
        assert_eq!(out.lock_acquisitions, 1);
        assert_eq!(single.lock_acquisitions(), before + 1);
        assert!(out.results.iter().all(|r| r.is_ok()));
        assert_eq!(single.execute_shard_batch(&[]).lock_acquisitions, 0);
    }

    #[test]
    fn cursor_resumes_exactly_where_the_scan_stopped() {
        let (sharded, _) = stores();
        let list = busiest_list(&sharded);
        let len = sharded.list_len(list).unwrap();
        assert!(len > 6, "busiest list must be non-trivial");
        let whole = sharded.snapshot_list(list).unwrap();

        let first = sharded
            .fetch_ranged(
                &RangedFetch {
                    list,
                    offset: 0,
                    count: 3,
                },
                None,
            )
            .unwrap();
        let cursor = sharded
            .open_cursor(list, 77, &first, first.elements.len(), None)
            .unwrap();
        let mut collected = first.elements.clone();
        loop {
            let batch = sharded.cursor_fetch(cursor, 77, 3, None).unwrap();
            collected.extend(batch.elements.iter().cloned());
            if batch.exhausted {
                break;
            }
        }
        assert_eq!(collected, whole);
        // A foreign owner cannot close the session.
        sharded.close_cursor(cursor, 78);
        assert_eq!(sharded.open_cursors(), 1);
        sharded.close_cursor(cursor, 77);
        assert_eq!(sharded.open_cursors(), 0);
    }

    #[test]
    fn cursor_owner_mismatch_and_unknown_cursor_are_rejected() {
        let (sharded, _) = stores();
        let list = busiest_list(&sharded);
        let head = sharded
            .fetch_ranged(
                &RangedFetch {
                    list,
                    offset: 0,
                    count: 1,
                },
                None,
            )
            .unwrap();
        let cursor = sharded.open_cursor(list, 1, &head, 1, None).unwrap();
        assert!(matches!(
            sharded.cursor_fetch(cursor, 2, 3, None),
            Err(StoreError::UnknownCursor(_))
        ));
        assert!(matches!(
            sharded.cursor_fetch(CursorId(0), 1, 3, None),
            Err(StoreError::UnknownCursor(_))
        ));
        assert!(sharded.cursor_fetch(cursor, 1, 3, None).is_ok());
    }

    #[test]
    fn insert_shifts_cursors_past_the_insertion_point() {
        let (sharded, _) = stores();
        let list = busiest_list(&sharded);
        let before = sharded.snapshot_list(list).unwrap();
        // Cursor positioned after the first 4 elements.
        let four = sharded
            .fetch_ranged(
                &RangedFetch {
                    list,
                    offset: 0,
                    count: 4,
                },
                None,
            )
            .unwrap();
        let cursor = sharded.open_cursor(list, 9, &four, 4, None).unwrap();
        // Insert an element with the highest possible TRS: lands at 0.
        let mut element = before[0].clone();
        element.trs = 2.0;
        let pos = sharded.insert(list, element).unwrap();
        assert_eq!(pos, 0);
        // The cursor must now deliver the same element it would have next.
        let batch = sharded.cursor_fetch(cursor, 9, 1, None).unwrap();
        assert_eq!(batch.elements[0], before[4]);
        // A tail insert does not disturb a cursor at the front.  The list
        // now starts with the freshly inserted 2.0 element, so a cursor
        // opened after one delivered element points at the original head.
        let one = sharded
            .fetch_ranged(
                &RangedFetch {
                    list,
                    offset: 0,
                    count: 1,
                },
                None,
            )
            .unwrap();
        let front = sharded.open_cursor(list, 9, &one, 1, None).unwrap();
        let mut low = before[0].clone();
        low.trs = -1.0;
        sharded.insert(list, low).unwrap();
        let batch = sharded.cursor_fetch(front, 9, 1, None).unwrap();
        assert_eq!(batch.elements[0], before[0]);
    }

    #[test]
    fn unknown_lists_error_on_every_accessor() {
        let (sharded, single) = stores();
        let segmented = segment_store();
        let spilled = spill_store();
        let bad = MergedListId(10_000_000);
        for store in [
            &sharded as &dyn ListStore,
            &single as &dyn ListStore,
            &segmented as &dyn ListStore,
            &spilled as &dyn ListStore,
        ] {
            assert!(store.list_len(bad).is_err());
            assert!(store.visible_len(bad, None).is_err());
            assert!(store.snapshot_list(bad).is_err());
            assert!(store
                .fetch_ranged(
                    &RangedFetch {
                        list: bad,
                        offset: 0,
                        count: 1
                    },
                    None
                )
                .is_err());
            let dummy = RangedBatch {
                elements: Vec::new(),
                next_physical: 0,
                visible_total: 0,
                exhausted: false,
                generation: 0,
            };
            assert!(store.open_cursor(bad, 1, &dummy, 0, None).is_err());
            assert!(store
                .insert(
                    bad,
                    OrderedElement {
                        trs: 0.5,
                        group: GroupId(0),
                        sealed: zerber_base::EncryptedElement {
                            group: GroupId(0),
                            ciphertext: vec![1, 2, 3],
                        },
                    }
                )
                .is_err());
        }
    }

    #[test]
    fn stores_agree_on_sizes() {
        let (sharded, single) = stores();
        assert_eq!(sharded.num_elements(), single.num_elements());
        assert_eq!(sharded.stored_bytes(), single.stored_bytes());
        assert_eq!(sharded.ciphertext_bytes(), single.ciphertext_bytes());
        assert_eq!(sharded.num_lists(), single.num_lists());
        assert_eq!(single.num_shards(), 1);
        // The in-memory engines never spill or fault.
        assert_eq!(sharded.spilled_bytes(), 0);
        assert_eq!(sharded.page_faults(), 0);
        assert_eq!(sharded.page_evictions(), 0);
    }

    #[test]
    fn spill_store_moves_cold_bytes_to_disk_and_keeps_answers_identical() {
        let (sharded, _) = stores();
        let segmented = segment_store();
        let spilled = spill_store();
        // Logical accounting is engine-independent.
        assert_eq!(spilled.num_elements(), sharded.num_elements());
        assert_eq!(spilled.stored_bytes(), sharded.stored_bytes());
        assert_eq!(spilled.ciphertext_bytes(), sharded.ciphertext_bytes());
        for l in 0..sharded.num_lists() as u64 {
            let id = MergedListId(l);
            assert_eq!(
                sharded.snapshot_list(id).unwrap(),
                spilled.snapshot_list(id).unwrap()
            );
            assert_eq!(
                sharded.visible_len(id, Some(&[GroupId(1)])).unwrap(),
                spilled.visible_len(id, Some(&[GroupId(1)])).unwrap()
            );
        }
        assert!(spilled.verify_ordering());
        // With a zero resident budget, the sealed payload lives on disk:
        // spilled bytes are substantial and the resident footprint sits well
        // under the fully in-memory segment engine (summaries + tails +
        // whatever the small page cache holds).
        assert!(spilled.spilled_bytes() > 0);
        assert!(
            spilled.resident_bytes() < segmented.resident_bytes(),
            "resident {} vs segment {}",
            spilled.resident_bytes(),
            segmented.resident_bytes()
        );
        // The snapshot audit above faulted pages through the cache.
        assert!(spilled.page_faults() > 0);
    }

    #[test]
    fn spill_store_cleans_its_page_files_up_on_drop() {
        let spilled = spill_store();
        let paths = spilled.page_file_paths();
        assert!(!paths.is_empty());
        for path in &paths {
            assert!(path.exists(), "page file {} must exist", path.display());
        }
        let dir = paths[0].parent().unwrap().to_path_buf();
        drop(spilled);
        for path in &paths {
            assert!(!path.exists(), "stray page file {}", path.display());
        }
        assert!(!dir.exists(), "stray spill dir {}", dir.display());
    }

    #[test]
    fn read_only_cursor_traffic_sweeps_idle_sessions() {
        // Regression: TTL expiry used to run only on session-table writes,
        // so a read-heavy workload with stable cursors never reclaimed idle
        // sessions.  Cursor advances now upgrade to a sweep once per TTL
        // window.
        let (sharded, _) = stores();
        let list = busiest_list(&sharded);
        let head = sharded
            .fetch_ranged(
                &RangedFetch {
                    list,
                    offset: 0,
                    count: 1,
                },
                None,
            )
            .unwrap();
        let idle = sharded.open_cursor(list, 1, &head, 1, None).unwrap();
        let active = sharded.open_cursor(list, 2, &head, 1, None).unwrap();
        assert_eq!(sharded.open_cursors(), 2);
        // Only cursor advances from here on — no fetches, no opens, no
        // inserts.  The active session's follow-ups tick the logical clock
        // past the TTL; the idle session must be reclaimed by the read-path
        // sweep.
        for _ in 0..=(SESSION_TTL_TICKS + 1) {
            sharded.cursor_fetch(active, 2, 1, None).unwrap();
        }
        let stats = sharded.session_stats();
        assert_eq!(stats.ttl_evictions, 1, "idle session must expire");
        assert_eq!(stats.open, 1);
        assert!(matches!(
            sharded.cursor_fetch(idle, 1, 1, None),
            Err(StoreError::UnknownCursor(_))
        ));
        assert!(sharded.cursor_fetch(active, 2, 1, None).is_ok());
    }
}
