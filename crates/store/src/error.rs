//! Error type of the storage engine.

use std::fmt;

/// Errors produced by a [`crate::ListStore`] implementation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The addressed merged posting list does not exist.
    UnknownList(u64),
    /// The cursor does not exist, was closed, or belongs to another session.
    UnknownCursor(u64),
    /// A serialized segment failed validation (truncated, bit-flipped or
    /// otherwise inconsistent bytes).
    CorruptSegment(String),
    /// An encoded payload would exceed the u32 offset space of the segment
    /// wire format (~4 GiB).  Oversized lists split automatically; this
    /// error surfaces only when a single element cannot fit at all.
    SegmentOverflow,
    /// An operation against the on-disk spill state failed at the I/O layer.
    Io(String),
    /// A recovered durable store failed its post-recovery audit (budget
    /// accounting, ordering, or visibility invariants) and was refused.
    RecoveryFailed(String),
    /// An internal invariant did not hold.  Never expected in correct
    /// operation; surfaced as an error instead of a panic so a serving
    /// process degrades (fails the one request) instead of dying.
    Invariant(&'static str),
    /// A replica refused to serve a read because its replication lag
    /// exceeds the configured staleness bound.  The client should retry on
    /// the primary (or another replica) rather than accept stale data.
    Degraded { lag: u64, max_lag: u64 },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownList(id) => write!(f, "unknown merged posting list {id}"),
            StoreError::UnknownCursor(id) => write!(f, "unknown cursor {id}"),
            StoreError::CorruptSegment(reason) => write!(f, "corrupt segment: {reason}"),
            StoreError::SegmentOverflow => {
                write!(f, "segment payload exceeds the u32 offset bound")
            }
            StoreError::Io(reason) => write!(f, "spill storage I/O failure: {reason}"),
            StoreError::RecoveryFailed(reason) => {
                write!(f, "recovered store failed its audit: {reason}")
            }
            StoreError::Invariant(what) => write!(f, "internal invariant violated: {what}"),
            StoreError::Degraded { lag, max_lag } => write!(
                f,
                "replica degraded: replication lag {lag} exceeds the staleness bound {max_lag}; \
                 retry on the primary"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_id() {
        assert!(StoreError::UnknownList(7).to_string().contains('7'));
        assert!(StoreError::UnknownCursor(9).to_string().contains('9'));
        assert!(StoreError::RecoveryFailed("budget drift".into())
            .to_string()
            .contains("budget drift"));
    }
}
