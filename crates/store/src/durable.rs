//! Durability primitives of the spill engine: the page/file IO abstraction
//! (with a deterministic fault-injection shim), CRC32 framing, the per-shard
//! write-ahead log codec, the checkpoint manifest codec and the store
//! metadata codec.
//!
//! The layering mirrors classical recovery managers:
//!
//! * **Checkpoint manifest** — an atomically-renamed, checksummed file per
//!   shard enumerating the sealed pages of every list (plus the small
//!   mutable tails and the WAL sequence number the checkpoint covers).  The
//!   page files it references are immutable checkpoint state, not cache.
//! * **Write-ahead log** — length-delimited, CRC-framed insert records
//!   (reusing the element wire encoding: 8-byte TRS, 4-byte group, 2-byte
//!   ciphertext length, ciphertext).  Appends happen under the same shard
//!   write lock as the insert they record, so file order equals apply
//!   order; [`SyncPolicy`] governs how often the log is fsynced.
//! * **Recovery** — [`crate::SpillStore::open`] loads the manifest pages
//!   through the fully-validating `Segment::from_bytes` and replays the WAL
//!   tail through the ordinary insert path.  A torn or corrupt tail
//!   truncates at the last valid record and the store keeps serving; it
//!   never panics and never applies a record out of order.
//!
//! Everything talks to the disk through [`PageIo`]/[`FileIo`], so the
//! fault-injection shim ([`FaultIo`]) can kill writes after a byte budget,
//! flip a byte, or drop fsyncs — deterministically — and the recovery tests
//! can crash the store at every step of every protocol.

use std::fs::OpenOptions;
use std::io::{self, Read as _, Seek, SeekFrom, Write as _};
use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex;
use zerber_base::EncryptedElement;
use zerber_corpus::GroupId;
use zerber_r::OrderedElement;

use crate::convert::{
    read_bytes, read_f64, read_u16, read_u32, read_u64, try_u32, u64_of, usize_of,
};
use crate::error::StoreError;

pub(crate) fn io_err(e: io::Error) -> StoreError {
    StoreError::Io(e.to_string())
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE), table-driven.  Hand-rolled so the store crate stays free of
// new dependencies; the WAL frames and both manifest codecs use it.
// ---------------------------------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        // analyze::allow(cast): const context (try_from is not const); the loop bound keeps i < 256
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC32 (IEEE 802.3) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[usize_of((c ^ u32::from(b)) & 0xFF)] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Durability tuning.
// ---------------------------------------------------------------------------

/// How often WAL appends are fsynced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Fsync after every append: an acknowledged insert is on disk.
    Always,
    /// Fsync every N appends: a crash loses at most N-1 acknowledged
    /// inserts (still a prefix of the history).
    EveryN(u32),
    /// Never fsync on the append path; the log reaches disk at the next
    /// checkpoint (which always syncs) or when the OS flushes.
    Never,
}

/// Tuning knobs of the durable mode.
///
/// Checkpoints (page-file fsync + manifest commit + WAL reset) always sync,
/// regardless of [`DurableConfig::sync`] — the policy governs only the
/// per-append WAL path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurableConfig {
    /// Fsync policy of the write-ahead log.
    pub sync: SyncPolicy,
    /// WAL bytes per shard above which the post-serving maintenance hook
    /// checkpoints the shard.  `0` disables automatic checkpoints (explicit
    /// [`crate::SpillStore::checkpoint`] calls still work).
    pub checkpoint_wal_bytes: u64,
}

impl Default for DurableConfig {
    fn default() -> Self {
        DurableConfig {
            sync: SyncPolicy::EveryN(32),
            checkpoint_wal_bytes: 1 << 20,
        }
    }
}

// ---------------------------------------------------------------------------
// The IO abstraction: a page file handle and the directory-level operations
// the pager, WAL and manifest writer need.  The real implementation is std
// fs; the fault shim below wraps it.
// ---------------------------------------------------------------------------

/// One open file of the durable layer (page file, WAL or manifest).
#[allow(clippy::len_without_is_empty)]
pub trait FileIo: Send + std::fmt::Debug {
    /// Reads exactly `buf.len()` bytes at `offset`.
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()>;
    /// Writes all of `buf` at `offset`.
    fn write_at(&mut self, offset: u64, buf: &[u8]) -> io::Result<()>;
    /// Flushes the file to stable storage.
    fn sync(&mut self) -> io::Result<()>;
    /// Current length of the file in bytes.
    fn len(&mut self) -> io::Result<u64>;
    /// Truncates (or extends with zeroes) the file to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
}

/// Directory-level IO: opening, renaming and removing the files of a spill
/// root.  `Arc<dyn PageIo>` is threaded through the pager, the WAL and the
/// manifest writer, so a test can substitute [`FaultIo`] for all of them at
/// once.
pub trait PageIo: Send + Sync + std::fmt::Debug {
    /// Opens (creating if missing) `path` for reading and writing,
    /// truncating it first when `truncate` is set.
    fn open(&self, path: &Path, truncate: bool) -> io::Result<Box<dyn FileIo>>;
    /// Atomically renames `from` over `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes `path` (must exist).
    fn remove(&self, path: &Path) -> io::Result<()>;
    /// Whether `path` exists.
    fn exists(&self, path: &Path) -> bool;
}

/// The production IO: plain `std::fs`.
#[derive(Debug, Default)]
pub struct RealIo;

impl RealIo {
    /// A shared handle to the production IO.
    pub fn shared() -> Arc<dyn PageIo> {
        Arc::new(RealIo)
    }
}

#[derive(Debug)]
struct RealFile(std::fs::File);

impl FileIo for RealFile {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        self.0.seek(SeekFrom::Start(offset))?;
        self.0.read_exact(buf)
    }

    fn write_at(&mut self, offset: u64, buf: &[u8]) -> io::Result<()> {
        self.0.seek(SeekFrom::Start(offset))?;
        self.0.write_all(buf)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }

    fn len(&mut self) -> io::Result<u64> {
        Ok(self.0.metadata()?.len())
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }
}

impl PageIo for RealIo {
    fn open(&self, path: &Path, truncate: bool) -> io::Result<Box<dyn FileIo>> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(truncate)
            .open(path)?;
        Ok(Box::new(RealFile(file)))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

// ---------------------------------------------------------------------------
// Deterministic fault injection.
// ---------------------------------------------------------------------------

/// What the fault shim does to the IO stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Write-through until `n` budget units are consumed (one unit per
    /// written byte; renames, removes, truncations and syncs cost one unit
    /// each), then the process is considered dead: every later write,
    /// rename, remove, truncation and sync silently does nothing.  A write
    /// straddling the budget persists only its prefix — a torn write.
    KillAfter(u64),
    /// Write-through, but the byte at global write offset `n` is XORed with
    /// `0x5A` on its way to disk — a single deterministic bit-flip.
    FlipByteAt(u64),
    /// Buffer every write in memory; `sync` flushes the file's buffer to
    /// disk.  Dropping the store without syncing models a power failure
    /// that loses everything since the last fsync.
    Buffered,
    /// Like [`FaultMode::Buffered`], but `sync` is silently dropped too — a
    /// lying fsync.  Nothing written through this shim ever reaches disk.
    DropSyncs,
}

#[derive(Debug, Default)]
struct FaultLedger {
    /// Budget units consumed so far (bytes written + 1 per metadata op).
    spent: u64,
    /// Set once a [`FaultMode::KillAfter`] budget is exhausted.
    crashed: bool,
    /// Cumulative `spent` after each IO operation — the injection points a
    /// kill-at-every-step loop iterates over.
    boundaries: Vec<u64>,
}

/// The deterministic fault-injection IO shim: wraps [`RealIo`] over the real
/// directory, so whatever "survives" the injected fault is exactly what a
/// later [`crate::SpillStore::open`] with [`RealIo`] will find.
#[derive(Debug)]
pub struct FaultIo {
    inner: Arc<dyn PageIo>,
    mode: FaultMode,
    ledger: Arc<Mutex<FaultLedger>>,
}

impl FaultIo {
    /// A fault shim over the production IO.
    pub fn new(mode: FaultMode) -> Arc<FaultIo> {
        Arc::new(FaultIo {
            inner: RealIo::shared(),
            mode,
            ledger: Arc::new(Mutex::new(FaultLedger::default())),
        })
    }

    /// Budget units consumed so far (bytes written plus one per rename /
    /// remove / truncate / sync).
    pub fn spent(&self) -> u64 {
        self.ledger.lock().spent
    }

    /// Whether a `KillAfter` budget has been exhausted.
    pub fn crashed(&self) -> bool {
        self.ledger.lock().crashed
    }

    /// The cumulative budget after each IO operation: every value (and its
    /// ±1 neighbours) is a distinct crash point for a kill-at-every-step
    /// recovery loop.
    pub fn op_boundaries(&self) -> Vec<u64> {
        self.ledger.lock().boundaries.clone()
    }

    /// Consumes one metadata-op unit; `true` if the op should proceed.
    fn charge_op(&self) -> bool {
        let mut ledger = self.ledger.lock();
        match self.mode {
            FaultMode::KillAfter(n) => {
                if ledger.crashed {
                    return false;
                }
                if ledger.spent >= n {
                    ledger.crashed = true;
                    return false;
                }
                ledger.spent += 1;
                let spent = ledger.spent;
                ledger.boundaries.push(spent);
                true
            }
            _ => {
                ledger.spent += 1;
                let spent = ledger.spent;
                ledger.boundaries.push(spent);
                true
            }
        }
    }
}

#[derive(Debug)]
struct FaultFile {
    real: Box<dyn FileIo>,
    mode: FaultMode,
    ledger: Arc<Mutex<FaultLedger>>,
    /// Full in-memory shadow of the file in the buffered modes; `sync`
    /// flushes it (unless dropped).  The shadow is per handle: the durable
    /// protocols sync before every rename/reopen, so a fresh handle always
    /// sees flushed state.
    shadow: Option<Vec<u8>>,
}

impl FileIo for FaultFile {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        match &self.shadow {
            Some(shadow) => {
                let start = usize::try_from(offset).unwrap_or(usize::MAX);
                let end = start.saturating_add(buf.len());
                let Some(src) = shadow.get(start..end) else {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "read past buffered length",
                    ));
                };
                buf.copy_from_slice(src);
                Ok(())
            }
            None => self.real.read_at(offset, buf),
        }
    }

    fn write_at(&mut self, offset: u64, buf: &[u8]) -> io::Result<()> {
        if let Some(shadow) = &mut self.shadow {
            let start = usize::try_from(offset).unwrap_or(usize::MAX);
            let end = start.saturating_add(buf.len());
            if shadow.len() < end {
                shadow.resize(end, 0);
            }
            // analyze::allow(panic): the resize above guarantees start..end is in bounds
            shadow[start..end].copy_from_slice(buf);
            let mut ledger = self.ledger.lock();
            ledger.spent += u64_of(buf.len());
            let spent = ledger.spent;
            ledger.boundaries.push(spent);
            return Ok(());
        }
        let (allow, flip) = {
            let mut ledger = self.ledger.lock();
            let start = ledger.spent;
            ledger.spent += u64_of(buf.len());
            let spent = ledger.spent;
            ledger.boundaries.push(spent);
            match self.mode {
                FaultMode::KillAfter(n) => {
                    if ledger.crashed {
                        (0usize, None)
                    } else {
                        let allow = usize::try_from(n.saturating_sub(start))
                            .unwrap_or(usize::MAX)
                            .min(buf.len());
                        if allow < buf.len() {
                            ledger.crashed = true;
                        }
                        (allow, None)
                    }
                }
                FaultMode::FlipByteAt(n) => {
                    let flip = (start..start + u64_of(buf.len()))
                        .contains(&n)
                        .then(|| usize::try_from(n - start).ok())
                        .flatten()
                        .filter(|&i| i < buf.len());
                    (buf.len(), flip)
                }
                _ => (buf.len(), None),
            }
        };
        match flip {
            Some(i) => {
                let mut copy = buf.to_vec();
                copy[i] ^= 0x5A;
                self.real.write_at(offset, &copy)
            }
            None if allow == buf.len() => self.real.write_at(offset, buf),
            // analyze::allow(panic): allow is clamped to buf.len() by the min above
            None if allow > 0 => self.real.write_at(offset, &buf[..allow]),
            None => Ok(()),
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        match self.mode {
            FaultMode::DropSyncs => Ok(()),
            FaultMode::Buffered => {
                let mut ledger = self.ledger.lock();
                ledger.spent += 1;
                let spent = ledger.spent;
                ledger.boundaries.push(spent);
                drop(ledger);
                // Buffered mode always carries a shadow; a missing one is a
                // harness misconfiguration, degraded to a plain sync.
                let Some(shadow) = self.shadow.clone() else {
                    return self.real.sync();
                };
                self.real.write_at(0, &shadow)?;
                self.real.set_len(u64_of(shadow.len()))?;
                self.real.sync()
            }
            FaultMode::KillAfter(n) => {
                let mut ledger = self.ledger.lock();
                if ledger.crashed || ledger.spent >= n {
                    ledger.crashed = true;
                    return Ok(());
                }
                ledger.spent += 1;
                let spent = ledger.spent;
                ledger.boundaries.push(spent);
                drop(ledger);
                self.real.sync()
            }
            FaultMode::FlipByteAt(_) => self.real.sync(),
        }
    }

    fn len(&mut self) -> io::Result<u64> {
        match &self.shadow {
            Some(shadow) => Ok(u64_of(shadow.len())),
            None => self.real.len(),
        }
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        if let Some(shadow) = &mut self.shadow {
            shadow.resize(usize::try_from(len).unwrap_or(usize::MAX), 0);
            return Ok(());
        }
        match self.mode {
            FaultMode::KillAfter(n) => {
                let mut ledger = self.ledger.lock();
                if ledger.crashed || ledger.spent >= n {
                    ledger.crashed = true;
                    return Ok(());
                }
                ledger.spent += 1;
                let spent = ledger.spent;
                ledger.boundaries.push(spent);
                drop(ledger);
                self.real.set_len(len)
            }
            _ => self.real.set_len(len),
        }
    }
}

impl PageIo for FaultIo {
    fn open(&self, path: &Path, truncate: bool) -> io::Result<Box<dyn FileIo>> {
        // Opening never tears: the interesting faults live in writes and the
        // commit ops.  In the buffered modes truncation is deferred to the
        // shadow, so an unflushed truncate is lost like any other write.
        let buffered = matches!(self.mode, FaultMode::Buffered | FaultMode::DropSyncs);
        let mut real = self.inner.open(path, truncate && !buffered)?;
        let shadow = if buffered {
            if truncate {
                Some(Vec::new())
            } else {
                let len = usize::try_from(real.len()?).unwrap_or(usize::MAX);
                let mut content = vec![0u8; len];
                real.read_at(0, &mut content)?;
                Some(content)
            }
        } else {
            None
        };
        Ok(Box::new(FaultFile {
            real,
            mode: self.mode,
            ledger: Arc::clone(&self.ledger),
            shadow,
        }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        // Renames are atomic: they either happen or the crash dropped them.
        // In the buffered modes the rename moves whatever the *disk* holds —
        // renaming an unflushed file publishes its stale (possibly empty)
        // on-disk content, exactly the hazard a missing fsync creates.
        if matches!(self.mode, FaultMode::KillAfter(_)) && !self.charge_op() {
            return Ok(());
        }
        self.inner.rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        if matches!(self.mode, FaultMode::KillAfter(_)) && !self.charge_op() {
            return Ok(());
        }
        self.inner.remove(path)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
}

// ---------------------------------------------------------------------------
// Element codec: the wire layout queries already ship (8-byte TRS, 4-byte
// group, 2-byte ciphertext length, ciphertext), reused for WAL records and
// the manifest's tail section.
// ---------------------------------------------------------------------------

/// Bytes of the element header (TRS + group + ciphertext length).
pub(crate) const ELEMENT_BYTES: usize = 14;

pub(crate) fn encode_element(e: &OrderedElement, out: &mut Vec<u8>) -> Result<(), StoreError> {
    let len = u16::try_from(e.sealed.ciphertext.len())
        .map_err(|_| StoreError::Io("element ciphertext exceeds the u16 wire bound".to_string()))?;
    out.extend_from_slice(&e.trs.to_le_bytes());
    out.extend_from_slice(&e.group.0.to_le_bytes());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&e.sealed.ciphertext);
    Ok(())
}

pub(crate) fn decode_element(buf: &[u8], pos: &mut usize) -> Result<OrderedElement, StoreError> {
    let trs = read_f64(buf, *pos)?;
    let group = GroupId(read_u32(buf, *pos + 8)?);
    let len = usize::from(read_u16(buf, *pos + 12)?);
    *pos += ELEMENT_BYTES;
    let ciphertext = read_bytes(buf, *pos, len)?.to_vec();
    *pos += len;
    if !trs.is_finite() {
        return Err(StoreError::CorruptSegment(
            "non-finite TRS in element record".to_string(),
        ));
    }
    Ok(OrderedElement {
        trs,
        group,
        sealed: EncryptedElement { group, ciphertext },
    })
}

// ---------------------------------------------------------------------------
// WAL framing: `[payload_len: u32][crc32(payload): u32][payload]` where the
// payload is `[seq: u64][list: u64][element]`.
// ---------------------------------------------------------------------------

/// Bytes of the frame header (length + CRC).
pub(crate) const WAL_FRAME_HEADER: usize = 8;
/// Smallest possible payload: sequence + list id + element header.
const WAL_MIN_PAYLOAD: usize = 16 + ELEMENT_BYTES;
/// Sanity bound: no insert record is remotely this large, so a length field
/// beyond it is corruption, not data.
const WAL_MAX_PAYLOAD: usize = 16 << 20;

/// One decoded WAL record: the `seq`-th insert of its shard.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct WalRecord {
    pub seq: u64,
    pub list: u64,
    pub element: OrderedElement,
}

/// Encodes one insert as a CRC-framed WAL record.
pub(crate) fn encode_wal_frame(
    seq: u64,
    list: u64,
    element: &OrderedElement,
) -> Result<Vec<u8>, StoreError> {
    let mut payload = Vec::with_capacity(16 + ELEMENT_BYTES + element.sealed.ciphertext.len());
    payload.extend_from_slice(&seq.to_le_bytes());
    payload.extend_from_slice(&list.to_le_bytes());
    encode_element(element, &mut payload)?;
    let mut frame = Vec::with_capacity(WAL_FRAME_HEADER + payload.len());
    frame.extend_from_slice(&try_u32(payload.len())?.to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    Ok(frame)
}

/// Result of scanning a WAL image: the records whose frames fully fit and
/// validate, the byte length of that valid prefix, and whether anything
/// (a torn tail, a CRC mismatch, garbage) followed it.
#[derive(Debug)]
pub(crate) struct WalScan {
    pub records: Vec<WalRecord>,
    pub valid_len: u64,
    pub torn: bool,
}

/// Scans a WAL image front to back, stopping at the first frame that does
/// not fully fit or fails its CRC.  Everything after the first invalid frame
/// is untrusted (records must apply in order, so nothing beyond a gap can be
/// used) and reported as torn.
pub(crate) fn scan_wal(bytes: &[u8]) -> WalScan {
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        if pos + WAL_FRAME_HEADER > bytes.len() {
            return WalScan {
                records,
                valid_len: u64_of(pos),
                torn: pos < bytes.len(),
            };
        }
        let torn = |records| WalScan {
            records,
            valid_len: u64_of(pos),
            torn: true,
        };
        let (Ok(len), Ok(crc)) = (read_u32(bytes, pos), read_u32(bytes, pos + 4)) else {
            return torn(records);
        };
        let len = usize_of(len);
        if !(WAL_MIN_PAYLOAD..=WAL_MAX_PAYLOAD).contains(&len) {
            return torn(records);
        }
        let Ok(payload) = read_bytes(bytes, pos + WAL_FRAME_HEADER, len) else {
            return torn(records);
        };
        if crc32(payload) != crc {
            return torn(records);
        }
        let (Ok(seq), Ok(list)) = (read_u64(payload, 0), read_u64(payload, 8)) else {
            return torn(records);
        };
        let mut at = 16usize;
        let element = match decode_element(payload, &mut at) {
            Ok(e) if at == payload.len() => e,
            _ => return torn(records),
        };
        records.push(WalRecord { seq, list, element });
        pos += WAL_FRAME_HEADER + len;
    }
}

// ---------------------------------------------------------------------------
// Checkpoint manifest codec.  One manifest per shard; committed via
// write-tmp + fsync + atomic rename, validated end to end by a trailing
// CRC32.
// ---------------------------------------------------------------------------

const MANIFEST_MAGIC: u64 = 0x4e41_4d5a; // "ZMAN"
const MANIFEST_VERSION: u64 = 1;

/// Checkpoint state of one list: the sealed pages (in stack order) and the
/// mutable tail at checkpoint time.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct ManifestList {
    /// `(offset, len, crc32)` of each sealed page in the shard's page
    /// file.  The CRC covers the page's encoded bytes, so recovery detects
    /// payload corruption that segment structure validation alone cannot
    /// (a flipped ciphertext byte decodes fine).
    pub pages: Vec<(u64, u32, u32)>,
    /// The tail elements (descending TRS), stored inline — small by
    /// construction (bounded by the segment config's tail threshold).
    pub tail: Vec<OrderedElement>,
}

/// Checkpoint state of one shard.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Manifest {
    /// Generation of the page file the page offsets refer to
    /// (`shard-NNN.g<generation>.pages`).
    pub generation: u64,
    /// Every WAL record with `seq <= applied_seq` is already folded into the
    /// pages/tails above; replay skips them.
    pub applied_seq: u64,
    /// Per-list checkpoint state, in shard slot order.
    pub lists: Vec<ManifestList>,
}

pub(crate) fn encode_manifest(m: &Manifest) -> Result<Vec<u8>, StoreError> {
    let mut out = Vec::new();
    out.extend_from_slice(&MANIFEST_MAGIC.to_le_bytes());
    out.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
    out.extend_from_slice(&m.generation.to_le_bytes());
    out.extend_from_slice(&m.applied_seq.to_le_bytes());
    out.extend_from_slice(&u64_of(m.lists.len()).to_le_bytes());
    for list in &m.lists {
        out.extend_from_slice(&u64_of(list.pages.len()).to_le_bytes());
        for &(offset, len, crc) in &list.pages {
            out.extend_from_slice(&offset.to_le_bytes());
            out.extend_from_slice(&len.to_le_bytes());
            out.extend_from_slice(&crc.to_le_bytes());
        }
        out.extend_from_slice(&u64_of(list.tail.len()).to_le_bytes());
        for element in &list.tail {
            encode_element(element, &mut out)?;
        }
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    Ok(out)
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn corrupt(what: &str) -> StoreError {
        StoreError::CorruptSegment(format!("truncated {what}"))
    }

    fn u64(&mut self, what: &str) -> Result<u64, StoreError> {
        let v = read_u64(self.buf, self.pos).map_err(|_| Self::corrupt(what))?;
        self.pos += 8;
        Ok(v)
    }

    fn u32(&mut self, what: &str) -> Result<u32, StoreError> {
        let v = read_u32(self.buf, self.pos).map_err(|_| Self::corrupt(what))?;
        self.pos += 4;
        Ok(v)
    }

    /// Bounds a length field before it sizes an allocation: a corrupt count
    /// cannot ask for more items than the remaining bytes could encode.
    fn counted(&self, count: u64, min_item: usize, what: &str) -> Result<usize, StoreError> {
        let count = usize::try_from(count).map_err(|_| Self::corrupt(what))?;
        let remaining = self.buf.len() - self.pos;
        if count.saturating_mul(min_item.max(1)) > remaining {
            return Err(StoreError::CorruptSegment(format!(
                "implausible {what} count {count}"
            )));
        }
        Ok(count)
    }
}

/// Validates the trailing CRC and splits it off, returning the covered body.
fn checked_body<'a>(bytes: &'a [u8], what: &str) -> Result<&'a [u8], StoreError> {
    if bytes.len() < 4 {
        return Err(StoreError::CorruptSegment(format!("truncated {what}")));
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let want = read_u32(crc_bytes, 0)?;
    if crc32(body) != want {
        return Err(StoreError::CorruptSegment(format!("{what} CRC mismatch")));
    }
    Ok(body)
}

pub(crate) fn decode_manifest(bytes: &[u8]) -> Result<Manifest, StoreError> {
    let body = checked_body(bytes, "manifest")?;
    let mut r = Reader { buf: body, pos: 0 };
    if r.u64("manifest magic")? != MANIFEST_MAGIC {
        return Err(StoreError::CorruptSegment("bad manifest magic".to_string()));
    }
    let version = r.u64("manifest version")?;
    if version != MANIFEST_VERSION {
        return Err(StoreError::CorruptSegment(format!(
            "unsupported manifest version {version}"
        )));
    }
    let generation = r.u64("manifest generation")?;
    let applied_seq = r.u64("manifest applied seq")?;
    let num_lists = r.u64("manifest list count")?;
    let num_lists = r.counted(num_lists, 16, "manifest list")?;
    let mut lists = Vec::with_capacity(num_lists);
    for _ in 0..num_lists {
        let num_pages = r.u64("manifest page count")?;
        let num_pages = r.counted(num_pages, 16, "manifest page")?;
        let mut pages = Vec::with_capacity(num_pages);
        for _ in 0..num_pages {
            let offset = r.u64("manifest page offset")?;
            let len = r.u32("manifest page length")?;
            let crc = r.u32("manifest page checksum")?;
            pages.push((offset, len, crc));
        }
        let num_tail = r.u64("manifest tail count")?;
        let num_tail = r.counted(num_tail, ELEMENT_BYTES, "manifest tail element")?;
        let mut tail = Vec::with_capacity(num_tail);
        for _ in 0..num_tail {
            tail.push(decode_element(body, &mut r.pos)?);
        }
        lists.push(ManifestList { pages, tail });
    }
    if r.pos != body.len() {
        return Err(StoreError::CorruptSegment(
            "trailing bytes after manifest".to_string(),
        ));
    }
    Ok(Manifest {
        generation,
        applied_seq,
        lists,
    })
}

// ---------------------------------------------------------------------------
// Store metadata codec (`store.meta`): everything `SpillStore::open` needs
// to rebuild the store that `create_durable` wrote — shard count, segment
// layout and the merge plan.  Written once at create time, never mutated.
// ---------------------------------------------------------------------------

const META_MAGIC: u64 = 0x4554_4d5a; // "ZMTE"
const META_VERSION: u64 = 1;

/// The immutable identity of a durable store.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct StoreMeta {
    pub num_shards: u64,
    /// Segment layout knobs, persisted so reopened lists split/seal exactly
    /// like the original store (replay determinism).
    pub segment: crate::segment::SegmentConfig,
    /// Merge-plan scheme name.
    pub scheme: String,
    /// Merge-plan confidentiality parameter.
    pub r: f64,
    /// Terms of each merged list, in list order.
    pub term_lists: Vec<Vec<u32>>,
}

pub(crate) fn encode_store_meta(meta: &StoreMeta) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&META_MAGIC.to_le_bytes());
    out.extend_from_slice(&META_VERSION.to_le_bytes());
    out.extend_from_slice(&meta.num_shards.to_le_bytes());
    for knob in [
        meta.segment.block_len,
        meta.segment.tail_threshold,
        meta.segment.max_segment_elems,
        meta.segment.max_segments,
        meta.segment.max_payload_bytes,
    ] {
        out.extend_from_slice(&u64_of(knob).to_le_bytes());
    }
    out.extend_from_slice(&meta.r.to_le_bytes());
    out.extend_from_slice(&u64_of(meta.scheme.len()).to_le_bytes());
    out.extend_from_slice(meta.scheme.as_bytes());
    out.extend_from_slice(&u64_of(meta.term_lists.len()).to_le_bytes());
    for terms in &meta.term_lists {
        out.extend_from_slice(&u64_of(terms.len()).to_le_bytes());
        for &t in terms {
            out.extend_from_slice(&t.to_le_bytes());
        }
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

pub(crate) fn decode_store_meta(bytes: &[u8]) -> Result<StoreMeta, StoreError> {
    let body = checked_body(bytes, "store metadata")?;
    let mut r = Reader { buf: body, pos: 0 };
    if r.u64("store metadata magic")? != META_MAGIC {
        return Err(StoreError::CorruptSegment(
            "bad store metadata magic".to_string(),
        ));
    }
    let version = r.u64("store metadata version")?;
    if version != META_VERSION {
        return Err(StoreError::CorruptSegment(format!(
            "unsupported store metadata version {version}"
        )));
    }
    let num_shards = r.u64("shard count")?;
    let mut knobs = [0u64; 5];
    for knob in &mut knobs {
        *knob = r.u64("segment knob")?;
    }
    let segment = crate::segment::SegmentConfig {
        block_len: usize::try_from(knobs[0]).map_err(|_| Reader::corrupt("segment knob"))?,
        tail_threshold: usize::try_from(knobs[1]).map_err(|_| Reader::corrupt("segment knob"))?,
        max_segment_elems: usize::try_from(knobs[2])
            .map_err(|_| Reader::corrupt("segment knob"))?,
        max_segments: usize::try_from(knobs[3]).map_err(|_| Reader::corrupt("segment knob"))?,
        max_payload_bytes: usize::try_from(knobs[4])
            .map_err(|_| Reader::corrupt("segment knob"))?,
    };
    let r_param = f64::from_bits(r.u64("confidentiality parameter")?);
    let scheme_len = r.u64("scheme length")?;
    let scheme_len = r.counted(scheme_len, 1, "scheme byte")?;
    let scheme_bytes =
        read_bytes(body, r.pos, scheme_len).map_err(|_| Reader::corrupt("scheme name"))?;
    let scheme = String::from_utf8(scheme_bytes.to_vec())
        .map_err(|_| StoreError::CorruptSegment("scheme name is not UTF-8".to_string()))?;
    r.pos += scheme_len;
    let num_lists = r.u64("list count")?;
    let num_lists = r.counted(num_lists, 8, "term list")?;
    let mut term_lists = Vec::with_capacity(num_lists);
    for _ in 0..num_lists {
        let num_terms = r.u64("term count")?;
        let num_terms = r.counted(num_terms, 4, "term")?;
        let mut terms = Vec::with_capacity(num_terms);
        for _ in 0..num_terms {
            terms.push(r.u32("term id")?);
        }
        term_lists.push(terms);
    }
    if r.pos != body.len() {
        return Err(StoreError::CorruptSegment(
            "trailing bytes after store metadata".to_string(),
        ));
    }
    Ok(StoreMeta {
        num_shards,
        segment,
        scheme,
        r: r_param,
        term_lists,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::SegmentConfig;

    fn element(trs: f64, group: u32, ct: &[u8]) -> OrderedElement {
        OrderedElement {
            trs,
            group: GroupId(group),
            sealed: EncryptedElement {
                group: GroupId(group),
                ciphertext: ct.to_vec(),
            },
        }
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn wal_frames_round_trip_and_reject_corruption() {
        let e = element(0.75, 3, &[1, 2, 3, 4, 5]);
        let frame = encode_wal_frame(9, 4, &e).unwrap();
        let scan = scan_wal(&frame);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].seq, 9);
        assert_eq!(scan.records[0].list, 4);
        assert_eq!(scan.records[0].element, e);
        assert_eq!(scan.valid_len, frame.len() as u64);
        assert!(!scan.torn);

        // Every strict prefix is torn and yields zero records.
        for cut in 1..frame.len() {
            let scan = scan_wal(&frame[..cut]);
            assert!(scan.records.is_empty(), "cut {cut}");
            assert_eq!(scan.valid_len, 0, "cut {cut}");
            assert!(scan.torn, "cut {cut}");
        }

        // A flipped payload byte fails the CRC; a flipped length field fails
        // the bounds check.  Neither panics, neither yields the record.
        for flip in 0..frame.len() {
            let mut bad = frame.clone();
            bad[flip] ^= 0x40;
            let scan = scan_wal(&bad);
            assert!(scan.records.is_empty(), "flip {flip}");
            assert!(scan.torn, "flip {flip}");
        }
    }

    #[test]
    fn wal_scans_stop_at_the_first_invalid_frame() {
        let mut image = Vec::new();
        for seq in 1..=3u64 {
            image.extend_from_slice(
                &encode_wal_frame(seq, 0, &element(0.5, 0, &[seq as u8; 4])).unwrap(),
            );
        }
        let frame_len = image.len() / 3;
        // Corrupt the middle frame: only the first survives (nothing beyond
        // a gap may apply).
        let mut bad = image.clone();
        bad[frame_len + WAL_FRAME_HEADER + 2] ^= 0xFF;
        let scan = scan_wal(&bad);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.valid_len, frame_len as u64);
        assert!(scan.torn);
    }

    #[test]
    fn manifests_round_trip_and_reject_any_flip() {
        let m = Manifest {
            generation: 7,
            applied_seq: 42,
            lists: vec![
                ManifestList {
                    pages: vec![(0, 128, 0xdead_beef), (128, 64, 0x0bad_f00d)],
                    tail: vec![element(0.5, 1, &[9; 6]), element(0.25, 0, &[])],
                },
                ManifestList::default(),
            ],
        };
        let bytes = encode_manifest(&m).unwrap();
        assert_eq!(decode_manifest(&bytes).unwrap(), m);
        for flip in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[flip] ^= 0x10;
            assert!(decode_manifest(&bad).is_err(), "flip {flip} must fail CRC");
        }
        assert!(decode_manifest(&bytes[..bytes.len() - 1]).is_err());
        assert!(decode_manifest(&[]).is_err());
    }

    #[test]
    fn store_meta_round_trips() {
        let meta = StoreMeta {
            num_shards: 4,
            segment: SegmentConfig {
                block_len: 4,
                tail_threshold: 3,
                max_segment_elems: 16,
                max_segments: 3,
                max_payload_bytes: 1 << 20,
            },
            scheme: "test-scheme".to_string(),
            r: 2.5,
            term_lists: vec![vec![1, 2, 3], vec![], vec![7]],
        };
        let bytes = encode_store_meta(&meta);
        assert_eq!(decode_store_meta(&bytes).unwrap(), meta);
        let mut bad = bytes.clone();
        bad[20] ^= 0x01;
        assert!(decode_store_meta(&bad).is_err());
    }

    #[test]
    fn kill_after_budget_tears_writes_and_drops_later_ops() {
        let dir = std::env::temp_dir().join(format!("zerber-durable-ut-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("kill-a");
        let b = dir.join("kill-b");
        let io = FaultIo::new(FaultMode::KillAfter(6));
        {
            let mut f = io.open(&a, true).unwrap();
            f.write_at(0, &[1, 2, 3, 4]).unwrap();
            // This write straddles the budget: only 2 of 4 bytes land.
            f.write_at(4, &[5, 6, 7, 8]).unwrap();
        }
        assert!(io.crashed());
        // Post-crash ops silently do nothing.
        io.rename(&a, &b).unwrap();
        assert!(a.exists() && !b.exists());
        assert_eq!(std::fs::read(&a).unwrap(), vec![1, 2, 3, 4, 5, 6]);
        std::fs::remove_file(&a).unwrap();
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn buffered_mode_loses_unsynced_writes_and_keeps_synced_ones() {
        let dir = std::env::temp_dir().join(format!("zerber-durable-ub-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("buffered");
        {
            let io = FaultIo::new(FaultMode::Buffered);
            let mut f = io.open(&path, true).unwrap();
            f.write_at(0, &[1, 2, 3]).unwrap();
            f.sync().unwrap();
            f.write_at(3, &[4, 5, 6]).unwrap();
            // Reads see the buffered bytes (the live process view)...
            let mut buf = [0u8; 6];
            f.read_at(0, &mut buf).unwrap();
            assert_eq!(buf, [1, 2, 3, 4, 5, 6]);
            // ...but the crash (drop without sync) loses the unflushed tail.
        }
        assert_eq!(std::fs::read(&path).unwrap(), vec![1, 2, 3]);
        {
            let io = FaultIo::new(FaultMode::DropSyncs);
            let mut f = io.open(&path, false).unwrap();
            f.write_at(3, &[9, 9]).unwrap();
            f.sync().unwrap(); // dropped
        }
        assert_eq!(std::fs::read(&path).unwrap(), vec![1, 2, 3]);
        std::fs::remove_file(&path).unwrap();
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn flip_byte_corrupts_exactly_one_byte() {
        let dir = std::env::temp_dir().join(format!("zerber-durable-uf-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flip");
        let io = FaultIo::new(FaultMode::FlipByteAt(2));
        {
            let mut f = io.open(&path, true).unwrap();
            f.write_at(0, &[0u8; 5]).unwrap();
        }
        assert_eq!(std::fs::read(&path).unwrap(), vec![0, 0, 0x5A, 0, 0]);
        std::fs::remove_file(&path).unwrap();
        let _ = std::fs::remove_dir(&dir);
    }
}
