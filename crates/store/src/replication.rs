//! Primary→replica index replication: checkpoint/WAL streaming with
//! fault-injected catch-up, retry/backoff and bounded-staleness reads.
//!
//! The durable [`SpillStore`] already mints everything a replication stream
//! needs: CRC-framed `(seq, list, element)` WAL records (the live tail) and
//! the generational checkpoint manifest + page files (the snapshot).  This
//! module turns those into a replication protocol:
//!
//! * [`ReplicationSource`] — the primary side.  Serves a **snapshot** (the
//!   `store.meta` identity block plus, per shard, the current manifest, the
//!   page file of the generation it references and the live WAL tail — every
//!   byte CRC-carried) and a **WAL tail subscription**: wire-ready frames
//!   with `seq > from`, per shard, straight out of the live log.  When a
//!   checkpoint has already reset the records a subscriber needs, the source
//!   says so (`need_snapshot`) instead of silently skipping history.
//! * [`Replica`] — bootstraps by writing the snapshot into its own root and
//!   opening it through the existing *fully validating* recovery path
//!   (`ShardedCore::assemble`, per-page CRC, WAL replay, post-recovery
//!   audit), then applies streamed frames through the normal logged-insert
//!   path — so the replica's own WAL/checkpoint state tracks the primary's
//!   sequence space exactly and a crashed replica recovers like any durable
//!   store.  Apply is idempotent: `seq <= applied` frames are skipped and
//!   metered; out-of-order frames are dropped and re-polled (the transport
//!   resumes from the last applied sequence); a true history gap — the
//!   source can no longer supply the tail — triggers a full re-snapshot
//!   rather than silent divergence.
//! * [`ReplicaTransport`] — the fallible seam between them.  The in-process
//!   implementation ([`InProcessTransport`]) calls the source directly but
//!   ships the same wire-shaped bytes a socket implementation would, and the
//!   deterministic [`FaultTransport`] shim tears, bit-flips, duplicates and
//!   reorders frames, drops connections and kills the stream after a budget
//!   — every fault the reconnect loop (capped exponential [`Backoff`] with
//!   jitter, resume-from-last-applied) must absorb.
//! * [`ReplicaReadStore`] — the serving wrapper: a [`ListStore`] over the
//!   replica that answers through the existing batched scheduler but guards
//!   every read with a bounded-staleness check — a replica lagging the
//!   primary's last known head past `max_lag` returns the typed
//!   [`StoreError::Degraded`] (retry on the primary) instead of stale data.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};
use zerber_base::{MergePlan, MergedListId};
use zerber_corpus::GroupId;
use zerber_r::OrderedElement;

use crate::convert::{u64_of, usize_of};
use crate::durable::{crc32, io_err, scan_wal, PageIo, RealIo, WalRecord};
use crate::error::StoreError;
use crate::lockrank::{self, LockClass};
use crate::spill::{SpillStore, WalTail};
use crate::store::{
    CursorId, ListStore, RangedBatch, RangedFetch, SessionStats, ShardBucketOutput, ShardJobBucket,
    ShardJobPlan, StoreJob,
};

// ---------------------------------------------------------------------------
// Backoff: the reusable reconnect-delay policy.
// ---------------------------------------------------------------------------

/// Capped exponential backoff with deterministic jitter: delay doubles from
/// `base` up to `cap`, each draw jittered uniformly into `[delay/2, delay]`
/// so a fleet of replicas reconnecting after the same outage spreads out.
/// `reset` (called on any successful exchange) returns to `base`.  The
/// jitter source is a seeded xorshift, so a fixed seed replays the exact
/// same delay sequence — the unit tests (and any future socket ingress
/// reusing this helper) get reproducible schedules.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    attempt: u32,
    rng: u64,
}

impl Backoff {
    /// A backoff from `base` doubling up to `cap`, with the default seed.
    pub fn new(base: Duration, cap: Duration) -> Backoff {
        Backoff::with_seed(base, cap, 0x9e37_79b9_7f4a_7c15)
    }

    /// Like [`Backoff::new`] with an explicit jitter seed (tests).
    pub fn with_seed(base: Duration, cap: Duration, seed: u64) -> Backoff {
        Backoff {
            base,
            cap,
            attempt: 0,
            // Xorshift needs a non-zero state.
            rng: seed | 1,
        }
    }

    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// The next reconnect delay: `min(cap, base * 2^attempts)` jittered
    /// into `[delay/2, delay]`.  Advances the attempt counter.
    pub fn next_delay(&mut self) -> Duration {
        // Cap the shift so the multiplier cannot overflow; the duration
        // itself saturates at `cap` anyway.
        let factor = 1u32 << self.attempt.min(20);
        self.attempt = self.attempt.saturating_add(1);
        let full = self.base.saturating_mul(factor).min(self.cap);
        let half = full / 2;
        let jitter_nanos = full.saturating_sub(half).as_nanos();
        if jitter_nanos == 0 {
            return full;
        }
        let draw = self.next_rand() as u128 % (jitter_nanos + 1);
        // Saturating narrow: a draw past u64 nanoseconds (itself centuries)
        // can only shorten the jitter, never panic or wrap.
        half + Duration::from_nanos(u64::try_from(draw).unwrap_or(u64::MAX))
    }

    /// Reconnect attempts since the last reset.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Returns to the base delay (called after any successful exchange).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

// ---------------------------------------------------------------------------
// The wire shapes and the transport seam.
// ---------------------------------------------------------------------------

/// Transport-level failures the catch-up loop must absorb.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// Connection-level failure — reconnect with backoff and resume from
    /// the last applied sequence.
    Disconnected(String),
    /// Simulated death of the replica process (fault injection): the
    /// harness tears the replica down and recovers it from its own root.
    Killed,
}

/// One file of a snapshot, CRC-carried so a corrupted transfer is detected
/// before anything touches the replica's root.
#[derive(Debug, Clone)]
pub struct SnapshotFile {
    /// File name relative to the store root (`store.meta`,
    /// `shard-000.manifest`, `shard-000.g3.pages`, `shard-000.wal`, ...).
    pub name: String,
    /// CRC32 over `bytes`.
    pub crc: u32,
    pub bytes: Vec<u8>,
}

/// A full snapshot: the file set a replica writes into an empty root and
/// opens through the ordinary recovery path, plus the primary's per-shard
/// head sequences at snapshot time.
#[derive(Debug, Clone)]
pub struct SnapshotPayload {
    pub files: Vec<SnapshotFile>,
    pub heads: Vec<u64>,
}

/// One streamed WAL frame: the shard it belongs to and the raw bytes in the
/// WAL wire format (`[len][crc][seq][list][element]`) — exactly what a
/// socket implementation would ship, so the replica CRC-validates every
/// frame regardless of transport.
#[derive(Debug, Clone)]
pub struct WireFrame {
    pub shard: u32,
    pub bytes: Vec<u8>,
}

/// One poll of the tail subscription.
#[derive(Debug, Clone, Default)]
pub struct FrameBatch {
    pub frames: Vec<WireFrame>,
    /// The primary's per-shard head (last applied) sequences at poll time —
    /// what the replica measures its lag against.
    pub heads: Vec<u64>,
    /// Set when some shard's tail past the subscriber's position was
    /// checkpointed out of the primary's WAL: the subscriber must
    /// re-snapshot instead of silently skipping history.
    pub need_snapshot: bool,
}

/// The fallible replica-side transport seam.  The in-process implementation
/// wraps a [`ReplicationSource`] directly; a socket implementation drops in
/// by shipping the same wire-shaped payloads.
pub trait ReplicaTransport: Send + Sync + std::fmt::Debug {
    /// Fetches a full snapshot of the primary.
    fn fetch_snapshot(&self) -> Result<SnapshotPayload, TransportError>;

    /// Polls the live WAL tail: frames with `seq > from[shard]` for every
    /// shard, at most `max_frames` total.
    fn poll_frames(&self, from: &[u64], max_frames: usize) -> Result<FrameBatch, TransportError>;
}

// ---------------------------------------------------------------------------
// The primary side.
// ---------------------------------------------------------------------------

/// The primary side of replication: serves snapshots and WAL tail reads off
/// a durable [`SpillStore`] without disturbing it (snapshot reads take the
/// shard read lock; tail reads take only the WAL append mutex).
#[derive(Debug)]
pub struct ReplicationSource {
    primary: Arc<SpillStore>,
}

impl ReplicationSource {
    /// Wraps a durable primary.  Refuses non-durable stores: without a WAL
    /// and manifests there is nothing to stream.
    pub fn new(primary: Arc<SpillStore>) -> Result<Arc<ReplicationSource>, StoreError> {
        if !primary.is_durable() {
            return Err(StoreError::Io(
                "replication requires a durable primary store".to_string(),
            ));
        }
        Ok(Arc::new(ReplicationSource { primary }))
    }

    /// The primary store this source streams from.
    pub fn primary(&self) -> &Arc<SpillStore> {
        &self.primary
    }

    /// A full snapshot: `store.meta` plus every shard's manifest, the page
    /// file its generation references and the live WAL tail, each file
    /// CRC-stamped.
    pub fn snapshot(&self) -> Result<SnapshotPayload, StoreError> {
        let mut raw = vec![("store.meta".to_string(), self.primary.replication_meta()?)];
        for shard in 0..self.primary.num_shards() {
            raw.extend(self.primary.shard_snapshot_files(shard)?);
        }
        let files = raw
            .into_iter()
            .map(|(name, bytes)| SnapshotFile {
                name,
                crc: crc32(&bytes),
                bytes,
            })
            .collect();
        Ok(SnapshotPayload {
            files,
            heads: self.primary.wal_applied_seqs(),
        })
    }

    /// The live tail past `from` (one position per shard), at most
    /// `max_frames` frames.  Reports `need_snapshot` when some shard's
    /// records past `from` were already folded into a checkpoint.
    pub fn frames_after(&self, from: &[u64], max_frames: usize) -> Result<FrameBatch, StoreError> {
        let num_shards = self.primary.num_shards();
        if from.len() != num_shards {
            return Err(StoreError::Io(format!(
                "subscription carries {} positions, primary has {num_shards} shards",
                from.len()
            )));
        }
        let mut batch = FrameBatch::default();
        let mut budget = max_frames.max(1);
        for (shard, &pos) in from.iter().enumerate() {
            let wire_shard = u32::try_from(shard)
                .map_err(|_| StoreError::Invariant("shard index exceeds the u32 wire field"))?;
            match self.primary.wal_frames_after(shard, pos, budget)? {
                WalTail::Frames { frames, head } => {
                    budget = budget.saturating_sub(frames.len());
                    batch
                        .frames
                        .extend(frames.into_iter().map(|bytes| WireFrame {
                            shard: wire_shard,
                            bytes,
                        }));
                    batch.heads.push(head);
                }
                WalTail::Gap { head } => {
                    batch.need_snapshot = true;
                    batch.heads.push(head);
                }
            }
        }
        Ok(batch)
    }
}

/// The in-process transport: calls the source directly, ships the same
/// wire-shaped payloads a socket would.
#[derive(Debug)]
pub struct InProcessTransport {
    source: Arc<ReplicationSource>,
}

impl InProcessTransport {
    pub fn new(source: Arc<ReplicationSource>) -> Arc<InProcessTransport> {
        Arc::new(InProcessTransport { source })
    }
}

impl ReplicaTransport for InProcessTransport {
    fn fetch_snapshot(&self) -> Result<SnapshotPayload, TransportError> {
        self.source
            .snapshot()
            .map_err(|e| TransportError::Disconnected(e.to_string()))
    }

    fn poll_frames(&self, from: &[u64], max_frames: usize) -> Result<FrameBatch, TransportError> {
        self.source
            .frames_after(from, max_frames)
            .map_err(|e| TransportError::Disconnected(e.to_string()))
    }
}

// ---------------------------------------------------------------------------
// Deterministic transport fault injection.
// ---------------------------------------------------------------------------

/// What the fault shim does to the stream.  All schedules are counter-based
/// (`every`-style, 0 disables) so a fixed plan replays the exact same fault
/// sequence; the only randomness — which byte a flip hits — comes from a
/// seeded xorshift.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Jitter seed for flip positions.
    pub seed: u64,
    /// Every k-th delivered frame is truncated mid-frame (a torn frame).
    pub tear_every: u64,
    /// Every k-th delivered frame has one byte XORed with `0x5A`.
    pub flip_every: u64,
    /// Every k-th delivered frame is delivered twice.
    pub duplicate_every: u64,
    /// Every k-th batch is delivered in reversed frame order.
    pub reorder_every: u64,
    /// Every k-th poll fails with [`TransportError::Disconnected`].
    pub disconnect_every: u64,
    /// Every k-th snapshot fetch is corrupted (one file's bytes flipped).
    pub corrupt_snapshot_every: u64,
    /// After this many frames have been delivered, every call returns
    /// [`TransportError::Killed`] until [`FaultTransport::revive`].
    pub kill_after: Option<u64>,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan {
            seed: 0x5eed,
            tear_every: 0,
            flip_every: 0,
            duplicate_every: 0,
            reorder_every: 0,
            disconnect_every: 0,
            corrupt_snapshot_every: 0,
            kill_after: None,
        }
    }
}

#[derive(Debug)]
struct FaultState {
    frames_delivered: u64,
    polls: u64,
    snapshots: u64,
    rng: u64,
    kill_after: Option<u64>,
    killed: bool,
}

/// The deterministic transport fault shim: wraps any [`ReplicaTransport`]
/// and injects torn/bit-flipped frames, duplicates, reordering, disconnects
/// and kill-after-N according to a [`FaultPlan`].
#[derive(Debug)]
pub struct FaultTransport {
    inner: Arc<dyn ReplicaTransport>,
    plan: FaultPlan,
    state: Mutex<FaultState>,
}

impl FaultTransport {
    pub fn new(inner: Arc<dyn ReplicaTransport>, plan: FaultPlan) -> Arc<FaultTransport> {
        Arc::new(FaultTransport {
            inner,
            plan,
            state: Mutex::new(FaultState {
                frames_delivered: 0,
                polls: 0,
                snapshots: 0,
                rng: plan.seed | 1,
                kill_after: plan.kill_after,
                killed: false,
            }),
        })
    }

    /// Total frames delivered so far (duplicates count twice, torn and
    /// flipped deliveries count too — the counter is the fault schedule).
    pub fn frames_delivered(&self) -> u64 {
        self.state.lock().frames_delivered
    }

    /// Whether the kill budget has fired.
    pub fn killed(&self) -> bool {
        self.state.lock().killed
    }

    /// Clears a fired kill (and its budget): the transport the recovered
    /// replica reconnects through.
    pub fn revive(&self) {
        let mut state = self.state.lock();
        state.killed = false;
        state.kill_after = None;
    }

    fn next_rand(state: &mut FaultState) -> u64 {
        let mut x = state.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        state.rng = x;
        x
    }

    fn hits(n: u64, every: u64) -> bool {
        every > 0 && n.is_multiple_of(every)
    }
}

impl ReplicaTransport for FaultTransport {
    fn fetch_snapshot(&self) -> Result<SnapshotPayload, TransportError> {
        {
            let mut state = self.state.lock();
            if state.killed {
                return Err(TransportError::Killed);
            }
            state.snapshots += 1;
        }
        let mut payload = self.inner.fetch_snapshot()?;
        let mut state = self.state.lock();
        if Self::hits(state.snapshots, self.plan.corrupt_snapshot_every) {
            // Flip one byte of one file; the CRC check must reject it.
            let file =
                usize::try_from(Self::next_rand(&mut state) % u64_of(payload.files.len().max(1)))
                    .unwrap_or(0);
            if let Some(f) = payload.files.get_mut(file) {
                if !f.bytes.is_empty() {
                    let at = usize::try_from(Self::next_rand(&mut state) % u64_of(f.bytes.len()))
                        .unwrap_or(0);
                    f.bytes[at] ^= 0x5A;
                }
            }
        }
        Ok(payload)
    }

    fn poll_frames(&self, from: &[u64], max_frames: usize) -> Result<FrameBatch, TransportError> {
        {
            let mut state = self.state.lock();
            if state.killed {
                return Err(TransportError::Killed);
            }
            state.polls += 1;
            if Self::hits(state.polls, self.plan.disconnect_every) {
                return Err(TransportError::Disconnected(
                    "injected disconnect".to_string(),
                ));
            }
        }
        let batch = self.inner.poll_frames(from, max_frames)?;
        let mut state = self.state.lock();
        let mut frames = Vec::with_capacity(batch.frames.len());
        for frame in batch.frames {
            if let Some(budget) = state.kill_after {
                if state.frames_delivered >= budget {
                    state.killed = true;
                    return Err(TransportError::Killed);
                }
            }
            state.frames_delivered += 1;
            let n = state.frames_delivered;
            let mut delivered = frame.clone();
            if Self::hits(n, self.plan.tear_every) {
                delivered.bytes.truncate(delivered.bytes.len() / 2);
            } else if Self::hits(n, self.plan.flip_every) && !delivered.bytes.is_empty() {
                let at =
                    usize::try_from(Self::next_rand(&mut state) % u64_of(delivered.bytes.len()))
                        .unwrap_or(0);
                delivered.bytes[at] ^= 0x5A;
            }
            frames.push(delivered);
            if Self::hits(n, self.plan.duplicate_every) {
                state.frames_delivered += 1;
                frames.push(frame);
            }
        }
        if Self::hits(state.polls, self.plan.reorder_every) {
            frames.reverse();
        }
        Ok(FrameBatch {
            frames,
            heads: batch.heads,
            need_snapshot: batch.need_snapshot,
        })
    }
}

// ---------------------------------------------------------------------------
// The replica.
// ---------------------------------------------------------------------------

/// Replica tuning.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// Spill tuning of the replica's own store.
    pub spill: crate::spill::SpillConfig,
    /// Durability tuning of the replica's own store (the replica re-logs
    /// every applied frame, so it recovers like any durable store).
    pub durable: crate::durable::DurableConfig,
    /// Bounded-staleness guard: a read served while the replica lags the
    /// primary's last known head by more than this many sequence numbers
    /// returns the typed [`StoreError::Degraded`] instead of stale data.
    pub max_lag: u64,
    /// Most frames one transport poll requests.
    pub batch_frames: usize,
    /// Reconnect backoff: initial delay.
    pub backoff_base: Duration,
    /// Reconnect backoff: delay cap.
    pub backoff_cap: Duration,
    /// Most consecutive transport attempts a bootstrap or re-snapshot makes
    /// before giving up.
    pub max_attempts: u32,
}

impl Default for ReplicaConfig {
    fn default() -> ReplicaConfig {
        ReplicaConfig {
            spill: crate::spill::SpillConfig::default(),
            durable: crate::durable::DurableConfig::default(),
            max_lag: 1024,
            batch_frames: 256,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_secs(5),
            max_attempts: 16,
        }
    }
}

/// State shared between the replica's apply loop and its serving wrapper.
#[derive(Debug)]
struct ReplicaShared {
    /// The replica's current store; swapped wholesale by a re-snapshot.
    store: RwLock<Arc<SpillStore>>,
    /// Per-shard applied sequence (mirrors the store's WAL positions; kept
    /// in atomics so the staleness guard never takes a lock).
    applied: Vec<AtomicU64>,
    /// Per-shard primary head as of the last successful exchange.
    heads: Vec<AtomicU64>,
    frames_streamed: AtomicU64,
    frames_skipped: AtomicU64,
    resnapshots: AtomicU64,
    reconnects: AtomicU64,
}

impl ReplicaShared {
    /// Largest per-shard gap between the primary's last known head and the
    /// applied sequence.
    fn lag(&self) -> u64 {
        self.applied
            .iter()
            .zip(&self.heads)
            .map(|(a, h)| {
                h.load(Ordering::Relaxed)
                    .saturating_sub(a.load(Ordering::Relaxed))
            })
            .max()
            .unwrap_or(0)
    }

    fn adopt(&self, store: Arc<SpillStore>) {
        let seqs = store.wal_applied_seqs();
        *self.store_write() = store;
        for (atomic, seq) in self.applied.iter().zip(seqs) {
            atomic.store(seq, Ordering::Relaxed);
        }
    }

    /// Acquires the store-slot read lock under the lock-rank discipline:
    /// the slot ranks *above* pool state and *below* every shard lock, so a
    /// serving path may hold the slot guard across the store calls it makes
    /// (see [`crate::lockrank`]).
    fn store_read(&self) -> StoreSlotRead<'_> {
        let rank = lockrank::acquire(LockClass::Store, 0);
        StoreSlotRead {
            guard: self.store.read(),
            _rank: rank,
        }
    }

    /// Acquires the store-slot write lock (re-snapshot swap only); same
    /// rank as [`Self::store_read`].
    fn store_write(&self) -> StoreSlotWrite<'_> {
        let rank = lockrank::acquire(LockClass::Store, 0);
        StoreSlotWrite {
            guard: self.store.write(),
            _rank: rank,
        }
    }
}

/// Ranked read guard over the replica's store slot (lock guard declared
/// first so it drops before the rank pops).
struct StoreSlotRead<'a> {
    guard: parking_lot::RwLockReadGuard<'a, Arc<SpillStore>>,
    _rank: lockrank::RankGuard,
}

impl std::ops::Deref for StoreSlotRead<'_> {
    type Target = Arc<SpillStore>;

    fn deref(&self) -> &Arc<SpillStore> {
        &self.guard
    }
}

/// Ranked write guard over the replica's store slot; see [`StoreSlotRead`].
struct StoreSlotWrite<'a> {
    guard: parking_lot::RwLockWriteGuard<'a, Arc<SpillStore>>,
    _rank: lockrank::RankGuard,
}

impl std::ops::Deref for StoreSlotWrite<'_> {
    type Target = Arc<SpillStore>;

    fn deref(&self) -> &Arc<SpillStore> {
        &self.guard
    }
}

impl std::ops::DerefMut for StoreSlotWrite<'_> {
    fn deref_mut(&mut self) -> &mut Arc<SpillStore> {
        &mut self.guard
    }
}

/// Counters of one replica (also surfaced through the serving store's
/// [`ListStore`] metrics and the protocol layer's `ServerStats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicaStats {
    pub frames_streamed: u64,
    pub frames_skipped: u64,
    pub resnapshots: u64,
    pub reconnects: u64,
    pub lag: u64,
}

/// What one [`Replica::pump`] accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PumpOutcome {
    /// A batch was delivered; `applied` frames advanced the replica,
    /// `skipped` were duplicates the idempotent apply discarded.
    Progress { applied: usize, skipped: usize },
    /// The transport failed (or delivered a corrupt frame); the reconnect
    /// will resume from the last applied sequence after `retry_in`.
    Disconnected { retry_in: Duration },
    /// A history gap forced a full snapshot re-bootstrap.
    Resnapshotted,
    /// The replica is at the primary's head.
    CaughtUp,
}

/// A read replica: a durable [`SpillStore`] of its own, bootstrapped from a
/// primary snapshot and kept current by applying streamed WAL frames
/// through the normal logged-insert path.
#[derive(Debug)]
pub struct Replica {
    transport: Arc<dyn ReplicaTransport>,
    root: PathBuf,
    backend: Arc<dyn PageIo>,
    config: ReplicaConfig,
    shared: Arc<ReplicaShared>,
    backoff: Backoff,
    generation: u64,
}

impl Replica {
    /// Bootstraps a fresh replica under `root` (production IO): fetch a
    /// snapshot (retrying with backoff up to `max_attempts`), write it into
    /// `root/gen-0`, open it through the validating recovery path and
    /// subscribe from the recovered position.
    pub fn bootstrap(
        transport: Arc<dyn ReplicaTransport>,
        root: impl Into<PathBuf>,
        config: ReplicaConfig,
    ) -> Result<Replica, StoreError> {
        Self::bootstrap_with(transport, root, config, RealIo::shared())
    }

    /// [`Replica::bootstrap`] with an explicit IO backend (the crash tests
    /// substitute [`crate::durable::FaultIo`] for the replica's own disk).
    pub fn bootstrap_with(
        transport: Arc<dyn ReplicaTransport>,
        root: impl Into<PathBuf>,
        config: ReplicaConfig,
        backend: Arc<dyn PageIo>,
    ) -> Result<Replica, StoreError> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(io_err)?;
        let mut backoff = Backoff::new(config.backoff_base, config.backoff_cap);
        let mut retries = 0u64;
        let (store, heads) = fetch_and_open(
            &*transport,
            &root.join("gen-0"),
            &config,
            &backend,
            &mut backoff,
            &mut retries,
        )?;
        let num_shards = store.num_shards();
        let applied = store.wal_applied_seqs();
        let shared = Arc::new(ReplicaShared {
            store: RwLock::new(Arc::new(store)),
            applied: applied.into_iter().map(AtomicU64::new).collect(),
            heads: (0..num_shards).map(|_| AtomicU64::new(0)).collect(),
            frames_streamed: AtomicU64::new(0),
            frames_skipped: AtomicU64::new(0),
            resnapshots: AtomicU64::new(0),
            reconnects: AtomicU64::new(retries),
        });
        store_heads(&shared, &heads);
        Ok(Replica {
            transport,
            root,
            backend,
            config,
            shared,
            backoff,
            generation: 0,
        })
    }

    /// Reopens a crashed or cleanly shut down replica from its root
    /// (production IO): recover the newest generation directory that passes
    /// the full recovery audit, discard half-written newer ones, and
    /// re-subscribe from the recovered position.
    pub fn reopen(
        transport: Arc<dyn ReplicaTransport>,
        root: impl Into<PathBuf>,
        config: ReplicaConfig,
    ) -> Result<Replica, StoreError> {
        Self::reopen_with(transport, root, config, RealIo::shared())
    }

    /// [`Replica::reopen`] with an explicit IO backend.
    pub fn reopen_with(
        transport: Arc<dyn ReplicaTransport>,
        root: impl Into<PathBuf>,
        config: ReplicaConfig,
        backend: Arc<dyn PageIo>,
    ) -> Result<Replica, StoreError> {
        let root = root.into();
        let mut gens: Vec<u64> = fs::read_dir(&root)
            .map_err(io_err)?
            .flatten()
            .filter_map(|e| {
                e.file_name()
                    .to_str()
                    .and_then(|n| n.strip_prefix("gen-").and_then(|g| g.parse().ok()))
            })
            .collect();
        gens.sort_unstable_by(|a, b| b.cmp(a));
        let mut adopted = None;
        for gen in gens {
            let dir = root.join(format!("gen-{gen}"));
            if adopted.is_some() {
                // An older generation a completed re-snapshot superseded.
                let _ = fs::remove_dir_all(&dir);
                continue;
            }
            match SpillStore::open_with_io(&dir, config.spill, config.durable, Arc::clone(&backend))
            {
                Ok(store) => adopted = Some((gen, store)),
                Err(_) => {
                    // A half-written re-snapshot a crash interrupted.
                    let _ = fs::remove_dir_all(&dir);
                }
            }
        }
        let (generation, store) = adopted.ok_or_else(|| {
            StoreError::RecoveryFailed(format!(
                "no recoverable replica generation under {}",
                root.display()
            ))
        })?;
        let applied = store.wal_applied_seqs();
        let backoff = Backoff::new(config.backoff_base, config.backoff_cap);
        let shared = Arc::new(ReplicaShared {
            store: RwLock::new(Arc::new(store)),
            applied: applied.iter().copied().map(AtomicU64::new).collect(),
            // Until the first poll the primary's head is unknown; start at
            // the local position (lag reads 0, the first exchange corrects
            // it).
            heads: applied.into_iter().map(AtomicU64::new).collect(),
            frames_streamed: AtomicU64::new(0),
            frames_skipped: AtomicU64::new(0),
            resnapshots: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
        });
        Ok(Replica {
            transport,
            root,
            backend,
            config,
            shared,
            backoff,
            generation,
        })
    }

    /// The replica's current store (tests and audits; serving goes through
    /// [`Replica::serving_store`]).
    pub fn store(&self) -> Arc<SpillStore> {
        self.shared.store_read().clone()
    }

    /// The replica root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Per-shard applied sequences.
    pub fn applied_seqs(&self) -> Vec<u64> {
        self.shared
            .applied
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect()
    }

    /// Current lag (largest per-shard head − applied gap).
    pub fn lag(&self) -> u64 {
        self.shared.lag()
    }

    /// Replication counters.
    pub fn stats(&self) -> ReplicaStats {
        ReplicaStats {
            frames_streamed: self.shared.frames_streamed.load(Ordering::Relaxed),
            frames_skipped: self.shared.frames_skipped.load(Ordering::Relaxed),
            resnapshots: self.shared.resnapshots.load(Ordering::Relaxed),
            reconnects: self.shared.reconnects.load(Ordering::Relaxed),
            lag: self.shared.lag(),
        }
    }

    /// The bounded-staleness serving wrapper: a [`ListStore`] the protocol
    /// server fronts like any other engine, degrading reads typed-ly once
    /// the replica lags past `max_lag`.
    pub fn serving_store(&self) -> ReplicaReadStore {
        ReplicaReadStore {
            shared: Arc::clone(&self.shared),
            plan: self.shared.store_read().plan().clone(),
            max_lag: self.config.max_lag,
        }
    }

    /// One transport exchange: poll the tail from the last applied
    /// position, validate and apply what arrived.  Never sleeps — a
    /// [`PumpOutcome::Disconnected`] returns the delay the backoff chose
    /// and the caller decides ([`Replica::catch_up`] sleeps it).
    pub fn pump(&mut self) -> Result<PumpOutcome, StoreError> {
        let from = self.applied_seqs();
        let batch = match self.transport.poll_frames(&from, self.config.batch_frames) {
            Ok(batch) => batch,
            Err(TransportError::Killed) => {
                return Err(StoreError::Io(
                    "replica transport killed (injected fault)".to_string(),
                ))
            }
            Err(TransportError::Disconnected(_)) => return Ok(self.disconnected()),
        };
        if batch.heads.len() == self.shared.heads.len() {
            store_heads(&self.shared, &batch.heads);
        } else {
            return Ok(self.disconnected());
        }
        if batch.need_snapshot {
            self.resnapshot()?;
            return Ok(PumpOutcome::Resnapshotted);
        }
        // Per-frame CRC validation: a torn or bit-flipped frame is counted
        // and discarded, the clean frames of the same batch still apply.
        // Rejecting the whole batch would never converge against a
        // corruption period smaller than the batch size — the retry
        // redelivers a batch with a fresh fault in it every time.
        let num_shards = self.shared.applied.len();
        let mut records: Vec<(usize, WalRecord)> = Vec::with_capacity(batch.frames.len());
        let mut corrupt = 0usize;
        for frame in &batch.frames {
            let shard = usize_of(frame.shard);
            match decode_wire_frame(frame) {
                Some(record) if shard < num_shards => records.push((shard, record)),
                _ => corrupt += 1,
            }
        }
        // Arrival order within a batch is transport detail (the fault shim
        // reorders it on purpose); per-shard sequence order is what apply
        // needs.
        records.sort_by_key(|(shard, r)| (*shard, r.seq));
        let store = self.store();
        let mut applied_count = 0usize;
        let mut skipped = 0usize;
        for (shard, record) in records {
            let list = MergedListId(record.list);
            if store.shard_of(list) != shard {
                // A frame routed to the wrong shard is corruption the CRC
                // cannot see (the sender lied); never apply it.
                corrupt += 1;
                continue;
            }
            let applied = self.shared.applied[shard].load(Ordering::Relaxed);
            if record.seq <= applied {
                // Duplicate / retransmission: idempotent apply skips it.
                skipped += 1;
                self.shared.frames_skipped.fetch_add(1, Ordering::Relaxed);
            } else if record.seq == applied + 1 {
                // The normal logged-insert path: the replica's own WAL
                // assigns exactly this sequence, so its durable state
                // tracks the primary's sequence space.
                store.insert(list, record.element)?;
                self.shared.applied[shard].store(record.seq, Ordering::Relaxed);
                self.shared.frames_streamed.fetch_add(1, Ordering::Relaxed);
                applied_count += 1;
            }
            // record.seq > applied + 1: an out-of-order frame whose
            // predecessors were lost (or corrupted) in flight.  Drop it —
            // the next poll resumes from the applied position and refetches
            // the run.
        }
        if applied_count > 0 || skipped > 0 {
            self.backoff.reset();
        }
        if corrupt > 0 {
            // Corruption on the wire is transport trouble: back off and
            // re-poll; the applied position already reflects the clean
            // prefix, so retransmission heals the stream.
            return Ok(self.disconnected());
        }
        if applied_count == 0 && skipped == 0 && self.shared.lag() == 0 {
            return Ok(PumpOutcome::CaughtUp);
        }
        Ok(PumpOutcome::Progress {
            applied: applied_count,
            skipped,
        })
    }

    /// Pumps until caught up, sleeping reconnect delays, giving up after
    /// `max_pumps` exchanges.
    pub fn catch_up(&mut self, max_pumps: usize) -> Result<(), StoreError> {
        for _ in 0..max_pumps {
            match self.pump()? {
                PumpOutcome::CaughtUp => return Ok(()),
                PumpOutcome::Disconnected { retry_in } => {
                    if !retry_in.is_zero() {
                        std::thread::sleep(retry_in);
                    }
                }
                PumpOutcome::Progress { .. } | PumpOutcome::Resnapshotted => {}
            }
        }
        Err(StoreError::Io(format!(
            "replica failed to catch up within {max_pumps} exchanges"
        )))
    }

    fn disconnected(&mut self) -> PumpOutcome {
        self.shared.reconnects.fetch_add(1, Ordering::Relaxed);
        PumpOutcome::Disconnected {
            retry_in: self.backoff.next_delay(),
        }
    }

    /// Full snapshot re-bootstrap into a fresh generation directory; the
    /// serving store is swapped atomically and the superseded generation
    /// removed.
    fn resnapshot(&mut self) -> Result<(), StoreError> {
        self.shared.resnapshots.fetch_add(1, Ordering::Relaxed);
        let old_dir = self.root.join(format!("gen-{}", self.generation));
        let gen = self.generation + 1;
        let mut retries = 0u64;
        let (store, heads) = fetch_and_open(
            &*self.transport,
            &self.root.join(format!("gen-{gen}")),
            &self.config,
            &self.backend,
            &mut self.backoff,
            &mut retries,
        )?;
        self.shared.reconnects.fetch_add(retries, Ordering::Relaxed);
        self.shared.adopt(Arc::new(store));
        store_heads(&self.shared, &heads);
        self.generation = gen;
        let _ = fs::remove_dir_all(&old_dir);
        Ok(())
    }
}

fn store_heads(shared: &ReplicaShared, heads: &[u64]) {
    for (atomic, &head) in shared.heads.iter().zip(heads) {
        atomic.store(head, Ordering::Relaxed);
    }
}

/// Decodes and CRC-validates one wire frame; `None` for torn, flipped or
/// trailing-garbage bytes.
fn decode_wire_frame(frame: &WireFrame) -> Option<WalRecord> {
    let scan = scan_wal(&frame.bytes);
    if scan.torn || scan.records.len() != 1 || scan.valid_len != u64_of(frame.bytes.len()) {
        return None;
    }
    scan.records.into_iter().next()
}

/// Fetches a snapshot (retrying transport failures and CRC mismatches with
/// backoff), writes it into `dir` and opens it through the fully validating
/// recovery path.
fn fetch_and_open(
    transport: &dyn ReplicaTransport,
    dir: &Path,
    config: &ReplicaConfig,
    backend: &Arc<dyn PageIo>,
    backoff: &mut Backoff,
    retries: &mut u64,
) -> Result<(SpillStore, Vec<u64>), StoreError> {
    let mut last_error = String::new();
    for _ in 0..config.max_attempts.max(1) {
        let payload = match transport.fetch_snapshot() {
            Ok(payload) => payload,
            Err(TransportError::Killed) => {
                return Err(StoreError::Io(
                    "replica transport killed (injected fault)".to_string(),
                ))
            }
            Err(TransportError::Disconnected(reason)) => {
                last_error = reason;
                *retries += 1;
                let delay = backoff.next_delay();
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
                continue;
            }
        };
        if let Err(reason) = verify_snapshot(&payload) {
            last_error = reason;
            *retries += 1;
            let delay = backoff.next_delay();
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
            continue;
        }
        write_snapshot(dir, &payload, backend)?;
        let store =
            SpillStore::open_with_io(dir, config.spill, config.durable, Arc::clone(backend))?;
        if payload.heads.len() != store.num_shards() {
            return Err(StoreError::Io(format!(
                "snapshot carries {} heads, store has {} shards",
                payload.heads.len(),
                store.num_shards()
            )));
        }
        backoff.reset();
        return Ok((store, payload.heads));
    }
    Err(StoreError::Io(format!(
        "snapshot fetch failed after {} attempts: {last_error}",
        config.max_attempts.max(1)
    )))
}

fn verify_snapshot(payload: &SnapshotPayload) -> Result<(), String> {
    if !payload.files.iter().any(|f| f.name == "store.meta") {
        return Err("snapshot is missing store.meta".to_string());
    }
    for file in &payload.files {
        if crc32(&file.bytes) != file.crc {
            return Err(format!("snapshot file {} failed its CRC", file.name));
        }
        // File names come off the wire; refuse anything that could escape
        // the replica root.
        if file.name.contains('/') || file.name.contains('\\') || file.name.contains("..") {
            return Err(format!("snapshot file name {:?} is not flat", file.name));
        }
    }
    Ok(())
}

fn write_snapshot(
    dir: &Path,
    payload: &SnapshotPayload,
    backend: &Arc<dyn PageIo>,
) -> Result<(), StoreError> {
    fs::create_dir_all(dir).map_err(io_err)?;
    for file in &payload.files {
        let mut out = backend.open(&dir.join(&file.name), true).map_err(io_err)?;
        out.write_at(0, &file.bytes).map_err(io_err)?;
        out.sync().map_err(io_err)?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// The bounded-staleness serving wrapper.
// ---------------------------------------------------------------------------

/// A [`ListStore`] over a replica: delegates every read to the replica's
/// current store (following re-snapshot swaps), guards serving reads with
/// the bounded-staleness check, refuses writes, and surfaces the
/// replication counters through the standard metric methods.
#[derive(Debug)]
pub struct ReplicaReadStore {
    shared: Arc<ReplicaShared>,
    /// The merge plan is identical across snapshot swaps (same primary), so
    /// the wrapper owns a copy — `plan()` returns a reference.
    plan: MergePlan,
    max_lag: u64,
}

impl ReplicaReadStore {
    /// The store currently backing this replica, borrowed for one call.
    /// Returning the read guard instead of cloning the `Arc` keeps the
    /// per-query overhead to a single uncontended lock acquisition; the
    /// write side only appears on a re-snapshot swap.
    fn store(&self) -> impl std::ops::Deref<Target = Arc<SpillStore>> + '_ {
        self.shared.store_read()
    }

    /// The staleness guard: refuse to serve rather than answer from a
    /// replica lagging past the bound.
    fn guard(&self) -> Result<(), StoreError> {
        let lag = self.shared.lag();
        if lag > self.max_lag {
            Err(StoreError::Degraded {
                lag,
                max_lag: self.max_lag,
            })
        } else {
            Ok(())
        }
    }
}

impl ListStore for ReplicaReadStore {
    fn plan(&self) -> &MergePlan {
        &self.plan
    }

    fn num_shards(&self) -> usize {
        self.store().num_shards()
    }

    fn shard_of(&self, list: MergedListId) -> usize {
        self.store().shard_of(list)
    }

    fn num_elements(&self) -> usize {
        self.store().num_elements()
    }

    fn stored_bytes(&self) -> usize {
        self.store().stored_bytes()
    }

    fn ciphertext_bytes(&self) -> usize {
        self.store().ciphertext_bytes()
    }

    fn resident_bytes(&self) -> usize {
        self.store().resident_bytes()
    }

    fn spilled_bytes(&self) -> usize {
        self.store().spilled_bytes()
    }

    fn page_faults(&self) -> u64 {
        self.store().page_faults()
    }

    fn page_evictions(&self) -> u64 {
        self.store().page_evictions()
    }

    fn page_cache_hits(&self) -> u64 {
        self.store().page_cache_hits()
    }

    fn page_file_bytes(&self) -> usize {
        self.store().page_file_bytes()
    }

    fn dead_page_bytes(&self) -> usize {
        self.store().dead_page_bytes()
    }

    fn compactions(&self) -> u64 {
        self.store().compactions()
    }

    fn promotions(&self) -> u64 {
        self.store().promotions()
    }

    fn demotions(&self) -> u64 {
        self.store().demotions()
    }

    fn wal_appends(&self) -> u64 {
        self.store().wal_appends()
    }

    fn wal_bytes(&self) -> u64 {
        self.store().wal_bytes()
    }

    fn recovered_pages(&self) -> u64 {
        self.store().recovered_pages()
    }

    fn truncated_wal_records(&self) -> u64 {
        self.store().truncated_wal_records()
    }

    fn frames_streamed(&self) -> u64 {
        self.shared.frames_streamed.load(Ordering::Relaxed)
    }

    fn frames_skipped(&self) -> u64 {
        self.shared.frames_skipped.load(Ordering::Relaxed)
    }

    fn resnapshots(&self) -> u64 {
        self.shared.resnapshots.load(Ordering::Relaxed)
    }

    fn reconnects(&self) -> u64 {
        self.shared.reconnects.load(Ordering::Relaxed)
    }

    fn replica_lag(&self) -> u64 {
        self.shared.lag()
    }

    fn list_len(&self, list: MergedListId) -> Result<usize, StoreError> {
        self.store().list_len(list)
    }

    fn visible_len(
        &self,
        list: MergedListId,
        accessible: Option<&[GroupId]>,
    ) -> Result<usize, StoreError> {
        self.store().visible_len(list, accessible)
    }

    fn snapshot_list(&self, list: MergedListId) -> Result<Vec<OrderedElement>, StoreError> {
        self.store().snapshot_list(list)
    }

    fn fetch_ranged(
        &self,
        fetch: &RangedFetch,
        accessible: Option<&[GroupId]>,
    ) -> Result<RangedBatch, StoreError> {
        self.guard()?;
        self.store().fetch_ranged(fetch, accessible)
    }

    fn plan_shard_batch(&self, jobs: &[StoreJob], max_bucket_jobs: usize) -> ShardJobPlan {
        self.store().plan_shard_batch(jobs, max_bucket_jobs)
    }

    fn execute_shard_bucket(
        &self,
        jobs: &[StoreJob],
        bucket: &ShardJobBucket,
    ) -> ShardBucketOutput {
        if let Err(degraded) = self.guard() {
            // Degrade every job of the bucket individually: the batched
            // scheduler's per-request error isolation carries the typed
            // response to each client.
            return ShardBucketOutput {
                results: bucket.jobs.iter().map(|_| Err(degraded.clone())).collect(),
                lock_acquisitions: 0,
            };
        }
        self.store().execute_shard_bucket(jobs, bucket)
    }

    fn lock_acquisitions(&self) -> u64 {
        self.store().lock_acquisitions()
    }

    fn open_cursor(
        &self,
        list: MergedListId,
        owner: u64,
        batch: &RangedBatch,
        delivered: usize,
        accessible: Option<&[GroupId]>,
    ) -> Result<CursorId, StoreError> {
        self.guard()?;
        self.store()
            .open_cursor(list, owner, batch, delivered, accessible)
    }

    fn cursor_fetch(
        &self,
        cursor: CursorId,
        owner: u64,
        count: usize,
        accessible: Option<&[GroupId]>,
    ) -> Result<RangedBatch, StoreError> {
        self.guard()?;
        self.store().cursor_fetch(cursor, owner, count, accessible)
    }

    fn close_cursor(&self, cursor: CursorId, owner: u64) {
        self.store().close_cursor(cursor, owner)
    }

    fn open_cursors(&self) -> usize {
        self.store().open_cursors()
    }

    fn session_stats(&self) -> SessionStats {
        self.store().session_stats()
    }

    fn visibility_scan_cost(&self) -> u64 {
        self.store().visibility_scan_cost()
    }

    fn insert(&self, _list: MergedListId, _element: OrderedElement) -> Result<usize, StoreError> {
        Err(StoreError::Io(
            "replica serves reads only; route inserts to the primary".to_string(),
        ))
    }

    fn verify_ordering(&self) -> bool {
        self.store().verify_ordering()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durable::encode_wal_frame;
    use zerber_base::EncryptedElement;

    fn element(trs: f64) -> OrderedElement {
        let group = GroupId(1);
        OrderedElement {
            trs,
            group,
            sealed: EncryptedElement {
                group,
                ciphertext: vec![0xAB; 4],
            },
        }
    }

    #[test]
    fn backoff_doubles_to_the_cap_with_bounded_jitter() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(100);
        let mut b = Backoff::with_seed(base, cap, 7);
        let mut expected_full = base;
        for _ in 0..8 {
            let d = b.next_delay();
            assert!(d >= expected_full / 2, "jitter fell below half: {d:?}");
            assert!(d <= expected_full, "jitter exceeded the full delay: {d:?}");
            expected_full = (expected_full * 2).min(cap);
        }
        // Saturated at the cap: the draw stays within [cap/2, cap].
        let d = b.next_delay();
        assert!(d >= cap / 2 && d <= cap);
        assert_eq!(b.attempts(), 9);
    }

    #[test]
    fn backoff_reset_returns_to_the_base_and_replays_deterministically() {
        let base = Duration::from_millis(4);
        let cap = Duration::from_secs(1);
        let mut a = Backoff::with_seed(base, cap, 99);
        let first: Vec<Duration> = (0..5).map(|_| a.next_delay()).collect();
        a.reset();
        assert_eq!(a.attempts(), 0);
        // After reset the *schedule* restarts at the base even though the
        // jitter stream continues.
        let after_reset = a.next_delay();
        assert!(after_reset <= base);
        // A fresh backoff with the same seed replays the same sequence.
        let mut b = Backoff::with_seed(base, cap, 99);
        let replay: Vec<Duration> = (0..5).map(|_| b.next_delay()).collect();
        assert_eq!(first, replay);
    }

    #[test]
    fn zero_base_backoff_never_sleeps() {
        let mut b = Backoff::new(Duration::ZERO, Duration::ZERO);
        for _ in 0..40 {
            assert_eq!(b.next_delay(), Duration::ZERO);
        }
    }

    #[test]
    fn wire_frame_validation_rejects_torn_flipped_and_padded_frames() {
        let bytes = encode_wal_frame(3, 1, &element(0.5)).unwrap();
        let good = WireFrame {
            shard: 0,
            bytes: bytes.clone(),
        };
        let record = decode_wire_frame(&good).expect("clean frame decodes");
        assert_eq!(record.seq, 3);
        assert_eq!(record.list, 1);

        let torn = WireFrame {
            shard: 0,
            bytes: bytes[..bytes.len() / 2].to_vec(),
        };
        assert!(decode_wire_frame(&torn).is_none());

        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x5A;
        assert!(decode_wire_frame(&WireFrame {
            shard: 0,
            bytes: flipped
        })
        .is_none());

        let mut padded = bytes;
        padded.extend_from_slice(&[0u8; 3]);
        assert!(decode_wire_frame(&WireFrame {
            shard: 0,
            bytes: padded
        })
        .is_none());
    }

    /// A stub transport for fault-shim unit tests: serves a fixed frame
    /// stream.
    #[derive(Debug)]
    struct StubTransport {
        frames: Vec<WireFrame>,
    }

    impl ReplicaTransport for StubTransport {
        fn fetch_snapshot(&self) -> Result<SnapshotPayload, TransportError> {
            Ok(SnapshotPayload {
                files: vec![SnapshotFile {
                    name: "store.meta".to_string(),
                    crc: crc32(b"meta"),
                    bytes: b"meta".to_vec(),
                }],
                heads: vec![0],
            })
        }

        fn poll_frames(
            &self,
            _from: &[u64],
            _max_frames: usize,
        ) -> Result<FrameBatch, TransportError> {
            Ok(FrameBatch {
                frames: self.frames.clone(),
                heads: vec![self.frames.len() as u64],
                need_snapshot: false,
            })
        }
    }

    fn stub_frames(n: usize) -> Vec<WireFrame> {
        (0..n)
            .map(|i| WireFrame {
                shard: 0,
                bytes: encode_wal_frame(i as u64 + 1, 0, &element(1.0 - i as f64 / 100.0)).unwrap(),
            })
            .collect()
    }

    #[test]
    fn fault_transport_schedules_are_deterministic() {
        let run = || {
            let inner = Arc::new(StubTransport {
                frames: stub_frames(6),
            });
            let faults = FaultTransport::new(
                inner,
                FaultPlan {
                    tear_every: 3,
                    flip_every: 4,
                    duplicate_every: 5,
                    reorder_every: 2,
                    disconnect_every: 3,
                    ..FaultPlan::default()
                },
            );
            let mut log = Vec::new();
            for _ in 0..6 {
                match faults.poll_frames(&[0], 64) {
                    Ok(batch) => log.push(
                        batch
                            .frames
                            .iter()
                            .map(|f| f.bytes.len())
                            .collect::<Vec<_>>(),
                    ),
                    Err(e) => log.push(vec![match e {
                        TransportError::Disconnected(_) => 0,
                        TransportError::Killed => 1,
                    }]),
                }
            }
            log
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fault_transport_kills_after_the_frame_budget_and_revives() {
        let inner = Arc::new(StubTransport {
            frames: stub_frames(4),
        });
        let faults = FaultTransport::new(
            inner,
            FaultPlan {
                kill_after: Some(2),
                ..FaultPlan::default()
            },
        );
        assert_eq!(
            faults.poll_frames(&[0], 64).unwrap_err(),
            TransportError::Killed,
            "the budget fires mid-batch"
        );
        assert!(faults.killed());
        assert_eq!(faults.frames_delivered(), 2);
        assert_eq!(
            faults.fetch_snapshot().unwrap_err(),
            TransportError::Killed,
            "a killed transport stays dead"
        );
        faults.revive();
        assert!(!faults.killed());
        assert!(faults.poll_frames(&[0], 64).is_ok());
    }

    #[test]
    fn snapshot_verification_rejects_crc_mismatch_and_path_escapes() {
        let good = SnapshotPayload {
            files: vec![SnapshotFile {
                name: "store.meta".to_string(),
                crc: crc32(b"abc"),
                bytes: b"abc".to_vec(),
            }],
            heads: vec![0],
        };
        assert!(verify_snapshot(&good).is_ok());

        let mut flipped = good.clone();
        flipped.files[0].bytes[0] ^= 0x5A;
        assert!(verify_snapshot(&flipped).is_err());

        let mut escaping = good.clone();
        escaping.files.push(SnapshotFile {
            name: "../evil".to_string(),
            crc: crc32(b"x"),
            bytes: b"x".to_vec(),
        });
        assert!(verify_snapshot(&escaping).is_err());

        let empty = SnapshotPayload {
            files: Vec::new(),
            heads: Vec::new(),
        };
        assert!(verify_snapshot(&empty).is_err());
    }
}
