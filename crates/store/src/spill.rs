//! The on-disk spill layout: cold sealed segments live in per-shard page
//! files, hot state stays in memory.
//!
//! The paper's untrusted server must hold merged, sealed posting lists for
//! millions of users — a footprint that does not fit in RAM.  Like the
//! ontological-database systems that answer from a small hot working set
//! while the bulk of the extensional data lives on secondary storage, the
//! [`SpillStore`] keeps each merged list as a `SegmentStore`-style stack
//! ([`crate::segment`]) whose **cold sealed segments** are serialized
//! through the validated segment wire format ([`Segment::to_bytes`]) into a
//! per-shard page file and dropped from memory.  What stays resident per
//! spilled segment is a tiny summary (element count, TRS bounds, per-group
//! visible counts, byte totals), so visibility accounting and deep-offset
//! skip-scans never touch the disk at all.
//!
//! Reads that do need a cold segment pull the page back through the fully
//! validating [`Segment::from_bytes`] — a torn, truncated or bit-flipped
//! page surfaces as [`StoreError`] for that one request, never a panic and
//! never a wrong answer — and park it in a per-shard LRU **page cache**
//! ([`SpillConfig::page_cache_pages`]).  [`SpillConfig::resident_budget_bytes`]
//! bounds the sealed bytes each shard keeps resident: segments charge the
//! budget greedily in build order (within a list, hot end first) and spill
//! once it is exhausted — so under a partial budget, lists built early keep
//! more of themselves resident; workload-driven placement is a ROADMAP
//! item.
//! `ListStore::execute_shard_batch` groups a round's ranged jobs by list
//! (and cursor resumptions by session) before serving them, so a batch of
//! fresh fetches faults each page at most once per round.
//!
//! The page files are append-only: a rebuild of a spilled segment (interior
//! insert) writes a fresh page and strands the old one as garbage until the
//! file is compacted in the background (ROADMAP).  Files are ephemeral cache
//! state, not durability — the store deletes them on drop.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Read as _, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use zerber_base::MergedListId;
use zerber_corpus::GroupId;
use zerber_index::compress::from_sortable_bits;
use zerber_r::{OrderedElement, OrderedIndex};

use crate::error::StoreError;
use crate::segment::{encode_chunk_split, encode_rebuilt, encode_segments, Segment, SegmentConfig};
use crate::sharded::{default_shards, ShardedCore, MAX_SHARDS};
use crate::store::{
    is_visible, CursorId, ListStore, OrderedList, RangedBatch, RangedFetch, SessionStats,
    ShardBatchOutput, ShardBucketOutput, ShardJobBucket, ShardJobPlan, StoreJob,
};

/// Tuning knobs of the spill engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpillConfig {
    /// Sealed-segment bytes each shard may keep resident; segments beyond
    /// the budget are written to the shard's page file and dropped from
    /// memory.  `0` spills every sealed segment (the tails and summaries
    /// always stay resident).
    pub resident_budget_bytes: usize,
    /// Pages the per-shard LRU page cache retains after a fault.  `0`
    /// disables caching: every cold read goes to disk.
    pub page_cache_pages: usize,
}

impl Default for SpillConfig {
    fn default() -> Self {
        SpillConfig {
            resident_budget_bytes: 8 << 20,
            page_cache_pages: 64,
        }
    }
}

fn io_err(e: std::io::Error) -> StoreError {
    StoreError::Io(e.to_string())
}

/// Location of one spilled page inside its shard's page file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PageId {
    offset: u64,
    len: u32,
}

/// The spill directory, removed (best effort) once the last pager drops.
#[derive(Debug)]
struct SpillRoot {
    dir: PathBuf,
}

impl Drop for SpillRoot {
    fn drop(&mut self) {
        // Remove only this store's own unique directory.  The shared
        // `zerber-spill` staging parent is deliberately left in place: a
        // concurrent store may be between create_dir_all and opening its
        // page files, and deleting the parent under it would fail that
        // build spuriously.  An empty staging dir is harmless (the CI
        // hygiene guard checks for stray *files*, not directories).
        let _ = fs::remove_dir(&self.dir);
    }
}

#[derive(Debug)]
struct PageFile {
    file: File,
    append: u64,
}

#[derive(Debug)]
struct CacheSlot {
    segment: Arc<Segment>,
    bytes: usize,
    last_used: u64,
}

#[derive(Debug, Default)]
struct PageCache {
    entries: HashMap<u64, CacheSlot>,
    clock: u64,
    bytes: usize,
}

/// One shard's spill state: the append-only page file, the LRU page cache
/// and the residency-budget accounting, shared by every list of the shard.
#[derive(Debug)]
struct Pager {
    io: Mutex<PageFile>,
    cache: Mutex<PageCache>,
    cache_capacity: usize,
    resident_budget: usize,
    resident_charge: AtomicUsize,
    spilled: AtomicUsize,
    faults: AtomicU64,
    evictions: AtomicU64,
    path: PathBuf,
    _root: Arc<SpillRoot>,
}

impl Drop for Pager {
    fn drop(&mut self) {
        // Page files are cache state, not durability: leave nothing behind.
        let _ = fs::remove_file(&self.path);
    }
}

impl Pager {
    fn create(
        dir: &Path,
        shard: usize,
        config: &SpillConfig,
        root: Arc<SpillRoot>,
    ) -> Result<Arc<Pager>, StoreError> {
        let path = dir.join(format!("shard-{shard:03}.pages"));
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(io_err)?;
        Ok(Arc::new(Pager {
            io: Mutex::new(PageFile { file, append: 0 }),
            cache: Mutex::new(PageCache::default()),
            cache_capacity: config.page_cache_pages,
            resident_budget: config.resident_budget_bytes,
            resident_charge: AtomicUsize::new(0),
            spilled: AtomicUsize::new(0),
            faults: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            path,
            _root: root,
        }))
    }

    /// Charges `bytes` against the shard's resident budget; `false` (and no
    /// charge) if the budget cannot cover them.
    fn try_charge(&self, bytes: usize) -> bool {
        let mut current = self.resident_charge.load(Ordering::Relaxed);
        loop {
            if current.saturating_add(bytes) > self.resident_budget {
                return false;
            }
            match self.resident_charge.compare_exchange(
                current,
                current + bytes,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(now) => current = now,
            }
        }
    }

    /// Charges unconditionally (compaction's keep-resident fallback).
    fn force_charge(&self, bytes: usize) {
        self.resident_charge.fetch_add(bytes, Ordering::Relaxed);
    }

    fn uncharge(&self, bytes: usize) {
        self.resident_charge.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Serializes a segment into the page file, returning its page id.
    fn write_page(&self, segment: &Segment) -> Result<PageId, StoreError> {
        let bytes = segment.to_bytes();
        let len = u32::try_from(bytes.len()).map_err(|_| StoreError::SegmentOverflow)?;
        let offset = {
            let mut io = self.io.lock();
            let offset = io.append;
            io.file.seek(SeekFrom::Start(offset)).map_err(io_err)?;
            io.file.write_all(&bytes).map_err(io_err)?;
            io.append += u64::from(len);
            offset
        };
        self.spilled.fetch_add(bytes.len(), Ordering::Relaxed);
        Ok(PageId { offset, len })
    }

    /// Drops a page from the live-byte accounting and the cache (the bytes
    /// in the file become garbage until background compaction).
    fn release_page(&self, page: PageId) {
        self.spilled.fetch_sub(page.len as usize, Ordering::Relaxed);
        let mut cache = self.cache.lock();
        if let Some(slot) = cache.entries.remove(&page.offset) {
            cache.bytes -= slot.bytes;
        }
    }

    /// Reads one page back, through the cache: a hit bumps recency, a miss
    /// reads the file and re-validates the bytes with `Segment::from_bytes`
    /// (counted as a page fault), inserting the decoded segment and
    /// LRU-evicting past `cache_capacity`.  Concurrent misses on one page
    /// single-flight: the file lock is held across read, decode and cache
    /// insertion, and latecomers re-probe the cache under it instead of
    /// reading the page a second time.  The lock is per shard, so this
    /// also serializes cold misses on *different* pages of one shard — a
    /// deliberate simplicity/accuracy tradeoff (faults are designed to be
    /// rare once the cache holds the hot set); a per-page in-flight map
    /// would restore miss parallelism if profiles ever show contention.
    fn fetch(&self, page: PageId) -> Result<Arc<Segment>, StoreError> {
        {
            let mut cache = self.cache.lock();
            cache.clock += 1;
            let now = cache.clock;
            if let Some(slot) = cache.entries.get_mut(&page.offset) {
                slot.last_used = now;
                return Ok(Arc::clone(&slot.segment));
            }
        }
        let mut io = self.io.lock();
        // Re-probe under the file lock: a racing fault may have populated
        // the cache while this thread waited.
        if self.cache_capacity > 0 {
            let mut cache = self.cache.lock();
            cache.clock += 1;
            let now = cache.clock;
            if let Some(slot) = cache.entries.get_mut(&page.offset) {
                slot.last_used = now;
                return Ok(Arc::clone(&slot.segment));
            }
        }
        let mut buf = vec![0u8; page.len as usize];
        io.file.seek(SeekFrom::Start(page.offset)).map_err(io_err)?;
        io.file.read_exact(&mut buf).map_err(io_err)?;
        // The page crossed a trust boundary (the disk): full validation, so
        // a torn or tampered page is an error for this request, never a
        // panic or a silently wrong answer.
        let segment = Arc::new(Segment::from_bytes(&buf)?);
        self.faults.fetch_add(1, Ordering::Relaxed);
        if self.cache_capacity > 0 {
            let bytes = segment.resident_bytes();
            let mut cache = self.cache.lock();
            cache.clock += 1;
            let now = cache.clock;
            while cache.entries.len() >= self.cache_capacity {
                let Some((&oldest, _)) = cache.entries.iter().min_by_key(|(_, s)| s.last_used)
                else {
                    break;
                };
                if let Some(slot) = cache.entries.remove(&oldest) {
                    cache.bytes -= slot.bytes;
                }
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
            cache.bytes += bytes;
            cache.entries.insert(
                page.offset,
                CacheSlot {
                    segment: Arc::clone(&segment),
                    bytes,
                    last_used: now,
                },
            );
        }
        drop(io);
        Ok(segment)
    }

    fn cache_bytes(&self) -> usize {
        self.cache.lock().bytes
    }
}

/// Resident summary of one sealed segment — everything visibility
/// accounting, skip-scans and insert routing need without touching the
/// page file.
#[derive(Debug)]
struct SlotMeta {
    elems: usize,
    /// Sortable bits of the segment's smallest (last) TRS.
    last_bits: u64,
    /// Per-group element counts, sorted by group id.
    counts: Vec<(GroupId, u32)>,
    stored_bytes: usize,
    ciphertext_bytes: usize,
}

impl SlotMeta {
    fn of(segment: &Segment) -> SlotMeta {
        SlotMeta {
            elems: segment.num_elements(),
            last_bits: segment.last_bits(),
            counts: segment.group_counts(),
            stored_bytes: segment.stored_bytes(),
            ciphertext_bytes: segment.ciphertext_bytes(),
        }
    }

    fn min_trs(&self) -> f64 {
        from_sortable_bits(self.last_bits)
    }

    fn visible_under(&self, accessible: Option<&[GroupId]>) -> usize {
        match accessible {
            None => self.elems,
            Some(groups) => self
                .counts
                .iter()
                .filter(|(g, _)| groups.contains(g))
                .map(|&(_, n)| n as usize)
                .sum(),
        }
    }
}

/// Where a sealed segment's bytes currently live.
#[derive(Debug)]
enum Backing {
    /// Hot: the decoded segment is held in memory and charged against the
    /// shard's resident budget.
    Resident { segment: Segment, charged: usize },
    /// Cold: only the summary is resident; the encoded page lives in the
    /// shard's page file.
    Spilled { page: PageId },
}

#[derive(Debug)]
struct Slot {
    meta: SlotMeta,
    backing: Backing,
}

/// A segment either borrowed from a resident slot or faulted in from disk.
enum SegRef<'a> {
    Resident(&'a Segment),
    Paged(Arc<Segment>),
}

impl std::ops::Deref for SegRef<'_> {
    type Target = Segment;

    fn deref(&self) -> &Segment {
        match self {
            SegRef::Resident(segment) => segment,
            SegRef::Paged(segment) => segment,
        }
    }
}

/// A merged list whose cold sealed segments live in the shard's page file.
/// Logically identical to [`crate::segment::SegmentList`]: the sequence is
/// `slots[0] ++ slots[1] ++ ... ++ tail`, descending in TRS.
#[derive(Debug)]
pub struct SpillList {
    slots: Vec<Slot>,
    tail: Vec<OrderedElement>,
    config: SegmentConfig,
    pager: Arc<Pager>,
    /// Cached sum of slot element counts (the tail adds `tail.len()`).
    seg_elems: usize,
}

impl SpillList {
    fn build(
        elements: Vec<OrderedElement>,
        config: SegmentConfig,
        pager: Arc<Pager>,
    ) -> Result<Self, StoreError> {
        let seg_elems = elements.len();
        let segments = encode_segments(&elements, &config)?;
        let mut list = SpillList {
            slots: Vec::with_capacity(segments.len()),
            tail: Vec::new(),
            config,
            pager,
            seg_elems,
        };
        // Greedy budget charging in build order: within this list the hot
        // end (what top-k queries touch) charges before the cold depths,
        // but the shard budget is shared first-come across its lists — a
        // partial budget favours lists built earlier.  Access-driven
        // placement across lists is a ROADMAP item (spill-aware
        // demotion/promotion).
        let slots = list.place_segments(segments)?;
        list.slots = slots;
        Ok(list)
    }

    /// Number of sealed slots currently spilled to disk (tests, reports).
    pub fn spilled_slots(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s.backing, Backing::Spilled { .. }))
            .count()
    }

    /// Number of sealed slots (resident + spilled).
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Places freshly encoded segments: resident while the shard budget
    /// covers them, spilled otherwise.  On any failure the pages written so
    /// far are released, leaving the accounting consistent and the list
    /// untouched.
    fn place_segments(&self, segments: Vec<Segment>) -> Result<Vec<Slot>, StoreError> {
        let mut slots = Vec::with_capacity(segments.len());
        for segment in segments {
            match self.place(segment) {
                Ok(slot) => slots.push(slot),
                Err(e) => {
                    for slot in slots {
                        self.release_slot(&slot.backing);
                    }
                    return Err(e);
                }
            }
        }
        Ok(slots)
    }

    fn place(&self, segment: Segment) -> Result<Slot, StoreError> {
        let meta = SlotMeta::of(&segment);
        let charge = segment.resident_bytes();
        let backing = if self.pager.try_charge(charge) {
            Backing::Resident {
                segment,
                charged: charge,
            }
        } else {
            let page = self.pager.write_page(&segment)?;
            Backing::Spilled { page }
        };
        Ok(Slot { meta, backing })
    }

    fn release_slot(&self, backing: &Backing) {
        match backing {
            Backing::Resident { charged, .. } => self.pager.uncharge(*charged),
            Backing::Spilled { page } => self.pager.release_page(*page),
        }
    }

    /// Resolves slot `k` to a readable segment, faulting its page in from
    /// disk when spilled.
    fn segment(&self, k: usize) -> Result<SegRef<'_>, StoreError> {
        match &self.slots[k].backing {
            Backing::Resident { segment, .. } => Ok(SegRef::Resident(segment)),
            Backing::Spilled { page } => Ok(SegRef::Paged(self.pager.fetch(*page)?)),
        }
    }

    /// Seals the tail into new slot(s) and compacts resident neighbours.
    /// The tail is only cleared once every piece is placed, so a failed
    /// seal leaves the list untouched.
    fn seal_tail(&mut self) -> Result<(), StoreError> {
        if self.tail.is_empty() {
            return Ok(());
        }
        let mut sealed = Vec::new();
        encode_chunk_split(&self.tail, &self.config, &mut sealed)?;
        let slots = self.place_segments(sealed)?;
        self.seg_elems += self.tail.len();
        self.slots.extend(slots);
        self.tail.clear();
        self.compact();
        Ok(())
    }

    /// Insert-amortized compaction over **resident** adjacent pairs only —
    /// spilled segments are immutable cold storage and merging them would
    /// mean paying page faults on the write path.  A stack held deep by
    /// spilled slots is tolerated; background page-file compaction owns
    /// that (ROADMAP).
    fn compact(&mut self) {
        let byte_bound = self.config.payload_bound();
        while self.slots.len() > self.config.max_segments {
            let mut best: Option<(usize, usize)> = None;
            for i in 0..self.slots.len() - 1 {
                let (Backing::Resident { segment: a, .. }, Backing::Resident { segment: b, .. }) =
                    (&self.slots[i].backing, &self.slots[i + 1].backing)
                else {
                    continue;
                };
                let combined = self.slots[i].meta.elems + self.slots[i + 1].meta.elems;
                if combined <= self.config.max_segment_elems
                    && a.payload_len() + b.payload_len() <= byte_bound
                    && best.is_none_or(|(_, c)| combined < c)
                {
                    best = Some((i, combined));
                }
            }
            let Some((i, _)) = best else { break };
            let right = self.slots.remove(i + 1);
            let left = self.slots.remove(i);
            let (
                Backing::Resident {
                    segment: mut merged,
                    charged: charged_left,
                },
                Backing::Resident {
                    segment: right_seg,
                    charged: charged_right,
                },
            ) = (left.backing, right.backing)
            else {
                unreachable!("compaction only selects resident pairs");
            };
            match merged.absorb(right_seg) {
                Ok(()) => {
                    self.pager.uncharge(charged_left + charged_right);
                    let charge = merged.resident_bytes();
                    // The merged segment stays resident: compaction must not
                    // turn a hot pair cold.  If the budget cannot cover the
                    // (small) delta, charge it anyway; tail seals will spill
                    // against the deficit.
                    if !self.pager.try_charge(charge) {
                        self.pager.force_charge(charge);
                    }
                    self.slots.insert(
                        i,
                        Slot {
                            meta: SlotMeta::of(&merged),
                            backing: Backing::Resident {
                                segment: merged,
                                charged: charge,
                            },
                        },
                    );
                }
                Err(right_seg) => {
                    // Unreachable given the byte-bound pre-check; reattach
                    // both and stop compacting.
                    self.slots.insert(
                        i,
                        Slot {
                            meta: SlotMeta::of(&right_seg),
                            backing: Backing::Resident {
                                segment: right_seg,
                                charged: charged_right,
                            },
                        },
                    );
                    self.slots.insert(
                        i,
                        Slot {
                            meta: SlotMeta::of(&merged),
                            backing: Backing::Resident {
                                segment: merged,
                                charged: charged_left,
                            },
                        },
                    );
                    break;
                }
            }
        }
    }

    /// Rebuilds slot `k` as `decoded` (already containing the inserted
    /// element).  The old slot is only replaced after every new piece is
    /// placed; a spilled slot's rebuild appends fresh pages and strands the
    /// old page as file garbage.
    fn rebuild_slot(&mut self, k: usize, decoded: Vec<OrderedElement>) -> Result<(), StoreError> {
        let rebuilt = encode_rebuilt(&decoded, &self.config)?;
        let was_spilled = matches!(self.slots[k].backing, Backing::Spilled { .. });
        // Free the old slot's budget charge up front so the rebuilt
        // segments compete for the bytes the slot itself was holding —
        // otherwise a near-full budget would demote a hot resident head to
        // disk on every interior insert.  Restored if placement fails.
        let old_charge = match &self.slots[k].backing {
            Backing::Resident { charged, .. } => *charged,
            Backing::Spilled { .. } => 0,
        };
        self.pager.uncharge(old_charge);
        let placed = if was_spilled {
            // Stay cold: the segment was not worth resident bytes before the
            // insert and one insert does not make it hot.
            let mut slots = Vec::with_capacity(rebuilt.len());
            let mut failure = None;
            for segment in rebuilt {
                let meta = SlotMeta::of(&segment);
                match self.pager.write_page(&segment) {
                    Ok(page) => slots.push(Slot {
                        meta,
                        backing: Backing::Spilled { page },
                    }),
                    Err(e) => {
                        for slot in slots.drain(..) {
                            self.release_slot(&slot.backing);
                        }
                        failure = Some(e);
                        break;
                    }
                }
            }
            match failure {
                None => Ok(slots),
                Some(e) => Err(e),
            }
        } else {
            self.place_segments(rebuilt)
        };
        let new_slots = match placed {
            Ok(slots) => slots,
            Err(e) => {
                self.pager.force_charge(old_charge);
                return Err(e);
            }
        };
        self.seg_elems += 1;
        let old: Vec<Slot> = self.slots.splice(k..=k, new_slots).collect();
        for slot in old {
            match slot.backing {
                // The budget charge was already released above.
                Backing::Resident { .. } => {}
                Backing::Spilled { page } => self.pager.release_page(page),
            }
        }
        if self.slots.len() > self.config.max_segments {
            self.compact();
        }
        Ok(())
    }
}

impl OrderedList for SpillList {
    fn len(&self) -> usize {
        self.seg_elems + self.tail.len()
    }

    fn snapshot(&self) -> Result<Vec<OrderedElement>, StoreError> {
        let mut out = Vec::with_capacity(self.len());
        for k in 0..self.slots.len() {
            out.extend(self.segment(k)?.decode_all());
        }
        out.extend(self.tail.iter().cloned());
        Ok(out)
    }

    fn visible_total(&self, accessible: Option<&[GroupId]>, meter: &AtomicU64) -> usize {
        match accessible {
            None => self.len(),
            Some(_) => {
                // Slot summaries answer for the sealed part without faulting
                // a single page; only the (small) tail is examined.
                meter.fetch_add(self.tail.len() as u64, Ordering::Relaxed);
                let sealed: usize = self
                    .slots
                    .iter()
                    .map(|s| s.meta.visible_under(accessible))
                    .sum();
                sealed
                    + self
                        .tail
                        .iter()
                        .filter(|e| is_visible(e, accessible))
                        .count()
            }
        }
    }

    fn scan(
        &self,
        start: usize,
        skip: usize,
        count: usize,
        accessible: Option<&[GroupId]>,
    ) -> Result<(Vec<OrderedElement>, usize), StoreError> {
        let total = self.len();
        let mut elements = Vec::with_capacity(count.min(total.saturating_sub(start)));
        let mut skipped = 0usize;
        let mut pos = 0usize;
        for k in 0..self.slots.len() {
            let elems = self.slots[k].meta.elems;
            if pos + elems <= start {
                pos += elems;
                continue;
            }
            // Wholesale visible-skip from the summary: a slot whose visible
            // elements would all be skipped is passed over without paying a
            // page fault.
            if pos >= start && skipped < skip {
                let visible = self.slots[k].meta.visible_under(accessible);
                if skipped + visible <= skip {
                    skipped += visible;
                    pos += elems;
                    continue;
                }
            }
            let segment = self.segment(k)?;
            if let Some(next) = segment.scan_part(
                pos,
                start,
                skip,
                &mut skipped,
                count,
                &mut elements,
                accessible,
            ) {
                return Ok((elements, next));
            }
            pos += elems;
        }
        for (j, element) in self.tail.iter().enumerate() {
            let idx = self.seg_elems + j;
            if idx < start || !is_visible(element, accessible) {
                continue;
            }
            if skipped < skip {
                skipped += 1;
                continue;
            }
            elements.push(element.clone());
            if elements.len() == count {
                return Ok((elements, idx + 1));
            }
        }
        Ok((elements, total.max(start)))
    }

    fn position_after_visible(
        &self,
        delivered: usize,
        accessible: Option<&[GroupId]>,
    ) -> Result<usize, StoreError> {
        let mut remaining = delivered;
        let mut pos = 0usize;
        for k in 0..self.slots.len() {
            if remaining == 0 {
                return Ok(pos);
            }
            let visible = self.slots[k].meta.visible_under(accessible);
            if visible < remaining {
                // The whole slot is consumed: account for it from the
                // summary alone, no page fault.
                remaining -= visible;
                pos += self.slots[k].meta.elems;
                continue;
            }
            let segment = self.segment(k)?;
            if let Some(found) = segment.position_part(pos, &mut remaining, accessible) {
                return Ok(found);
            }
            pos += self.slots[k].meta.elems;
        }
        for (j, element) in self.tail.iter().enumerate() {
            if remaining == 0 {
                return Ok(self.seg_elems + j);
            }
            if is_visible(element, accessible) {
                remaining -= 1;
            }
        }
        Ok(self.len())
    }

    fn insert(&mut self, element: OrderedElement) -> Result<usize, StoreError> {
        if !self.config.element_fits(&element) {
            return Err(StoreError::SegmentOverflow);
        }
        let trs = element.trs;
        let mut base = 0usize;
        for k in 0..self.slots.len() {
            if self.slots[k].meta.min_trs() > trs {
                // Every element of this slot sorts strictly before the new
                // one (summary-only check): the partition point is further
                // down.
                base += self.slots[k].meta.elems;
                continue;
            }
            // The partition point lies inside this slot: fault it (if
            // cold), locate the exact position and rebuild.
            let (local, mut decoded) = {
                let segment = self.segment(k)?;
                (segment.insert_pos(trs), segment.decode_all())
            };
            decoded.insert(local, element);
            let pos = base + local;
            self.rebuild_slot(k, decoded)?;
            return Ok(pos);
        }
        // Every sealed element sorts strictly before the new one: the tail
        // absorbs the insert.
        let local = self.tail.partition_point(|e| e.trs > trs);
        self.tail.insert(local, element);
        let pos = base + local;
        if self.tail.len() > self.config.tail_threshold {
            if let Err(e) = self.seal_tail() {
                // A failed seal leaves the tail intact: take the new element
                // back out so an errored insert never half-applies (the
                // caller skips the generation bump and cursor shifts).
                self.tail.remove(local);
                return Err(e);
            }
        }
        Ok(pos)
    }

    fn stored_bytes(&self) -> usize {
        self.slots
            .iter()
            .map(|s| s.meta.stored_bytes)
            .sum::<usize>()
            + self
                .tail
                .iter()
                .map(|e| e.sealed.stored_bytes() + zerber_r::TRS_BYTES)
                .sum::<usize>()
    }

    fn ciphertext_bytes(&self) -> usize {
        self.slots
            .iter()
            .map(|s| s.meta.ciphertext_bytes)
            .sum::<usize>()
            + self
                .tail
                .iter()
                .map(|e| e.sealed.ciphertext.len())
                .sum::<usize>()
    }

    fn resident_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .slots
                .iter()
                .map(|s| {
                    std::mem::size_of::<Slot>()
                        + s.meta.counts.capacity() * std::mem::size_of::<(GroupId, u32)>()
                        + match &s.backing {
                            Backing::Resident { segment, .. } => segment.resident_bytes(),
                            Backing::Spilled { .. } => 0,
                        }
                })
                .sum::<usize>()
            + self.tail.capacity() * std::mem::size_of::<OrderedElement>()
            + self
                .tail
                .iter()
                .map(|e| e.sealed.ciphertext.capacity())
                .sum::<usize>()
    }

    fn ordering_ok(&self) -> bool {
        self.snapshot()
            .map(|s| s.windows(2).all(|w| w[0].trs >= w[1].trs))
            .unwrap_or(false)
    }
}

/// Allocates a fresh unique directory under the shared temp staging root
/// (`<tmp>/zerber-spill/<pid>-<n>`), removed again when the store drops.
fn unique_temp_dir() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join("zerber-spill").join(format!(
        "{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

/// The fourth storage engine: sharded spill-to-disk segment storage.
///
/// Built on the same [`ShardedCore`] concurrency machinery (and therefore
/// the same cursor-session, generation and eviction behaviour) as the other
/// engines; only the physical layout differs.  Cold sealed segments live in
/// per-shard page files and come back through a byte-budgeted LRU page
/// cache; `resident_bytes`, `spilled_bytes`, `page_faults` and
/// `page_evictions` make the memory/disk split observable.
#[derive(Debug)]
pub struct SpillStore {
    core: ShardedCore<SpillList>,
    pagers: Vec<Arc<Pager>>,
}

impl SpillStore {
    /// Builds a spill store rooted at `dir` with machine-matched shards and
    /// default tuning.
    pub fn new(index: OrderedIndex, dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        Self::with_config(index, default_shards(), dir, SpillConfig::default())
    }

    /// Builds a spill store with explicit shard count and spill tuning.
    pub fn with_config(
        index: OrderedIndex,
        num_shards: usize,
        dir: impl Into<PathBuf>,
        config: SpillConfig,
    ) -> Result<Self, StoreError> {
        Self::with_configs(index, num_shards, dir, config, SegmentConfig::default())
    }

    /// Builds a spill store with explicit spill *and* segment-layout tuning
    /// (tests use tiny blocks/segments to cross page boundaries cheaply).
    pub fn with_configs(
        index: OrderedIndex,
        num_shards: usize,
        dir: impl Into<PathBuf>,
        config: SpillConfig,
        segment: SegmentConfig,
    ) -> Result<Self, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(io_err)?;
        // Refuse a directory another store is already using: page files are
        // opened with truncate and deleted on drop, so sharing a root would
        // silently clobber the other store's cold data.
        for entry in fs::read_dir(&dir).map_err(io_err)? {
            let name = entry.map_err(io_err)?.file_name();
            if name.to_string_lossy().ends_with(".pages") {
                return Err(StoreError::Io(format!(
                    "spill directory {} already holds page files ({}); \
                     every store needs its own root",
                    dir.display(),
                    name.to_string_lossy(),
                )));
            }
        }
        let root = Arc::new(SpillRoot { dir: dir.clone() });
        let num_shards = num_shards.clamp(1, MAX_SHARDS);
        let pagers: Vec<Arc<Pager>> = (0..num_shards)
            .map(|shard| Pager::create(&dir, shard, &config, Arc::clone(&root)))
            .collect::<Result<_, _>>()?;
        let core = ShardedCore::build(index, num_shards, |shard, list| {
            SpillList::build(list, segment, Arc::clone(&pagers[shard]))
        })?;
        Ok(SpillStore { core, pagers })
    }

    /// Builds a spill store in a fresh unique directory under the system
    /// temp dir (removed on drop) — the zero-configuration entry point the
    /// server and test bed use.
    pub fn in_temp_dir(
        index: OrderedIndex,
        num_shards: usize,
        config: SpillConfig,
    ) -> Result<Self, StoreError> {
        Self::with_config(index, num_shards, unique_temp_dir(), config)
    }

    /// Like [`SpillStore::in_temp_dir`] with explicit segment tuning.
    pub fn in_temp_dir_with(
        index: OrderedIndex,
        num_shards: usize,
        config: SpillConfig,
        segment: SegmentConfig,
    ) -> Result<Self, StoreError> {
        Self::with_configs(index, num_shards, unique_temp_dir(), config, segment)
    }

    /// The per-shard page files backing the spilled segments.
    pub fn page_file_paths(&self) -> Vec<PathBuf> {
        self.pagers.iter().map(|p| p.path.clone()).collect()
    }

    /// Bytes currently held by the LRU page caches (part of
    /// [`ListStore::resident_bytes`]).
    pub fn page_cache_bytes(&self) -> usize {
        self.pagers.iter().map(|p| p.cache_bytes()).sum()
    }

    /// Bytes of sealed segments currently charged against the per-shard
    /// resident budgets (the budget-side view of what stayed hot).
    pub fn resident_charge_bytes(&self) -> usize {
        self.pagers
            .iter()
            .map(|p| p.resident_charge.load(Ordering::Relaxed))
            .sum()
    }
}

impl ListStore for SpillStore {
    fn plan(&self) -> &zerber_base::MergePlan {
        self.core.plan()
    }

    fn num_shards(&self) -> usize {
        self.core.num_shards()
    }

    fn shard_of(&self, list: MergedListId) -> usize {
        self.core.shard_of(list)
    }

    fn num_elements(&self) -> usize {
        self.core.num_elements()
    }

    fn stored_bytes(&self) -> usize {
        self.core.stored_bytes()
    }

    fn ciphertext_bytes(&self) -> usize {
        self.core.ciphertext_bytes()
    }

    fn resident_bytes(&self) -> usize {
        // The shared page caches are shard state, not per-list state: add
        // them on top of the per-list summaries/tails/resident segments.
        self.core.resident_bytes() + self.page_cache_bytes()
    }

    fn spilled_bytes(&self) -> usize {
        self.pagers
            .iter()
            .map(|p| p.spilled.load(Ordering::Relaxed))
            .sum()
    }

    fn page_faults(&self) -> u64 {
        self.pagers
            .iter()
            .map(|p| p.faults.load(Ordering::Relaxed))
            .sum()
    }

    fn page_evictions(&self) -> u64 {
        self.pagers
            .iter()
            .map(|p| p.evictions.load(Ordering::Relaxed))
            .sum()
    }

    fn list_len(&self, list: MergedListId) -> Result<usize, StoreError> {
        self.core.list_len(list)
    }

    fn visible_len(
        &self,
        list: MergedListId,
        accessible: Option<&[GroupId]>,
    ) -> Result<usize, StoreError> {
        self.core.visible_len(list, accessible)
    }

    fn snapshot_list(&self, list: MergedListId) -> Result<Vec<OrderedElement>, StoreError> {
        self.core.snapshot_list(list)
    }

    fn fetch_ranged(
        &self,
        fetch: &RangedFetch,
        accessible: Option<&[GroupId]>,
    ) -> Result<RangedBatch, StoreError> {
        self.core.fetch_ranged(fetch, accessible)
    }

    fn plan_shard_batch(&self, jobs: &[StoreJob], max_bucket_jobs: usize) -> ShardJobPlan {
        self.core.plan_shard_batch(jobs, max_bucket_jobs)
    }

    fn execute_shard_bucket(
        &self,
        jobs: &[StoreJob],
        bucket: &ShardJobBucket,
    ) -> ShardBucketOutput {
        self.core.execute_shard_bucket(jobs, bucket)
    }

    fn execute_shard_batch(&self, jobs: &[StoreJob]) -> ShardBatchOutput {
        self.core.execute_shard_batch(jobs)
    }

    fn lock_acquisitions(&self) -> u64 {
        self.core.lock_acquisitions()
    }

    fn open_cursor(
        &self,
        list: MergedListId,
        owner: u64,
        batch: &RangedBatch,
        delivered: usize,
        accessible: Option<&[GroupId]>,
    ) -> Result<CursorId, StoreError> {
        self.core
            .open_cursor(list, owner, batch, delivered, accessible)
    }

    fn cursor_fetch(
        &self,
        cursor: CursorId,
        owner: u64,
        count: usize,
        accessible: Option<&[GroupId]>,
    ) -> Result<RangedBatch, StoreError> {
        self.core.cursor_fetch(cursor, owner, count, accessible)
    }

    fn close_cursor(&self, cursor: CursorId, owner: u64) {
        self.core.close_cursor(cursor, owner)
    }

    fn open_cursors(&self) -> usize {
        self.core.open_cursors()
    }

    fn session_stats(&self) -> SessionStats {
        self.core.session_stats()
    }

    fn visibility_scan_cost(&self) -> u64 {
        self.core.visibility_scan_cost()
    }

    fn insert(&self, list: MergedListId, element: OrderedElement) -> Result<usize, StoreError> {
        self.core.insert(list, element)
    }

    fn verify_ordering(&self) -> bool {
        self.core.verify_ordering()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::VecList;
    use zerber_base::{EncryptedElement, MergePlan};
    use zerber_corpus::TermId;

    fn element(trs: f64, group: u32, ct: &[u8]) -> OrderedElement {
        OrderedElement {
            trs,
            group: GroupId(group),
            sealed: EncryptedElement {
                group: GroupId(group),
                ciphertext: ct.to_vec(),
            },
        }
    }

    fn sorted_elements(n: usize, seed: u8) -> Vec<OrderedElement> {
        (0..n)
            .map(|i| {
                element(
                    1.0 - i as f64 / n as f64,
                    (i % 3) as u32,
                    &[seed.wrapping_add(i as u8); 8],
                )
            })
            .collect()
    }

    fn index(lists: Vec<Vec<OrderedElement>>) -> OrderedIndex {
        let plan = MergePlan::from_term_lists(
            (0..lists.len()).map(|i| vec![TermId(i as u32)]).collect(),
            "spill-fixture",
            2.0,
        );
        OrderedIndex::from_parts(lists, plan)
    }

    fn small_segment_config() -> SegmentConfig {
        SegmentConfig {
            block_len: 4,
            tail_threshold: 3,
            max_segment_elems: 16,
            max_segments: 3,
            max_payload_bytes: u32::MAX as usize,
        }
    }

    fn store_with(
        lists: Vec<Vec<OrderedElement>>,
        shards: usize,
        config: SpillConfig,
    ) -> SpillStore {
        SpillStore::in_temp_dir_with(index(lists), shards, config, small_segment_config()).unwrap()
    }

    #[test]
    fn spill_engine_matches_the_vec_layout_through_inserts_and_cursors() {
        let elements = sorted_elements(30, 0);
        let store = store_with(
            vec![elements.clone()],
            1,
            SpillConfig {
                resident_budget_bytes: 0,
                page_cache_pages: 2,
            },
        );
        let mut reference = VecList::from_elements(elements);
        let list = MergedListId(0);
        assert_eq!(
            store.snapshot_list(list).unwrap(),
            reference.snapshot().unwrap()
        );
        // Interleave inserts across the whole TRS range with fetches.
        for (i, trs) in [0.95, 0.5, 0.005, 0.5, 0.31, 0.0].into_iter().enumerate() {
            let e = element(trs, (i % 3) as u32, &[0xAB; 8]);
            assert_eq!(
                store.insert(list, e.clone()).unwrap(),
                reference.insert(e).unwrap(),
                "probe {trs}"
            );
            let groups = [GroupId(0), GroupId(2)];
            for offset in [0usize, 5, 17] {
                let fetch = RangedFetch {
                    list,
                    offset,
                    count: 4,
                };
                let got = store.fetch_ranged(&fetch, Some(&groups)).unwrap();
                let (expected, _) = reference.scan(0, offset, 4, Some(&groups)).unwrap();
                assert_eq!(got.elements, expected);
            }
        }
        assert_eq!(
            store.snapshot_list(list).unwrap(),
            reference.snapshot().unwrap()
        );
        assert!(store.verify_ordering());
        // A cursor walk over the spilled list equals the reference order.
        let head = store
            .fetch_ranged(
                &RangedFetch {
                    list,
                    offset: 0,
                    count: 3,
                },
                None,
            )
            .unwrap();
        let cursor = store.open_cursor(list, 5, &head, 3, None).unwrap();
        let mut walked = head.elements.clone();
        loop {
            let batch = store.cursor_fetch(cursor, 5, 3, None).unwrap();
            walked.extend(batch.elements.iter().cloned());
            if batch.exhausted {
                break;
            }
        }
        assert_eq!(walked, reference.snapshot().unwrap());
    }

    #[test]
    fn budgeted_heads_stay_resident_and_cold_depths_spill() {
        // Two segments per list (32 elems / max 16): with a budget covering
        // roughly one segment per list, the hot head stays resident and the
        // cold depth spills.
        let store = store_with(
            vec![sorted_elements(32, 0)],
            1,
            SpillConfig {
                resident_budget_bytes: 600,
                page_cache_pages: 4,
            },
        );
        assert!(store.spilled_bytes() > 0, "cold segments must spill");
        let faults_before = store.page_faults();
        // A top-of-list read is served from the resident head: no faults.
        store
            .fetch_ranged(
                &RangedFetch {
                    list: MergedListId(0),
                    offset: 0,
                    count: 4,
                },
                None,
            )
            .unwrap();
        assert_eq!(store.page_faults(), faults_before);
        // A deep read faults the cold page in.
        store
            .fetch_ranged(
                &RangedFetch {
                    list: MergedListId(0),
                    offset: 28,
                    count: 4,
                },
                None,
            )
            .unwrap();
        assert!(store.page_faults() > faults_before);

        // And with an unbounded budget nothing spills at all.
        let all_hot = store_with(
            vec![sorted_elements(32, 0)],
            1,
            SpillConfig {
                resident_budget_bytes: usize::MAX,
                page_cache_pages: 4,
            },
        );
        assert_eq!(all_hot.spilled_bytes(), 0);
        all_hot.snapshot_list(MergedListId(0)).unwrap();
        assert_eq!(all_hot.page_faults(), 0);
    }

    #[test]
    fn shard_batches_fault_each_page_at_most_once_per_round() {
        // Two single-segment lists on one shard, a one-page cache: an
        // interleaved round would fault 4 times served in input order; the
        // batch groups jobs by list, so each page faults exactly once.
        let store = store_with(
            vec![sorted_elements(12, 0), sorted_elements(12, 100)],
            1,
            SpillConfig {
                resident_budget_bytes: 0,
                page_cache_pages: 1,
            },
        );
        assert_eq!(store.page_faults(), 0);
        let fetch = |l: u64| RangedFetch {
            list: MergedListId(l),
            offset: 0,
            count: 12,
        };
        let jobs = [
            StoreJob::ranged(fetch(0), None),
            StoreJob::ranged(fetch(1), None),
            StoreJob::ranged(fetch(0), None),
            StoreJob::ranged(fetch(1), None),
        ];
        let out = store.execute_shard_batch(&jobs);
        assert!(out.results.iter().all(|r| r.is_ok()));
        assert_eq!(out.lock_acquisitions, 1);
        assert_eq!(
            store.page_faults(),
            2,
            "one fault per distinct page, not per job"
        );
        assert_eq!(store.page_evictions(), 1, "the one-page cache rotated once");
        // Results are still reported in input order.
        assert_eq!(
            out.results[0].as_ref().unwrap(),
            out.results[2].as_ref().unwrap()
        );
        assert_ne!(
            out.results[0].as_ref().unwrap().elements,
            out.results[1].as_ref().unwrap().elements
        );
    }

    #[test]
    fn corrupt_pages_error_per_request_and_spare_the_rest_of_the_shard() {
        // No page cache: every cold read goes to the (corruptible) disk.
        let store = store_with(
            vec![sorted_elements(12, 0), sorted_elements(12, 100)],
            1,
            SpillConfig {
                resident_budget_bytes: 0,
                page_cache_pages: 0,
            },
        );
        let paths = store.page_file_paths();
        assert_eq!(paths.len(), 1);
        let reference = store.snapshot_list(MergedListId(1)).unwrap();

        // Flip bytes inside list 0's page (written first, at offset 0).
        let mut bytes = fs::read(&paths[0]).unwrap();
        for b in bytes.iter_mut().take(24) {
            *b ^= 0x5A;
        }
        fs::write(&paths[0], &bytes).unwrap();
        let fetch = |l: u64| RangedFetch {
            list: MergedListId(l),
            offset: 0,
            count: 12,
        };
        // The corrupt page surfaces as a StoreError for list 0 alone...
        assert!(matches!(
            store.fetch_ranged(&fetch(0), None),
            Err(StoreError::CorruptSegment(_) | StoreError::Io(_))
        ));
        // ...while the same shard keeps serving its other list, summaries
        // included, and accepts writes.
        let batch = store.fetch_ranged(&fetch(1), None).unwrap();
        assert_eq!(batch.elements, reference);
        assert_eq!(
            store
                .visible_len(MergedListId(0), Some(&[GroupId(0)]))
                .unwrap(),
            4,
            "summaries answer without touching the corrupt page"
        );
        store
            .insert(MergedListId(1), element(0.0001, 0, &[1, 2, 3]))
            .unwrap();

        // A cross-user shard round isolates the poisoned request the same
        // way the stream scheduler isolates a stale cursor.
        let jobs = [
            StoreJob::ranged(fetch(0), None),
            StoreJob::ranged(fetch(1), None),
        ];
        let out = store.execute_shard_batch(&jobs);
        assert!(out.results[0].is_err());
        assert!(out.results[1].is_ok());

        // Truncation (a torn write) is surfaced too, as an I/O or
        // validation error, never a panic.
        fs::write(&paths[0], &bytes[..bytes.len() / 2]).unwrap();
        assert!(store.fetch_ranged(&fetch(1), None).is_err());
        assert!(store.fetch_ranged(&fetch(0), None).is_err());
    }

    #[test]
    fn interior_inserts_keep_the_hot_head_resident_under_a_tight_budget() {
        // Probe the fully-resident charge, then rebuild the store with that
        // budget plus a sliver of headroom: everything fits, but there is
        // far less spare room than one whole segment.  An interior insert
        // must re-use the charge of the slot it rebuilds instead of
        // competing for fresh budget — otherwise the hot head would be
        // demoted to disk by its own rebuild.
        let probe = store_with(
            vec![sorted_elements(32, 0)],
            1,
            SpillConfig {
                resident_budget_bytes: usize::MAX,
                page_cache_pages: 0,
            },
        );
        let charge = probe.resident_charge_bytes();
        assert!(charge > 0);
        drop(probe);
        let store = store_with(
            vec![sorted_elements(32, 0)],
            1,
            SpillConfig {
                resident_budget_bytes: charge + 256,
                page_cache_pages: 0,
            },
        );
        assert_eq!(store.spilled_bytes(), 0, "everything starts resident");
        // An interior insert near the top of the list rebuilds the head
        // segment in place.
        store
            .insert(MergedListId(0), element(0.99, 0, &[7u8; 8]))
            .unwrap();
        assert_eq!(
            store.spilled_bytes(),
            0,
            "the rebuilt head segment must stay resident"
        );
        let faults = store.page_faults();
        store
            .fetch_ranged(
                &RangedFetch {
                    list: MergedListId(0),
                    offset: 0,
                    count: 4,
                },
                None,
            )
            .unwrap();
        assert_eq!(store.page_faults(), faults, "head reads stay fault-free");
    }

    #[test]
    fn explicit_spill_roots_are_cleaned_up_too() {
        let dir = unique_temp_dir();
        let store = SpillStore::with_config(
            index(vec![sorted_elements(8, 0)]),
            2,
            &dir,
            SpillConfig {
                resident_budget_bytes: 0,
                page_cache_pages: 1,
            },
        )
        .unwrap();
        assert!(dir.exists());
        assert_eq!(store.page_file_paths().len(), 2);
        drop(store);
        assert!(
            !dir.exists(),
            "spill root {} must be removed",
            dir.display()
        );
    }
}
