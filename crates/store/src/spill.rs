//! The on-disk spill layout: cold sealed segments live in per-shard page
//! files, hot state stays in memory.
//!
//! The paper's untrusted server must hold merged, sealed posting lists for
//! millions of users — a footprint that does not fit in RAM.  Like the
//! ontological-database systems that answer from a small hot working set
//! while the bulk of the extensional data lives on secondary storage, the
//! [`SpillStore`] keeps each merged list as a `SegmentStore`-style stack
//! ([`crate::segment`]) whose **cold sealed segments** are serialized
//! through the validated segment wire format ([`Segment::to_bytes`]) into a
//! per-shard page file and dropped from memory.  What stays resident per
//! spilled segment is a tiny summary (element count, TRS bounds, per-group
//! visible counts, byte totals), so visibility accounting and deep-offset
//! skip-scans never touch the disk at all.
//!
//! Reads that do need a cold segment pull the page back through the fully
//! validating [`Segment::from_bytes`] — a torn, truncated or bit-flipped
//! page surfaces as [`StoreError`] for that one request, never a panic and
//! never a wrong answer — and park it in a per-shard LRU **page cache**
//! ([`SpillConfig::page_cache_pages`]).  [`SpillConfig::resident_budget_bytes`]
//! bounds the sealed bytes each shard keeps resident: segments charge the
//! budget greedily in build order (within a list, hot end first) and spill
//! once it is exhausted.
//! `ListStore::execute_shard_batch` groups a round's ranged jobs by list
//! (and cursor resumptions by session) before serving them, so a batch of
//! fresh fetches faults each page at most once per round.
//!
//! Two maintenance passes make the tiering **self-managing**:
//!
//! - **Access-driven retier** ([`SpillConfig::retier_interval`]): every
//!   sealed slot carries an access-clock stamp, touched whenever a scan or
//!   fault actually reads its segment.  Every `retier_interval` serving
//!   operations on a shard, a pass re-grants the shard's resident budget to
//!   the hottest slots — a segment that cooled demotes to disk, a cold list
//!   that started seeing traffic promotes its touched slots, and the
//!   seal-time placement is only the starting point, not a life sentence.
//!   A never-touched slot is never promoted.
//! - **Page-file compaction** ([`SpillConfig::compact_dead_percent`] /
//!   [`SpillConfig::compact_min_dead_bytes`]): the page files are
//!   append-only, so a rebuild of a spilled segment (interior insert), a
//!   promotion, or a re-demotion strands the superseded page as dead bytes.
//!   Once dead bytes clear both thresholds, the live pages are copied into
//!   a fresh `.pages.compact` file and re-validated **off the shard lock**;
//!   only the final swap (straggler copy, atomic rename, slot/cache remap)
//!   runs under the shard write lock.  A failed or torn rewrite is
//!   discarded and the old file keeps serving.
//!
//! The store runs in one of two lifecycles:
//!
//! - **Ephemeral** (the default): files are cache state, deleted on drop.
//! - **Durable** ([`SpillStore::create_durable`] / [`SpillStore::open`]):
//!   the root directory is persistent state.  Page files are immutable
//!   checkpoint pages referenced by an atomically-committed, checksummed
//!   per-shard **manifest**; tail inserts append to a CRC-framed per-shard
//!   **write-ahead log** ([`crate::durable`]); and [`SpillStore::open`]
//!   recovers by replaying manifest pages through the fully validating
//!   [`Segment::from_bytes`] and the WAL tail through the ordinary insert
//!   path, truncating a torn or corrupt log at the last valid record.  A
//!   recovered store is only accepted after `budget_accounting_is_exact`
//!   and a full ordering/visibility audit pass.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use zerber_base::MergedListId;
use zerber_corpus::{GroupId, TermId};
use zerber_index::compress::from_sortable_bits;
use zerber_r::{OrderedElement, OrderedIndex};

use crate::convert::{u64_of, usize_of};
use crate::durable::{
    crc32, decode_manifest, decode_store_meta, encode_manifest, encode_store_meta,
    encode_wal_frame, io_err, scan_wal, DurableConfig, FileIo, Manifest, ManifestList, PageIo,
    RealIo, StoreMeta, SyncPolicy,
};
use crate::error::StoreError;
use crate::segment::{encode_chunk_split, encode_rebuilt, encode_segments, Segment, SegmentConfig};
use crate::sharded::{default_shards, ShardedCore, MAX_SHARDS};
use crate::store::{
    is_visible, CursorId, ListStore, ListTable, OrderedList, RangedBatch, RangedFetch,
    SessionStats, ShardBucketOutput, ShardJobBucket, ShardJobPlan, StoreJob,
};

/// Tuning knobs of the spill engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpillConfig {
    /// Sealed-segment bytes each shard may keep resident; segments beyond
    /// the budget are written to the shard's page file and dropped from
    /// memory.  `0` spills every sealed segment (the tails and summaries
    /// always stay resident).
    pub resident_budget_bytes: usize,
    /// Pages the per-shard LRU page cache retains after a fault.  `0`
    /// disables caching: every cold read goes to disk.
    pub page_cache_pages: usize,
    /// Dead-byte share of a shard's page file (percent) above which the
    /// file is compacted: live pages are rewritten into a fresh file and
    /// swapped in.  `100` (with a large floor) effectively disables
    /// compaction.
    pub compact_dead_percent: u8,
    /// Absolute dead-byte floor below which compaction never triggers, so
    /// tiny files are not rewritten over a few stranded bytes.
    pub compact_min_dead_bytes: usize,
    /// Serving operations per shard between access-driven retier passes
    /// (promotion/demotion of sealed slots by access recency).  `0`
    /// disables retiering: residency stays as placed at seal time.
    pub retier_interval: u64,
    /// Access-clock distance after which a slot's heat is considered
    /// decayed: a slot last read more than this many ticks ago counts as
    /// cold in the retier pass — it no longer outranks never-read slots and
    /// its residency is up for grabs by currently-hot ones.  Closes the
    /// "access clock is a high-water mark" gap: a burst a million ops ago
    /// eventually cools.  `0` disables decay (heat never expires).
    pub heat_decay_window: u64,
}

impl Default for SpillConfig {
    fn default() -> Self {
        SpillConfig {
            resident_budget_bytes: 8 << 20,
            page_cache_pages: 64,
            compact_dead_percent: 40,
            compact_min_dead_bytes: 64 << 10,
            retier_interval: 1024,
            heat_decay_window: 1 << 20,
        }
    }
}

impl SpillConfig {
    /// Disables both maintenance passes (compaction and retiering): the
    /// engine behaves like the static seal-time placement — the baseline
    /// the tiering benchmarks compare against.
    pub fn without_tiering(self) -> Self {
        SpillConfig {
            compact_dead_percent: 100,
            compact_min_dead_bytes: usize::MAX,
            retier_interval: 0,
            ..self
        }
    }
}

/// Location of one spilled page inside its shard's page file, plus the
/// CRC32 of its encoded bytes.  Every read path re-checks the CRC before
/// decoding: segment structure validation alone cannot notice a flipped
/// ciphertext byte, the checksum can.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PageId {
    offset: u64,
    len: u32,
    crc: u32,
}

/// Checks a page's bytes against the CRC recorded at write time.
fn verify_page_crc(page: PageId, buf: &[u8]) -> Result<(), StoreError> {
    if crc32(buf) != page.crc {
        return Err(StoreError::CorruptSegment(format!(
            "page at offset {} ({} bytes) fails its checksum",
            page.offset, page.len
        )));
    }
    Ok(())
}

/// The spill directory.  Ephemeral roots are removed (best effort) once the
/// last pager drops; durable roots are persistent state and are **never**
/// removed on drop — stray-scratch cleanup happens on [`SpillStore::open`]
/// instead.
#[derive(Debug)]
struct SpillRoot {
    dir: PathBuf,
    ephemeral: bool,
}

impl Drop for SpillRoot {
    fn drop(&mut self) {
        if !self.ephemeral {
            return;
        }
        // Remove only this store's own unique directory.  The shared
        // staging parent (`zerber-spill` / `zerber-durable`) is deliberately
        // left in place: a concurrent store may be between create_dir_all
        // and opening its page files, and deleting the parent under it
        // would fail that build spuriously.  An empty staging dir is
        // harmless (the CI hygiene guard checks for stray *files*, not
        // directories).
        let _ = fs::remove_dir(&self.dir);
    }
}

#[derive(Debug)]
struct PageFile {
    file: Box<dyn FileIo>,
    append: u64,
}

#[derive(Debug)]
struct CacheSlot {
    segment: Arc<Segment>,
    bytes: usize,
    last_used: u64,
}

#[derive(Debug, Default)]
struct PageCache {
    entries: HashMap<u64, CacheSlot>,
    clock: u64,
    bytes: usize,
}

/// One shard's spill state: the append-only page file, the LRU page cache
/// and the residency-budget accounting, shared by every list of the shard.
#[derive(Debug)]
struct Pager {
    io: Mutex<PageFile>,
    cache: Mutex<PageCache>,
    cache_capacity: usize,
    resident_budget: usize,
    resident_charge: AtomicUsize,
    spilled: AtomicUsize,
    faults: AtomicU64,
    hits: AtomicU64,
    evictions: AtomicU64,
    /// Physical length of the page file — mirrors `io.append` so stats and
    /// the compaction trigger never take the file lock.
    file_len: AtomicU64,
    compactions: AtomicU64,
    promotions: AtomicU64,
    demotions: AtomicU64,
    /// Logical access clock, ticked on every sealed-slot read; slot
    /// summaries stamp it so the retier pass can rank slots by recency.
    access_clock: AtomicU64,
    /// Serving operations since the last retier pass of this shard.
    ops_since_retier: AtomicU64,
    /// Single-flight guard: at most one compaction per shard at a time.
    compacting: AtomicBool,
    compact_dead_percent: u8,
    compact_min_dead_bytes: usize,
    retier_interval: u64,
    heat_decay_window: u64,
    /// Generational page-file naming in durable mode
    /// (`shard-NNN.g<generation>.pages`); ephemeral mode keeps a single
    /// un-versioned file and always reads generation 0.
    generation: AtomicU64,
    /// Durable stores name their page files generationally and treat them
    /// as checkpoint state; ephemeral stores treat them as cache.
    durable: bool,
    dir: PathBuf,
    shard: usize,
    backend: Arc<dyn PageIo>,
    root: Arc<SpillRoot>,
}

impl Drop for Pager {
    fn drop(&mut self) {
        // Ephemeral page files are cache state: leave nothing behind
        // (including a fresh compaction file an aborted pass may have
        // left).  Durable page files are checkpoint state referenced by the
        // shard manifest — never removed on drop; a stray compaction file
        // from an unclean shutdown is cleaned up by the next `open`.
        if self.root.ephemeral {
            let _ = fs::remove_file(self.current_path());
            let _ = fs::remove_file(self.fresh_path());
        }
    }
}

impl Pager {
    #[allow(clippy::too_many_arguments)]
    fn create(
        backend: Arc<dyn PageIo>,
        dir: &Path,
        shard: usize,
        config: &SpillConfig,
        root: Arc<SpillRoot>,
        durable: bool,
        generation: u64,
        append: u64,
    ) -> Result<Arc<Pager>, StoreError> {
        let path = if durable {
            dir.join(format!("shard-{shard:03}.g{generation}.pages"))
        } else {
            dir.join(format!("shard-{shard:03}.pages"))
        };
        let fresh = append == 0;
        let mut file = backend.open(&path, fresh).map_err(io_err)?;
        if !fresh {
            // Recovery adopts exactly the manifest-referenced prefix; any
            // bytes past it (a torn page write mid-crash) are garbage and
            // are trimmed away.  A file *shorter* than the manifest extent
            // is zero-extended here and then rejected by the per-page
            // validation — either way, never served.
            file.set_len(append).map_err(io_err)?;
        }
        let pager = Pager {
            io: Mutex::new(PageFile { file, append }),
            cache: Mutex::new(PageCache::default()),
            cache_capacity: config.page_cache_pages,
            resident_budget: config.resident_budget_bytes,
            resident_charge: AtomicUsize::new(0),
            spilled: AtomicUsize::new(0),
            faults: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            file_len: AtomicU64::new(append),
            compactions: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
            demotions: AtomicU64::new(0),
            access_clock: AtomicU64::new(0),
            ops_since_retier: AtomicU64::new(0),
            compacting: AtomicBool::new(false),
            compact_dead_percent: config.compact_dead_percent,
            compact_min_dead_bytes: config.compact_min_dead_bytes,
            retier_interval: config.retier_interval,
            heat_decay_window: config.heat_decay_window,
            generation: AtomicU64::new(generation),
            durable,
            dir: dir.to_path_buf(),
            shard,
            backend,
            root,
        };
        Ok(Arc::new(pager))
    }

    /// Page-file path of `generation` under this pager's naming scheme.
    fn path_for(&self, generation: u64) -> PathBuf {
        if self.durable {
            self.dir
                .join(format!("shard-{:03}.g{generation}.pages", self.shard))
        } else {
            self.dir.join(format!("shard-{:03}.pages", self.shard))
        }
    }

    /// Path of the page file currently serving.
    fn current_path(&self) -> PathBuf {
        self.path_for(self.generation.load(Ordering::Relaxed))
    }

    /// Fsyncs the page file (checkpoints call this before committing a
    /// manifest that references its pages).
    fn sync_file(&self) -> Result<(), StoreError> {
        self.io.lock().file.sync().map_err(io_err)
    }

    /// Charges `bytes` against the shard's resident budget; `false` (and no
    /// charge) if the budget cannot cover them.
    fn try_charge(&self, bytes: usize) -> bool {
        let mut current = self.resident_charge.load(Ordering::Relaxed);
        loop {
            if current.saturating_add(bytes) > self.resident_budget {
                return false;
            }
            match self.resident_charge.compare_exchange(
                current,
                current + bytes,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(now) => current = now,
            }
        }
    }

    /// Charges unconditionally (compaction's keep-resident fallback).
    fn force_charge(&self, bytes: usize) {
        self.resident_charge.fetch_add(bytes, Ordering::Relaxed);
    }

    fn uncharge(&self, bytes: usize) {
        self.resident_charge.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Serializes a segment into the page file, returning its page id.
    fn write_page(&self, segment: &Segment) -> Result<PageId, StoreError> {
        let bytes = segment.to_bytes();
        let len = u32::try_from(bytes.len()).map_err(|_| StoreError::SegmentOverflow)?;
        let crc = crc32(&bytes);
        let offset = {
            let mut io = self.io.lock();
            let offset = io.append;
            io.file.write_at(offset, &bytes).map_err(io_err)?;
            io.append += u64::from(len);
            self.file_len.store(io.append, Ordering::Relaxed);
            offset
        };
        self.spilled.fetch_add(bytes.len(), Ordering::Relaxed);
        Ok(PageId { offset, len, crc })
    }

    /// Adopts an existing page (recovery): counts its bytes as live without
    /// writing anything.
    fn note_live_page(&self, len: u32) {
        self.spilled.fetch_add(usize_of(len), Ordering::Relaxed);
    }

    /// Drops a page from the live-byte accounting and the cache (the bytes
    /// in the file become garbage until background compaction).
    fn release_page(&self, page: PageId) {
        self.spilled
            .fetch_sub(usize_of(page.len), Ordering::Relaxed);
        let mut cache = self.cache.lock();
        if let Some(slot) = cache.entries.remove(&page.offset) {
            cache.bytes -= slot.bytes;
        }
    }

    /// Reads one page back, through the cache: a hit bumps recency, a miss
    /// reads the file and re-validates the bytes with `Segment::from_bytes`
    /// (counted as a page fault), inserting the decoded segment and
    /// LRU-evicting past `cache_capacity`.  Concurrent misses on one page
    /// single-flight: the file lock is held across read, decode and cache
    /// insertion, and latecomers re-probe the cache under it instead of
    /// reading the page a second time.  The lock is per shard, so this
    /// also serializes cold misses on *different* pages of one shard — a
    /// deliberate simplicity/accuracy tradeoff (faults are designed to be
    /// rare once the cache holds the hot set); a per-page in-flight map
    /// would restore miss parallelism if profiles ever show contention.
    fn fetch(&self, page: PageId) -> Result<Arc<Segment>, StoreError> {
        {
            let mut cache = self.cache.lock();
            cache.clock += 1;
            let now = cache.clock;
            if let Some(slot) = cache.entries.get_mut(&page.offset) {
                slot.last_used = now;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(&slot.segment));
            }
        }
        let mut io = self.io.lock();
        // Re-probe under the file lock: a racing fault may have populated
        // the cache while this thread waited.
        if self.cache_capacity > 0 {
            let mut cache = self.cache.lock();
            cache.clock += 1;
            let now = cache.clock;
            if let Some(slot) = cache.entries.get_mut(&page.offset) {
                slot.last_used = now;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(&slot.segment));
            }
        }
        let mut buf = vec![0u8; usize_of(page.len)];
        io.file.read_at(page.offset, &mut buf).map_err(io_err)?;
        // The page crossed a trust boundary (the disk): checksum plus full
        // validation, so a torn or tampered page is an error for this
        // request, never a panic or a silently wrong answer.
        verify_page_crc(page, &buf)?;
        let segment = Arc::new(Segment::from_bytes(&buf)?);
        self.faults.fetch_add(1, Ordering::Relaxed);
        if self.cache_capacity > 0 {
            let bytes = segment.resident_bytes();
            let mut cache = self.cache.lock();
            cache.clock += 1;
            let now = cache.clock;
            while cache.entries.len() >= self.cache_capacity {
                let Some((&oldest, _)) = cache.entries.iter().min_by_key(|(_, s)| s.last_used)
                else {
                    break;
                };
                if let Some(slot) = cache.entries.remove(&oldest) {
                    cache.bytes -= slot.bytes;
                }
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
            cache.bytes += bytes;
            cache.entries.insert(
                page.offset,
                CacheSlot {
                    segment: Arc::clone(&segment),
                    bytes,
                    last_used: now,
                },
            );
        }
        drop(io);
        Ok(segment)
    }

    fn cache_bytes(&self) -> usize {
        self.cache.lock().bytes
    }

    /// Reads and validates one page without touching the cache or the fault
    /// counter — the promotion path, which immediately owns the segment
    /// instead of sharing a cached copy.
    fn read_page_uncached(&self, page: PageId) -> Result<Segment, StoreError> {
        let mut buf = vec![0u8; usize_of(page.len)];
        self.io
            .lock()
            .file
            .read_at(page.offset, &mut buf)
            .map_err(io_err)?;
        verify_page_crc(page, &buf)?;
        Segment::from_bytes(&buf)
    }

    /// Next access-clock tick (stamped onto the slot a read touched).
    fn touch_tick(&self) -> u64 {
        self.access_clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Counts one serving operation; `true` when a retier pass is due (the
    /// counter re-arms, so exactly one caller gets the `true`).
    fn take_retier_due(&self) -> bool {
        if self.retier_interval == 0 {
            return false;
        }
        if self.ops_since_retier.fetch_add(1, Ordering::Relaxed) + 1 >= self.retier_interval {
            self.ops_since_retier.store(0, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Bytes stranded in the page file by superseded pages.
    fn dead_bytes(&self) -> usize {
        usize::try_from(self.file_len.load(Ordering::Relaxed))
            .unwrap_or(usize::MAX)
            .saturating_sub(self.spilled.load(Ordering::Relaxed))
    }

    /// Whether the dead-byte share of the page file clears both compaction
    /// thresholds (ratio and absolute floor).
    fn compaction_due(&self) -> bool {
        let dead = self.dead_bytes();
        dead > 0
            && dead >= self.compact_min_dead_bytes
            && dead.saturating_mul(100)
                >= usize::from(self.compact_dead_percent).saturating_mul(
                    usize::try_from(self.file_len.load(Ordering::Relaxed)).unwrap_or(usize::MAX),
                )
    }

    /// The page-file path a committed rewrite renames to: the same path in
    /// ephemeral mode, the next generation in durable mode (the old
    /// generation must survive until the manifest referencing the new one
    /// commits — crash at any point recovers to old or new, never a mix).
    fn commit_target(&self) -> PathBuf {
        if self.durable {
            self.path_for(self.generation.load(Ordering::Relaxed) + 1)
        } else {
            self.current_path()
        }
    }

    /// Path of the in-progress compaction file next to the page file.
    fn fresh_path(&self) -> PathBuf {
        self.commit_target().with_extension("pages.compact")
    }

    /// Opens a fresh (truncated) compaction file for a page-file rewrite.
    fn begin_rewrite(&self) -> Result<Rewrite, StoreError> {
        let path = self.fresh_path();
        let file = self.backend.open(&path, true).map_err(io_err)?;
        Ok(Rewrite {
            file,
            path,
            append: 0,
            map: HashMap::new(),
            committed: false,
            backend: Arc::clone(&self.backend),
        })
    }

    /// Copies one live page of the main file onto the rewrite (raw bytes;
    /// [`Pager::verify_rewrite`] validates the copies before they can ever
    /// serve), recording the old → new offset remap.  Idempotent per page.
    fn copy_page(&self, rw: &mut Rewrite, page: PageId) -> Result<(), StoreError> {
        if rw.map.contains_key(&page.offset) {
            return Ok(());
        }
        let mut buf = vec![0u8; usize_of(page.len)];
        self.io
            .lock()
            .file
            .read_at(page.offset, &mut buf)
            .map_err(io_err)?;
        // Refuse to propagate corruption into the rewrite: the copied page
        // must still match the checksum recorded when it was written.
        verify_page_crc(page, &buf)?;
        rw.file.write_at(rw.append, &buf).map_err(io_err)?;
        rw.map.insert(
            page.offset,
            PageId {
                offset: rw.append,
                len: page.len,
                crc: page.crc,
            },
        );
        rw.append += u64::from(page.len);
        Ok(())
    }

    /// Like [`Pager::copy_page`] but validates the fresh copy immediately —
    /// the straggler path, which runs under the shard write lock after the
    /// bulk of the rewrite was already verified off-lock.
    fn copy_page_verified(&self, rw: &mut Rewrite, page: PageId) -> Result<(), StoreError> {
        self.copy_page(rw, page)?;
        if let Some(new) = rw.map.get(&page.offset).copied() {
            rw.read_back(new)?;
        }
        Ok(())
    }

    /// Re-validates every page copied onto the rewrite by reading it back
    /// from the fresh file and decoding it through `Segment::from_bytes`.
    /// A torn or bit-flipped rewrite fails here and never swaps in.
    fn verify_rewrite(&self, rw: &mut Rewrite) -> Result<(), StoreError> {
        let pages: Vec<PageId> = rw.map.values().copied().collect();
        for page in pages {
            rw.read_back(page)?;
        }
        Ok(())
    }

    /// Swaps a fully-copied rewrite in as the shard's page file: atomic
    /// rename over the old file, the io handle and append cursor move to
    /// the fresh file, and surviving cache entries are re-keyed through the
    /// offset remap.  Must run under the shard write lock (the caller remaps
    /// the slots with the returned map under the same lock).  On error the
    /// rewrite is discarded and the old file keeps serving.
    fn commit_rewrite(&self, mut rw: Rewrite) -> Result<HashMap<u64, PageId>, StoreError> {
        // Durable rewrites sync before publishing: once the rename lands (or
        // the manifest references the new generation), the pages must be on
        // disk, not in a write-back cache a crash could lose.
        if self.durable {
            rw.file.sync().map_err(io_err)?;
        }
        let target = self.commit_target();
        self.backend.rename(&rw.path, &target).map_err(io_err)?;
        rw.committed = true;
        let map = std::mem::take(&mut rw.map);
        {
            let mut io = self.io.lock();
            // Re-open rather than stealing `rw.file`: same inode after the
            // rename, and `rw` keeps its Drop impl.
            io.file = self.backend.open(&target, false).map_err(io_err)?;
            io.append = rw.append;
            self.file_len.store(rw.append, Ordering::Relaxed);
        }
        if self.durable {
            // The new generation is now current; the old file stays on disk
            // until the caller commits a manifest referencing the new one.
            self.generation.fetch_add(1, Ordering::Relaxed);
        }
        let mut cache = self.cache.lock();
        let old_entries = std::mem::take(&mut cache.entries);
        cache.bytes = 0;
        for (offset, slot) in old_entries {
            if let Some(new) = map.get(&offset) {
                cache.bytes += slot.bytes;
                cache.entries.insert(new.offset, slot);
            }
        }
        drop(cache);
        self.compactions.fetch_add(1, Ordering::Relaxed);
        Ok(map)
    }
}

/// An in-progress page-file rewrite: live pages copied into a fresh
/// `.pages.compact` file, swapped in atomically by
/// [`Pager::commit_rewrite`].  Dropping an uncommitted rewrite removes the
/// fresh file, so an aborted compaction leaves only the old file serving
/// and no stray compaction files on disk.
struct Rewrite {
    file: Box<dyn FileIo>,
    path: PathBuf,
    append: u64,
    /// Old page-file offset → page location in the fresh file.
    map: HashMap<u64, PageId>,
    committed: bool,
    backend: Arc<dyn PageIo>,
}

impl Rewrite {
    /// Reads one copied page back from the fresh file and validates it.
    fn read_back(&mut self, page: PageId) -> Result<(), StoreError> {
        let mut buf = vec![0u8; usize_of(page.len)];
        self.file.read_at(page.offset, &mut buf).map_err(io_err)?;
        verify_page_crc(page, &buf)?;
        Segment::from_bytes(&buf)?;
        Ok(())
    }
}

impl Drop for Rewrite {
    fn drop(&mut self) {
        if !self.committed {
            let _ = self.backend.remove(&self.path);
        }
    }
}

/// Resident summary of one sealed segment — everything visibility
/// accounting, skip-scans and insert routing need without touching the
/// page file.
#[derive(Debug)]
struct SlotMeta {
    elems: usize,
    /// Sortable bits of the segment's smallest (last) TRS.
    last_bits: u64,
    /// Per-group element counts, sorted by group id.
    counts: Vec<(GroupId, u32)>,
    stored_bytes: usize,
    ciphertext_bytes: usize,
    /// Exact memory charge of the decoded segment — what residency costs
    /// against the shard budget.  Updated on promotion (decoded capacities
    /// can differ from the pre-spill encode).
    resident_cost: usize,
    /// Access-clock stamp of the last scan/fault that actually read this
    /// slot's segment (0 = never read; summary-only answers don't stamp).
    /// The retier pass ranks slots by it.
    last_access: AtomicU64,
}

impl SlotMeta {
    fn of(segment: &Segment) -> SlotMeta {
        SlotMeta {
            elems: segment.num_elements(),
            last_bits: segment.last_bits(),
            counts: segment.group_counts(),
            stored_bytes: segment.stored_bytes(),
            ciphertext_bytes: segment.ciphertext_bytes(),
            resident_cost: segment.resident_bytes(),
            last_access: AtomicU64::new(0),
        }
    }

    fn min_trs(&self) -> f64 {
        from_sortable_bits(self.last_bits)
    }

    fn visible_under(&self, accessible: Option<&[GroupId]>) -> usize {
        match accessible {
            None => self.elems,
            Some(groups) => self
                .counts
                .iter()
                .filter(|(g, _)| groups.contains(g))
                .map(|&(_, n)| usize_of(n))
                .sum(),
        }
    }
}

/// A decoded segment held in memory, with its budget charge.
#[derive(Debug)]
struct ResidentSeg {
    segment: Segment,
    charged: usize,
}

/// One sealed segment of a list.  Residency and on-disk presence are
/// independent: an ephemeral slot is either resident or paged; a durable
/// slot can be both — promotion keeps the page (it is checkpoint state,
/// still byte-identical to the segment), and a resident slot without a page
/// gets one materialized at the next checkpoint.  At least one of the two
/// is always present.
#[derive(Debug)]
struct Slot {
    meta: SlotMeta,
    /// Hot copy, charged against the shard's resident budget.
    resident: Option<ResidentSeg>,
    /// Location of the sealed page in the shard's page file.
    page: Option<PageId>,
}

impl Slot {
    fn is_resident(&self) -> bool {
        self.resident.is_some()
    }
}

/// A segment either borrowed from a resident slot or faulted in from disk.
enum SegRef<'a> {
    Resident(&'a Segment),
    Paged(Arc<Segment>),
}

impl std::ops::Deref for SegRef<'_> {
    type Target = Segment;

    fn deref(&self) -> &Segment {
        match self {
            SegRef::Resident(segment) => segment,
            SegRef::Paged(segment) => segment,
        }
    }
}

/// A merged list whose cold sealed segments live in the shard's page file.
/// Logically identical to [`crate::segment::SegmentList`]: the sequence is
/// `slots[0] ++ slots[1] ++ ... ++ tail`, descending in TRS.
#[derive(Debug)]
pub struct SpillList {
    slots: Vec<Slot>,
    tail: Vec<OrderedElement>,
    config: SegmentConfig,
    pager: Arc<Pager>,
    /// Cached sum of slot element counts (the tail adds `tail.len()`).
    seg_elems: usize,
}

impl SpillList {
    fn build(
        elements: Vec<OrderedElement>,
        config: SegmentConfig,
        pager: Arc<Pager>,
    ) -> Result<Self, StoreError> {
        let seg_elems = elements.len();
        let segments = encode_segments(&elements, &config)?;
        let mut list = SpillList {
            slots: Vec::with_capacity(segments.len()),
            tail: Vec::new(),
            config,
            pager,
            seg_elems,
        };
        // Greedy budget charging in build order: within this list the hot
        // end (what top-k queries touch) charges before the cold depths,
        // but the shard budget is shared first-come across its lists — a
        // partial budget favours lists built earlier.  Access-driven
        // placement across lists is a ROADMAP item (spill-aware
        // demotion/promotion).
        let slots = list.place_segments(segments)?;
        list.slots = slots;
        Ok(list)
    }

    /// Number of sealed slots currently cold (not resident; tests, reports).
    pub fn spilled_slots(&self) -> usize {
        self.slots.iter().filter(|s| !s.is_resident()).count()
    }

    /// Number of sealed slots (resident + spilled).
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Places freshly encoded segments: resident while the shard budget
    /// covers them, spilled otherwise.  On any failure the pages written so
    /// far are released, leaving the accounting consistent and the list
    /// untouched.
    fn place_segments(&self, segments: Vec<Segment>) -> Result<Vec<Slot>, StoreError> {
        let mut slots = Vec::with_capacity(segments.len());
        for segment in segments {
            match self.place(segment) {
                Ok(slot) => slots.push(slot),
                Err(e) => {
                    for slot in slots {
                        self.release_slot(&slot);
                    }
                    return Err(e);
                }
            }
        }
        Ok(slots)
    }

    fn place(&self, segment: Segment) -> Result<Slot, StoreError> {
        let meta = SlotMeta::of(&segment);
        // Charge exactly the slot's metered resident cost: the budget
        // invariant (`resident_charge` == Σ charged == Σ exact resident
        // bytes) holds by construction on every placement path.
        let charge = meta.resident_cost;
        if self.pager.try_charge(charge) {
            // A durable resident slot has no page yet; the next checkpoint
            // materializes it.  The WAL covers the window in between.
            Ok(Slot {
                meta,
                resident: Some(ResidentSeg {
                    segment,
                    charged: charge,
                }),
                page: None,
            })
        } else {
            let page = self.pager.write_page(&segment)?;
            Ok(Slot {
                meta,
                resident: None,
                page: Some(page),
            })
        }
    }

    fn release_slot(&self, slot: &Slot) {
        if let Some(resident) = &slot.resident {
            self.pager.uncharge(resident.charged);
        }
        if let Some(page) = slot.page {
            self.pager.release_page(page);
        }
    }

    /// Resolves slot `k` to a readable segment, faulting its page in from
    /// disk when spilled.  Stamps the slot's access clock: this is the one
    /// place every actual segment read (scan, deep fetch, insert partition,
    /// snapshot) funnels through, so recency here is recency of real use —
    /// summary-only answers deliberately leave the stamp cold.
    fn segment(&self, k: usize) -> Result<SegRef<'_>, StoreError> {
        let slot = &self.slots[k];
        slot.meta
            .last_access
            .store(self.pager.touch_tick(), Ordering::Relaxed);
        match (&slot.resident, slot.page) {
            (Some(resident), _) => Ok(SegRef::Resident(&resident.segment)),
            (None, Some(page)) => Ok(SegRef::Paged(self.pager.fetch(page)?)),
            (None, None) => Err(StoreError::Invariant("a slot is resident or paged")),
        }
    }

    /// Seals the tail into new slot(s) and compacts resident neighbours.
    /// The tail is only cleared once every piece is placed, so a failed
    /// seal leaves the list untouched.
    fn seal_tail(&mut self) -> Result<(), StoreError> {
        if self.tail.is_empty() {
            return Ok(());
        }
        let mut sealed = Vec::new();
        encode_chunk_split(&self.tail, &self.config, &mut sealed)?;
        let slots = self.place_segments(sealed)?;
        self.seg_elems += self.tail.len();
        self.slots.extend(slots);
        self.tail.clear();
        self.compact()?;
        Ok(())
    }

    /// Insert-amortized compaction over **resident** adjacent pairs only —
    /// spilled segments are immutable cold storage and merging them would
    /// mean paying page faults on the write path.  A stack held deep by
    /// spilled slots is tolerated; background page-file compaction owns
    /// that (ROADMAP).
    fn compact(&mut self) -> Result<(), StoreError> {
        let byte_bound = self.config.payload_bound();
        while self.slots.len() > self.config.max_segments {
            let mut best: Option<(usize, usize)> = None;
            for i in 0..self.slots.len() - 1 {
                let (Some(a), Some(b)) = (&self.slots[i].resident, &self.slots[i + 1].resident)
                else {
                    continue;
                };
                let combined = self.slots[i].meta.elems + self.slots[i + 1].meta.elems;
                if combined <= self.config.max_segment_elems
                    && a.segment.payload_len() + b.segment.payload_len() <= byte_bound
                    && best.is_none_or(|(_, c)| combined < c)
                {
                    best = Some((i, combined));
                }
            }
            let Some((i, _)) = best else { break };
            let right = self.slots.remove(i + 1);
            let left = self.slots.remove(i);
            let (Some(left_res), Some(right_res)) = (left.resident, right.resident) else {
                return Err(StoreError::Invariant(
                    "compaction only selects resident pairs",
                ));
            };
            let mut merged = left_res.segment;
            match merged.absorb(right_res.segment) {
                Ok(()) => {
                    self.pager.uncharge(left_res.charged + right_res.charged);
                    // The merged segment supersedes both slots' checkpoint
                    // pages (if any): release them, the next checkpoint
                    // writes the merged page.
                    for page in [left.page, right.page].into_iter().flatten() {
                        self.pager.release_page(page);
                    }
                    let meta = SlotMeta::of(&merged);
                    // The merged segment stays resident: compaction must not
                    // turn a hot pair cold.  If the budget cannot cover the
                    // (small) delta, charge it anyway; tail seals will spill
                    // against the deficit, and the next retier pass settles
                    // it.  The charge is still the exact resident cost, so
                    // the budget invariant never drifts.
                    let charge = meta.resident_cost;
                    if !self.pager.try_charge(charge) {
                        self.pager.force_charge(charge);
                    }
                    self.slots.insert(
                        i,
                        Slot {
                            meta,
                            resident: Some(ResidentSeg {
                                segment: merged,
                                charged: charge,
                            }),
                            page: None,
                        },
                    );
                }
                Err(right_seg) => {
                    // Unreachable given the byte-bound pre-check; reattach
                    // both and stop compacting.
                    self.slots.insert(
                        i,
                        Slot {
                            meta: SlotMeta::of(&right_seg),
                            resident: Some(ResidentSeg {
                                segment: right_seg,
                                charged: right_res.charged,
                            }),
                            page: right.page,
                        },
                    );
                    self.slots.insert(
                        i,
                        Slot {
                            meta: SlotMeta::of(&merged),
                            resident: Some(ResidentSeg {
                                segment: merged,
                                charged: left_res.charged,
                            }),
                            page: left.page,
                        },
                    );
                    break;
                }
            }
        }
        Ok(())
    }

    /// Rebuilds slot `k` as `decoded` (already containing the inserted
    /// element).  The old slot is only replaced after every new piece is
    /// placed; a spilled slot's rebuild appends fresh pages and strands the
    /// old page as file garbage.
    fn rebuild_slot(&mut self, k: usize, decoded: Vec<OrderedElement>) -> Result<(), StoreError> {
        let rebuilt = encode_rebuilt(&decoded, &self.config)?;
        let was_cold = !self.slots[k].is_resident();
        // Free the old slot's budget charge up front so the rebuilt
        // segments compete for the bytes the slot itself was holding —
        // otherwise a near-full budget would demote a hot resident head to
        // disk on every interior insert.  Restored if placement fails.
        let old_charge = self.slots[k]
            .resident
            .as_ref()
            .map_or(0, |resident| resident.charged);
        self.pager.uncharge(old_charge);
        let placed = if was_cold {
            // Stay cold: the segment was not worth resident bytes before the
            // insert and one insert does not make it hot.
            let mut slots = Vec::with_capacity(rebuilt.len());
            let mut failure = None;
            for segment in rebuilt {
                let meta = SlotMeta::of(&segment);
                match self.pager.write_page(&segment) {
                    Ok(page) => slots.push(Slot {
                        meta,
                        resident: None,
                        page: Some(page),
                    }),
                    Err(e) => {
                        for slot in slots.drain(..) {
                            self.release_slot(&slot);
                        }
                        failure = Some(e);
                        break;
                    }
                }
            }
            match failure {
                None => Ok(slots),
                Some(e) => Err(e),
            }
        } else {
            self.place_segments(rebuilt)
        };
        let new_slots = match placed {
            Ok(slots) => slots,
            Err(e) => {
                self.pager.force_charge(old_charge);
                return Err(e);
            }
        };
        // The rebuilt slots inherit the old slot's access recency: an
        // interior insert must not make a hot slot look cold to the next
        // retier pass.
        let heat = self.slots[k].meta.last_access.load(Ordering::Relaxed);
        for slot in &new_slots {
            slot.meta.last_access.store(heat, Ordering::Relaxed);
        }
        self.seg_elems += 1;
        let old: Vec<Slot> = self.slots.splice(k..=k, new_slots).collect();
        for slot in old {
            // The budget charge was already released above; only the
            // superseded page (now file garbage) remains to account for.
            if let Some(page) = slot.page {
                self.pager.release_page(page);
            }
        }
        if self.slots.len() > self.config.max_segments {
            self.compact()?;
        }
        Ok(())
    }

    /// Appends the live pages of the list's slots onto `out` (the
    /// compaction snapshot).  In durable mode this includes the checkpoint
    /// pages of resident slots.
    fn live_pages(&self, out: &mut Vec<PageId>) {
        for slot in &self.slots {
            if let Some(page) = slot.page {
                out.push(page);
            }
        }
    }

    /// Rewrites every paged slot's page location through the compaction
    /// offset map.  Runs under the shard write lock right after the swap;
    /// the straggler pass under the same lock guarantees coverage.
    fn remap_pages(&mut self, map: &HashMap<u64, PageId>) -> Result<(), StoreError> {
        for slot in &mut self.slots {
            if let Some(page) = &mut slot.page {
                *page = *map.get(&page.offset).ok_or(StoreError::Invariant(
                    "compaction copied every live page before the swap",
                ))?;
            }
        }
        Ok(())
    }

    /// Ensures slot `k` has an on-disk page (checkpoint materialization for
    /// resident slots placed since the last checkpoint), returning it.
    fn ensure_page(&mut self, k: usize) -> Result<PageId, StoreError> {
        if let Some(page) = self.slots[k].page {
            return Ok(page);
        }
        let resident = self.slots[k]
            .resident
            .as_ref()
            .ok_or(StoreError::Invariant("a pageless slot is resident"))?;
        let page = self.pager.write_page(&resident.segment)?;
        self.slots[k].page = Some(page);
        Ok(page)
    }

    /// Checkpoint view of this list: every sealed slot's page (materialized
    /// on demand) plus the current tail.  Runs under the shard write lock.
    fn manifest_list(&mut self) -> Result<ManifestList, StoreError> {
        let mut pages = Vec::with_capacity(self.slots.len());
        for k in 0..self.slots.len() {
            let page = self.ensure_page(k)?;
            pages.push((page.offset, page.len, page.crc));
        }
        Ok(ManifestList {
            pages,
            tail: self.tail.clone(),
        })
    }

    /// Rebuilds a list from checkpoint state: every manifest page is read
    /// and fully validated (`Segment::from_bytes`), kept resident while the
    /// shard budget lasts (the page is retained either way — it is
    /// checkpoint state), and the manifest's tail is adopted as the mutable
    /// tail.  Returns the list and the number of pages recovered.
    fn from_recovered(
        manifest: &ManifestList,
        config: SegmentConfig,
        pager: Arc<Pager>,
    ) -> Result<(Self, u64), StoreError> {
        let mut slots = Vec::with_capacity(manifest.pages.len());
        let mut seg_elems = 0usize;
        for &(offset, len, crc) in &manifest.pages {
            let page = PageId { offset, len, crc };
            let segment = pager.read_page_uncached(page)?;
            let meta = SlotMeta::of(&segment);
            seg_elems += meta.elems;
            let charge = meta.resident_cost;
            let resident = pager.try_charge(charge).then_some(ResidentSeg {
                segment,
                charged: charge,
            });
            pager.note_live_page(len);
            slots.push(Slot {
                meta,
                resident,
                page: Some(page),
            });
        }
        let recovered = u64_of(manifest.pages.len());
        let list = SpillList {
            slots,
            tail: manifest.tail.clone(),
            config,
            pager,
            seg_elems,
        };
        Ok((list, recovered))
    }

    /// Appends the list's sealed slots as retier candidates onto `out`.
    fn tier_candidates(&self, list: usize, out: &mut Vec<TierSlot>) {
        for (k, slot) in self.slots.iter().enumerate() {
            let (resident, cost) = match &slot.resident {
                Some(res) => (true, res.charged),
                None => (false, slot.meta.resident_cost),
            };
            out.push(TierSlot {
                list,
                slot: k,
                heat: slot.meta.last_access.load(Ordering::Relaxed),
                cost,
                resident,
                decayed: false,
            });
        }
    }

    /// Demotes resident slot `k` to the shard's page file (no-op if it is
    /// already cold).  A durable slot that still carries its checkpoint
    /// page skips the write — the page is already byte-identical.  On write
    /// failure the slot stays resident.
    fn demote_slot(&mut self, k: usize) -> Result<(), StoreError> {
        if !self.slots[k].is_resident() {
            return Ok(());
        }
        if self.slots[k].page.is_none() {
            let resident = self.slots[k]
                .resident
                .as_ref()
                .ok_or(StoreError::Invariant("demotion checked the slot resident"))?;
            let page = self.pager.write_page(&resident.segment)?;
            self.slots[k].page = Some(page);
        }
        let resident = self.slots[k]
            .resident
            .take()
            .ok_or(StoreError::Invariant("demotion checked the slot resident"))?;
        self.pager.uncharge(resident.charged);
        self.pager.demotions.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Promotes cold slot `k` back to the resident tier; `Ok(false)` when
    /// the budget cannot cover its exact decoded size.  Ephemeral mode
    /// releases the page (stranding its file bytes for compaction); durable
    /// mode keeps it — the page is checkpoint state and still matches the
    /// segment byte for byte.
    fn promote_slot(&mut self, k: usize) -> Result<bool, StoreError> {
        if self.slots[k].is_resident() {
            return Ok(false);
        }
        let page = self.slots[k]
            .page
            .ok_or(StoreError::Invariant("a cold slot has a page"))?;
        let segment = self.pager.read_page_uncached(page)?;
        // The decoded capacities can differ from the cost metered at the
        // pre-spill encode: re-meter so the charge stays exact.
        let charge = segment.resident_bytes();
        if !self.pager.try_charge(charge) {
            return Ok(false);
        }
        if !self.pager.durable {
            self.pager.release_page(page);
            self.slots[k].page = None;
        }
        self.slots[k].meta.resident_cost = charge;
        self.slots[k].resident = Some(ResidentSeg {
            segment,
            charged: charge,
        });
        self.pager.promotions.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }

    /// Sum of the budget charges of the list's resident slots.
    fn charged_bytes(&self) -> usize {
        self.slots
            .iter()
            .filter_map(|slot| slot.resident.as_ref().map(|res| res.charged))
            .sum()
    }

    /// Whether every resident slot's charge equals both its segment's exact
    /// resident bytes and its metered `resident_cost` (the per-slot half of
    /// the budget invariant).
    fn charges_exact(&self) -> bool {
        self.slots.iter().all(|slot| match &slot.resident {
            Some(res) => {
                res.charged == res.segment.resident_bytes()
                    && res.charged == slot.meta.resident_cost
            }
            None => true,
        })
    }
}

/// One sealed slot as the retier pass sees it: where it lives, what
/// residency costs, and how recently it was actually read.
struct TierSlot {
    list: usize,
    slot: usize,
    heat: u64,
    cost: usize,
    resident: bool,
    /// Set by the retier pass when the slot's heat fell outside the decay
    /// window: treated as never-read, including for the resident-keep rule.
    decayed: bool,
}

impl OrderedList for SpillList {
    fn len(&self) -> usize {
        self.seg_elems + self.tail.len()
    }

    fn snapshot(&self) -> Result<Vec<OrderedElement>, StoreError> {
        let mut out = Vec::with_capacity(self.len());
        for k in 0..self.slots.len() {
            out.extend(self.segment(k)?.decode_all());
        }
        out.extend(self.tail.iter().cloned());
        Ok(out)
    }

    fn visible_total(&self, accessible: Option<&[GroupId]>, meter: &AtomicU64) -> usize {
        match accessible {
            None => self.len(),
            Some(_) => {
                // Slot summaries answer for the sealed part without faulting
                // a single page; only the (small) tail is examined.
                meter.fetch_add(u64_of(self.tail.len()), Ordering::Relaxed);
                let sealed: usize = self
                    .slots
                    .iter()
                    .map(|s| s.meta.visible_under(accessible))
                    .sum();
                sealed
                    + self
                        .tail
                        .iter()
                        .filter(|e| is_visible(e, accessible))
                        .count()
            }
        }
    }

    fn scan(
        &self,
        start: usize,
        skip: usize,
        count: usize,
        accessible: Option<&[GroupId]>,
    ) -> Result<(Vec<OrderedElement>, usize), StoreError> {
        let total = self.len();
        let mut elements = Vec::with_capacity(count.min(total.saturating_sub(start)));
        let mut skipped = 0usize;
        let mut pos = 0usize;
        for k in 0..self.slots.len() {
            let elems = self.slots[k].meta.elems;
            if pos + elems <= start {
                pos += elems;
                continue;
            }
            // Wholesale visible-skip from the summary: a slot whose visible
            // elements would all be skipped is passed over without paying a
            // page fault.
            if pos >= start && skipped < skip {
                let visible = self.slots[k].meta.visible_under(accessible);
                if skipped + visible <= skip {
                    skipped += visible;
                    pos += elems;
                    continue;
                }
            }
            let segment = self.segment(k)?;
            if let Some(next) = segment.scan_part(
                pos,
                start,
                skip,
                &mut skipped,
                count,
                &mut elements,
                accessible,
            ) {
                return Ok((elements, next));
            }
            pos += elems;
        }
        for (j, element) in self.tail.iter().enumerate() {
            let idx = self.seg_elems + j;
            if idx < start || !is_visible(element, accessible) {
                continue;
            }
            if skipped < skip {
                skipped += 1;
                continue;
            }
            elements.push(element.clone());
            if elements.len() == count {
                return Ok((elements, idx + 1));
            }
        }
        Ok((elements, total.max(start)))
    }

    fn position_after_visible(
        &self,
        delivered: usize,
        accessible: Option<&[GroupId]>,
    ) -> Result<usize, StoreError> {
        let mut remaining = delivered;
        let mut pos = 0usize;
        for k in 0..self.slots.len() {
            if remaining == 0 {
                return Ok(pos);
            }
            let visible = self.slots[k].meta.visible_under(accessible);
            if visible < remaining {
                // The whole slot is consumed: account for it from the
                // summary alone, no page fault.
                remaining -= visible;
                pos += self.slots[k].meta.elems;
                continue;
            }
            let segment = self.segment(k)?;
            if let Some(found) = segment.position_part(pos, &mut remaining, accessible) {
                return Ok(found);
            }
            pos += self.slots[k].meta.elems;
        }
        for (j, element) in self.tail.iter().enumerate() {
            if remaining == 0 {
                return Ok(self.seg_elems + j);
            }
            if is_visible(element, accessible) {
                remaining -= 1;
            }
        }
        Ok(self.len())
    }

    fn insert(&mut self, element: OrderedElement) -> Result<usize, StoreError> {
        if !self.config.element_fits(&element) {
            return Err(StoreError::SegmentOverflow);
        }
        let trs = element.trs;
        let mut base = 0usize;
        for k in 0..self.slots.len() {
            if self.slots[k].meta.min_trs() > trs {
                // Every element of this slot sorts strictly before the new
                // one (summary-only check): the partition point is further
                // down.
                base += self.slots[k].meta.elems;
                continue;
            }
            // The partition point lies inside this slot: fault it (if
            // cold), locate the exact position and rebuild.
            let (local, mut decoded) = {
                let segment = self.segment(k)?;
                (segment.insert_pos(trs), segment.decode_all())
            };
            decoded.insert(local, element);
            let pos = base + local;
            self.rebuild_slot(k, decoded)?;
            return Ok(pos);
        }
        // Every sealed element sorts strictly before the new one: the tail
        // absorbs the insert.
        let local = self.tail.partition_point(|e| e.trs > trs);
        self.tail.insert(local, element);
        let pos = base + local;
        if self.tail.len() > self.config.tail_threshold {
            if let Err(e) = self.seal_tail() {
                // A failed seal leaves the tail intact: take the new element
                // back out so an errored insert never half-applies (the
                // caller skips the generation bump and cursor shifts).
                self.tail.remove(local);
                return Err(e);
            }
        }
        Ok(pos)
    }

    fn stored_bytes(&self) -> usize {
        self.slots
            .iter()
            .map(|s| s.meta.stored_bytes)
            .sum::<usize>()
            + self
                .tail
                .iter()
                .map(|e| e.sealed.stored_bytes() + zerber_r::TRS_BYTES)
                .sum::<usize>()
    }

    fn ciphertext_bytes(&self) -> usize {
        self.slots
            .iter()
            .map(|s| s.meta.ciphertext_bytes)
            .sum::<usize>()
            + self
                .tail
                .iter()
                .map(|e| e.sealed.ciphertext.len())
                .sum::<usize>()
    }

    fn resident_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .slots
                .iter()
                .map(|s| {
                    std::mem::size_of::<Slot>()
                        + s.meta.counts.capacity() * std::mem::size_of::<(GroupId, u32)>()
                        + s.resident
                            .as_ref()
                            .map_or(0, |res| res.segment.resident_bytes())
                })
                .sum::<usize>()
            + self.tail.capacity() * std::mem::size_of::<OrderedElement>()
            + self
                .tail
                .iter()
                .map(|e| e.sealed.ciphertext.capacity())
                .sum::<usize>()
    }

    fn ordering_ok(&self) -> bool {
        self.snapshot()
            .map(|s| s.windows(2).all(|w| w[0].trs >= w[1].trs))
            .unwrap_or(false)
    }
}

/// Allocates a fresh unique directory under the shared temp staging root
/// (`<tmp>/zerber-spill/<pid>-<n>`), removed again when the store drops.
fn unique_temp_dir() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join("zerber-spill").join(format!(
        "{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Like [`unique_temp_dir`] but under `zerber-durable`: the staging root for
/// *ephemeral-durable* stores (full WAL/manifest machinery, temp-dir
/// lifetime) the server's `StoreEngine::Durable` and the equivalence suite
/// use.
fn unique_durable_temp_dir() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join("zerber-durable").join(format!(
        "{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Per-shard write-ahead-log handle.
#[derive(Debug)]
struct WalFile {
    file: Box<dyn FileIo>,
    /// Current log length (the append cursor).
    len: u64,
    /// Sequence number the next append will take (per-shard, monotonic,
    /// survives WAL resets).
    next_seq: u64,
    /// Appends since the last fsync (the `EveryN` policy counter).
    appends_since_sync: u32,
}

/// The durability side of a [`SpillStore`]: per-shard WALs, manifest
/// commits, and the durability meters.
#[derive(Debug)]
struct DurableState {
    backend: Arc<dyn PageIo>,
    dir: PathBuf,
    config: DurableConfig,
    wals: Vec<Mutex<WalFile>>,
    wal_appends: AtomicU64,
    wal_bytes: AtomicU64,
    recovered_pages: AtomicU64,
    truncated_wal: AtomicU64,
    root: Arc<SpillRoot>,
}

impl Drop for DurableState {
    fn drop(&mut self) {
        // Graceful-shutdown durability: under `SyncPolicy::EveryN` (or
        // `Never`) up to N-1 acknowledged appends can sit in the WAL tail
        // without an fsync.  A clean drop flushes them, so only a real
        // crash or power loss can lose acknowledged work.  Best-effort: a
        // crashed fault backend swallows the sync, which *is* the crash
        // the recovery suite models.
        for wal in &self.wals {
            let _ = wal.lock().file.sync();
        }
        // Durable roots persist; only the ephemeral-durable flavour (temp
        // dir lifetime) cleans its files up so the staging root stays free
        // of strays.
        if !self.root.ephemeral {
            return;
        }
        for shard in 0..self.wals.len() {
            let _ = fs::remove_file(self.wal_path(shard));
            let _ = fs::remove_file(self.manifest_path(shard));
            let _ = fs::remove_file(manifest_tmp_path(&self.manifest_path(shard)));
            let _ = fs::remove_file(manifest_prev_path(&self.manifest_path(shard)));
        }
        let _ = fs::remove_file(self.dir.join(STORE_META_NAME));
    }
}

const STORE_META_NAME: &str = "store.meta";

fn manifest_tmp_path(manifest: &Path) -> PathBuf {
    manifest.with_extension("manifest.tmp")
}

fn manifest_prev_path(manifest: &Path) -> PathBuf {
    manifest.with_extension("manifest.prev")
}

impl DurableState {
    fn wal_path(&self, shard: usize) -> PathBuf {
        self.dir.join(format!("shard-{shard:03}.wal"))
    }

    fn manifest_path(&self, shard: usize) -> PathBuf {
        self.dir.join(format!("shard-{shard:03}.manifest"))
    }

    /// Appends one insert to the shard's WAL, applying the configured fsync
    /// policy.  Called under the shard write lock, immediately after the
    /// in-memory apply — log order is apply order.
    fn append(&self, shard: usize, list: u64, element: &OrderedElement) -> Result<(), StoreError> {
        let mut wal = self.wals[shard].lock();
        let frame = encode_wal_frame(wal.next_seq, list, element)?;
        let at = wal.len;
        wal.file.write_at(at, &frame).map_err(io_err)?;
        wal.len += u64_of(frame.len());
        wal.next_seq += 1;
        self.wal_appends.fetch_add(1, Ordering::Relaxed);
        self.wal_bytes
            .fetch_add(u64_of(frame.len()), Ordering::Relaxed);
        match self.config.sync {
            SyncPolicy::Always => wal.file.sync().map_err(io_err)?,
            SyncPolicy::EveryN(n) => {
                wal.appends_since_sync += 1;
                if n > 0 && wal.appends_since_sync >= n {
                    wal.file.sync().map_err(io_err)?;
                    wal.appends_since_sync = 0;
                }
            }
            SyncPolicy::Never => {}
        }
        Ok(())
    }

    /// Sequence number of the last record applied (and logged) on `shard`.
    /// Stable while the shard write lock is held.
    fn applied_seq(&self, shard: usize) -> u64 {
        self.wals[shard].lock().next_seq - 1
    }

    /// Whether the shard's WAL has grown past the checkpoint threshold.
    fn checkpoint_due(&self, shard: usize) -> bool {
        self.config.checkpoint_wal_bytes > 0
            && self.wals[shard].lock().len >= self.config.checkpoint_wal_bytes
    }

    /// Commits `manifest` for `shard`: write tmp, fsync, atomic rename.
    /// Crash before the rename leaves the old manifest authoritative; the
    /// tmp file is swept by the next `open`.
    fn commit_manifest(&self, shard: usize, manifest: &Manifest) -> Result<(), StoreError> {
        let bytes = encode_manifest(manifest)?;
        let path = self.manifest_path(shard);
        let tmp = manifest_tmp_path(&path);
        {
            let mut file = self.backend.open(&tmp, true).map_err(io_err)?;
            file.write_at(0, &bytes).map_err(io_err)?;
            file.sync().map_err(io_err)?;
        }
        // Demote the live manifest to the fallback slot before renaming the
        // fresh one in.  Recovery prefers the current manifest and falls
        // back to `.manifest.prev`, so a crash between the renames — or a
        // lying fsync publishing a half-written current manifest — still
        // leaves a valid checkpoint to recover from (the WAL it covers is
        // only truncated after this commit returns).
        if self.backend.exists(&path) {
            self.backend
                .rename(&path, &manifest_prev_path(&path))
                .map_err(io_err)?;
        }
        self.backend.rename(&tmp, &path).map_err(io_err)
    }

    /// Truncates the shard's WAL after a successful checkpoint.  The
    /// sequence counter keeps running — manifests record the applied
    /// sequence, so a crash between the manifest rename and this truncate
    /// merely leaves stale records the next replay skips.
    fn reset_wal(&self, shard: usize) -> Result<(), StoreError> {
        let mut wal = self.wals[shard].lock();
        wal.file.set_len(0).map_err(io_err)?;
        wal.file.sync().map_err(io_err)?;
        wal.len = 0;
        wal.appends_since_sync = 0;
        Ok(())
    }
}

/// The fourth storage engine: sharded spill-to-disk segment storage.
///
/// Built on the same [`ShardedCore`] concurrency machinery (and therefore
/// the same cursor-session, generation and eviction behaviour) as the other
/// engines; only the physical layout differs.  Cold sealed segments live in
/// per-shard page files and come back through a byte-budgeted LRU page
/// cache; `resident_bytes`, `spilled_bytes`, `page_faults` and
/// `page_evictions` make the memory/disk split observable.
#[derive(Debug)]
pub struct SpillStore {
    core: ShardedCore<SpillList>,
    pagers: Vec<Arc<Pager>>,
    /// WAL/manifest machinery; `None` for ephemeral (cache-only) stores.
    durable: Option<DurableState>,
}

impl SpillStore {
    /// Builds a spill store rooted at `dir` with machine-matched shards and
    /// default tuning.
    pub fn new(index: OrderedIndex, dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        Self::with_config(index, default_shards(), dir, SpillConfig::default())
    }

    /// Builds a spill store with explicit shard count and spill tuning.
    pub fn with_config(
        index: OrderedIndex,
        num_shards: usize,
        dir: impl Into<PathBuf>,
        config: SpillConfig,
    ) -> Result<Self, StoreError> {
        Self::with_configs(index, num_shards, dir, config, SegmentConfig::default())
    }

    /// Builds a spill store with explicit spill *and* segment-layout tuning
    /// (tests use tiny blocks/segments to cross page boundaries cheaply).
    pub fn with_configs(
        index: OrderedIndex,
        num_shards: usize,
        dir: impl Into<PathBuf>,
        config: SpillConfig,
        segment: SegmentConfig,
    ) -> Result<Self, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(io_err)?;
        // Refuse a directory another store is already using: page files are
        // opened with truncate and deleted on drop, so sharing a root would
        // silently clobber the other store's cold data.
        refuse_occupied_root(&dir)?;
        let root = Arc::new(SpillRoot {
            dir: dir.clone(),
            ephemeral: true,
        });
        let num_shards = num_shards.clamp(1, MAX_SHARDS);
        let backend = RealIo::shared();
        let pagers: Vec<Arc<Pager>> = (0..num_shards)
            .map(|shard| {
                Pager::create(
                    Arc::clone(&backend),
                    &dir,
                    shard,
                    &config,
                    Arc::clone(&root),
                    false,
                    0,
                    0,
                )
            })
            .collect::<Result<_, _>>()?;
        let core = ShardedCore::build(index, num_shards, |shard, list| {
            SpillList::build(list, segment, Arc::clone(&pagers[shard]))
        })?;
        Ok(SpillStore {
            core,
            pagers,
            durable: None,
        })
    }

    /// Builds a spill store in a fresh unique directory under the system
    /// temp dir (removed on drop) — the zero-configuration entry point the
    /// server and test bed use.
    pub fn in_temp_dir(
        index: OrderedIndex,
        num_shards: usize,
        config: SpillConfig,
    ) -> Result<Self, StoreError> {
        Self::with_config(index, num_shards, unique_temp_dir(), config)
    }

    /// Like [`SpillStore::in_temp_dir`] with explicit segment tuning.
    pub fn in_temp_dir_with(
        index: OrderedIndex,
        num_shards: usize,
        config: SpillConfig,
        segment: SegmentConfig,
    ) -> Result<Self, StoreError> {
        Self::with_configs(index, num_shards, unique_temp_dir(), config, segment)
    }

    /// Creates a **durable** store rooted at `dir` with default segment
    /// tuning: page files become checkpoint state, tail inserts are
    /// write-ahead logged, and the directory survives drop —
    /// [`SpillStore::open`] brings the store back.
    pub fn create_durable(
        index: OrderedIndex,
        dir: impl Into<PathBuf>,
        num_shards: usize,
        config: SpillConfig,
        durable: DurableConfig,
    ) -> Result<Self, StoreError> {
        Self::create_durable_with(
            index,
            dir,
            num_shards,
            config,
            SegmentConfig::default(),
            durable,
            RealIo::shared(),
            false,
        )
    }

    /// Full-control durable creation: explicit segment tuning, IO backend
    /// (the fault-injection tests substitute [`crate::durable::FaultIo`])
    /// and lifecycle (`ephemeral` roots are temp-dir stores that clean up
    /// on drop but still run the full durability machinery).
    #[allow(clippy::too_many_arguments)]
    pub fn create_durable_with(
        index: OrderedIndex,
        dir: impl Into<PathBuf>,
        num_shards: usize,
        config: SpillConfig,
        segment: SegmentConfig,
        durable: DurableConfig,
        backend: Arc<dyn PageIo>,
        ephemeral: bool,
    ) -> Result<Self, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(io_err)?;
        if backend.exists(&dir.join(STORE_META_NAME)) {
            return Err(StoreError::Io(format!(
                "directory {} already holds a durable store; open it instead of re-creating",
                dir.display(),
            )));
        }
        refuse_occupied_root(&dir)?;
        let root = Arc::new(SpillRoot {
            dir: dir.clone(),
            ephemeral,
        });
        let num_shards = num_shards.clamp(1, MAX_SHARDS);
        // Persist the store's identity first: shard count, segment layout
        // and the merge plan, everything `open` needs before it can touch a
        // shard.  Committed via tmp + fsync + rename like the manifests.
        let plan = index.plan().clone();
        let meta = StoreMeta {
            num_shards: u64_of(num_shards),
            segment,
            scheme: plan.scheme().to_string(),
            r: plan.r(),
            term_lists: (0..plan.num_lists())
                .map(|l| {
                    plan.list_terms(zerber_base::MergedListId(u64_of(l)))
                        .map(|terms| terms.iter().map(|t| t.0).collect())
                })
                .collect::<Result<Vec<Vec<u32>>, _>>()
                .map_err(|_| StoreError::Io("merge plan enumeration failed".to_string()))?,
        };
        let meta_path = dir.join(STORE_META_NAME);
        let meta_tmp = dir.join("store.meta.tmp");
        {
            let mut file = backend.open(&meta_tmp, true).map_err(io_err)?;
            file.write_at(0, &encode_store_meta(&meta))
                .map_err(io_err)?;
            file.sync().map_err(io_err)?;
        }
        backend.rename(&meta_tmp, &meta_path).map_err(io_err)?;
        let pagers: Vec<Arc<Pager>> = (0..num_shards)
            .map(|shard| {
                Pager::create(
                    Arc::clone(&backend),
                    &dir,
                    shard,
                    &config,
                    Arc::clone(&root),
                    true,
                    0,
                    0,
                )
            })
            .collect::<Result<_, _>>()?;
        let core = ShardedCore::build(index, num_shards, |shard, list| {
            SpillList::build(list, segment, Arc::clone(&pagers[shard]))
        })?;
        let wals = (0..num_shards)
            .map(|shard| {
                let path = dir.join(format!("shard-{shard:03}.wal"));
                let file = backend.open(&path, true).map_err(io_err)?;
                Ok(Mutex::new(WalFile {
                    file,
                    len: 0,
                    next_seq: 1,
                    appends_since_sync: 0,
                }))
            })
            .collect::<Result<Vec<_>, StoreError>>()?;
        let store = SpillStore {
            core,
            pagers,
            durable: Some(DurableState {
                backend,
                dir,
                config: durable,
                wals,
                wal_appends: AtomicU64::new(0),
                wal_bytes: AtomicU64::new(0),
                recovered_pages: AtomicU64::new(0),
                truncated_wal: AtomicU64::new(0),
                root,
            }),
        };
        // The initial checkpoint makes the store openable from the first
        // moment: every shard gets a manifest covering the built state.
        store.checkpoint()?;
        Ok(store)
    }

    /// Builds an ephemeral-durable store in a fresh temp directory: full
    /// WAL/checkpoint machinery, temp-dir lifetime (files removed on drop).
    /// The `StoreEngine::Durable` entry point.
    pub fn durable_in_temp_dir(
        index: OrderedIndex,
        num_shards: usize,
        config: SpillConfig,
        durable: DurableConfig,
    ) -> Result<Self, StoreError> {
        Self::create_durable_with(
            index,
            unique_durable_temp_dir(),
            num_shards,
            config,
            SegmentConfig::default(),
            durable,
            RealIo::shared(),
            true,
        )
    }

    /// Like [`SpillStore::durable_in_temp_dir`] with explicit segment
    /// tuning (the equivalence suite uses tiny segments).
    pub fn durable_in_temp_dir_with(
        index: OrderedIndex,
        num_shards: usize,
        config: SpillConfig,
        segment: SegmentConfig,
        durable: DurableConfig,
    ) -> Result<Self, StoreError> {
        Self::create_durable_with(
            index,
            unique_durable_temp_dir(),
            num_shards,
            config,
            segment,
            durable,
            RealIo::shared(),
            true,
        )
    }

    /// Recovers a durable store from `dir` (production IO): reads the
    /// checkpoint manifests, replays the WAL tails, truncates torn logs and
    /// audits the result.  See [`SpillStore::open_with_io`].
    pub fn open(
        dir: impl Into<PathBuf>,
        config: SpillConfig,
        durable: DurableConfig,
    ) -> Result<Self, StoreError> {
        Self::open_with_io(dir, config, durable, RealIo::shared())
    }

    /// Crash recovery.  For every shard: load + CRC-validate the manifest,
    /// adopt exactly the pages it references (each decoded through the
    /// fully validating `Segment::from_bytes`), sweep stray scratch files
    /// (compaction leftovers, superseded page-file generations, manifest
    /// temp files), then replay the WAL tail through the ordinary insert
    /// path — a torn or corrupt tail truncates at the last valid record and
    /// the store keeps serving.  Before the store is returned it must pass
    /// `budget_accounting_is_exact` plus a full ordering/visibility audit;
    /// a store that cannot satisfy its own invariants is refused, never
    /// served.
    pub fn open_with_io(
        dir: impl Into<PathBuf>,
        config: SpillConfig,
        durable: DurableConfig,
        backend: Arc<dyn PageIo>,
    ) -> Result<Self, StoreError> {
        let dir = dir.into();
        let meta_bytes = read_all(&*backend, &dir.join(STORE_META_NAME))?;
        let meta = decode_store_meta(&meta_bytes)?;
        let num_shards = usize::try_from(meta.num_shards)
            .ok()
            .filter(|&n| (1..=MAX_SHARDS).contains(&n))
            .ok_or_else(|| {
                StoreError::CorruptSegment("implausible shard count in store metadata".to_string())
            })?;
        let plan = zerber_base::MergePlan::from_term_lists(
            meta.term_lists
                .iter()
                .map(|terms| terms.iter().map(|&t| TermId(t)).collect())
                .collect(),
            &meta.scheme,
            meta.r,
        );
        let root = Arc::new(SpillRoot {
            dir: dir.clone(),
            ephemeral: false,
        });
        let mut manifests = Vec::with_capacity(num_shards);
        let mut pagers = Vec::with_capacity(num_shards);
        for shard in 0..num_shards {
            let manifest_path = dir.join(format!("shard-{shard:03}.manifest"));
            // Prefer the current manifest; if it is missing or corrupt (a
            // crash between the commit renames, or a lying fsync that
            // published a hollow file) fall back to the previous one.  The
            // WAL covering the previous checkpoint is only truncated after
            // the new manifest commits, so the fallback plus replay still
            // reconstructs a consistent prefix of history.
            let manifest = match read_all(&*backend, &manifest_path)
                .and_then(|bytes| decode_manifest(&bytes))
            {
                Ok(manifest) => manifest,
                Err(primary) => {
                    let prev_path = manifest_prev_path(&manifest_path);
                    match read_all(&*backend, &prev_path).and_then(|bytes| decode_manifest(&bytes))
                    {
                        Ok(manifest) => {
                            // Promote the fallback back into the current
                            // slot so a later checkpoint cannot demote the
                            // corrupt current manifest over it.
                            backend.rename(&prev_path, &manifest_path).map_err(io_err)?;
                            manifest
                        }
                        Err(_) => return Err(primary),
                    }
                }
            };
            // The append cursor resumes exactly past the manifest extent;
            // anything beyond it in the file is a torn page write.
            let append = manifest
                .lists
                .iter()
                .flat_map(|l| l.pages.iter())
                .map(|&(offset, len, _crc)| offset + u64::from(len))
                .max()
                .unwrap_or(0);
            pagers.push(Pager::create(
                Arc::clone(&backend),
                &dir,
                shard,
                &config,
                Arc::clone(&root),
                true,
                manifest.generation,
                append,
            )?);
            manifests.push(manifest);
        }
        sweep_stray_files(&*backend, &dir, num_shards, &manifests);
        let mut recovered_pages = 0u64;
        let mut tables = Vec::with_capacity(num_shards);
        for (shard, manifest) in manifests.iter().enumerate() {
            let mut lists = Vec::with_capacity(manifest.lists.len());
            for manifest_list in &manifest.lists {
                let (list, recovered) = SpillList::from_recovered(
                    manifest_list,
                    meta.segment,
                    Arc::clone(&pagers[shard]),
                )?;
                recovered_pages += recovered;
                lists.push(list);
            }
            tables.push(lists);
        }
        let core = ShardedCore::assemble(plan, tables)?;
        // WAL tails: scan, truncate at the last valid record, remember what
        // must replay.
        let mut wals = Vec::with_capacity(num_shards);
        let mut replays = Vec::with_capacity(num_shards);
        let mut truncated = 0u64;
        for (shard, manifest) in manifests.iter().enumerate() {
            let path = dir.join(format!("shard-{shard:03}.wal"));
            let image = if backend.exists(&path) {
                read_all(&*backend, &path)?
            } else {
                Vec::new()
            };
            let scan = scan_wal(&image);
            let mut file = backend.open(&path, false).map_err(io_err)?;
            if scan.torn {
                // Keep-serving truncation: everything after the last valid
                // frame is discarded, on disk and in memory.
                file.set_len(scan.valid_len).map_err(io_err)?;
                file.sync().map_err(io_err)?;
                truncated += 1;
            }
            let last_seq = scan.records.last().map_or(0, |r| r.seq);
            wals.push(Mutex::new(WalFile {
                file,
                len: scan.valid_len,
                next_seq: last_seq.max(manifest.applied_seq) + 1,
                appends_since_sync: 0,
            }));
            // A crash between a manifest commit and its WAL reset leaves
            // records the checkpoint already folded in: skip them.
            replays.push(
                scan.records
                    .into_iter()
                    .filter(|r| r.seq > manifest.applied_seq)
                    .collect::<Vec<_>>(),
            );
        }
        let store = SpillStore {
            core,
            pagers,
            durable: Some(DurableState {
                backend,
                dir,
                config: durable,
                wals,
                wal_appends: AtomicU64::new(0),
                wal_bytes: AtomicU64::new(0),
                recovered_pages: AtomicU64::new(recovered_pages),
                truncated_wal: AtomicU64::new(truncated),
                root,
            }),
        };
        for (shard, records) in replays.into_iter().enumerate() {
            for record in records {
                store.replay_insert(shard, record.list, record.element)?;
            }
        }
        store.recovery_audit()?;
        Ok(store)
    }

    /// Applies one WAL record through the ordinary list insert path —
    /// without re-logging and without maintenance (recovery wants the
    /// checkpoint state plus exactly the logged tail, nothing else).
    fn replay_insert(
        &self,
        shard: usize,
        list: u64,
        element: OrderedElement,
    ) -> Result<(), StoreError> {
        let list = zerber_base::MergedListId(list);
        let (record_shard, slot) = self.core.locate(list)?;
        if record_shard != shard {
            return Err(StoreError::CorruptSegment(format!(
                "WAL record for list {} landed in shard {shard}, expected {record_shard}",
                list.0
            )));
        }
        self.core
            .with_shard_write(shard, |table| table.insert(slot, element))
            .map(|_| ())
    }

    /// Post-recovery acceptance audit: the byte-exact budget invariant, the
    /// descending-TRS ordering of every list, and a full visibility audit
    /// (per-group summary counts must agree with a brute-force recount of
    /// the decoded elements).  A recovered state is *checked against the
    /// store's invariants, not trusted*.
    fn recovery_audit(&self) -> Result<(), StoreError> {
        if !self.budget_accounting_is_exact() {
            return Err(StoreError::RecoveryFailed(
                "budget accounting inconsistent after recovery".to_string(),
            ));
        }
        let plan = self.core.plan().clone();
        for l in 0..plan.num_lists() {
            let list = zerber_base::MergedListId(u64_of(l));
            let elements = self.core.snapshot_list(list)?;
            if elements.windows(2).any(|w| w[0].trs < w[1].trs) {
                return Err(StoreError::RecoveryFailed(format!(
                    "list {l} violates descending-TRS order after recovery"
                )));
            }
            if self.core.list_len(list)? != elements.len() {
                return Err(StoreError::RecoveryFailed(format!(
                    "list {l} length disagrees with its snapshot after recovery"
                )));
            }
            let mut groups: Vec<GroupId> = elements.iter().map(|e| e.group).collect();
            groups.sort_unstable_by_key(|g| g.0);
            groups.dedup();
            for group in groups {
                let expect = elements.iter().filter(|e| e.group == group).count();
                let got = self.core.visible_len(list, Some(&[group]))?;
                if got != expect {
                    return Err(StoreError::RecoveryFailed(format!(
                        "list {l} visibility for group {} is {got}, recount says {expect}",
                        group.0
                    )));
                }
            }
        }
        Ok(())
    }

    /// Checkpoints every shard: page-file fsync, manifest commit, WAL
    /// reset.  No-op on an ephemeral store.
    pub fn checkpoint(&self) -> Result<(), StoreError> {
        for shard in 0..self.pagers.len() {
            self.checkpoint_shard(shard)?;
        }
        Ok(())
    }

    /// Checkpoints one shard under its write lock: materializes pages for
    /// resident slots sealed since the last checkpoint, fsyncs the page
    /// file, commits a manifest enumerating every sealed page plus the
    /// in-memory tails, then truncates the WAL.  Crash-safe at every step:
    /// until the manifest rename lands, the old checkpoint plus the old WAL
    /// stay authoritative.  `Ok(false)` on an ephemeral store.
    pub fn checkpoint_shard(&self, shard: usize) -> Result<bool, StoreError> {
        let Some(durable) = &self.durable else {
            return Ok(false);
        };
        let pager = &self.pagers[shard];
        self.core.with_shard_write(shard, |table| {
            let mut lists = Vec::new();
            for list in table.lists_mut() {
                lists.push(list.manifest_list()?);
            }
            let manifest = Manifest {
                generation: pager.generation.load(Ordering::Relaxed),
                applied_seq: durable.applied_seq(shard),
                lists,
            };
            // analyze::allow(lock): checkpoint commit is the one sanctioned under-lock IO — the manifest must match the locked shard state exactly
            pager.sync_file()?;
            // analyze::allow(lock): the manifest rename is the checkpoint's atomic commit point; it must happen before inserts resume
            durable.commit_manifest(shard, &manifest)?;
            // analyze::allow(lock): the WAL reset must not race an insert appending under the same shard lock
            durable.reset_wal(shard)?;
            debug_assert!(charges_consistent(table, pager));
            Ok(true)
        })
    }

    /// Whether this store persists across drops (durable, non-ephemeral
    /// root).
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// Flushes and fsyncs every shard's WAL tail — the graceful-shutdown
    /// sync `Drop` also performs, exposed for explicit shutdown paths that
    /// want the error instead of best-effort.  No-op on ephemeral stores.
    pub fn flush_wals(&self) -> Result<(), StoreError> {
        if let Some(durable) = &self.durable {
            for wal in &durable.wals {
                wal.lock().file.sync().map_err(io_err)?;
            }
        }
        Ok(())
    }

    /// The serialized `store.meta` identity block.  Replication snapshots
    /// ship it first: a replica can open nothing without it.
    pub(crate) fn replication_meta(&self) -> Result<Vec<u8>, StoreError> {
        let durable = self.replication_durable()?;
        read_all(&*durable.backend, &durable.dir.join(STORE_META_NAME))
    }

    /// One shard's snapshot file set — `(file name, bytes)` for the current
    /// manifest, the page file of the generation it references, and the live
    /// WAL tail — read under the shard read lock so no checkpoint,
    /// compaction or insert can shear the set.  A replica that writes these
    /// files into an empty root and runs [`SpillStore::open`] lands on
    /// exactly this shard's state, fully re-validated (manifest CRC,
    /// per-page CRC, WAL frame CRCs).
    pub(crate) fn shard_snapshot_files(
        &self,
        shard: usize,
    ) -> Result<Vec<(String, Vec<u8>)>, StoreError> {
        let durable = self.replication_durable()?;
        self.core.with_shard_read(shard, |_table| {
            let manifest_name = format!("shard-{shard:03}.manifest");
            let manifest_bytes = read_all(&*durable.backend, &durable.dir.join(&manifest_name))?;
            let manifest = decode_manifest(&manifest_bytes)?;
            let pages_name = format!("shard-{shard:03}.g{}.pages", manifest.generation);
            let pages_path = durable.dir.join(&pages_name);
            let pages_bytes = if durable.backend.exists(&pages_path) {
                read_all(&*durable.backend, &pages_path)?
            } else {
                Vec::new()
            };
            let wal_name = format!("shard-{shard:03}.wal");
            let wal_bytes = {
                let mut wal = durable.wals[shard].lock();
                let len = usize::try_from(wal.len)
                    .map_err(|_| StoreError::Io("WAL too large to snapshot".to_string()))?;
                let mut buf = vec![0u8; len];
                wal.file.read_at(0, &mut buf).map_err(io_err)?;
                buf
            };
            Ok(vec![
                (manifest_name, manifest_bytes),
                (pages_name, pages_bytes),
                (wal_name, wal_bytes),
            ])
        })
    }

    /// The live WAL tail of one shard past `from`, as wire-ready frames.
    /// Returns [`WalTail::Gap`] when a checkpoint already reset the records
    /// the subscriber needs — the caller must re-snapshot rather than
    /// silently diverge.
    pub(crate) fn wal_frames_after(
        &self,
        shard: usize,
        from: u64,
        max: usize,
    ) -> Result<WalTail, StoreError> {
        let durable = self.replication_durable()?;
        let image = {
            let mut wal = durable.wals[shard].lock();
            let len = usize::try_from(wal.len)
                .map_err(|_| StoreError::Io("WAL too large to stream".to_string()))?;
            let mut buf = vec![0u8; len];
            wal.file.read_at(0, &mut buf).map_err(io_err)?;
            buf
        };
        let head = durable.applied_seq(shard);
        // The image is read under the append mutex against the
        // acknowledged length, so it scans clean — every frame in it is
        // complete and CRC-valid.
        let scan = scan_wal(&image);
        match scan.records.first() {
            Some(first) if from + 1 < first.seq => return Ok(WalTail::Gap { head }),
            None if from < head => return Ok(WalTail::Gap { head }),
            _ => {}
        }
        let mut frames = Vec::new();
        for record in scan.records.into_iter().filter(|r| r.seq > from) {
            if frames.len() >= max {
                break;
            }
            frames.push(encode_wal_frame(record.seq, record.list, &record.element)?);
        }
        Ok(WalTail::Frames { frames, head })
    }

    /// Per-shard applied (last logged) sequence numbers; empty for
    /// non-durable stores.
    pub(crate) fn wal_applied_seqs(&self) -> Vec<u64> {
        match &self.durable {
            Some(d) => (0..self.pagers.len()).map(|s| d.applied_seq(s)).collect(),
            None => Vec::new(),
        }
    }

    fn replication_durable(&self) -> Result<&DurableState, StoreError> {
        self.durable
            .as_ref()
            .ok_or_else(|| StoreError::Io("replication requires a durable store".to_string()))
    }

    /// The per-shard WAL paths (tests and tooling).
    pub fn wal_paths(&self) -> Vec<PathBuf> {
        match &self.durable {
            Some(d) => (0..self.pagers.len()).map(|s| d.wal_path(s)).collect(),
            None => Vec::new(),
        }
    }

    /// The per-shard page files backing the spilled segments.
    pub fn page_file_paths(&self) -> Vec<PathBuf> {
        self.pagers.iter().map(|p| p.current_path()).collect()
    }

    /// Bytes currently held by the LRU page caches (part of
    /// [`ListStore::resident_bytes`]).
    pub fn page_cache_bytes(&self) -> usize {
        self.pagers.iter().map(|p| p.cache_bytes()).sum()
    }

    /// Bytes of sealed segments currently charged against the per-shard
    /// resident budgets (the budget-side view of what stayed hot).
    pub fn resident_charge_bytes(&self) -> usize {
        self.pagers
            .iter()
            .map(|p| p.resident_charge.load(Ordering::Relaxed))
            .sum()
    }

    /// Budget-accounting invariant: on every shard, the pager's
    /// `resident_charge` equals the sum of the resident slots' charges, and
    /// each charge equals that slot's exact resident bytes.  Debug builds
    /// assert this after every maintenance pass; tests call it directly.
    pub fn budget_accounting_is_exact(&self) -> bool {
        (0..self.pagers.len()).all(|shard| {
            self.core.with_shard_read(shard, |table| {
                charges_consistent(table, &self.pagers[shard])
            })
        })
    }

    /// Compacts one shard's page file: snapshots the live pages under the
    /// shard read lock, copies them into a fresh `.pages.compact` file and
    /// re-validates every copy off the lock, then takes the shard write
    /// lock only for the finish — copy the few straggler pages written
    /// since the snapshot, atomically rename the fresh file in, remap the
    /// slots and the page cache.  `Ok(false)` when another compaction of
    /// the shard is already running; on any failure the fresh file is
    /// removed and the old file keeps serving untouched.
    pub fn compact_shard(&self, shard: usize) -> Result<bool, StoreError> {
        let pager = &self.pagers[shard];
        if pager.compacting.swap(true, Ordering::Acquire) {
            return Ok(false);
        }
        let result = self
            .start_compaction(shard)
            .and_then(|rw| self.finish_compaction(shard, rw));
        pager.compacting.store(false, Ordering::Release);
        result.map(|()| true)
    }

    /// Phase 1 of a compaction: snapshot + bulk copy, entirely off the
    /// shard write lock (serving continues against the old file).
    fn start_compaction(&self, shard: usize) -> Result<Rewrite, StoreError> {
        let pager = &self.pagers[shard];
        let mut live = Vec::new();
        self.core.with_shard_read(shard, |table| {
            for list in table.lists() {
                list.live_pages(&mut live);
            }
        });
        let mut rw = pager.begin_rewrite()?;
        for page in live {
            pager.copy_page(&mut rw, page)?;
        }
        Ok(rw)
    }

    /// Phase 2 of a compaction: verify the rewrite (still off-lock — a
    /// bit-flipped or torn fresh file rejects the swap here), then swap it
    /// in under the shard write lock.
    fn finish_compaction(&self, shard: usize, mut rw: Rewrite) -> Result<(), StoreError> {
        let pager = &self.pagers[shard];
        pager.verify_rewrite(&mut rw)?;
        self.core.with_shard_write(shard, |table| {
            // Stragglers: pages written between the snapshot and this lock
            // (rebuilds, demotions).  Copied and validated here, so the map
            // covers every live page before anything is remapped.
            let mut pages = Vec::new();
            for list in table.lists() {
                list.live_pages(&mut pages);
            }
            for page in pages {
                if !rw.map.contains_key(&page.offset) {
                    pager.copy_page_verified(&mut rw, page)?;
                }
            }
            let old_path = pager.current_path();
            let map = pager.commit_rewrite(rw)?;
            for list in table.lists_mut() {
                list.remap_pages(&map)?;
            }
            if let Some(durable) = &self.durable {
                // The manifest rename is the durable commit point of the
                // swap: until it lands, the old generation (still on disk —
                // the rename targeted a new name) plus the old manifest
                // stay authoritative, so a crash at any step recovers to
                // entirely-old or entirely-new, never a mix.  The rewrite
                // folded in every applied insert, so this doubles as a full
                // checkpoint (WAL resets too).
                let mut lists = Vec::new();
                for list in table.lists_mut() {
                    lists.push(list.manifest_list()?);
                }
                let manifest = Manifest {
                    generation: pager.generation.load(Ordering::Relaxed),
                    applied_seq: durable.applied_seq(shard),
                    lists,
                };
                // analyze::allow(lock): the swap's durable commit must cover exactly the locked state (pages + stragglers)
                pager.sync_file()?;
                // analyze::allow(lock): the rename is the swap's atomic commit point — crash before it recovers entirely-old
                durable.commit_manifest(shard, &manifest)?;
                // analyze::allow(lock): the WAL reset must not race an insert appending under the same shard lock
                durable.reset_wal(shard)?;
                // Only now is the old generation unreferenced; a failure to
                // remove it leaves a stray the next `open` sweeps.
                let _ = durable.backend.remove(&old_path);
            }
            debug_assert!(charges_consistent(table, pager));
            Ok(())
        })
    }

    /// One access-driven retier pass over a shard: ranks every sealed slot
    /// by access recency, re-grants the shard's resident budget hottest
    /// first (a never-read slot keeps residency only while spare budget
    /// lasts, and is never *promoted*), then demotes the losers and
    /// promotes the winners.  Runs under the shard write lock with the
    /// number of tier moves capped per pass, so the lock hold stays
    /// bounded; the next pass continues where this one stopped.  Returns
    /// `(promoted, demoted)`.
    pub fn retier_shard(&self, shard: usize) -> Result<(usize, usize), StoreError> {
        /// Tier moves (demotions + promotions) one pass may perform.
        const MAX_TIER_MOVES: usize = 32;
        let pager = &self.pagers[shard];
        self.core.with_shard_write(shard, |table| {
            let mut candidates = Vec::new();
            for (list, l) in table.lists().iter().enumerate() {
                l.tier_candidates(list, &mut candidates);
            }
            // Heat decay: a stamp further than the decay window behind the
            // current access clock is treated as cold — the access clock is
            // otherwise a high-water mark, and a burst long ago would hold
            // residency forever against currently-warm slots.
            let now = pager.access_clock.load(Ordering::Relaxed);
            let window = pager.heat_decay_window;
            for c in &mut candidates {
                if window > 0 && c.heat > 0 && now.saturating_sub(c.heat) >= window {
                    c.heat = 0;
                    c.decayed = true;
                }
            }
            // Hottest first; equal heat prefers the current resident (no
            // churn between equally-warm slots), then slot order.
            candidates.sort_by(|a, b| {
                b.heat
                    .cmp(&a.heat)
                    .then_with(|| b.resident.cmp(&a.resident))
                    .then_with(|| (a.list, a.slot).cmp(&(b.list, b.slot)))
            });
            let mut spare = pager.resident_budget;
            let desired: Vec<bool> = candidates
                .iter()
                .map(|c| {
                    // A decayed slot relinquishes residency outright: unlike
                    // a never-read resident (kept while spare budget lasts),
                    // its stale burst no longer buys anything — the freed
                    // budget goes to currently-warm slots or stays spare.
                    let granted = (c.heat > 0 || (c.resident && !c.decayed)) && c.cost <= spare;
                    if granted {
                        spare -= c.cost;
                    }
                    granted
                })
                .collect();
            let mut moves = 0usize;
            let mut demoted = 0usize;
            let mut promoted = 0usize;
            // Demotions first: they free the budget the promotions charge.
            for (c, &keep) in candidates.iter().zip(&desired) {
                if c.resident && !keep && moves < MAX_TIER_MOVES {
                    table.lists_mut()[c.list].demote_slot(c.slot)?;
                    demoted += 1;
                    moves += 1;
                }
            }
            for (c, &keep) in candidates.iter().zip(&desired) {
                if !c.resident && keep && moves < MAX_TIER_MOVES {
                    if table.lists_mut()[c.list].promote_slot(c.slot)? {
                        promoted += 1;
                    }
                    moves += 1;
                }
            }
            debug_assert!(charges_consistent(table, pager));
            Ok((promoted, demoted))
        })
    }

    /// Post-serving maintenance hook, called off the serving lock after
    /// every operation that touched `shard`: runs a due retier pass and/or
    /// page-file compaction.  Failures are swallowed — the old state keeps
    /// serving and the pass retries once its trigger re-arms.
    fn tier_maintenance(&self, shard: usize) {
        let pager = &self.pagers[shard];
        if pager.take_retier_due() {
            let _ = self.retier_shard(shard);
        }
        if pager.compaction_due() {
            let _ = self.compact_shard(shard);
        }
        if let Some(durable) = &self.durable {
            if durable.checkpoint_due(shard) {
                let _ = self.checkpoint_shard(shard);
            }
        }
    }
}

/// What one [`SpillStore::wal_frames_after`] poll of a shard's WAL tail
/// yields: the frames past the subscriber's position, or the fact that a
/// checkpoint already discarded them.
#[derive(Debug)]
pub(crate) enum WalTail {
    /// Frames with `seq > from`, re-encoded in the WAL wire format, plus
    /// the shard's current head (last applied) sequence.
    Frames { frames: Vec<Vec<u8>>, head: u64 },
    /// The records past `from` were folded into a checkpoint and reset out
    /// of the WAL — the subscriber must re-snapshot.
    Gap { head: u64 },
}

/// Refuses to root a new store in a directory already holding page files.
fn refuse_occupied_root(dir: &Path) -> Result<(), StoreError> {
    for entry in fs::read_dir(dir).map_err(io_err)? {
        let name = entry.map_err(io_err)?.file_name();
        let name = name.to_string_lossy();
        if name.ends_with(".pages") || name.ends_with(".pages.compact") {
            return Err(StoreError::Io(format!(
                "spill directory {} already holds page files ({name}); \
                 every store needs its own root",
                dir.display(),
            )));
        }
    }
    Ok(())
}

/// Reads a whole file through the IO backend.
fn read_all(backend: &dyn PageIo, path: &Path) -> Result<Vec<u8>, StoreError> {
    let mut file = backend.open(path, false).map_err(io_err)?;
    let len = usize::try_from(file.len().map_err(io_err)?)
        .map_err(|_| StoreError::Io(format!("{} is too large to read", path.display())))?;
    let mut buf = vec![0u8; len];
    file.read_at(0, &mut buf).map_err(io_err)?;
    Ok(buf)
}

/// Open-time stray-scratch sweep: removes every file in a durable root that
/// the recovered state does not reference — compaction scratch
/// (`*.pages.compact`), superseded page-file generations, manifest/meta
/// temp files, and anything else an unclean shutdown left behind.  Failures
/// are ignored (a stray file is a hygiene matter, not a correctness one).
fn sweep_stray_files(backend: &dyn PageIo, dir: &Path, num_shards: usize, manifests: &[Manifest]) {
    let mut keep: Vec<PathBuf> = vec![dir.join(STORE_META_NAME)];
    for (shard, manifest) in manifests.iter().enumerate().take(num_shards) {
        let manifest_path = dir.join(format!("shard-{shard:03}.manifest"));
        keep.push(dir.join(format!("shard-{shard:03}.wal")));
        keep.push(manifest_prev_path(&manifest_path));
        keep.push(manifest_path);
        keep.push(dir.join(format!("shard-{shard:03}.g{}.pages", manifest.generation)));
    }
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_file() && !keep.contains(&path) {
            let _ = backend.remove(&path);
        }
    }
}

/// The shard-local budget invariant (see
/// [`SpillStore::budget_accounting_is_exact`]), checkable while already
/// holding the shard lock.
fn charges_consistent(table: &ListTable<SpillList>, pager: &Pager) -> bool {
    table.lists().iter().all(SpillList::charges_exact)
        && table
            .lists()
            .iter()
            .map(SpillList::charged_bytes)
            .sum::<usize>()
            == pager.resident_charge.load(Ordering::Relaxed)
}

impl ListStore for SpillStore {
    fn plan(&self) -> &zerber_base::MergePlan {
        self.core.plan()
    }

    fn num_shards(&self) -> usize {
        self.core.num_shards()
    }

    fn shard_of(&self, list: MergedListId) -> usize {
        self.core.shard_of(list)
    }

    fn num_elements(&self) -> usize {
        self.core.num_elements()
    }

    fn stored_bytes(&self) -> usize {
        self.core.stored_bytes()
    }

    fn ciphertext_bytes(&self) -> usize {
        self.core.ciphertext_bytes()
    }

    fn resident_bytes(&self) -> usize {
        // The shared page caches are shard state, not per-list state: add
        // them on top of the per-list summaries/tails/resident segments.
        self.core.resident_bytes() + self.page_cache_bytes()
    }

    fn spilled_bytes(&self) -> usize {
        self.pagers
            .iter()
            .map(|p| p.spilled.load(Ordering::Relaxed))
            .sum()
    }

    fn page_faults(&self) -> u64 {
        self.pagers
            .iter()
            .map(|p| p.faults.load(Ordering::Relaxed))
            .sum()
    }

    fn page_evictions(&self) -> u64 {
        self.pagers
            .iter()
            .map(|p| p.evictions.load(Ordering::Relaxed))
            .sum()
    }

    fn page_cache_hits(&self) -> u64 {
        self.pagers
            .iter()
            .map(|p| p.hits.load(Ordering::Relaxed))
            .sum()
    }

    fn page_file_bytes(&self) -> usize {
        self.pagers
            .iter()
            .map(|p| usize::try_from(p.file_len.load(Ordering::Relaxed)).unwrap_or(usize::MAX))
            .sum()
    }

    fn dead_page_bytes(&self) -> usize {
        self.pagers.iter().map(|p| p.dead_bytes()).sum()
    }

    fn compactions(&self) -> u64 {
        self.pagers
            .iter()
            .map(|p| p.compactions.load(Ordering::Relaxed))
            .sum()
    }

    fn promotions(&self) -> u64 {
        self.pagers
            .iter()
            .map(|p| p.promotions.load(Ordering::Relaxed))
            .sum()
    }

    fn demotions(&self) -> u64 {
        self.pagers
            .iter()
            .map(|p| p.demotions.load(Ordering::Relaxed))
            .sum()
    }

    fn list_len(&self, list: MergedListId) -> Result<usize, StoreError> {
        self.core.list_len(list)
    }

    fn visible_len(
        &self,
        list: MergedListId,
        accessible: Option<&[GroupId]>,
    ) -> Result<usize, StoreError> {
        self.core.visible_len(list, accessible)
    }

    fn snapshot_list(&self, list: MergedListId) -> Result<Vec<OrderedElement>, StoreError> {
        self.core.snapshot_list(list)
    }

    fn fetch_ranged(
        &self,
        fetch: &RangedFetch,
        accessible: Option<&[GroupId]>,
    ) -> Result<RangedBatch, StoreError> {
        let out = self.core.fetch_ranged(fetch, accessible);
        if out.is_ok() {
            self.tier_maintenance(self.core.shard_of(fetch.list));
        }
        out
    }

    fn plan_shard_batch(&self, jobs: &[StoreJob], max_bucket_jobs: usize) -> ShardJobPlan {
        self.core.plan_shard_batch(jobs, max_bucket_jobs)
    }

    // `execute_shard_batch` deliberately stays on the trait default so
    // batches run through this bucket method and its maintenance hook.
    fn execute_shard_bucket(
        &self,
        jobs: &[StoreJob],
        bucket: &ShardJobBucket,
    ) -> ShardBucketOutput {
        let out = self.core.execute_shard_bucket(jobs, bucket);
        self.tier_maintenance(bucket.shard);
        out
    }

    fn lock_acquisitions(&self) -> u64 {
        self.core.lock_acquisitions()
    }

    fn open_cursor(
        &self,
        list: MergedListId,
        owner: u64,
        batch: &RangedBatch,
        delivered: usize,
        accessible: Option<&[GroupId]>,
    ) -> Result<CursorId, StoreError> {
        self.core
            .open_cursor(list, owner, batch, delivered, accessible)
    }

    fn cursor_fetch(
        &self,
        cursor: CursorId,
        owner: u64,
        count: usize,
        accessible: Option<&[GroupId]>,
    ) -> Result<RangedBatch, StoreError> {
        let out = self.core.cursor_fetch(cursor, owner, count, accessible);
        if out.is_ok() {
            if let Ok(shard) = self.core.cursor_shard(cursor) {
                self.tier_maintenance(shard);
            }
        }
        out
    }

    fn close_cursor(&self, cursor: CursorId, owner: u64) {
        self.core.close_cursor(cursor, owner)
    }

    fn open_cursors(&self) -> usize {
        self.core.open_cursors()
    }

    fn session_stats(&self) -> SessionStats {
        self.core.session_stats()
    }

    fn visibility_scan_cost(&self) -> u64 {
        self.core.visibility_scan_cost()
    }

    fn insert(&self, list: MergedListId, element: OrderedElement) -> Result<usize, StoreError> {
        let out = match &self.durable {
            None => self.core.insert(list, element),
            // Apply, then log, under the same shard write lock: log order
            // is apply order, and an insert is only acknowledged once its
            // WAL record is written (and fsynced per the policy).
            Some(durable) => self.core.insert_logged(list, element, |shard, element| {
                durable.append(shard, list.0, element)
            }),
        };
        if out.is_ok() {
            self.tier_maintenance(self.core.shard_of(list));
        }
        out
    }

    fn verify_ordering(&self) -> bool {
        self.core.verify_ordering()
    }

    fn wal_appends(&self) -> u64 {
        self.durable
            .as_ref()
            .map_or(0, |d| d.wal_appends.load(Ordering::Relaxed))
    }

    fn wal_bytes(&self) -> u64 {
        self.durable
            .as_ref()
            .map_or(0, |d| d.wal_bytes.load(Ordering::Relaxed))
    }

    fn recovered_pages(&self) -> u64 {
        self.durable
            .as_ref()
            .map_or(0, |d| d.recovered_pages.load(Ordering::Relaxed))
    }

    fn truncated_wal_records(&self) -> u64 {
        self.durable
            .as_ref()
            .map_or(0, |d| d.truncated_wal.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::VecList;
    use zerber_base::{EncryptedElement, MergePlan};
    use zerber_corpus::TermId;

    fn element(trs: f64, group: u32, ct: &[u8]) -> OrderedElement {
        OrderedElement {
            trs,
            group: GroupId(group),
            sealed: EncryptedElement {
                group: GroupId(group),
                ciphertext: ct.to_vec(),
            },
        }
    }

    fn sorted_elements(n: usize, seed: u8) -> Vec<OrderedElement> {
        (0..n)
            .map(|i| {
                element(
                    1.0 - i as f64 / n as f64,
                    (i % 3) as u32,
                    &[seed.wrapping_add(i as u8); 8],
                )
            })
            .collect()
    }

    fn index(lists: Vec<Vec<OrderedElement>>) -> OrderedIndex {
        let plan = MergePlan::from_term_lists(
            (0..lists.len()).map(|i| vec![TermId(i as u32)]).collect(),
            "spill-fixture",
            2.0,
        );
        OrderedIndex::from_parts(lists, plan)
    }

    fn small_segment_config() -> SegmentConfig {
        SegmentConfig {
            block_len: 4,
            tail_threshold: 3,
            max_segment_elems: 16,
            max_segments: 3,
            max_payload_bytes: u32::MAX as usize,
        }
    }

    fn store_with(
        lists: Vec<Vec<OrderedElement>>,
        shards: usize,
        config: SpillConfig,
    ) -> SpillStore {
        SpillStore::in_temp_dir_with(index(lists), shards, config, small_segment_config()).unwrap()
    }

    #[test]
    fn spill_engine_matches_the_vec_layout_through_inserts_and_cursors() {
        let elements = sorted_elements(30, 0);
        let store = store_with(
            vec![elements.clone()],
            1,
            SpillConfig {
                resident_budget_bytes: 0,
                page_cache_pages: 2,
                ..SpillConfig::default().without_tiering()
            },
        );
        let mut reference = VecList::from_elements(elements);
        let list = MergedListId(0);
        assert_eq!(
            store.snapshot_list(list).unwrap(),
            reference.snapshot().unwrap()
        );
        // Interleave inserts across the whole TRS range with fetches.
        for (i, trs) in [0.95, 0.5, 0.005, 0.5, 0.31, 0.0].into_iter().enumerate() {
            let e = element(trs, (i % 3) as u32, &[0xAB; 8]);
            assert_eq!(
                store.insert(list, e.clone()).unwrap(),
                reference.insert(e).unwrap(),
                "probe {trs}"
            );
            let groups = [GroupId(0), GroupId(2)];
            for offset in [0usize, 5, 17] {
                let fetch = RangedFetch {
                    list,
                    offset,
                    count: 4,
                };
                let got = store.fetch_ranged(&fetch, Some(&groups)).unwrap();
                let (expected, _) = reference.scan(0, offset, 4, Some(&groups)).unwrap();
                assert_eq!(got.elements, expected);
            }
        }
        assert_eq!(
            store.snapshot_list(list).unwrap(),
            reference.snapshot().unwrap()
        );
        assert!(store.verify_ordering());
        // A cursor walk over the spilled list equals the reference order.
        let head = store
            .fetch_ranged(
                &RangedFetch {
                    list,
                    offset: 0,
                    count: 3,
                },
                None,
            )
            .unwrap();
        let cursor = store.open_cursor(list, 5, &head, 3, None).unwrap();
        let mut walked = head.elements.clone();
        loop {
            let batch = store.cursor_fetch(cursor, 5, 3, None).unwrap();
            walked.extend(batch.elements.iter().cloned());
            if batch.exhausted {
                break;
            }
        }
        assert_eq!(walked, reference.snapshot().unwrap());
    }

    #[test]
    fn budgeted_heads_stay_resident_and_cold_depths_spill() {
        // Two segments per list (32 elems / max 16): with a budget covering
        // roughly one segment per list, the hot head stays resident and the
        // cold depth spills.
        let store = store_with(
            vec![sorted_elements(32, 0)],
            1,
            SpillConfig {
                resident_budget_bytes: 600,
                page_cache_pages: 4,
                ..SpillConfig::default().without_tiering()
            },
        );
        assert!(store.spilled_bytes() > 0, "cold segments must spill");
        let faults_before = store.page_faults();
        // A top-of-list read is served from the resident head: no faults.
        store
            .fetch_ranged(
                &RangedFetch {
                    list: MergedListId(0),
                    offset: 0,
                    count: 4,
                },
                None,
            )
            .unwrap();
        assert_eq!(store.page_faults(), faults_before);
        // A deep read faults the cold page in.
        store
            .fetch_ranged(
                &RangedFetch {
                    list: MergedListId(0),
                    offset: 28,
                    count: 4,
                },
                None,
            )
            .unwrap();
        assert!(store.page_faults() > faults_before);

        // And with an unbounded budget nothing spills at all.
        let all_hot = store_with(
            vec![sorted_elements(32, 0)],
            1,
            SpillConfig {
                resident_budget_bytes: usize::MAX,
                page_cache_pages: 4,
                ..SpillConfig::default().without_tiering()
            },
        );
        assert_eq!(all_hot.spilled_bytes(), 0);
        all_hot.snapshot_list(MergedListId(0)).unwrap();
        assert_eq!(all_hot.page_faults(), 0);
    }

    #[test]
    fn shard_batches_fault_each_page_at_most_once_per_round() {
        // Two single-segment lists on one shard, a one-page cache: an
        // interleaved round would fault 4 times served in input order; the
        // batch groups jobs by list, so each page faults exactly once.
        let store = store_with(
            vec![sorted_elements(12, 0), sorted_elements(12, 100)],
            1,
            SpillConfig {
                resident_budget_bytes: 0,
                page_cache_pages: 1,
                ..SpillConfig::default().without_tiering()
            },
        );
        assert_eq!(store.page_faults(), 0);
        let fetch = |l: u64| RangedFetch {
            list: MergedListId(l),
            offset: 0,
            count: 12,
        };
        let jobs = [
            StoreJob::ranged(fetch(0), None),
            StoreJob::ranged(fetch(1), None),
            StoreJob::ranged(fetch(0), None),
            StoreJob::ranged(fetch(1), None),
        ];
        let out = store.execute_shard_batch(&jobs);
        assert!(out.results.iter().all(|r| r.is_ok()));
        assert_eq!(out.lock_acquisitions, 1);
        assert_eq!(
            store.page_faults(),
            2,
            "one fault per distinct page, not per job"
        );
        assert_eq!(store.page_evictions(), 1, "the one-page cache rotated once");
        // Results are still reported in input order.
        assert_eq!(
            out.results[0].as_ref().unwrap(),
            out.results[2].as_ref().unwrap()
        );
        assert_ne!(
            out.results[0].as_ref().unwrap().elements,
            out.results[1].as_ref().unwrap().elements
        );
    }

    #[test]
    fn corrupt_pages_error_per_request_and_spare_the_rest_of_the_shard() {
        // No page cache: every cold read goes to the (corruptible) disk.
        let store = store_with(
            vec![sorted_elements(12, 0), sorted_elements(12, 100)],
            1,
            SpillConfig {
                resident_budget_bytes: 0,
                page_cache_pages: 0,
                ..SpillConfig::default().without_tiering()
            },
        );
        let paths = store.page_file_paths();
        assert_eq!(paths.len(), 1);
        let reference = store.snapshot_list(MergedListId(1)).unwrap();

        // Flip bytes inside list 0's page (written first, at offset 0).
        let mut bytes = fs::read(&paths[0]).unwrap();
        for b in bytes.iter_mut().take(24) {
            *b ^= 0x5A;
        }
        fs::write(&paths[0], &bytes).unwrap();
        let fetch = |l: u64| RangedFetch {
            list: MergedListId(l),
            offset: 0,
            count: 12,
        };
        // The corrupt page surfaces as a StoreError for list 0 alone...
        assert!(matches!(
            store.fetch_ranged(&fetch(0), None),
            Err(StoreError::CorruptSegment(_) | StoreError::Io(_))
        ));
        // ...while the same shard keeps serving its other list, summaries
        // included, and accepts writes.
        let batch = store.fetch_ranged(&fetch(1), None).unwrap();
        assert_eq!(batch.elements, reference);
        assert_eq!(
            store
                .visible_len(MergedListId(0), Some(&[GroupId(0)]))
                .unwrap(),
            4,
            "summaries answer without touching the corrupt page"
        );
        store
            .insert(MergedListId(1), element(0.0001, 0, &[1, 2, 3]))
            .unwrap();

        // A cross-user shard round isolates the poisoned request the same
        // way the stream scheduler isolates a stale cursor.
        let jobs = [
            StoreJob::ranged(fetch(0), None),
            StoreJob::ranged(fetch(1), None),
        ];
        let out = store.execute_shard_batch(&jobs);
        assert!(out.results[0].is_err());
        assert!(out.results[1].is_ok());

        // Truncation (a torn write) is surfaced too, as an I/O or
        // validation error, never a panic.
        fs::write(&paths[0], &bytes[..bytes.len() / 2]).unwrap();
        assert!(store.fetch_ranged(&fetch(1), None).is_err());
        assert!(store.fetch_ranged(&fetch(0), None).is_err());
    }

    #[test]
    fn interior_inserts_keep_the_hot_head_resident_under_a_tight_budget() {
        // Probe the fully-resident charge, then rebuild the store with that
        // budget plus a sliver of headroom: everything fits, but there is
        // far less spare room than one whole segment.  An interior insert
        // must re-use the charge of the slot it rebuilds instead of
        // competing for fresh budget — otherwise the hot head would be
        // demoted to disk by its own rebuild.
        let probe = store_with(
            vec![sorted_elements(32, 0)],
            1,
            SpillConfig {
                resident_budget_bytes: usize::MAX,
                page_cache_pages: 0,
                ..SpillConfig::default().without_tiering()
            },
        );
        let charge = probe.resident_charge_bytes();
        assert!(charge > 0);
        drop(probe);
        let store = store_with(
            vec![sorted_elements(32, 0)],
            1,
            SpillConfig {
                resident_budget_bytes: charge + 256,
                page_cache_pages: 0,
                ..SpillConfig::default().without_tiering()
            },
        );
        assert_eq!(store.spilled_bytes(), 0, "everything starts resident");
        // An interior insert near the top of the list rebuilds the head
        // segment in place.
        store
            .insert(MergedListId(0), element(0.99, 0, &[7u8; 8]))
            .unwrap();
        assert_eq!(
            store.spilled_bytes(),
            0,
            "the rebuilt head segment must stay resident"
        );
        let faults = store.page_faults();
        store
            .fetch_ranged(
                &RangedFetch {
                    list: MergedListId(0),
                    offset: 0,
                    count: 4,
                },
                None,
            )
            .unwrap();
        assert_eq!(store.page_faults(), faults, "head reads stay fault-free");
    }

    #[test]
    fn compaction_reclaims_dead_bytes_and_preserves_answers() {
        let store = store_with(
            vec![sorted_elements(32, 0), sorted_elements(32, 50)],
            1,
            SpillConfig {
                resident_budget_bytes: 0,
                page_cache_pages: 2,
                ..SpillConfig::default().without_tiering()
            },
        );
        // Interior inserts rebuild spilled segments, stranding their old
        // pages as dead bytes in the append-only file.
        for i in 0..6u64 {
            let trs = 0.4 + 0.05 * i as f64;
            store
                .insert(MergedListId(i % 2), element(trs, 0, &[9u8; 8]))
                .unwrap();
        }
        assert!(store.dead_page_bytes() > 0, "rebuilds must strand bytes");
        assert!(store.page_file_bytes() > store.spilled_bytes());
        let reference: Vec<_> = (0..2u64)
            .map(|l| store.snapshot_list(MergedListId(l)).unwrap())
            .collect();
        assert!(store.compact_shard(0).unwrap());
        assert_eq!(store.compactions(), 1);
        assert_eq!(store.dead_page_bytes(), 0, "compaction reclaims all dead");
        assert_eq!(store.page_file_bytes(), store.spilled_bytes());
        for (l, want) in reference.iter().enumerate() {
            assert_eq!(
                &store.snapshot_list(MergedListId(l as u64)).unwrap(),
                want,
                "list {l} must read identically from the compacted file"
            );
        }
        assert!(store.budget_accounting_is_exact());
        let fresh = store.page_file_paths()[0].with_extension("pages.compact");
        assert!(!fresh.exists(), "no compaction file outlives the swap");
    }

    #[test]
    fn aggressive_tiering_compacts_automatically_during_serving() {
        let store = store_with(
            vec![sorted_elements(32, 0)],
            1,
            SpillConfig {
                resident_budget_bytes: 0,
                page_cache_pages: 2,
                compact_dead_percent: 1,
                compact_min_dead_bytes: 1,
                retier_interval: 0,
                heat_decay_window: 0,
            },
        );
        for i in 0..8u64 {
            store
                .insert(
                    MergedListId(0),
                    element(0.3 + 0.05 * i as f64, 0, &[3u8; 8]),
                )
                .unwrap();
        }
        assert!(
            store.compactions() > 0,
            "the maintenance hook must trigger compaction on its own"
        );
        assert_eq!(store.dead_page_bytes(), 0);
        assert!(store.verify_ordering());
    }

    #[test]
    fn torn_down_rewrite_leaves_the_old_file_serving_and_no_stray_file() {
        let store = store_with(
            vec![sorted_elements(24, 0)],
            1,
            SpillConfig {
                resident_budget_bytes: 0,
                page_cache_pages: 0,
                ..SpillConfig::default().without_tiering()
            },
        );
        store
            .insert(MergedListId(0), element(0.5, 0, &[7u8; 8]))
            .unwrap();
        assert!(store.dead_page_bytes() > 0);
        let reference = store.snapshot_list(MergedListId(0)).unwrap();
        // Tear the compaction down mid-rewrite: live pages copied, swap
        // never reached.
        let rw = store.start_compaction(0).unwrap();
        let fresh = rw.path.clone();
        assert!(fresh.exists());
        assert!(rw.append > 0);
        drop(rw);
        assert!(!fresh.exists(), "an aborted rewrite removes its fresh file");
        assert_eq!(store.snapshot_list(MergedListId(0)).unwrap(), reference);
        // A later, uninterrupted pass still reclaims the dead bytes.
        assert!(store.compact_shard(0).unwrap());
        assert_eq!(store.dead_page_bytes(), 0);
        assert_eq!(store.snapshot_list(MergedListId(0)).unwrap(), reference);
    }

    #[test]
    fn bit_flipped_rewrites_are_rejected_before_the_swap() {
        let store = store_with(
            vec![sorted_elements(24, 0)],
            1,
            SpillConfig {
                resident_budget_bytes: 0,
                page_cache_pages: 0,
                ..SpillConfig::default().without_tiering()
            },
        );
        store
            .insert(MergedListId(0), element(0.5, 0, &[7u8; 8]))
            .unwrap();
        let reference = store.snapshot_list(MergedListId(0)).unwrap();
        let rw = store.start_compaction(0).unwrap();
        // Flip a header byte of the first copied page before the swap.
        {
            use std::io::{Read, Seek, SeekFrom, Write};
            let mut f = std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .open(&rw.path)
                .unwrap();
            let mut b = [0u8; 1];
            f.read_exact(&mut b).unwrap();
            f.seek(SeekFrom::Start(0)).unwrap();
            f.write_all(&[b[0] ^ 0x5A]).unwrap();
        }
        let fresh = rw.path.clone();
        assert!(matches!(
            store.finish_compaction(0, rw),
            Err(StoreError::CorruptSegment(_) | StoreError::Io(_))
        ));
        assert!(!fresh.exists(), "a rejected rewrite removes its fresh file");
        assert_eq!(
            store.snapshot_list(MergedListId(0)).unwrap(),
            reference,
            "the old file keeps serving after a rejected swap"
        );
        // The corruption was confined to the discarded fresh file: a clean
        // retry compacts successfully.
        assert!(store.compact_shard(0).unwrap());
        assert_eq!(store.dead_page_bytes(), 0);
        assert_eq!(store.snapshot_list(MergedListId(0)).unwrap(), reference);
    }

    #[test]
    fn retier_promotes_hot_cold_lists_and_demotes_cold_resident_ones() {
        // Probe the fully-resident charge of one list, then give the shard
        // a budget that covers roughly one list: build order hands it to
        // list 0, while all the traffic goes to list 1.
        let probe = store_with(
            vec![sorted_elements(32, 0)],
            1,
            SpillConfig {
                resident_budget_bytes: usize::MAX,
                page_cache_pages: 0,
                ..SpillConfig::default().without_tiering()
            },
        );
        let charge = probe.resident_charge_bytes();
        drop(probe);
        let store = store_with(
            vec![sorted_elements(32, 0), sorted_elements(32, 80)],
            1,
            SpillConfig {
                resident_budget_bytes: charge + 64,
                page_cache_pages: 0,
                ..SpillConfig::default().without_tiering()
            },
        );
        assert!(store.spilled_bytes() > 0, "list 1 must start cold");
        let hot = |offset| RangedFetch {
            list: MergedListId(1),
            offset,
            count: 4,
        };
        for _ in 0..4 {
            for offset in [0usize, 12, 24] {
                store.fetch_ranged(&hot(offset), None).unwrap();
            }
        }
        let (promoted, demoted) = store.retier_shard(0).unwrap();
        assert!(promoted > 0, "touched cold slots must promote");
        assert!(demoted > 0, "never-read resident slots must yield budget");
        assert_eq!(store.promotions(), promoted as u64);
        assert_eq!(store.demotions(), demoted as u64);
        assert!(store.budget_accounting_is_exact());
        // The hot list now serves without faulting (no cache configured, so
        // fault-free means resident).
        let faults = store.page_faults();
        for offset in [0usize, 12, 24] {
            store.fetch_ranged(&hot(offset), None).unwrap();
        }
        assert_eq!(store.page_faults(), faults, "promoted slots serve hot");
        // With unchanged traffic a second pass moves nothing: no ping-pong,
        // and an untouched spilled slot is never promoted.
        assert_eq!(store.retier_shard(0).unwrap(), (0, 0));
        assert!(store.verify_ordering());
    }

    #[test]
    fn resident_budget_charges_stay_exact_through_every_path() {
        let store = store_with(
            vec![sorted_elements(32, 0), sorted_elements(20, 40)],
            2,
            SpillConfig {
                resident_budget_bytes: 2048,
                page_cache_pages: 2,
                compact_dead_percent: 1,
                compact_min_dead_bytes: 1,
                retier_interval: 4,
                heat_decay_window: 0,
            },
        );
        assert!(store.budget_accounting_is_exact());
        for i in 0..24u64 {
            let trs = (i as f64 * 0.37) % 1.0;
            store
                .insert(
                    MergedListId(i % 2),
                    element(trs, (i % 3) as u32, &[i as u8; 8]),
                )
                .unwrap();
            assert!(store.budget_accounting_is_exact(), "after insert {i}");
        }
        for offset in [0usize, 8, 16] {
            store
                .fetch_ranged(
                    &RangedFetch {
                        list: MergedListId(0),
                        offset,
                        count: 4,
                    },
                    None,
                )
                .unwrap();
        }
        for shard in 0..2 {
            store.retier_shard(shard).unwrap();
            store.compact_shard(shard).unwrap();
        }
        assert!(store.budget_accounting_is_exact());
        assert!(store.verify_ordering());
    }

    #[test]
    fn page_cache_hits_are_counted() {
        let store = store_with(
            vec![sorted_elements(16, 0)],
            1,
            SpillConfig {
                resident_budget_bytes: 0,
                page_cache_pages: 2,
                ..SpillConfig::default().without_tiering()
            },
        );
        assert_eq!(store.page_cache_hits(), 0);
        let fetch = RangedFetch {
            list: MergedListId(0),
            offset: 0,
            count: 4,
        };
        store.fetch_ranged(&fetch, None).unwrap();
        let faults = store.page_faults();
        assert!(faults > 0);
        store.fetch_ranged(&fetch, None).unwrap();
        assert_eq!(store.page_faults(), faults, "the warm read hits the cache");
        assert!(store.page_cache_hits() >= 1);
    }

    #[test]
    fn explicit_spill_roots_are_cleaned_up_too() {
        let dir = unique_temp_dir();
        let store = SpillStore::with_config(
            index(vec![sorted_elements(8, 0)]),
            2,
            &dir,
            SpillConfig {
                resident_budget_bytes: 0,
                page_cache_pages: 1,
                ..SpillConfig::default().without_tiering()
            },
        )
        .unwrap();
        assert!(dir.exists());
        assert_eq!(store.page_file_paths().len(), 2);
        drop(store);
        assert!(
            !dir.exists(),
            "spill root {} must be removed",
            dir.display()
        );
    }

    fn durable_store_at(
        dir: &Path,
        lists: Vec<Vec<OrderedElement>>,
        shards: usize,
        config: SpillConfig,
        durable: DurableConfig,
    ) -> SpillStore {
        SpillStore::create_durable_with(
            index(lists),
            dir,
            shards,
            config,
            small_segment_config(),
            durable,
            RealIo::shared(),
            false,
        )
        .unwrap()
    }

    fn snapshot_all(store: &SpillStore) -> Vec<Vec<OrderedElement>> {
        (0..store.num_lists() as u64)
            .map(|l| store.snapshot_list(MergedListId(l)).unwrap())
            .collect()
    }

    #[test]
    fn durable_store_round_trips_through_drop_and_open() {
        let dir = unique_temp_dir();
        let spill_config = SpillConfig {
            resident_budget_bytes: 0,
            page_cache_pages: 2,
            ..SpillConfig::default().without_tiering()
        };
        let store = durable_store_at(
            &dir,
            vec![sorted_elements(24, 0), sorted_elements(16, 90)],
            2,
            spill_config,
            DurableConfig::default(),
        );
        assert!(store.is_durable());
        for (i, trs) in [0.95, 0.41, 0.03].into_iter().enumerate() {
            store
                .insert(MergedListId((i % 2) as u64), element(trs, 1, &[9u8; 8]))
                .unwrap();
        }
        assert!(store.wal_appends() >= 3);
        assert!(store.wal_bytes() > 0);
        let want = snapshot_all(&store);
        let pages = store.page_file_paths();
        drop(store);
        for page in &pages {
            assert!(
                page.exists(),
                "durable page {} survives drop",
                page.display()
            );
        }
        let reopened = SpillStore::open(&dir, spill_config, DurableConfig::default()).unwrap();
        assert_eq!(snapshot_all(&reopened), want);
        assert!(reopened.recovered_pages() > 0, "checkpoint pages re-read");
        assert_eq!(reopened.truncated_wal_records(), 0);
        assert!(reopened.budget_accounting_is_exact());
        assert!(reopened.verify_ordering());
        // A second generation of inserts keeps round-tripping.
        reopened
            .insert(MergedListId(1), element(0.77, 2, &[4u8; 8]))
            .unwrap();
        let want = snapshot_all(&reopened);
        drop(reopened);
        let again = SpillStore::open(&dir, spill_config, DurableConfig::default()).unwrap();
        assert_eq!(snapshot_all(&again), want);
        drop(again);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn creating_over_an_existing_durable_store_is_refused() {
        let dir = unique_temp_dir();
        let config = SpillConfig::default().without_tiering();
        let store = durable_store_at(
            &dir,
            vec![sorted_elements(8, 0)],
            1,
            config,
            DurableConfig::default(),
        );
        drop(store);
        assert!(matches!(
            SpillStore::create_durable(
                index(vec![sorted_elements(8, 0)]),
                &dir,
                1,
                config,
                DurableConfig::default(),
            ),
            Err(StoreError::Io(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_sweeps_stray_scratch_files_left_by_an_unclean_drop() {
        let dir = unique_temp_dir();
        let spill_config = SpillConfig {
            resident_budget_bytes: 0,
            page_cache_pages: 1,
            ..SpillConfig::default().without_tiering()
        };
        let store = durable_store_at(
            &dir,
            vec![sorted_elements(16, 0)],
            1,
            spill_config,
            DurableConfig::default(),
        );
        let want = snapshot_all(&store);
        drop(store);
        // Plant the scratch an unclean shutdown could leave behind: a
        // half-written compaction rewrite, a manifest temp file and a page
        // file from a superseded generation.
        let strays = [
            dir.join("shard-000.g1.pages.compact"),
            dir.join("shard-000.manifest.tmp"),
            dir.join("shard-000.g9.pages"),
        ];
        for stray in &strays {
            fs::write(stray, b"scratch").unwrap();
        }
        let reopened = SpillStore::open(&dir, spill_config, DurableConfig::default()).unwrap();
        for stray in &strays {
            assert!(!stray.exists(), "stray {} must be swept", stray.display());
        }
        assert_eq!(snapshot_all(&reopened), want);
        drop(reopened);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn heat_decay_demotes_an_old_burst_in_favour_of_current_traffic() {
        let build = || vec![sorted_elements(32, 0), sorted_elements(32, 80)];
        let fetch = |l: u64, offset: usize| RangedFetch {
            list: MergedListId(l),
            offset,
            count: 4,
        };
        // Both lists fit the budget; manual retier passes only.
        let config = |window: u64| SpillConfig {
            resident_budget_bytes: usize::MAX,
            page_cache_pages: 0,
            heat_decay_window: window,
            ..SpillConfig::default().without_tiering()
        };
        let run = |window: u64| {
            let store = store_with(build(), 1, config(window));
            assert_eq!(store.spilled_bytes(), 0, "everything starts resident");
            // An old burst on list 0...
            for offset in [0usize, 12, 24] {
                store.fetch_ranged(&fetch(0, offset), None).unwrap();
            }
            // ...then sustained traffic on list 1 only, pushing the access
            // clock well past the burst.
            for _ in 0..16 {
                for offset in [0usize, 12, 24] {
                    store.fetch_ranged(&fetch(1, offset), None).unwrap();
                }
            }
            let moves = store.retier_shard(0).unwrap();
            assert!(store.budget_accounting_is_exact());
            assert!(store.verify_ordering());
            (store, moves)
        };
        // Decay on: the burst decayed, list 0 loses residency to disk even
        // though the budget could hold it — its heat no longer buys
        // anything.  List 1, currently hot, stays resident and fault-free.
        let (store, (promoted, demoted)) = run(4);
        assert_eq!(promoted, 0);
        assert!(demoted > 0, "the old burst must cool and demote");
        assert!(store.spilled_bytes() > 0);
        let faults = store.page_faults();
        for offset in [0usize, 12, 24] {
            store.fetch_ranged(&fetch(1, offset), None).unwrap();
        }
        assert_eq!(store.page_faults(), faults, "current traffic stays hot");
        store.fetch_ranged(&fetch(0, 12), None).unwrap();
        assert!(store.page_faults() > faults, "the demoted burst faults");
        // Control: decay off (window 0), identical traffic — the burst's
        // high-water stamp holds residency forever.
        let (_store, moves) = run(0);
        assert_eq!(moves, (0, 0), "without decay the old burst keeps its seat");
    }
}
