//! The single-global-mutex store: the pre-sharding serving architecture,
//! kept as the contention baseline for the throughput experiments.
//!
//! Every operation — including read-only fetches — serializes on one
//! `Mutex` around a single [`ListTable`], exactly like the original server
//! that wrapped the whole `OrderedIndex` in a global lock.  Results are
//! element-for-element identical to [`crate::ShardedStore`] (both delegate
//! to the same table logic); only the concurrency model differs.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::{Mutex, MutexGuard};
use zerber_base::{MergePlan, MergedListId};
use zerber_corpus::GroupId;
use zerber_r::{OrderedElement, OrderedIndex};

use crate::error::StoreError;
use crate::lockrank::{self, LockClass};
use crate::store::{
    CursorId, ListStore, ListTable, OrderedList, RangedBatch, RangedFetch, SessionStats,
    ShardBucketOutput, ShardJobBucket, ShardJobPlan, StoreJob, VecList,
};

/// A store serializing every operation on one global mutex.
#[derive(Debug)]
pub struct SingleMutexStore {
    inner: Mutex<ListTable<VecList>>,
    plan: MergePlan,
    next_cursor: AtomicU64,
    /// Global-mutex acquisitions by the serving paths (see
    /// [`ListStore::lock_acquisitions`]).
    lock_meter: AtomicU64,
}

impl SingleMutexStore {
    /// Builds the store from an ordered index.
    pub fn new(index: OrderedIndex) -> Self {
        let (lists, plan) = index.into_parts();
        let mut table = ListTable::default();
        for list in lists {
            table.push_list(VecList::from_elements(list));
        }
        SingleMutexStore {
            inner: Mutex::new(table),
            plan,
            next_cursor: AtomicU64::new(1),
            lock_meter: AtomicU64::new(0),
        }
    }

    /// Meters one mutex acquisition (called just before a serving-path
    /// `lock()`; audit accessors stay unmetered).
    fn meter_lock(&self) {
        self.lock_meter.fetch_add(1, Ordering::Relaxed);
    }

    /// Acquires the global mutex under the lock-rank discipline.  The
    /// single-mutex engine is one lock domain, ranked like shard 0 of a
    /// sharded core (see [`crate::lockrank`] for the global order).
    fn locked(&self) -> LockedTable<'_> {
        let rank = lockrank::acquire(LockClass::Shard, 0);
        LockedTable {
            guard: self.inner.lock(),
            _rank: rank,
        }
    }

    fn check(&self, list: MergedListId) -> Result<usize, StoreError> {
        let slot = list.0 as usize;
        if slot < self.plan.num_lists() {
            Ok(slot)
        } else {
            Err(StoreError::UnknownList(list.0))
        }
    }
}

/// The ranked guard over the global table mutex (lock guard declared first
/// so it drops before the rank pops).
struct LockedTable<'a> {
    guard: MutexGuard<'a, ListTable<VecList>>,
    _rank: lockrank::RankGuard,
}

impl std::ops::Deref for LockedTable<'_> {
    type Target = ListTable<VecList>;

    fn deref(&self) -> &ListTable<VecList> {
        &self.guard
    }
}

impl std::ops::DerefMut for LockedTable<'_> {
    fn deref_mut(&mut self) -> &mut ListTable<VecList> {
        &mut self.guard
    }
}

impl ListStore for SingleMutexStore {
    fn plan(&self) -> &MergePlan {
        &self.plan
    }

    fn num_shards(&self) -> usize {
        1
    }

    fn shard_of(&self, _list: MergedListId) -> usize {
        0
    }

    fn num_elements(&self) -> usize {
        self.locked().num_elements()
    }

    fn stored_bytes(&self) -> usize {
        self.locked().stored_bytes()
    }

    fn ciphertext_bytes(&self) -> usize {
        self.locked().ciphertext_bytes()
    }

    fn resident_bytes(&self) -> usize {
        self.locked().resident_bytes()
    }

    fn list_len(&self, list: MergedListId) -> Result<usize, StoreError> {
        let slot = self.check(list)?;
        Ok(self.locked().list(slot).len())
    }

    fn visible_len(
        &self,
        list: MergedListId,
        accessible: Option<&[GroupId]>,
    ) -> Result<usize, StoreError> {
        let slot = self.check(list)?;
        Ok(self.locked().visible_total(slot, accessible))
    }

    fn snapshot_list(&self, list: MergedListId) -> Result<Vec<OrderedElement>, StoreError> {
        let slot = self.check(list)?;
        self.locked().list(slot).snapshot()
    }

    fn fetch_ranged(
        &self,
        fetch: &RangedFetch,
        accessible: Option<&[GroupId]>,
    ) -> Result<RangedBatch, StoreError> {
        let slot = self.check(fetch.list)?;
        self.meter_lock();
        self.locked()
            .fetch(slot, fetch.offset, fetch.count, accessible)
    }

    fn plan_shard_batch(&self, jobs: &[StoreJob], _max_bucket_jobs: usize) -> ShardJobPlan {
        // One lock domain: the whole cross-user round is a single unit of
        // work under a single mutex acquisition, however many requests it
        // carries — splitting it into cap-sized buckets would only multiply
        // acquisitions of the very same mutex.  The worker pool degenerates
        // to one worker, exactly like the pre-sharding architecture.
        ShardJobPlan {
            buckets: if jobs.is_empty() {
                Vec::new()
            } else {
                vec![ShardJobBucket {
                    shard: 0,
                    jobs: (0..jobs.len()).collect(),
                }]
            },
            unroutable: Vec::new(),
        }
    }

    fn execute_shard_bucket(
        &self,
        jobs: &[StoreJob],
        bucket: &ShardJobBucket,
    ) -> ShardBucketOutput {
        self.meter_lock();
        let mut guard = self.locked();
        let output = ShardBucketOutput {
            results: bucket
                .jobs
                .iter()
                .map(|&i| {
                    let job = &jobs[i];
                    if job.cursor.is_some() {
                        guard.cursor_fetch(
                            job.cursor.0,
                            job.owner,
                            job.fetch.count,
                            job.accessible(),
                        )
                    } else {
                        let slot = self.check(job.fetch.list)?;
                        guard.fetch(slot, job.fetch.offset, job.fetch.count, job.accessible())
                    }
                })
                .collect(),
            lock_acquisitions: 1,
        };
        // Sweep AFTER serving, matching the sharded engine's ordering, so a
        // session resumed in this very round refreshes its last_used before
        // the TTL check can see it.
        if guard.ttl_sweep_due() {
            guard.sweep_expired();
        }
        output
    }

    fn lock_acquisitions(&self) -> u64 {
        self.lock_meter.load(Ordering::Relaxed)
    }

    fn open_cursor(
        &self,
        list: MergedListId,
        owner: u64,
        batch: &RangedBatch,
        delivered: usize,
        accessible: Option<&[GroupId]>,
    ) -> Result<CursorId, StoreError> {
        let slot = self.check(list)?;
        let raw = self.next_cursor.fetch_add(1, Ordering::Relaxed) << 8;
        self.meter_lock();
        self.locked()
            .open_cursor(raw, slot, owner, batch, delivered, accessible)?;
        Ok(CursorId(raw))
    }

    fn cursor_fetch(
        &self,
        cursor: CursorId,
        owner: u64,
        count: usize,
        accessible: Option<&[GroupId]>,
    ) -> Result<RangedBatch, StoreError> {
        if !cursor.is_some() {
            return Err(StoreError::UnknownCursor(cursor.0));
        }
        self.meter_lock();
        let mut guard = self.locked();
        // The global mutex is already exclusive: sweep idle sessions inline
        // when due, so read-heavy workloads reclaim them too — but only
        // after serving, matching the sharded engine's ordering (a resumed
        // session refreshes last_used before the sweep can expire it).
        let result = guard.cursor_fetch(cursor.0, owner, count, accessible);
        if guard.ttl_sweep_due() {
            guard.sweep_expired();
        }
        result
    }

    fn close_cursor(&self, cursor: CursorId, owner: u64) {
        self.meter_lock();
        self.locked().close_cursor(cursor.0, owner);
    }

    fn open_cursors(&self) -> usize {
        self.locked().open_cursors()
    }

    fn session_stats(&self) -> SessionStats {
        self.locked().session_stats()
    }

    fn visibility_scan_cost(&self) -> u64 {
        self.locked().visibility_scan_cost()
    }

    fn insert(&self, list: MergedListId, element: OrderedElement) -> Result<usize, StoreError> {
        let slot = self.check(list)?;
        self.meter_lock();
        self.locked().insert(slot, element)
    }

    fn verify_ordering(&self) -> bool {
        self.locked().ordering_ok()
    }
}
