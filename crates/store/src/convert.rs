//! Named integer conversions for the codec and metering paths.
//!
//! The analyzer bans bare `as` casts to the unsigned integer types inside
//! the codec files (`segment.rs`, `spill.rs`, `durable.rs`,
//! `replication.rs`): a silent truncation there corrupts on-disk state or
//! wire frames.  Conversions instead go through these helpers, so every
//! cast is either *provably widening* on the targets we build for (and says
//! so in one audited place) or *checked* and surfaced as a typed
//! [`StoreError`].

use crate::error::StoreError;

// The widening helpers below assume usize is between 32 and 64 bits; the
// suite does not build for 16-bit or 128-bit targets.
const _: () = assert!(
    std::mem::size_of::<usize>() >= 4 && std::mem::size_of::<usize>() <= 8,
    "widening conversions assume 32- or 64-bit usize"
);

/// Widens a length or count to the `u64` wire/metering domain.  Infallible:
/// `usize` is at most 64 bits on every supported target.
#[inline]
pub fn u64_of(x: usize) -> u64 {
    x as u64
}

/// Widens a decoded `u32` field to an in-memory index.  Infallible: `usize`
/// is at least 32 bits on every supported target.
#[inline]
pub fn usize_of(x: u32) -> usize {
    x as usize
}

/// Checked `u64` -> `usize` for decoded offsets and lengths; an on-disk
/// value that cannot index memory on this target is corrupt input, not a
/// panic.
#[inline]
pub fn try_usize(x: u64) -> Result<usize, StoreError> {
    usize::try_from(x)
        .map_err(|_| StoreError::CorruptSegment(format!("decoded size {x} exceeds usize")))
}

/// Checked `usize` -> `u32` for encoded counts and offsets; payloads are
/// split long before the u32 offset space runs out, so an overflow here is
/// an encoding bug surfaced as [`StoreError::SegmentOverflow`].
#[inline]
pub fn try_u32(x: usize) -> Result<u32, StoreError> {
    u32::try_from(x).map_err(|_| StoreError::SegmentOverflow)
}

/// Borrows exactly `N` bytes at `pos`, or reports corrupt input.  The
/// codec decoders read every fixed-width field through these helpers so a
/// truncated or overflowing record surfaces as [`StoreError::CorruptSegment`]
/// instead of a slicing panic.
#[inline]
fn take<const N: usize>(buf: &[u8], pos: usize) -> Result<[u8; N], StoreError> {
    pos.checked_add(N)
        .and_then(|end| buf.get(pos..end))
        .and_then(|s| <[u8; N]>::try_from(s).ok())
        .ok_or_else(|| StoreError::CorruptSegment(format!("record truncated at byte {pos}")))
}

/// Reads a little-endian `u16` at `pos`.
#[inline]
pub fn read_u16(buf: &[u8], pos: usize) -> Result<u16, StoreError> {
    Ok(u16::from_le_bytes(take(buf, pos)?))
}

/// Reads a little-endian `u32` at `pos`.
#[inline]
pub fn read_u32(buf: &[u8], pos: usize) -> Result<u32, StoreError> {
    Ok(u32::from_le_bytes(take(buf, pos)?))
}

/// Reads a little-endian `u64` at `pos`.
#[inline]
pub fn read_u64(buf: &[u8], pos: usize) -> Result<u64, StoreError> {
    Ok(u64::from_le_bytes(take(buf, pos)?))
}

/// Reads a little-endian `f64` at `pos`.
#[inline]
pub fn read_f64(buf: &[u8], pos: usize) -> Result<f64, StoreError> {
    Ok(f64::from_le_bytes(take(buf, pos)?))
}

/// Borrows `len` bytes at `pos`, or reports corrupt input.
#[inline]
pub fn read_bytes(buf: &[u8], pos: usize, len: usize) -> Result<&[u8], StoreError> {
    pos.checked_add(len)
        .and_then(|end| buf.get(pos..end))
        .ok_or_else(|| {
            StoreError::CorruptSegment(format!("record truncated at byte {pos} (want {len})"))
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widenings_round_trip() {
        assert_eq!(u64_of(usize::MAX) as u128, usize::MAX as u128);
        assert_eq!(usize_of(u32::MAX) as u128, u32::MAX as u128);
    }

    #[test]
    fn readers_are_bounds_checked() {
        let buf = [1u8, 0, 0, 0, 0, 0, 0, 0, 9];
        assert_eq!(read_u64(&buf, 0), Ok(1));
        assert_eq!(read_u16(&buf, 7), Ok(9 << 8));
        assert!(read_u64(&buf, 2).is_err(), "truncated read is typed");
        assert!(read_u32(&buf, usize::MAX - 1).is_err(), "overflow is typed");
        assert_eq!(read_bytes(&buf, 8, 1), Ok(&buf[8..9]));
        assert!(read_bytes(&buf, 8, 2).is_err());
    }

    #[test]
    fn narrowings_are_checked() {
        assert_eq!(try_usize(7), Ok(7));
        assert_eq!(try_u32(7), Ok(7));
        if let Ok(big) = usize::try_from(u64::from(u32::MAX) + 1) {
            assert_eq!(try_u32(big), Err(StoreError::SegmentOverflow));
        }
        assert!(matches!(
            try_usize(u64::MAX),
            Err(StoreError::CorruptSegment(_)) | Ok(_)
        ));
    }
}
