//! The compressed segment layout: each merged list is a stack of immutable
//! block-encoded segments plus a small mutable uncompressed tail.
//!
//! The paper's server holds merged posting lists as sealed elements in TRS
//! order; its economics hinge on how cheaply that ordered store can be held
//! and scanned.  The plain `Vec<OrderedElement>` layout pays the full struct
//! width (plus one heap allocation) per element.  A [`SegmentList`] instead
//! keeps the elements in compressed **blocks**:
//!
//! * TRS values are delta-encoded through the order-preserving
//!   [`sortable_bits`] mapping — bit-exact, so decoded elements compare
//!   identically to the reference layout even across quantization-free ties;
//! * group tags and ciphertext lengths are varints (with a per-block
//!   "uniform ciphertext length" fast path, since sealed payloads have one
//!   fixed size in practice), and blocks whose elements all share one group
//!   use the **group-uniform mode**: the group is encoded once in the block
//!   header and the per-element tags are dropped entirely;
//! * every block carries a **skip entry**: element count, first/last TRS and
//!   per-group visible counts.
//!
//! The skip entries make `visible_total` and offset skip-scans `O(#blocks)`
//! instead of `O(#elements)` — the engine-level fix for the group-filtered
//! follow-up hot path — while point reads only decode the one or two blocks
//! they actually touch.  Position-preserving inserts land in the mutable
//! tail when their TRS sorts below every sealed element; interior inserts
//! rebuild the one segment they hit (bounded by
//! [`SegmentConfig::max_segment_elems`]).  When the tail outgrows
//! [`SegmentConfig::tail_threshold`] it is sealed into a new segment and an
//! insert-amortized compaction merges adjacent segments (pure block
//! concatenation — no re-encode) to keep the stack shallow.
//!
//! Segments serialize to a validated byte format ([`Segment::to_bytes`] /
//! [`Segment::from_bytes`]): like the posting codec, the decoder faces
//! untrusted bytes and must reject every truncation or bit flip with an
//! error, never a panic.

use std::sync::atomic::{AtomicU64, Ordering};

use zerber_base::EncryptedElement;
use zerber_corpus::GroupId;
use zerber_index::compress::{
    from_sortable_bits, read_bytes, read_varint, sortable_bits, write_bytes, write_varint,
};
use zerber_r::{OrderedElement, TRS_BYTES};

use crate::error::StoreError;
use crate::store::{is_visible, is_visible_group, OrderedList};

/// Magic number heading every serialized segment ("ZSEG" little-endian).
const SEGMENT_MAGIC: u64 = 0x4745_535a;
/// Version of the segment wire format.  Version 2 added the group-uniform
/// block mode (one group in the block header instead of per-element tags).
const SEGMENT_VERSION: u64 = 2;

/// Tuning knobs of the segment layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentConfig {
    /// Elements per compressed block (the skip-entry granularity).
    pub block_len: usize,
    /// The tail is sealed into a segment once it grows past this.
    pub tail_threshold: usize,
    /// Compaction never merges beyond this many elements per segment, which
    /// bounds the cost of an interior-insert rebuild.
    pub max_segment_elems: usize,
    /// Compaction runs while the stack is deeper than this.
    pub max_segments: usize,
}

impl Default for SegmentConfig {
    fn default() -> Self {
        SegmentConfig {
            // Streaming decode stops as soon as a batch is full, so larger
            // blocks do not slow point reads down — they amortize the skip
            // entry across more elements.
            block_len: 128,
            tail_threshold: 128,
            max_segment_elems: 4096,
            max_segments: 8,
        }
    }
}

/// Skip entry of one compressed block.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct BlockMeta {
    /// Byte offset of the block inside the segment payload.
    offset: u32,
    /// Encoded length of the block in bytes.
    byte_len: u32,
    /// Number of elements in the block.
    elems: u32,
    /// Sortable bits of the first (largest) TRS in the block.  This is the
    /// authoritative value: the first element carries no TRS bytes in the
    /// payload, later elements are deltas from it.
    first: u64,
    /// Sortable bits of the last (smallest) TRS in the block.
    last: u64,
    /// Per-group element counts, sorted by group id (exact-sized).
    counts: Box<[(GroupId, u32)]>,
}

impl BlockMeta {
    /// Elements of the block visible under `accessible`.
    fn visible_under(&self, accessible: Option<&[GroupId]>) -> usize {
        match accessible {
            None => self.elems as usize,
            Some(groups) => self
                .counts
                .iter()
                .filter(|(g, _)| groups.contains(g))
                .map(|&(_, n)| n as usize)
                .sum(),
        }
    }

    fn last_trs(&self) -> f64 {
        from_sortable_bits(self.last)
    }
}

/// One immutable compressed segment: concatenated encoded blocks plus their
/// skip entries and pre-aggregated byte totals.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    payload: Vec<u8>,
    blocks: Vec<BlockMeta>,
    elems: usize,
    stored_bytes: usize,
    ciphertext_bytes: usize,
}

fn corrupt(reason: impl std::fmt::Display) -> StoreError {
    StoreError::CorruptSegment(reason.to_string())
}

/// Encodes one block of ordered elements onto `out`, returning its skip
/// entry.  The chunk must be non-empty and descending in TRS (the list
/// invariant every engine maintains).  The first element's TRS lives only in
/// the skip entry; the payload carries deltas from it.
fn encode_block(chunk: &[OrderedElement], out: &mut Vec<u8>) -> BlockMeta {
    let offset = out.len();
    let uniform = chunk
        .iter()
        .all(|e| e.sealed.ciphertext.len() == chunk[0].sealed.ciphertext.len());
    write_varint(
        out,
        if uniform {
            chunk[0].sealed.ciphertext.len() as u64 + 1
        } else {
            0
        },
    );
    // Group-uniform mode: when every element of the block shares one routing
    // group (and seals under that same group), the group is encoded once in
    // the block header and the per-element tags are dropped entirely.
    let uniform_group = chunk
        .iter()
        .all(|e| e.group == chunk[0].group && e.sealed.group == e.group)
        .then_some(chunk[0].group);
    write_varint(
        out,
        match uniform_group {
            Some(g) => u64::from(g.0) + 1,
            None => 0,
        },
    );
    let first = sortable_bits(chunk[0].trs);
    let mut prev = first;
    let mut counts: Vec<(GroupId, u32)> = Vec::new();
    for (i, element) in chunk.iter().enumerate() {
        let bits = sortable_bits(element.trs);
        if i > 0 {
            let delta = prev
                .checked_sub(bits)
                .expect("segment blocks encode TRS-descending elements");
            write_varint(out, delta);
        }
        prev = bits;
        if uniform_group.is_none() {
            let same = element.sealed.group == element.group;
            write_varint(out, (u64::from(element.group.0) << 1) | u64::from(!same));
            if !same {
                write_varint(out, u64::from(element.sealed.group.0));
            }
        }
        if uniform {
            out.extend_from_slice(&element.sealed.ciphertext);
        } else {
            write_bytes(out, &element.sealed.ciphertext);
        }
        match counts.iter_mut().find(|(g, _)| *g == element.group) {
            Some((_, n)) => *n += 1,
            None => counts.push((element.group, 1)),
        }
    }
    counts.sort_by_key(|&(g, _)| g.0);
    BlockMeta {
        // Fail loudly instead of wrapping if a segment payload ever exceeds
        // the u32 offset space (would need ~4 GiB of ciphertext per
        // segment; max_segment_elems bounds elements, not bytes).
        offset: u32::try_from(offset).expect("segment payload exceeds u32 offsets"),
        byte_len: u32::try_from(out.len() - offset).expect("segment block exceeds u32 length"),
        elems: chunk.len() as u32,
        first,
        last: prev,
        counts: counts.into_boxed_slice(),
    }
}

/// One element parsed from a block, borrowing its ciphertext from the
/// payload.  Scans inspect `trs`/`group` without allocating and only
/// [`RawElement::materialize`] the elements they actually return.
pub(crate) struct RawElement<'a> {
    trs: f64,
    group: GroupId,
    sealed_group: GroupId,
    ciphertext: &'a [u8],
}

impl RawElement<'_> {
    fn materialize(&self) -> OrderedElement {
        OrderedElement {
            trs: self.trs,
            group: self.group,
            sealed: EncryptedElement {
                group: self.sealed_group,
                ciphertext: self.ciphertext.to_vec(),
            },
        }
    }
}

/// Streaming decoder over one block's payload: yields elements in order
/// without materializing the ones the caller skips.
pub(crate) struct BlockReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    uniform: u64,
    /// The block's single group in group-uniform mode (`None` = per-element
    /// tags in the payload).
    uniform_group: Option<GroupId>,
    prev: u64,
    index: u32,
    elems: u32,
}

impl<'a> BlockReader<'a> {
    fn new(bytes: &'a [u8], elems: u32, first: u64) -> Result<Self, StoreError> {
        let (uniform, pos) = read_varint(bytes, 0).map_err(corrupt)?;
        let (group_mode, pos) = read_varint(bytes, pos).map_err(corrupt)?;
        let uniform_group = if group_mode == 0 {
            None
        } else {
            let g = group_mode - 1;
            if g > u64::from(u32::MAX) {
                return Err(corrupt("uniform group id out of range"));
            }
            Some(GroupId(g as u32))
        };
        Ok(BlockReader {
            bytes,
            pos,
            uniform,
            uniform_group,
            prev: first,
            index: 0,
            elems,
        })
    }

    fn next_raw(&mut self) -> Result<RawElement<'a>, StoreError> {
        debug_assert!(self.index < self.elems, "reader driven past the block");
        let bits = if self.index == 0 {
            self.prev
        } else {
            let (delta, p) = read_varint(self.bytes, self.pos).map_err(corrupt)?;
            self.pos = p;
            self.prev
                .checked_sub(delta)
                .ok_or_else(|| corrupt("TRS delta exceeds previous TRS"))?
        };
        let trs = from_sortable_bits(bits);
        if trs.is_nan() {
            return Err(corrupt("NaN TRS"));
        }
        self.prev = bits;
        let (group, sealed_group) = match self.uniform_group {
            // Group-uniform block: no per-element tags in the payload.
            Some(g) => (g.0, g.0),
            None => {
                let (tag, p) = read_varint(self.bytes, self.pos).map_err(corrupt)?;
                self.pos = p;
                let group = tag >> 1;
                if group > u64::from(u32::MAX) {
                    return Err(corrupt("group id out of range"));
                }
                let sealed_group = if tag & 1 == 1 {
                    let (g, p) = read_varint(self.bytes, self.pos).map_err(corrupt)?;
                    self.pos = p;
                    if g > u64::from(u32::MAX) {
                        return Err(corrupt("sealed group id out of range"));
                    }
                    g as u32
                } else {
                    group as u32
                };
                (group as u32, sealed_group)
            }
        };
        let ciphertext = if self.uniform > 0 {
            let len = (self.uniform - 1) as usize;
            let end = self
                .pos
                .checked_add(len)
                .ok_or_else(|| corrupt("ciphertext length overflow"))?;
            let slice = self
                .bytes
                .get(self.pos..end)
                .ok_or_else(|| corrupt("truncated ciphertext"))?;
            self.pos = end;
            slice
        } else {
            let (slice, p) = read_bytes(self.bytes, self.pos).map_err(corrupt)?;
            self.pos = p;
            slice
        };
        self.index += 1;
        Ok(RawElement {
            trs,
            group: GroupId(group),
            sealed_group: GroupId(sealed_group),
            ciphertext,
        })
    }

    /// Internal (trusted) read: the payload was encoded by this module.
    fn next_trusted(&mut self) -> RawElement<'a> {
        self.next_raw().expect("self-encoded segment blocks decode")
    }
}

/// Decodes and validates one block against its skip entry.  Every
/// inconsistency is an error: the decoder also runs on untrusted bytes.
fn decode_block_checked(
    bytes: &[u8],
    expected: &BlockMeta,
) -> Result<Vec<OrderedElement>, StoreError> {
    let mut reader = BlockReader::new(bytes, expected.elems, expected.first)?;
    let elems = expected.elems as usize;
    // Each element takes at least 1 payload byte, so a corrupt count cannot
    // force a huge pre-allocation before validation fails.
    let mut out: Vec<OrderedElement> = Vec::with_capacity(elems.min(bytes.len() + 1));
    let mut counts: Vec<(GroupId, u32)> = Vec::new();
    for _ in 0..elems {
        let raw = reader.next_raw()?;
        match counts.iter_mut().find(|(g, _)| *g == raw.group) {
            Some((_, n)) => *n += 1,
            None => counts.push((raw.group, 1)),
        }
        out.push(raw.materialize());
    }
    if reader.pos != bytes.len() {
        return Err(corrupt("trailing bytes after block"));
    }
    if reader.prev != expected.last {
        return Err(corrupt("block TRS bounds disagree with skip entry"));
    }
    counts.sort_by_key(|&(g, _)| g.0);
    if counts.as_slice() != expected.counts.as_ref() {
        return Err(corrupt("block group counts disagree with skip entry"));
    }
    Ok(out)
}

impl Segment {
    /// Encodes a non-empty TRS-descending slice into a segment of
    /// `block_len`-element blocks.
    pub(crate) fn from_elements(elements: &[OrderedElement], block_len: usize) -> Segment {
        debug_assert!(!elements.is_empty(), "segments are never empty");
        let mut payload = Vec::new();
        let mut blocks = Vec::with_capacity(elements.len().div_ceil(block_len.max(1)));
        for chunk in elements.chunks(block_len.max(1)) {
            blocks.push(encode_block(chunk, &mut payload));
        }
        // Sealed segments are immutable: give the growth slack back.
        payload.shrink_to_fit();
        Segment {
            payload,
            blocks,
            elems: elements.len(),
            stored_bytes: elements
                .iter()
                .map(|e| e.sealed.stored_bytes() + TRS_BYTES)
                .sum(),
            ciphertext_bytes: elements.iter().map(|e| e.sealed.ciphertext.len()).sum(),
        }
    }

    /// Number of elements held.
    pub fn num_elements(&self) -> usize {
        self.elems
    }

    /// Number of compressed blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The smallest TRS in the segment (its last element).
    fn min_trs(&self) -> f64 {
        self.blocks
            .last()
            .expect("segments are never empty")
            .last_trs()
    }

    /// A streaming reader over block `index` (internal, trusted path: the
    /// blocks were encoded by this module).
    fn block_reader(&self, index: usize) -> BlockReader<'_> {
        let meta = &self.blocks[index];
        let range = meta.offset as usize..(meta.offset + meta.byte_len) as usize;
        BlockReader::new(&self.payload[range], meta.elems, meta.first)
            .expect("self-encoded segment blocks decode")
    }

    /// Decodes block `index` in full (internal, trusted path).
    fn decode_block(&self, index: usize) -> Vec<OrderedElement> {
        let meta = &self.blocks[index];
        let mut reader = self.block_reader(index);
        (0..meta.elems)
            .map(|_| reader.next_trusted().materialize())
            .collect()
    }

    /// Decodes the whole segment in order.
    pub(crate) fn decode_all(&self) -> Vec<OrderedElement> {
        let mut out = Vec::with_capacity(self.elems);
        for i in 0..self.blocks.len() {
            out.extend(self.decode_block(i));
        }
        out
    }

    /// Appends another segment (the positionally next one) onto this one:
    /// pure block concatenation, no re-encode.
    fn absorb(&mut self, other: Segment) {
        let shift = u32::try_from(self.payload.len()).expect("segment payload exceeds u32 offsets");
        self.payload.extend_from_slice(&other.payload);
        self.payload.shrink_to_fit();
        self.blocks.extend(other.blocks.into_iter().map(|mut b| {
            b.offset = b
                .offset
                .checked_add(shift)
                .expect("segment payload exceeds u32 offsets");
            b
        }));
        self.elems += other.elems;
        self.stored_bytes += other.stored_bytes;
        self.ciphertext_bytes += other.ciphertext_bytes;
    }

    /// Estimated resident memory of the segment.
    fn resident_bytes(&self) -> usize {
        std::mem::size_of::<Segment>()
            + self.payload.capacity()
            + self.blocks.capacity() * std::mem::size_of::<BlockMeta>()
            + self
                .blocks
                .iter()
                .map(|b| b.counts.len() * std::mem::size_of::<(GroupId, u32)>())
                .sum::<usize>()
    }

    /// Serializes the segment to its validated wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.payload.len() + self.blocks.len() * 24 + 16);
        write_varint(&mut out, SEGMENT_MAGIC);
        write_varint(&mut out, SEGMENT_VERSION);
        write_varint(&mut out, self.elems as u64);
        write_varint(&mut out, self.blocks.len() as u64);
        for meta in &self.blocks {
            write_varint(&mut out, u64::from(meta.elems));
            write_varint(&mut out, meta.first);
            write_varint(&mut out, meta.last);
            write_varint(&mut out, meta.counts.len() as u64);
            for &(group, count) in &meta.counts {
                write_varint(&mut out, u64::from(group.0));
                write_varint(&mut out, u64::from(count));
            }
            write_varint(&mut out, meta.byte_len as u64);
        }
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses and fully validates a serialized segment.  Truncated,
    /// bit-flipped or internally inconsistent bytes come back as
    /// [`StoreError::CorruptSegment`]; the decoder never panics and never
    /// trusts an untrusted count for allocation.
    pub fn from_bytes(buf: &[u8]) -> Result<Segment, StoreError> {
        let (magic, pos) = read_varint(buf, 0).map_err(corrupt)?;
        if magic != SEGMENT_MAGIC {
            return Err(corrupt("bad segment magic"));
        }
        let (version, pos) = read_varint(buf, pos).map_err(corrupt)?;
        if version != SEGMENT_VERSION {
            return Err(corrupt(format!("unsupported segment version {version}")));
        }
        let (total_elems, pos) = read_varint(buf, pos).map_err(corrupt)?;
        let (num_blocks, mut pos) = read_varint(buf, pos).map_err(corrupt)?;
        // Every block header takes at least 6 bytes.
        if num_blocks as usize > buf.len() / 6 + 1 {
            return Err(corrupt("implausible block count"));
        }
        let mut blocks = Vec::with_capacity(num_blocks as usize);
        let mut offset = 0u32;
        let mut elems_seen = 0u64;
        for _ in 0..num_blocks {
            let (elems, p) = read_varint(buf, pos).map_err(corrupt)?;
            let (first, p) = read_varint(buf, p).map_err(corrupt)?;
            let (last, p) = read_varint(buf, p).map_err(corrupt)?;
            let (num_counts, mut p) = read_varint(buf, p).map_err(corrupt)?;
            if elems == 0 || elems > u64::from(u32::MAX) {
                return Err(corrupt("block element count out of range"));
            }
            if first < last {
                return Err(corrupt("block TRS bounds out of order"));
            }
            if num_counts == 0 || num_counts > elems {
                return Err(corrupt("implausible group-count entries"));
            }
            let mut counts: Vec<(GroupId, u32)> =
                Vec::with_capacity((num_counts as usize).min(buf.len() / 2 + 1));
            let mut count_sum = 0u64;
            for _ in 0..num_counts {
                let (group, q) = read_varint(buf, p).map_err(corrupt)?;
                let (count, q) = read_varint(buf, q).map_err(corrupt)?;
                p = q;
                if group > u64::from(u32::MAX) || count == 0 || count > elems {
                    return Err(corrupt("group count entry out of range"));
                }
                if let Some(&(prev, _)) = counts.last() {
                    if GroupId(group as u32).0 <= prev.0 {
                        return Err(corrupt("group count entries out of order"));
                    }
                }
                counts.push((GroupId(group as u32), count as u32));
                count_sum += count;
            }
            if count_sum != elems {
                return Err(corrupt("group counts do not cover the block"));
            }
            let (byte_len, p) = read_varint(buf, p).map_err(corrupt)?;
            pos = p;
            let byte_len = u32::try_from(byte_len).map_err(|_| corrupt("block length overflow"))?;
            blocks.push(BlockMeta {
                offset,
                byte_len,
                elems: elems as u32,
                first,
                last,
                counts: counts.into_boxed_slice(),
            });
            offset = offset
                .checked_add(byte_len)
                .ok_or_else(|| corrupt("block length overflow"))?;
            elems_seen += elems;
        }
        if elems_seen != total_elems {
            return Err(corrupt("block element counts do not sum to the header"));
        }
        let payload = buf
            .get(pos..)
            .ok_or_else(|| corrupt("truncated payload"))?
            .to_vec();
        if payload.len() != offset as usize {
            return Err(corrupt("payload length disagrees with block lengths"));
        }
        // Validate every block against its skip entry and the cross-block
        // ordering invariant, accumulating the byte totals.
        let mut stored = 0usize;
        let mut ciphertext = 0usize;
        for (i, meta) in blocks.iter().enumerate() {
            let decoded = decode_block_checked(
                &payload[meta.offset as usize..(meta.offset + meta.byte_len) as usize],
                meta,
            )?;
            stored += decoded
                .iter()
                .map(|e| e.sealed.stored_bytes() + TRS_BYTES)
                .sum::<usize>();
            ciphertext += decoded
                .iter()
                .map(|e| e.sealed.ciphertext.len())
                .sum::<usize>();
            if i > 0 && blocks[i - 1].last < meta.first {
                return Err(corrupt("blocks out of TRS order"));
            }
        }
        Ok(Segment {
            payload,
            blocks,
            elems: total_elems as usize,
            stored_bytes: stored,
            ciphertext_bytes: ciphertext,
        })
    }
}

/// A merged list stored as a stack of compressed segments plus a mutable
/// uncompressed tail.  The logical sequence is the concatenation
/// `segments[0] ++ segments[1] ++ ... ++ tail`, descending in TRS —
/// positionally identical to the reference `Vec` layout.
#[derive(Debug)]
pub struct SegmentList {
    segments: Vec<Segment>,
    tail: Vec<OrderedElement>,
    config: SegmentConfig,
    /// Cached sum of segment element counts (the tail adds `tail.len()`).
    seg_elems: usize,
}

impl SegmentList {
    /// Builds the list with an explicit configuration.
    pub fn with_config(elements: Vec<OrderedElement>, config: SegmentConfig) -> Self {
        let mut segments = Vec::new();
        let seg_elems = elements.len();
        for chunk in elements.chunks(config.max_segment_elems.max(1)) {
            if !chunk.is_empty() {
                segments.push(Segment::from_elements(chunk, config.block_len));
            }
        }
        SegmentList {
            segments,
            tail: Vec::new(),
            config,
            seg_elems,
        }
    }

    /// Current number of sealed segments (tests and size reports).
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Current tail length (elements not yet sealed).
    pub fn tail_len(&self) -> usize {
        self.tail.len()
    }

    /// Seals the tail into a new segment and compacts the stack.
    fn seal_tail(&mut self) {
        if self.tail.is_empty() {
            return;
        }
        self.segments
            .push(Segment::from_elements(&self.tail, self.config.block_len));
        self.seg_elems += self.tail.len();
        self.tail.clear();
        self.compact();
    }

    /// Insert-amortized compaction: while the stack is deeper than
    /// `max_segments`, merge the adjacent pair with the smallest combined
    /// size (pure block concatenation), as long as the merged segment stays
    /// under `max_segment_elems`.
    fn compact(&mut self) {
        while self.segments.len() > self.config.max_segments {
            let mut best: Option<(usize, usize)> = None;
            for i in 0..self.segments.len() - 1 {
                let combined = self.segments[i].elems + self.segments[i + 1].elems;
                if combined <= self.config.max_segment_elems
                    && best.is_none_or(|(_, c)| combined < c)
                {
                    best = Some((i, combined));
                }
            }
            match best {
                Some((i, _)) => {
                    let right = self.segments.remove(i + 1);
                    self.segments[i].absorb(right);
                }
                None => break,
            }
        }
    }

    /// Rebuilds segment `k` with `element` inserted at local position
    /// `local` (interior inserts are rare; the cost is bounded by
    /// `max_segment_elems`).  Oversized results split in half so rebuild
    /// cost stays bounded as a list grows through its interior.
    fn rebuild_segment_with(&mut self, k: usize, local: usize, element: OrderedElement) {
        let mut decoded = self.segments[k].decode_all();
        decoded.insert(local, element);
        self.seg_elems += 1;
        if decoded.len() > self.config.max_segment_elems {
            let mid = decoded.len() / 2;
            let right = Segment::from_elements(&decoded[mid..], self.config.block_len);
            self.segments[k] = Segment::from_elements(&decoded[..mid], self.config.block_len);
            self.segments.insert(k + 1, right);
            // Splits deepen the stack just like tail seals do; compact here
            // too so an interior-insert-only workload cannot grow the stack
            // without bound.
            self.compact();
        } else {
            self.segments[k] = Segment::from_elements(&decoded, self.config.block_len);
        }
    }
}

impl OrderedList for SegmentList {
    fn from_elements(elements: Vec<OrderedElement>) -> Self {
        SegmentList::with_config(elements, SegmentConfig::default())
    }

    fn len(&self) -> usize {
        self.seg_elems + self.tail.len()
    }

    fn snapshot(&self) -> Vec<OrderedElement> {
        let mut out = Vec::with_capacity(self.len());
        for segment in &self.segments {
            out.extend(segment.decode_all());
        }
        out.extend(self.tail.iter().cloned());
        out
    }

    fn visible_total(&self, accessible: Option<&[GroupId]>, meter: &AtomicU64) -> usize {
        match accessible {
            None => self.len(),
            Some(_) => {
                // Skip entries answer for the sealed part; only the (small)
                // tail is examined element by element.
                meter.fetch_add(self.tail.len() as u64, Ordering::Relaxed);
                let sealed: usize = self
                    .segments
                    .iter()
                    .flat_map(|s| &s.blocks)
                    .map(|b| b.visible_under(accessible))
                    .sum();
                sealed
                    + self
                        .tail
                        .iter()
                        .filter(|e| is_visible(e, accessible))
                        .count()
            }
        }
    }

    fn scan(
        &self,
        start: usize,
        skip: usize,
        count: usize,
        accessible: Option<&[GroupId]>,
    ) -> (Vec<OrderedElement>, usize) {
        let total = self.len();
        let mut elements = Vec::with_capacity(count.min(total.saturating_sub(start)));
        let mut skipped = 0usize;
        let mut pos = 0usize;
        for segment in &self.segments {
            if pos + segment.elems <= start {
                pos += segment.elems;
                continue;
            }
            for (bi, meta) in segment.blocks.iter().enumerate() {
                let block_end = pos + meta.elems as usize;
                if block_end <= start {
                    pos = block_end;
                    continue;
                }
                // Wholesale visible-skip: the block lies fully past `start`
                // and every visible element in it would be skipped anyway.
                if pos >= start && skipped < skip {
                    let visible = meta.visible_under(accessible);
                    if skipped + visible <= skip {
                        skipped += visible;
                        pos = block_end;
                        continue;
                    }
                }
                // Stream the block: skipped or invisible elements are parsed
                // without materializing their ciphertext, and the read stops
                // as soon as the batch is full.
                let mut reader = segment.block_reader(bi);
                for j in 0..meta.elems as usize {
                    let raw = reader.next_trusted();
                    let idx = pos + j;
                    if idx < start || !is_visible_group(raw.group, accessible) {
                        continue;
                    }
                    if skipped < skip {
                        skipped += 1;
                        continue;
                    }
                    elements.push(raw.materialize());
                    if elements.len() == count {
                        return (elements, idx + 1);
                    }
                }
                pos = block_end;
            }
        }
        for (j, element) in self.tail.iter().enumerate() {
            let idx = self.seg_elems + j;
            if idx < start || !is_visible(element, accessible) {
                continue;
            }
            if skipped < skip {
                skipped += 1;
                continue;
            }
            elements.push(element.clone());
            if elements.len() == count {
                return (elements, idx + 1);
            }
        }
        (elements, total.max(start))
    }

    fn position_after_visible(&self, delivered: usize, accessible: Option<&[GroupId]>) -> usize {
        let mut remaining = delivered;
        let mut pos = 0usize;
        for segment in &self.segments {
            for (bi, meta) in segment.blocks.iter().enumerate() {
                if remaining == 0 {
                    return pos;
                }
                let visible = meta.visible_under(accessible);
                if visible < remaining {
                    remaining -= visible;
                    pos += meta.elems as usize;
                    continue;
                }
                // The boundary falls inside this block: stream just it,
                // materializing nothing.
                let mut reader = segment.block_reader(bi);
                for j in 0..meta.elems as usize {
                    if remaining == 0 {
                        return pos + j;
                    }
                    if is_visible_group(reader.next_trusted().group, accessible) {
                        remaining -= 1;
                    }
                }
                pos += meta.elems as usize;
            }
        }
        for (j, element) in self.tail.iter().enumerate() {
            if remaining == 0 {
                return self.seg_elems + j;
            }
            if is_visible(element, accessible) {
                remaining -= 1;
            }
        }
        self.len()
    }

    fn insert(&mut self, element: OrderedElement) -> usize {
        let trs = element.trs;
        let mut base = 0usize;
        for k in 0..self.segments.len() {
            if self.segments[k].min_trs() > trs {
                // Every element of this segment sorts strictly before the
                // new one: the partition point is further down.
                base += self.segments[k].elems;
                continue;
            }
            // The partition point lies inside this segment: locate the first
            // block whose smallest element no longer exceeds `trs`.
            let mut local = 0usize;
            let mut block = 0usize;
            for (bi, meta) in self.segments[k].blocks.iter().enumerate() {
                if meta.last_trs() > trs {
                    local += meta.elems as usize;
                } else {
                    block = bi;
                    break;
                }
            }
            let block_elems = self.segments[k].blocks[block].elems;
            let mut reader = self.segments[k].block_reader(block);
            let mut in_block = 0usize;
            for _ in 0..block_elems {
                if reader.next_trusted().trs > trs {
                    in_block += 1;
                } else {
                    break;
                }
            }
            let pos = base + local + in_block;
            self.rebuild_segment_with(k, pos - base, element);
            return pos;
        }
        // Every sealed element sorts strictly before the new one: the tail
        // absorbs the insert.
        let local = self.tail.partition_point(|e| e.trs > trs);
        self.tail.insert(local, element);
        let pos = base + local;
        if self.tail.len() > self.config.tail_threshold {
            self.seal_tail();
        }
        pos
    }

    fn stored_bytes(&self) -> usize {
        self.segments.iter().map(|s| s.stored_bytes).sum::<usize>()
            + self
                .tail
                .iter()
                .map(|e| e.sealed.stored_bytes() + TRS_BYTES)
                .sum::<usize>()
    }

    fn ciphertext_bytes(&self) -> usize {
        self.segments
            .iter()
            .map(|s| s.ciphertext_bytes)
            .sum::<usize>()
            + self
                .tail
                .iter()
                .map(|e| e.sealed.ciphertext.len())
                .sum::<usize>()
    }

    fn resident_bytes(&self) -> usize {
        std::mem::size_of::<SegmentList>()
            + self
                .segments
                .iter()
                .map(Segment::resident_bytes)
                .sum::<usize>()
            + self.tail.capacity() * std::mem::size_of::<OrderedElement>()
            + self
                .tail
                .iter()
                .map(|e| e.sealed.ciphertext.capacity())
                .sum::<usize>()
    }

    fn ordering_ok(&self) -> bool {
        self.snapshot().windows(2).all(|w| w[0].trs >= w[1].trs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::VecList;

    fn element(trs: f64, group: u32, ct: &[u8]) -> OrderedElement {
        OrderedElement {
            trs,
            group: GroupId(group),
            sealed: EncryptedElement {
                group: GroupId(group),
                ciphertext: ct.to_vec(),
            },
        }
    }

    fn sorted_elements(n: usize) -> Vec<OrderedElement> {
        (0..n)
            .map(|i| {
                element(
                    1.0 - i as f64 / n as f64,
                    (i % 3) as u32,
                    &vec![i as u8; 8 + (i % 3)],
                )
            })
            .collect()
    }

    fn small_config() -> SegmentConfig {
        SegmentConfig {
            block_len: 4,
            tail_threshold: 3,
            max_segment_elems: 16,
            max_segments: 3,
        }
    }

    #[test]
    fn segment_roundtrips_through_bytes() {
        let elements = sorted_elements(23);
        let segment = Segment::from_elements(&elements, 5);
        assert_eq!(segment.num_elements(), 23);
        assert_eq!(segment.num_blocks(), 5);
        assert_eq!(segment.decode_all(), elements);
        let bytes = segment.to_bytes();
        let back = Segment::from_bytes(&bytes).unwrap();
        assert_eq!(back, segment);
        assert_eq!(back.decode_all(), elements);
    }

    #[test]
    fn mixed_ciphertext_lengths_and_split_group_tags_roundtrip() {
        let mut elements = sorted_elements(9);
        // One element whose sealed group differs from the routing group.
        elements[4].sealed.group = GroupId(99);
        let segment = Segment::from_elements(&elements, 4);
        let back = Segment::from_bytes(&segment.to_bytes()).unwrap();
        assert_eq!(back.decode_all(), elements);
    }

    #[test]
    fn group_uniform_blocks_drop_the_per_element_tag() {
        let uniform: Vec<OrderedElement> = (0..64)
            .map(|i| element(1.0 - i as f64 / 64.0, 3, &[9u8; 16]))
            .collect();
        let mut mixed = uniform.clone();
        for (i, e) in mixed.iter_mut().enumerate() {
            let g = GroupId((i % 2) as u32);
            e.group = g;
            e.sealed.group = g;
        }
        let u = Segment::from_elements(&uniform, 8);
        let m = Segment::from_elements(&mixed, 8);
        assert_eq!(u.decode_all(), uniform);
        assert_eq!(m.decode_all(), mixed);
        // Every element of the mixed encoding pays a 1-byte group tag; the
        // uniform encoding pays 1 header byte per block instead.
        assert_eq!(m.payload.len() - u.payload.len(), 64);
        // A block whose sealed group differs from the routing group cannot
        // use the uniform mode, even if the routing groups agree.
        let mut split = uniform.clone();
        split[5].sealed.group = GroupId(99);
        let s = Segment::from_elements(&split, 8);
        assert_eq!(s.decode_all(), split);
        assert!(s.payload.len() > u.payload.len());
        // And all three round-trip through the wire format.
        for seg in [&u, &m, &s] {
            assert_eq!(&Segment::from_bytes(&seg.to_bytes()).unwrap(), seg);
        }
    }

    #[test]
    fn truncations_and_garbage_are_rejected() {
        let bytes = Segment::from_elements(&sorted_elements(12), 4).to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                Segment::from_bytes(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
        assert!(Segment::from_bytes(&[]).is_err());
        assert!(Segment::from_bytes(b"not a segment at all").is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(Segment::from_bytes(&trailing).is_err());
    }

    #[test]
    fn segment_list_matches_the_vec_layout_on_scans() {
        let elements = sorted_elements(37);
        let seg = SegmentList::with_config(elements.clone(), small_config());
        let vec = VecList::from_elements(elements);
        assert_eq!(seg.len(), vec.len());
        assert_eq!(seg.snapshot(), vec.snapshot());
        let meter = AtomicU64::new(0);
        let groups = [GroupId(0), GroupId(2)];
        for accessible in [None, Some(&groups[..])] {
            assert_eq!(
                seg.visible_total(accessible, &meter),
                vec.visible_total(accessible, &meter)
            );
            for start in [0usize, 3, 17, 36, 37, 40] {
                for skip in [0usize, 1, 5, 30] {
                    for count in [1usize, 4, 100] {
                        assert_eq!(
                            seg.scan(start, skip, count, accessible),
                            vec.scan(start, skip, count, accessible),
                            "start {start} skip {skip} count {count}"
                        );
                    }
                }
            }
            for delivered in 0..40 {
                assert_eq!(
                    seg.position_after_visible(delivered, accessible),
                    vec.position_after_visible(delivered, accessible)
                );
            }
        }
    }

    #[test]
    fn inserts_match_the_vec_layout_and_seal_the_tail() {
        let mut seg = SegmentList::with_config(sorted_elements(20), small_config());
        let mut vec = VecList::from_elements(sorted_elements(20));
        // Tail inserts (below every sealed element), interior inserts and
        // head inserts, with ties.
        let probes = [0.001, 0.002, 0.5, 0.925, 1.5, 0.5, 0.0015, 0.85, 0.0];
        for (i, &trs) in probes.iter().enumerate() {
            let e = element(trs, (i % 3) as u32, &[i as u8; 6]);
            assert_eq!(seg.insert(e.clone()), vec.insert(e), "probe {trs}");
            assert_eq!(seg.len(), vec.len());
        }
        assert_eq!(seg.snapshot(), vec.snapshot());
        assert!(seg.ordering_ok());
        // The tail stayed bounded by the threshold (sealing happened).
        assert!(seg.tail_len() <= small_config().tail_threshold);
    }

    #[test]
    fn compaction_keeps_the_stack_shallow() {
        let config = small_config();
        let mut seg = SegmentList::with_config(sorted_elements(16), config);
        let mut vec = VecList::from_elements(sorted_elements(16));
        // A long run of low-TRS inserts seals many tail segments.
        for i in 0..40 {
            let trs = 1e-6 * (40 - i) as f64;
            let e = element(trs, (i % 3) as u32, &[7u8; 4]);
            assert_eq!(seg.insert(e.clone()), vec.insert(e));
        }
        assert_eq!(seg.snapshot(), vec.snapshot());
        // max_segments is a soft bound: compaction merges adjacent pairs as
        // long as the merged segment respects max_segment_elems.
        assert!(
            seg.num_segments() <= config.max_segments + 1,
            "stack depth {} after compaction",
            seg.num_segments()
        );
        assert_eq!(seg.stored_bytes(), vec.stored_bytes());
        assert_eq!(seg.ciphertext_bytes(), vec.ciphertext_bytes());
    }

    #[test]
    fn compressed_lists_are_smaller_than_the_vec_layout() {
        // The baseline is the arena `VecList` (one ciphertext arena per
        // list), which is already much tighter than the historical
        // one-heap-allocation-per-element layout — the fair comparison the
        // ROADMAP asked for.  Mixed groups pay a 1-byte tag per element.
        let elements: Vec<OrderedElement> = (0..512)
            .map(|i| element(1.0 - i as f64 / 512.0, (i % 4) as u32, &[3u8; 44]))
            .collect();
        let seg = SegmentList::with_config(elements.clone(), SegmentConfig::default());
        let vec = VecList::from_elements(elements);
        let ratio = seg.resident_bytes() as f64 / vec.resident_bytes() as f64;
        assert!(
            ratio <= 0.75,
            "segment layout should be <= 75% of the arena vec layout, got {ratio:.3}"
        );
        // Group-uniform lists drop the per-element tag entirely and must
        // compress strictly better than the mixed-group layout.
        let uniform: Vec<OrderedElement> = (0..512)
            .map(|i| element(1.0 - i as f64 / 512.0, 2, &[3u8; 44]))
            .collect();
        let useg = SegmentList::with_config(uniform.clone(), SegmentConfig::default());
        let uvec = VecList::from_elements(uniform);
        let uratio = useg.resident_bytes() as f64 / uvec.resident_bytes() as f64;
        assert!(
            uratio < ratio,
            "group-uniform blocks should beat mixed blocks: {uratio:.3} vs {ratio:.3}"
        );
    }

    #[test]
    fn empty_lists_behave() {
        let mut seg = SegmentList::with_config(Vec::new(), small_config());
        assert_eq!(seg.len(), 0);
        assert!(seg.is_empty());
        assert_eq!(seg.scan(0, 0, 5, None), (Vec::new(), 0));
        assert_eq!(seg.position_after_visible(0, None), 0);
        assert_eq!(seg.insert(element(0.5, 0, &[1])), 0);
        assert_eq!(seg.len(), 1);
    }
}

#[cfg(test)]
mod fuzz {
    //! Property-based round-trip and corrupt-input tests, mirroring the
    //! posting-codec fuzz suite: the segment decoder faces untrusted bytes,
    //! so every truncation must error and arbitrary input must never panic.

    use proptest::prelude::*;

    use super::*;

    fn arbitrary_elements(items: Vec<(f64, u32, Vec<u8>)>) -> Vec<OrderedElement> {
        let mut elements: Vec<OrderedElement> = items
            .into_iter()
            .map(|(trs, group, ct)| OrderedElement {
                trs,
                group: GroupId(group % 8),
                sealed: EncryptedElement {
                    group: GroupId(group % 8),
                    ciphertext: ct,
                },
            })
            .collect();
        elements.sort_by(|a, b| b.trs.partial_cmp(&a.trs).expect("finite TRS"));
        elements
    }

    fn element_strategy() -> impl Strategy<Value = (f64, u32, Vec<u8>)> {
        (
            0.0f64..1.0,
            any::<u32>(),
            proptest::collection::vec(any::<u8>(), 0..24),
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        #[test]
        fn roundtrip_is_element_exact(
            items in proptest::collection::vec(element_strategy(), 1..80),
            block_len in 1usize..9
        ) {
            let elements = arbitrary_elements(items);
            let segment = Segment::from_elements(&elements, block_len);
            prop_assert_eq!(segment.decode_all(), elements.clone());
            let back = Segment::from_bytes(&segment.to_bytes()).unwrap();
            prop_assert_eq!(back.decode_all(), elements);
        }

        #[test]
        fn group_uniform_segments_roundtrip_element_exact(
            items in proptest::collection::vec(
                (0.0f64..1.0, proptest::collection::vec(any::<u8>(), 0..24)),
                1..60,
            ),
            group in 0u32..8,
            block_len in 1usize..9
        ) {
            // Every element shares one group: all blocks take the
            // group-uniform mode and must still decode element-exactly,
            // in memory and through the wire format.
            let elements = arbitrary_elements(
                items.into_iter().map(|(trs, ct)| (trs, group, ct)).collect(),
            );
            let segment = Segment::from_elements(&elements, block_len);
            prop_assert_eq!(segment.decode_all(), elements.clone());
            let back = Segment::from_bytes(&segment.to_bytes()).unwrap();
            prop_assert_eq!(back.decode_all(), elements);
        }

        #[test]
        fn every_truncation_is_rejected(
            items in proptest::collection::vec(element_strategy(), 1..40),
            cut in any::<usize>()
        ) {
            let bytes = Segment::from_elements(&arbitrary_elements(items), 4).to_bytes();
            let cut = cut % bytes.len();
            prop_assert!(Segment::from_bytes(&bytes[..cut]).is_err());
        }

        #[test]
        fn arbitrary_bytes_never_panic_the_decoder(
            bytes in proptest::collection::vec(any::<u8>(), 0..512)
        ) {
            if let Ok(segment) = Segment::from_bytes(&bytes) {
                // If arbitrary bytes happen to decode, every claimed element
                // was backed by real bytes.
                prop_assert!(segment.num_elements() <= bytes.len());
            }
        }

        #[test]
        fn bit_flips_never_panic_the_decoder(
            items in proptest::collection::vec(element_strategy(), 1..40),
            flip in any::<(usize, u8)>()
        ) {
            let mut bytes = Segment::from_elements(&arbitrary_elements(items), 4).to_bytes();
            let pos = flip.0 % bytes.len();
            bytes[pos] ^= flip.1 | 1;
            // Either a clean error or a differently-valued segment; the
            // decoder must not panic or loop.
            let _ = Segment::from_bytes(&bytes);
        }
    }
}
