//! The compressed segment layout: each merged list is a stack of immutable
//! block-encoded segments plus a small mutable uncompressed tail.
//!
//! The paper's server holds merged posting lists as sealed elements in TRS
//! order; its economics hinge on how cheaply that ordered store can be held
//! and scanned.  The plain `Vec<OrderedElement>` layout pays the full struct
//! width (plus one heap allocation) per element.  A [`SegmentList`] instead
//! keeps the elements in compressed **blocks**:
//!
//! * TRS values are delta-encoded through the order-preserving
//!   [`sortable_bits`] mapping — bit-exact, so decoded elements compare
//!   identically to the reference layout even across quantization-free ties;
//! * group tags and ciphertext lengths are varints (with a per-block
//!   "uniform ciphertext length" fast path, since sealed payloads have one
//!   fixed size in practice), and blocks whose elements all share one group
//!   use the **group-uniform mode**: the group is encoded once in the block
//!   header and the per-element tags are dropped entirely;
//! * every block carries a **skip entry**: element count, first/last TRS and
//!   per-group visible counts.
//!
//! The skip entries make `visible_total` and offset skip-scans `O(#blocks)`
//! instead of `O(#elements)` — the engine-level fix for the group-filtered
//! follow-up hot path — while point reads only decode the one or two blocks
//! they actually touch.  Position-preserving inserts land in the mutable
//! tail when their TRS sorts below every sealed element; interior inserts
//! rebuild the one segment they hit (bounded by
//! [`SegmentConfig::max_segment_elems`]).  When the tail outgrows
//! [`SegmentConfig::tail_threshold`] it is sealed into a new segment and an
//! insert-amortized compaction merges adjacent segments (pure block
//! concatenation — no re-encode) to keep the stack shallow.
//!
//! Segments serialize to a validated byte format ([`Segment::to_bytes`] /
//! [`Segment::from_bytes`]): like the posting codec, the decoder faces
//! untrusted bytes and must reject every truncation or bit flip with an
//! error, never a panic.

use std::sync::atomic::{AtomicU64, Ordering};

use zerber_base::EncryptedElement;
use zerber_corpus::GroupId;
use zerber_index::compress::{
    from_sortable_bits, read_bytes, read_varint, sortable_bits, write_bytes, write_varint,
};
use zerber_r::{OrderedElement, TRS_BYTES};

use crate::convert::{read_bytes as payload_slice, try_u32, try_usize, u64_of, usize_of};
use crate::error::StoreError;
use crate::store::{is_visible, is_visible_group, OrderedList};

/// Magic number heading every serialized segment ("ZSEG" little-endian).
const SEGMENT_MAGIC: u64 = 0x4745_535a;
/// Version of the segment wire format.  Version 2 added the group-uniform
/// block mode (one group in the block header instead of per-element tags).
const SEGMENT_VERSION: u64 = 2;

/// Tuning knobs of the segment layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentConfig {
    /// Elements per compressed block (the skip-entry granularity).
    pub block_len: usize,
    /// The tail is sealed into a segment once it grows past this.
    pub tail_threshold: usize,
    /// Compaction never merges beyond this many elements per segment, which
    /// bounds the cost of an interior-insert rebuild.
    pub max_segment_elems: usize,
    /// Compaction runs while the stack is deeper than this.
    pub max_segments: usize,
    /// Upper bound on one segment's encoded payload in bytes (clamped to
    /// the u32 offset space of the wire format).  Oversized encodes split
    /// the segment instead of panicking; tests inject small bounds to
    /// exercise the near-overflow paths without 4 GiB payloads.
    pub max_payload_bytes: usize,
}

impl Default for SegmentConfig {
    fn default() -> Self {
        SegmentConfig {
            // Streaming decode stops as soon as a batch is full, so larger
            // blocks do not slow point reads down — they amortize the skip
            // entry across more elements.
            block_len: 128,
            tail_threshold: 128,
            max_segment_elems: 4096,
            max_segments: 8,
            max_payload_bytes: usize_of(u32::MAX),
        }
    }
}

impl SegmentConfig {
    /// The effective payload bound: the configured maximum, never beyond
    /// what u32 block offsets can address.
    pub(crate) fn payload_bound(&self) -> usize {
        self.max_payload_bytes.min(usize_of(u32::MAX))
    }

    /// Conservative ceiling on the encoded size of one element (ciphertext
    /// plus varint headers and group tags).  An element whose ceiling
    /// exceeds the payload bound cannot be stored at any split granularity
    /// and is rejected upfront with [`StoreError::SegmentOverflow`].
    pub(crate) fn element_fits(&self, element: &OrderedElement) -> bool {
        element.sealed.ciphertext.len().saturating_add(64) <= self.payload_bound()
    }
}

/// Skip entry of one compressed block.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct BlockMeta {
    /// Byte offset of the block inside the segment payload.
    offset: u32,
    /// Encoded length of the block in bytes.
    byte_len: u32,
    /// Number of elements in the block.
    elems: u32,
    /// Sortable bits of the first (largest) TRS in the block.  This is the
    /// authoritative value: the first element carries no TRS bytes in the
    /// payload, later elements are deltas from it.
    first: u64,
    /// Sortable bits of the last (smallest) TRS in the block.
    last: u64,
    /// Per-group element counts, sorted by group id (exact-sized).
    counts: Box<[(GroupId, u32)]>,
}

impl BlockMeta {
    /// Elements of the block visible under `accessible`.
    fn visible_under(&self, accessible: Option<&[GroupId]>) -> usize {
        match accessible {
            None => usize_of(self.elems),
            Some(groups) => self
                .counts
                .iter()
                .filter(|(g, _)| groups.contains(g))
                .map(|&(_, n)| usize_of(n))
                .sum(),
        }
    }

    fn last_trs(&self) -> f64 {
        from_sortable_bits(self.last)
    }
}

/// One immutable compressed segment: concatenated encoded blocks plus their
/// skip entries and pre-aggregated byte totals.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    payload: Vec<u8>,
    blocks: Vec<BlockMeta>,
    elems: usize,
    stored_bytes: usize,
    ciphertext_bytes: usize,
}

fn corrupt(reason: impl std::fmt::Display) -> StoreError {
    StoreError::CorruptSegment(reason.to_string())
}

/// Encoded length of one LEB128 varint (mirrors `write_varint`).
fn varint_len(value: u64) -> usize {
    (64 - usize_of(value.max(1).leading_zeros())).div_ceil(7)
}

/// Encodes one block of ordered elements onto `out`, returning its skip
/// entry.  The chunk must be non-empty and descending in TRS (the list
/// invariant every engine maintains).  The first element's TRS lives only in
/// the skip entry; the payload carries deltas from it.  Fails with
/// [`StoreError::SegmentOverflow`] — instead of panicking — if the block
/// would push the payload past the u32 offset space.
fn encode_block(chunk: &[OrderedElement], out: &mut Vec<u8>) -> Result<BlockMeta, StoreError> {
    let offset = out.len();
    let uniform = chunk
        .iter()
        .all(|e| e.sealed.ciphertext.len() == chunk[0].sealed.ciphertext.len());
    write_varint(
        out,
        if uniform {
            u64_of(chunk[0].sealed.ciphertext.len()) + 1
        } else {
            0
        },
    );
    // Group-uniform mode: when every element of the block shares one routing
    // group (and seals under that same group), the group is encoded once in
    // the block header and the per-element tags are dropped entirely.
    let uniform_group = chunk
        .iter()
        .all(|e| e.group == chunk[0].group && e.sealed.group == e.group)
        .then_some(chunk[0].group);
    write_varint(
        out,
        match uniform_group {
            Some(g) => u64::from(g.0) + 1,
            None => 0,
        },
    );
    let first = sortable_bits(chunk[0].trs);
    let mut prev = first;
    let mut counts: Vec<(GroupId, u32)> = Vec::new();
    for (i, element) in chunk.iter().enumerate() {
        let bits = sortable_bits(element.trs);
        if i > 0 {
            let delta = prev.checked_sub(bits).ok_or(StoreError::Invariant(
                "segment blocks encode TRS-descending elements",
            ))?;
            write_varint(out, delta);
        }
        prev = bits;
        if uniform_group.is_none() {
            let same = element.sealed.group == element.group;
            write_varint(out, (u64::from(element.group.0) << 1) | u64::from(!same));
            if !same {
                write_varint(out, u64::from(element.sealed.group.0));
            }
        }
        if uniform {
            out.extend_from_slice(&element.sealed.ciphertext);
        } else {
            write_bytes(out, &element.sealed.ciphertext);
        }
        match counts.iter_mut().find(|(g, _)| *g == element.group) {
            Some((_, n)) => *n += 1,
            None => counts.push((element.group, 1)),
        }
    }
    counts.sort_by_key(|&(g, _)| g.0);
    // A payload past the u32 offset space (~4 GiB of ciphertext per
    // segment; max_segment_elems bounds elements, not bytes) degrades to an
    // error the caller answers with a segment split, never a panic.
    Ok(BlockMeta {
        offset: u32::try_from(offset).map_err(|_| StoreError::SegmentOverflow)?,
        byte_len: u32::try_from(out.len() - offset).map_err(|_| StoreError::SegmentOverflow)?,
        elems: try_u32(chunk.len())?,
        first,
        last: prev,
        counts: counts.into_boxed_slice(),
    })
}

/// One element parsed from a block, borrowing its ciphertext from the
/// payload.  Scans inspect `trs`/`group` without allocating and only
/// [`RawElement::materialize`] the elements they actually return.
pub(crate) struct RawElement<'a> {
    trs: f64,
    group: GroupId,
    sealed_group: GroupId,
    ciphertext: &'a [u8],
}

impl RawElement<'_> {
    fn materialize(&self) -> OrderedElement {
        OrderedElement {
            trs: self.trs,
            group: self.group,
            sealed: EncryptedElement {
                group: self.sealed_group,
                ciphertext: self.ciphertext.to_vec(),
            },
        }
    }
}

/// Streaming decoder over one block's payload: yields elements in order
/// without materializing the ones the caller skips.
pub(crate) struct BlockReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    uniform: u64,
    /// The block's single group in group-uniform mode (`None` = per-element
    /// tags in the payload).
    uniform_group: Option<GroupId>,
    prev: u64,
    index: u32,
    elems: u32,
}

impl<'a> BlockReader<'a> {
    fn new(bytes: &'a [u8], elems: u32, first: u64) -> Result<Self, StoreError> {
        let (uniform, pos) = read_varint(bytes, 0).map_err(corrupt)?;
        let (group_mode, pos) = read_varint(bytes, pos).map_err(corrupt)?;
        let uniform_group = if group_mode == 0 {
            None
        } else {
            let g = u32::try_from(group_mode - 1)
                .map_err(|_| corrupt("uniform group id out of range"))?;
            Some(GroupId(g))
        };
        Ok(BlockReader {
            bytes,
            pos,
            uniform,
            uniform_group,
            prev: first,
            index: 0,
            elems,
        })
    }

    fn next_raw(&mut self) -> Result<RawElement<'a>, StoreError> {
        debug_assert!(self.index < self.elems, "reader driven past the block");
        let bits = if self.index == 0 {
            self.prev
        } else {
            let (delta, p) = read_varint(self.bytes, self.pos).map_err(corrupt)?;
            self.pos = p;
            self.prev
                .checked_sub(delta)
                .ok_or_else(|| corrupt("TRS delta exceeds previous TRS"))?
        };
        let trs = from_sortable_bits(bits);
        if trs.is_nan() {
            return Err(corrupt("NaN TRS"));
        }
        self.prev = bits;
        let (group, sealed_group) = match self.uniform_group {
            // Group-uniform block: no per-element tags in the payload.
            Some(g) => (g.0, g.0),
            None => {
                let (tag, p) = read_varint(self.bytes, self.pos).map_err(corrupt)?;
                self.pos = p;
                let group =
                    u32::try_from(tag >> 1).map_err(|_| corrupt("group id out of range"))?;
                let sealed_group = if tag & 1 == 1 {
                    let (g, p) = read_varint(self.bytes, self.pos).map_err(corrupt)?;
                    self.pos = p;
                    u32::try_from(g).map_err(|_| corrupt("sealed group id out of range"))?
                } else {
                    group
                };
                (group, sealed_group)
            }
        };
        let ciphertext = if self.uniform > 0 {
            let len = try_usize(self.uniform - 1)?;
            let end = self
                .pos
                .checked_add(len)
                .ok_or_else(|| corrupt("ciphertext length overflow"))?;
            let slice = self
                .bytes
                .get(self.pos..end)
                .ok_or_else(|| corrupt("truncated ciphertext"))?;
            self.pos = end;
            slice
        } else {
            let (slice, p) = read_bytes(self.bytes, self.pos).map_err(corrupt)?;
            self.pos = p;
            slice
        };
        self.index += 1;
        Ok(RawElement {
            trs,
            group: GroupId(group),
            sealed_group: GroupId(sealed_group),
            ciphertext,
        })
    }

    /// Internal (trusted) read: the payload was encoded by this module.
    fn next_trusted(&mut self) -> RawElement<'a> {
        // analyze::allow(panic): trusted path — the payload was encoded by
        // this module, so a decode failure is a codec bug, not bad input
        self.next_raw().expect("self-encoded segment blocks decode")
    }
}

/// Decodes and validates one block against its skip entry.  Every
/// inconsistency is an error: the decoder also runs on untrusted bytes.
fn decode_block_checked(
    bytes: &[u8],
    expected: &BlockMeta,
) -> Result<Vec<OrderedElement>, StoreError> {
    let mut reader = BlockReader::new(bytes, expected.elems, expected.first)?;
    let elems = usize_of(expected.elems);
    // Each element takes at least 1 payload byte, so a corrupt count cannot
    // force a huge pre-allocation before validation fails.
    let mut out: Vec<OrderedElement> = Vec::with_capacity(elems.min(bytes.len() + 1));
    let mut counts: Vec<(GroupId, u32)> = Vec::new();
    for _ in 0..elems {
        let raw = reader.next_raw()?;
        match counts.iter_mut().find(|(g, _)| *g == raw.group) {
            Some((_, n)) => *n += 1,
            None => counts.push((raw.group, 1)),
        }
        out.push(raw.materialize());
    }
    if reader.pos != bytes.len() {
        return Err(corrupt("trailing bytes after block"));
    }
    if reader.prev != expected.last {
        return Err(corrupt("block TRS bounds disagree with skip entry"));
    }
    counts.sort_by_key(|&(g, _)| g.0);
    if counts.as_slice() != expected.counts.as_ref() {
        return Err(corrupt("block group counts disagree with skip entry"));
    }
    Ok(out)
}

impl Segment {
    /// Encodes a non-empty TRS-descending slice into a segment of
    /// `block_len`-element blocks.  Fails with
    /// [`StoreError::SegmentOverflow`] if the encoded payload would exceed
    /// `max_payload` bytes (or the u32 offset space) — callers split the
    /// slice and retry instead of crashing.
    pub(crate) fn from_elements(
        elements: &[OrderedElement],
        block_len: usize,
        max_payload: usize,
    ) -> Result<Segment, StoreError> {
        debug_assert!(!elements.is_empty(), "segments are never empty");
        let max_payload = max_payload.min(usize_of(u32::MAX));
        let mut payload = Vec::new();
        let mut blocks = Vec::with_capacity(elements.len().div_ceil(block_len.max(1)));
        for chunk in elements.chunks(block_len.max(1)) {
            blocks.push(encode_block(chunk, &mut payload)?);
            if payload.len() > max_payload {
                return Err(StoreError::SegmentOverflow);
            }
        }
        // Sealed segments are immutable: give the growth slack back.
        payload.shrink_to_fit();
        Ok(Segment {
            payload,
            blocks,
            elems: elements.len(),
            stored_bytes: elements
                .iter()
                .map(|e| e.sealed.stored_bytes() + TRS_BYTES)
                .sum(),
            ciphertext_bytes: elements.iter().map(|e| e.sealed.ciphertext.len()).sum(),
        })
    }

    /// Number of elements held.
    pub fn num_elements(&self) -> usize {
        self.elems
    }

    /// Number of compressed blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The smallest TRS in the segment (its last element).
    pub(crate) fn min_trs(&self) -> f64 {
        self.blocks
            .last()
            // analyze::allow(panic): encode_chunk_split never emits an empty
            // segment, so the block list is non-empty by construction
            .expect("segments are never empty")
            .last_trs()
    }

    /// Encoded payload length in bytes (compaction's byte-bound check).
    pub(crate) fn payload_len(&self) -> usize {
        self.payload.len()
    }

    /// Sortable bits of the last (smallest) TRS held.
    pub(crate) fn last_bits(&self) -> u64 {
        // analyze::allow(panic): encode_chunk_split never emits an empty
        // segment, so the block list is non-empty by construction
        self.blocks.last().expect("segments are never empty").last
    }

    /// Logical stored bytes (sealed payloads + TRS) of the elements held.
    pub(crate) fn stored_bytes(&self) -> usize {
        self.stored_bytes
    }

    /// Ciphertext bytes across the elements held.
    pub(crate) fn ciphertext_bytes(&self) -> usize {
        self.ciphertext_bytes
    }

    /// Per-group element counts aggregated over the segment's blocks,
    /// sorted by group id — the summary a spilled segment leaves behind so
    /// visibility accounting never has to fault the page back in.
    pub(crate) fn group_counts(&self) -> Vec<(GroupId, u32)> {
        let mut counts: Vec<(GroupId, u32)> = Vec::new();
        for meta in &self.blocks {
            for &(group, n) in meta.counts.iter() {
                match counts.iter_mut().find(|(g, _)| *g == group) {
                    Some((_, total)) => *total += n,
                    None => counts.push((group, n)),
                }
            }
        }
        counts.sort_by_key(|&(g, _)| g.0);
        counts
    }

    /// Scans this segment's slice of the logical list.  `seg_base` is the
    /// global physical index of the segment's first element; `skipped`
    /// carries the visible-skip state across segments.  Visible elements
    /// past the skip are appended to `out`; once `out` holds `count`
    /// elements the global next-physical index is returned and the scan
    /// stops.  Shared by the in-memory segment layout and the on-disk spill
    /// layout so both serve bit-identical batches.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn scan_part(
        &self,
        seg_base: usize,
        start: usize,
        skip: usize,
        skipped: &mut usize,
        count: usize,
        out: &mut Vec<OrderedElement>,
        accessible: Option<&[GroupId]>,
    ) -> Option<usize> {
        let mut pos = seg_base;
        for (bi, meta) in self.blocks.iter().enumerate() {
            let block_end = pos + usize_of(meta.elems);
            if block_end <= start {
                pos = block_end;
                continue;
            }
            // Wholesale visible-skip: the block lies fully past `start`
            // and every visible element in it would be skipped anyway.
            if pos >= start && *skipped < skip {
                let visible = meta.visible_under(accessible);
                if *skipped + visible <= skip {
                    *skipped += visible;
                    pos = block_end;
                    continue;
                }
            }
            // Stream the block: skipped or invisible elements are parsed
            // without materializing their ciphertext, and the read stops
            // as soon as the batch is full.
            let mut reader = self.block_reader(bi);
            for j in 0..usize_of(meta.elems) {
                let raw = reader.next_trusted();
                let idx = pos + j;
                if idx < start || !is_visible_group(raw.group, accessible) {
                    continue;
                }
                if *skipped < skip {
                    *skipped += 1;
                    continue;
                }
                out.push(raw.materialize());
                if out.len() == count {
                    return Some(idx + 1);
                }
            }
            pos = block_end;
        }
        None
    }

    /// Resolves the resume position inside this segment for a session that
    /// still has `remaining` visible elements to account for.  Returns the
    /// global physical index when the boundary falls inside the segment;
    /// `None` (with `remaining` decremented) when it lies further down.
    pub(crate) fn position_part(
        &self,
        seg_base: usize,
        remaining: &mut usize,
        accessible: Option<&[GroupId]>,
    ) -> Option<usize> {
        let mut pos = seg_base;
        for (bi, meta) in self.blocks.iter().enumerate() {
            if *remaining == 0 {
                return Some(pos);
            }
            let visible = meta.visible_under(accessible);
            if visible < *remaining {
                *remaining -= visible;
                pos += usize_of(meta.elems);
                continue;
            }
            // The boundary falls inside this block: stream just it,
            // materializing nothing.
            let mut reader = self.block_reader(bi);
            for j in 0..usize_of(meta.elems) {
                if *remaining == 0 {
                    return Some(pos + j);
                }
                if is_visible_group(reader.next_trusted().group, accessible) {
                    *remaining -= 1;
                }
            }
            pos += usize_of(meta.elems);
        }
        None
    }

    /// The local insertion index for `trs` inside this segment (after
    /// strictly greater elements, before equal ones).  The caller has
    /// already established that the partition point lies in this segment
    /// (`min_trs() <= trs`).
    pub(crate) fn insert_pos(&self, trs: f64) -> usize {
        // Locate the first block whose smallest element no longer exceeds
        // `trs`, then stream just that block.
        let mut local = 0usize;
        let mut block = 0usize;
        for (bi, meta) in self.blocks.iter().enumerate() {
            if meta.last_trs() > trs {
                local += usize_of(meta.elems);
            } else {
                block = bi;
                break;
            }
        }
        let block_elems = self.blocks[block].elems;
        let mut reader = self.block_reader(block);
        let mut in_block = 0usize;
        for _ in 0..block_elems {
            if reader.next_trusted().trs > trs {
                in_block += 1;
            } else {
                break;
            }
        }
        local + in_block
    }

    /// A streaming reader over block `index` (internal, trusted path: the
    /// blocks were encoded by this module).
    fn block_reader(&self, index: usize) -> BlockReader<'_> {
        let meta = &self.blocks[index];
        let bytes = payload_slice(
            &self.payload,
            usize_of(meta.offset),
            usize_of(meta.byte_len),
        )
        // analyze::allow(panic): trusted path — the block offsets were
        // computed by this module's encoder against this same payload
        .expect("self-encoded block offsets are in bounds");
        BlockReader::new(bytes, meta.elems, meta.first)
            // analyze::allow(panic): trusted path — the payload was encoded
            // by this module, so a decode failure is a codec bug
            .expect("self-encoded segment blocks decode")
    }

    /// Decodes block `index` in full (internal, trusted path).
    fn decode_block(&self, index: usize) -> Vec<OrderedElement> {
        let meta = &self.blocks[index];
        let mut reader = self.block_reader(index);
        (0..meta.elems)
            .map(|_| reader.next_trusted().materialize())
            .collect()
    }

    /// Decodes the whole segment in order.
    pub(crate) fn decode_all(&self) -> Vec<OrderedElement> {
        let mut out = Vec::with_capacity(self.elems);
        for i in 0..self.blocks.len() {
            out.extend(self.decode_block(i));
        }
        out
    }

    /// Appends another segment (the positionally next one) onto this one:
    /// pure block concatenation, no re-encode.  Refuses — before mutating
    /// anything, handing `other` back untouched — a merge whose combined
    /// payload would overflow the u32 offset space; compaction keeps the
    /// pair separate instead of panicking.
    pub(crate) fn absorb(&mut self, other: Segment) -> Result<(), Segment> {
        if self
            .payload
            .len()
            .checked_add(other.payload.len())
            .is_none_or(|total| total > usize_of(u32::MAX))
        {
            return Err(other);
        }
        // In the u32 range by the check above.
        let Ok(shift) = try_u32(self.payload.len()) else {
            return Err(other);
        };
        self.payload.extend_from_slice(&other.payload);
        self.payload.shrink_to_fit();
        self.blocks.extend(other.blocks.into_iter().map(|mut b| {
            b.offset += shift;
            b
        }));
        self.elems += other.elems;
        self.stored_bytes += other.stored_bytes;
        self.ciphertext_bytes += other.ciphertext_bytes;
        Ok(())
    }

    /// Estimated resident memory of the segment.
    pub(crate) fn resident_bytes(&self) -> usize {
        std::mem::size_of::<Segment>()
            + self.payload.capacity()
            + self.blocks.capacity() * std::mem::size_of::<BlockMeta>()
            + self
                .blocks
                .iter()
                .map(|b| b.counts.len() * std::mem::size_of::<(GroupId, u32)>())
                .sum::<usize>()
    }

    /// Exact byte length of [`Segment::to_bytes`] without materializing the
    /// buffer — the live-byte accounting the spill engine's compaction
    /// planner reads when deciding whether a page file is worth rewriting.
    pub fn encoded_len(&self) -> usize {
        let mut len = varint_len(SEGMENT_MAGIC)
            + varint_len(SEGMENT_VERSION)
            + varint_len(u64_of(self.elems))
            + varint_len(u64_of(self.blocks.len()));
        for meta in &self.blocks {
            len += varint_len(u64::from(meta.elems))
                + varint_len(meta.first)
                + varint_len(meta.last)
                + varint_len(u64_of(meta.counts.len()))
                + varint_len(u64::from(meta.byte_len));
            for &(group, count) in &meta.counts {
                len += varint_len(u64::from(group.0)) + varint_len(u64::from(count));
            }
        }
        len + self.payload.len()
    }

    /// Serializes the segment to its validated wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.payload.len() + self.blocks.len() * 24 + 16);
        write_varint(&mut out, SEGMENT_MAGIC);
        write_varint(&mut out, SEGMENT_VERSION);
        write_varint(&mut out, u64_of(self.elems));
        write_varint(&mut out, u64_of(self.blocks.len()));
        for meta in &self.blocks {
            write_varint(&mut out, u64::from(meta.elems));
            write_varint(&mut out, meta.first);
            write_varint(&mut out, meta.last);
            write_varint(&mut out, u64_of(meta.counts.len()));
            for &(group, count) in &meta.counts {
                write_varint(&mut out, u64::from(group.0));
                write_varint(&mut out, u64::from(count));
            }
            write_varint(&mut out, u64::from(meta.byte_len));
        }
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses and fully validates a serialized segment.  Truncated,
    /// bit-flipped or internally inconsistent bytes come back as
    /// [`StoreError::CorruptSegment`]; the decoder never panics and never
    /// trusts an untrusted count for allocation.
    pub fn from_bytes(buf: &[u8]) -> Result<Segment, StoreError> {
        let (magic, pos) = read_varint(buf, 0).map_err(corrupt)?;
        if magic != SEGMENT_MAGIC {
            return Err(corrupt("bad segment magic"));
        }
        let (version, pos) = read_varint(buf, pos).map_err(corrupt)?;
        if version != SEGMENT_VERSION {
            return Err(corrupt(format!("unsupported segment version {version}")));
        }
        let (total_elems, pos) = read_varint(buf, pos).map_err(corrupt)?;
        let (num_blocks, mut pos) = read_varint(buf, pos).map_err(corrupt)?;
        // The encoder never produces more elements than u32 block offsets
        // can index; a larger claim is corrupt, and capping here keeps the
        // `as usize` conversions below lossless on every platform.
        if total_elems > u64::from(u32::MAX) {
            return Err(corrupt("implausible total element count"));
        }
        // Every block header takes at least 6 bytes.
        if num_blocks > u64_of(buf.len() / 6 + 1) {
            return Err(corrupt("implausible block count"));
        }
        let num_blocks = try_usize(num_blocks)?;
        let mut blocks = Vec::with_capacity(num_blocks);
        let mut offset = 0u32;
        let mut elems_seen = 0u64;
        for _ in 0..num_blocks {
            let (elems, p) = read_varint(buf, pos).map_err(corrupt)?;
            let (first, p) = read_varint(buf, p).map_err(corrupt)?;
            let (last, p) = read_varint(buf, p).map_err(corrupt)?;
            let (num_counts, mut p) = read_varint(buf, p).map_err(corrupt)?;
            if elems == 0 || elems > u64::from(u32::MAX) {
                return Err(corrupt("block element count out of range"));
            }
            if first < last {
                return Err(corrupt("block TRS bounds out of order"));
            }
            if num_counts == 0 || num_counts > elems {
                return Err(corrupt("implausible group-count entries"));
            }
            let mut counts: Vec<(GroupId, u32)> =
                Vec::with_capacity(try_usize(num_counts)?.min(buf.len() / 2 + 1));
            let mut count_sum = 0u64;
            for _ in 0..num_counts {
                let (group, q) = read_varint(buf, p).map_err(corrupt)?;
                let (count, q) = read_varint(buf, q).map_err(corrupt)?;
                p = q;
                if count == 0 || count > elems {
                    return Err(corrupt("group count entry out of range"));
                }
                let group =
                    u32::try_from(group).map_err(|_| corrupt("group count entry out of range"))?;
                // In the u32 range: count <= elems, and elems was range
                // checked above.
                let count32 =
                    u32::try_from(count).map_err(|_| corrupt("group count entry out of range"))?;
                if let Some(&(prev, _)) = counts.last() {
                    if group <= prev.0 {
                        return Err(corrupt("group count entries out of order"));
                    }
                }
                counts.push((GroupId(group), count32));
                count_sum += count;
            }
            if count_sum != elems {
                return Err(corrupt("group counts do not cover the block"));
            }
            let (byte_len, p) = read_varint(buf, p).map_err(corrupt)?;
            pos = p;
            let byte_len = u32::try_from(byte_len).map_err(|_| corrupt("block length overflow"))?;
            blocks.push(BlockMeta {
                offset,
                byte_len,
                elems: u32::try_from(elems)
                    .map_err(|_| corrupt("block element count out of range"))?,
                first,
                last,
                counts: counts.into_boxed_slice(),
            });
            offset = offset
                .checked_add(byte_len)
                .ok_or_else(|| corrupt("block length overflow"))?;
            elems_seen += elems;
        }
        if elems_seen != total_elems {
            return Err(corrupt("block element counts do not sum to the header"));
        }
        let payload = buf
            .get(pos..)
            .ok_or_else(|| corrupt("truncated payload"))?
            .to_vec();
        if payload.len() != usize_of(offset) {
            return Err(corrupt("payload length disagrees with block lengths"));
        }
        // Validate every block against its skip entry and the cross-block
        // ordering invariant, accumulating the byte totals.
        let mut stored = 0usize;
        let mut ciphertext = 0usize;
        for (i, meta) in blocks.iter().enumerate() {
            let block_bytes =
                payload_slice(&payload, usize_of(meta.offset), usize_of(meta.byte_len))?;
            let decoded = decode_block_checked(block_bytes, meta)?;
            stored += decoded
                .iter()
                .map(|e| e.sealed.stored_bytes() + TRS_BYTES)
                .sum::<usize>();
            ciphertext += decoded
                .iter()
                .map(|e| e.sealed.ciphertext.len())
                .sum::<usize>();
            if i > 0 && blocks[i - 1].last < meta.first {
                return Err(corrupt("blocks out of TRS order"));
            }
        }
        Ok(Segment {
            payload,
            blocks,
            elems: try_usize(total_elems)?,
            stored_bytes: stored,
            ciphertext_bytes: ciphertext,
        })
    }
}

/// A merged list stored as a stack of compressed segments plus a mutable
/// uncompressed tail.  The logical sequence is the concatenation
/// `segments[0] ++ segments[1] ++ ... ++ tail`, descending in TRS —
/// positionally identical to the reference `Vec` layout.
#[derive(Debug)]
pub struct SegmentList {
    segments: Vec<Segment>,
    tail: Vec<OrderedElement>,
    config: SegmentConfig,
    /// Cached sum of segment element counts (the tail adds `tail.len()`).
    seg_elems: usize,
}

/// Encodes a TRS-descending chunk into one or more segments, splitting in
/// half whenever the encoded payload would exceed the configured bound.  A
/// single element that cannot fit at any granularity surfaces as
/// [`StoreError::SegmentOverflow`] — the caller degrades instead of the
/// server crashing on a ~4 GiB list.
pub(crate) fn encode_chunk_split(
    chunk: &[OrderedElement],
    config: &SegmentConfig,
    out: &mut Vec<Segment>,
) -> Result<(), StoreError> {
    if chunk.is_empty() {
        return Ok(());
    }
    match Segment::from_elements(chunk, config.block_len, config.payload_bound()) {
        Ok(segment) => {
            out.push(segment);
            Ok(())
        }
        Err(StoreError::SegmentOverflow) if chunk.len() > 1 => {
            let (lo, hi) = chunk.split_at(chunk.len() / 2);
            encode_chunk_split(lo, config, out)?;
            encode_chunk_split(hi, config, out)
        }
        Err(e) => Err(e),
    }
}

/// Encodes a full ordered list into a segment stack respecting both the
/// element and payload bounds of `config`.
pub(crate) fn encode_segments(
    elements: &[OrderedElement],
    config: &SegmentConfig,
) -> Result<Vec<Segment>, StoreError> {
    let mut out = Vec::new();
    for chunk in elements.chunks(config.max_segment_elems.max(1)) {
        encode_chunk_split(chunk, config, &mut out)?;
    }
    Ok(out)
}

/// Re-encodes one rebuilt (post-insert) segment's elements, splitting in
/// half when the element bound is exceeded so rebuild cost stays bounded as
/// a list grows through its interior.  Shared by the in-memory segment
/// layout and the on-disk spill layout so their split policy cannot
/// diverge.
pub(crate) fn encode_rebuilt(
    decoded: &[OrderedElement],
    config: &SegmentConfig,
) -> Result<Vec<Segment>, StoreError> {
    let mut rebuilt = Vec::new();
    if decoded.len() > config.max_segment_elems {
        let (lo, hi) = decoded.split_at(decoded.len() / 2);
        encode_chunk_split(lo, config, &mut rebuilt)?;
        encode_chunk_split(hi, config, &mut rebuilt)?;
    } else {
        encode_chunk_split(decoded, config, &mut rebuilt)?;
    }
    Ok(rebuilt)
}

impl SegmentList {
    /// Builds the list with an explicit configuration.
    pub fn with_config(
        elements: Vec<OrderedElement>,
        config: SegmentConfig,
    ) -> Result<Self, StoreError> {
        let seg_elems = elements.len();
        let segments = encode_segments(&elements, &config)?;
        Ok(SegmentList {
            segments,
            tail: Vec::new(),
            config,
            seg_elems,
        })
    }

    /// Current number of sealed segments (tests and size reports).
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Current tail length (elements not yet sealed).
    pub fn tail_len(&self) -> usize {
        self.tail.len()
    }

    /// Seals the tail into new segment(s) and compacts the stack.  The tail
    /// is only cleared once every segment encoded, so a failed seal leaves
    /// the list untouched.
    fn seal_tail(&mut self) -> Result<(), StoreError> {
        if self.tail.is_empty() {
            return Ok(());
        }
        let mut sealed = Vec::new();
        encode_chunk_split(&self.tail, &self.config, &mut sealed)?;
        self.seg_elems += self.tail.len();
        self.segments.extend(sealed);
        self.tail.clear();
        self.compact();
        Ok(())
    }

    /// Insert-amortized compaction: while the stack is deeper than
    /// `max_segments`, merge the adjacent pair with the smallest combined
    /// size (pure block concatenation), as long as the merged segment stays
    /// under `max_segment_elems` elements and the configured payload bound.
    fn compact(&mut self) {
        let byte_bound = self.config.payload_bound();
        while self.segments.len() > self.config.max_segments {
            let mut best: Option<(usize, usize)> = None;
            for i in 0..self.segments.len() - 1 {
                let combined = self.segments[i].elems + self.segments[i + 1].elems;
                let combined_bytes =
                    self.segments[i].payload_len() + self.segments[i + 1].payload_len();
                if combined <= self.config.max_segment_elems
                    && combined_bytes <= byte_bound
                    && best.is_none_or(|(_, c)| combined < c)
                {
                    best = Some((i, combined));
                }
            }
            match best {
                Some((i, _)) => {
                    let right = self.segments.remove(i + 1);
                    if let Err(right) = self.segments[i].absorb(right) {
                        // Unreachable given the byte-bound pre-check, but if
                        // the merge refuses, reattach and stop compacting.
                        self.segments.insert(i + 1, right);
                        break;
                    }
                }
                None => break,
            }
        }
    }

    /// Rebuilds segment `k` with `element` inserted at local position
    /// `local` (interior inserts are rare; the cost is bounded by
    /// `max_segment_elems`).  Oversized results split — by element count or
    /// payload bytes — so rebuild cost stays bounded as a list grows through
    /// its interior.  The stack is only replaced once every piece encoded,
    /// so a failed rebuild leaves the list untouched.
    fn rebuild_segment_with(
        &mut self,
        k: usize,
        local: usize,
        element: OrderedElement,
    ) -> Result<(), StoreError> {
        let mut decoded = self.segments[k].decode_all();
        decoded.insert(local, element);
        let rebuilt = encode_rebuilt(&decoded, &self.config)?;
        self.seg_elems += 1;
        let deepened = rebuilt.len() > 1;
        self.segments.splice(k..=k, rebuilt);
        if deepened {
            // Splits deepen the stack just like tail seals do; compact here
            // too so an interior-insert-only workload cannot grow the stack
            // without bound.
            self.compact();
        }
        Ok(())
    }
}

impl OrderedList for SegmentList {
    fn len(&self) -> usize {
        self.seg_elems + self.tail.len()
    }

    fn snapshot(&self) -> Result<Vec<OrderedElement>, StoreError> {
        let mut out = Vec::with_capacity(self.len());
        for segment in &self.segments {
            out.extend(segment.decode_all());
        }
        out.extend(self.tail.iter().cloned());
        Ok(out)
    }

    fn visible_total(&self, accessible: Option<&[GroupId]>, meter: &AtomicU64) -> usize {
        match accessible {
            None => self.len(),
            Some(_) => {
                // Skip entries answer for the sealed part; only the (small)
                // tail is examined element by element.
                meter.fetch_add(u64_of(self.tail.len()), Ordering::Relaxed);
                let sealed: usize = self
                    .segments
                    .iter()
                    .flat_map(|s| &s.blocks)
                    .map(|b| b.visible_under(accessible))
                    .sum();
                sealed
                    + self
                        .tail
                        .iter()
                        .filter(|e| is_visible(e, accessible))
                        .count()
            }
        }
    }

    fn scan(
        &self,
        start: usize,
        skip: usize,
        count: usize,
        accessible: Option<&[GroupId]>,
    ) -> Result<(Vec<OrderedElement>, usize), StoreError> {
        let total = self.len();
        let mut elements = Vec::with_capacity(count.min(total.saturating_sub(start)));
        let mut skipped = 0usize;
        let mut pos = 0usize;
        for segment in &self.segments {
            if pos + segment.elems <= start {
                pos += segment.elems;
                continue;
            }
            if let Some(next) = segment.scan_part(
                pos,
                start,
                skip,
                &mut skipped,
                count,
                &mut elements,
                accessible,
            ) {
                return Ok((elements, next));
            }
            pos += segment.elems;
        }
        for (j, element) in self.tail.iter().enumerate() {
            let idx = self.seg_elems + j;
            if idx < start || !is_visible(element, accessible) {
                continue;
            }
            if skipped < skip {
                skipped += 1;
                continue;
            }
            elements.push(element.clone());
            if elements.len() == count {
                return Ok((elements, idx + 1));
            }
        }
        Ok((elements, total.max(start)))
    }

    fn position_after_visible(
        &self,
        delivered: usize,
        accessible: Option<&[GroupId]>,
    ) -> Result<usize, StoreError> {
        let mut remaining = delivered;
        let mut pos = 0usize;
        for segment in &self.segments {
            if let Some(found) = segment.position_part(pos, &mut remaining, accessible) {
                return Ok(found);
            }
            pos += segment.elems;
        }
        for (j, element) in self.tail.iter().enumerate() {
            if remaining == 0 {
                return Ok(self.seg_elems + j);
            }
            if is_visible(element, accessible) {
                remaining -= 1;
            }
        }
        Ok(self.len())
    }

    fn insert(&mut self, element: OrderedElement) -> Result<usize, StoreError> {
        if !self.config.element_fits(&element) {
            return Err(StoreError::SegmentOverflow);
        }
        let trs = element.trs;
        let mut base = 0usize;
        for k in 0..self.segments.len() {
            if self.segments[k].min_trs() > trs {
                // Every element of this segment sorts strictly before the
                // new one: the partition point is further down.
                base += self.segments[k].elems;
                continue;
            }
            // The partition point lies inside this segment.
            let local = self.segments[k].insert_pos(trs);
            let pos = base + local;
            self.rebuild_segment_with(k, local, element)?;
            return Ok(pos);
        }
        // Every sealed element sorts strictly before the new one: the tail
        // absorbs the insert.
        let local = self.tail.partition_point(|e| e.trs > trs);
        self.tail.insert(local, element);
        let pos = base + local;
        if self.tail.len() > self.config.tail_threshold {
            if let Err(e) = self.seal_tail() {
                // A failed seal leaves the tail intact: take the new element
                // back out so an errored insert never half-applies (the
                // caller skips the generation bump and cursor shifts).
                self.tail.remove(local);
                return Err(e);
            }
        }
        Ok(pos)
    }

    fn stored_bytes(&self) -> usize {
        self.segments.iter().map(|s| s.stored_bytes).sum::<usize>()
            + self
                .tail
                .iter()
                .map(|e| e.sealed.stored_bytes() + TRS_BYTES)
                .sum::<usize>()
    }

    fn ciphertext_bytes(&self) -> usize {
        self.segments
            .iter()
            .map(|s| s.ciphertext_bytes)
            .sum::<usize>()
            + self
                .tail
                .iter()
                .map(|e| e.sealed.ciphertext.len())
                .sum::<usize>()
    }

    fn resident_bytes(&self) -> usize {
        std::mem::size_of::<SegmentList>()
            + self
                .segments
                .iter()
                .map(Segment::resident_bytes)
                .sum::<usize>()
            + self.tail.capacity() * std::mem::size_of::<OrderedElement>()
            + self
                .tail
                .iter()
                .map(|e| e.sealed.ciphertext.capacity())
                .sum::<usize>()
    }

    fn ordering_ok(&self) -> bool {
        self.snapshot()
            .map(|s| s.windows(2).all(|w| w[0].trs >= w[1].trs))
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::VecList;

    fn element(trs: f64, group: u32, ct: &[u8]) -> OrderedElement {
        OrderedElement {
            trs,
            group: GroupId(group),
            sealed: EncryptedElement {
                group: GroupId(group),
                ciphertext: ct.to_vec(),
            },
        }
    }

    fn sorted_elements(n: usize) -> Vec<OrderedElement> {
        (0..n)
            .map(|i| {
                element(
                    1.0 - i as f64 / n as f64,
                    (i % 3) as u32,
                    &vec![i as u8; 8 + (i % 3)],
                )
            })
            .collect()
    }

    fn small_config() -> SegmentConfig {
        SegmentConfig {
            block_len: 4,
            tail_threshold: 3,
            max_segment_elems: 16,
            max_segments: 3,
            max_payload_bytes: u32::MAX as usize,
        }
    }

    #[test]
    fn segment_roundtrips_through_bytes() {
        let elements = sorted_elements(23);
        let segment = Segment::from_elements(&elements, 5, u32::MAX as usize).unwrap();
        assert_eq!(segment.num_elements(), 23);
        assert_eq!(segment.num_blocks(), 5);
        assert_eq!(segment.decode_all(), elements);
        let bytes = segment.to_bytes();
        let back = Segment::from_bytes(&bytes).unwrap();
        assert_eq!(back, segment);
        assert_eq!(back.decode_all(), elements);
    }

    #[test]
    fn mixed_ciphertext_lengths_and_split_group_tags_roundtrip() {
        let mut elements = sorted_elements(9);
        // One element whose sealed group differs from the routing group.
        elements[4].sealed.group = GroupId(99);
        let segment = Segment::from_elements(&elements, 4, u32::MAX as usize).unwrap();
        let back = Segment::from_bytes(&segment.to_bytes()).unwrap();
        assert_eq!(back.decode_all(), elements);
    }

    #[test]
    fn group_uniform_blocks_drop_the_per_element_tag() {
        let uniform: Vec<OrderedElement> = (0..64)
            .map(|i| element(1.0 - i as f64 / 64.0, 3, &[9u8; 16]))
            .collect();
        let mut mixed = uniform.clone();
        for (i, e) in mixed.iter_mut().enumerate() {
            let g = GroupId((i % 2) as u32);
            e.group = g;
            e.sealed.group = g;
        }
        let u = Segment::from_elements(&uniform, 8, u32::MAX as usize).unwrap();
        let m = Segment::from_elements(&mixed, 8, u32::MAX as usize).unwrap();
        assert_eq!(u.decode_all(), uniform);
        assert_eq!(m.decode_all(), mixed);
        // Every element of the mixed encoding pays a 1-byte group tag; the
        // uniform encoding pays 1 header byte per block instead.
        assert_eq!(m.payload.len() - u.payload.len(), 64);
        // A block whose sealed group differs from the routing group cannot
        // use the uniform mode, even if the routing groups agree.
        let mut split = uniform.clone();
        split[5].sealed.group = GroupId(99);
        let s = Segment::from_elements(&split, 8, u32::MAX as usize).unwrap();
        assert_eq!(s.decode_all(), split);
        assert!(s.payload.len() > u.payload.len());
        // And all three round-trip through the wire format.
        for seg in [&u, &m, &s] {
            assert_eq!(&Segment::from_bytes(&seg.to_bytes()).unwrap(), seg);
        }
    }

    #[test]
    fn truncations_and_garbage_are_rejected() {
        let bytes = Segment::from_elements(&sorted_elements(12), 4, u32::MAX as usize)
            .unwrap()
            .to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                Segment::from_bytes(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
        assert!(Segment::from_bytes(&[]).is_err());
        assert!(Segment::from_bytes(b"not a segment at all").is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(Segment::from_bytes(&trailing).is_err());
    }

    #[test]
    fn segment_list_matches_the_vec_layout_on_scans() {
        let elements = sorted_elements(37);
        let seg = SegmentList::with_config(elements.clone(), small_config()).unwrap();
        let vec = VecList::from_elements(elements);
        assert_eq!(seg.len(), vec.len());
        assert_eq!(seg.snapshot().unwrap(), vec.snapshot().unwrap());
        let meter = AtomicU64::new(0);
        let groups = [GroupId(0), GroupId(2)];
        for accessible in [None, Some(&groups[..])] {
            assert_eq!(
                seg.visible_total(accessible, &meter),
                vec.visible_total(accessible, &meter)
            );
            for start in [0usize, 3, 17, 36, 37, 40] {
                for skip in [0usize, 1, 5, 30] {
                    for count in [1usize, 4, 100] {
                        assert_eq!(
                            seg.scan(start, skip, count, accessible).unwrap(),
                            vec.scan(start, skip, count, accessible).unwrap(),
                            "start {start} skip {skip} count {count}"
                        );
                    }
                }
            }
            for delivered in 0..40 {
                assert_eq!(
                    seg.position_after_visible(delivered, accessible).unwrap(),
                    vec.position_after_visible(delivered, accessible).unwrap()
                );
            }
        }
    }

    #[test]
    fn inserts_match_the_vec_layout_and_seal_the_tail() {
        let mut seg = SegmentList::with_config(sorted_elements(20), small_config()).unwrap();
        let mut vec = VecList::from_elements(sorted_elements(20));
        // Tail inserts (below every sealed element), interior inserts and
        // head inserts, with ties.
        let probes = [0.001, 0.002, 0.5, 0.925, 1.5, 0.5, 0.0015, 0.85, 0.0];
        for (i, &trs) in probes.iter().enumerate() {
            let e = element(trs, (i % 3) as u32, &[i as u8; 6]);
            assert_eq!(
                seg.insert(e.clone()).unwrap(),
                vec.insert(e).unwrap(),
                "probe {trs}"
            );
            assert_eq!(seg.len(), vec.len());
        }
        assert_eq!(seg.snapshot().unwrap(), vec.snapshot().unwrap());
        assert!(seg.ordering_ok());
        // The tail stayed bounded by the threshold (sealing happened).
        assert!(seg.tail_len() <= small_config().tail_threshold);
    }

    #[test]
    fn compaction_keeps_the_stack_shallow() {
        let config = small_config();
        let mut seg = SegmentList::with_config(sorted_elements(16), config).unwrap();
        let mut vec = VecList::from_elements(sorted_elements(16));
        // A long run of low-TRS inserts seals many tail segments.
        for i in 0..40 {
            let trs = 1e-6 * (40 - i) as f64;
            let e = element(trs, (i % 3) as u32, &[7u8; 4]);
            assert_eq!(seg.insert(e.clone()).unwrap(), vec.insert(e).unwrap());
        }
        assert_eq!(seg.snapshot().unwrap(), vec.snapshot().unwrap());
        // max_segments is a soft bound: compaction merges adjacent pairs as
        // long as the merged segment respects max_segment_elems.
        assert!(
            seg.num_segments() <= config.max_segments + 1,
            "stack depth {} after compaction",
            seg.num_segments()
        );
        assert_eq!(seg.stored_bytes(), vec.stored_bytes());
        assert_eq!(seg.ciphertext_bytes(), vec.ciphertext_bytes());
    }

    #[test]
    fn compressed_lists_are_smaller_than_the_vec_layout() {
        // The baseline is the arena `VecList` (one ciphertext arena per
        // list), which is already much tighter than the historical
        // one-heap-allocation-per-element layout — the fair comparison the
        // ROADMAP asked for.  Mixed groups pay a 1-byte tag per element.
        let elements: Vec<OrderedElement> = (0..512)
            .map(|i| element(1.0 - i as f64 / 512.0, (i % 4) as u32, &[3u8; 44]))
            .collect();
        let seg = SegmentList::with_config(elements.clone(), SegmentConfig::default()).unwrap();
        let vec = VecList::from_elements(elements);
        let ratio = seg.resident_bytes() as f64 / vec.resident_bytes() as f64;
        assert!(
            ratio <= 0.75,
            "segment layout should be <= 75% of the arena vec layout, got {ratio:.3}"
        );
        // Group-uniform lists drop the per-element tag entirely and must
        // compress strictly better than the mixed-group layout.
        let uniform: Vec<OrderedElement> = (0..512)
            .map(|i| element(1.0 - i as f64 / 512.0, 2, &[3u8; 44]))
            .collect();
        let useg = SegmentList::with_config(uniform.clone(), SegmentConfig::default()).unwrap();
        let uvec = VecList::from_elements(uniform);
        let uratio = useg.resident_bytes() as f64 / uvec.resident_bytes() as f64;
        assert!(
            uratio < ratio,
            "group-uniform blocks should beat mixed blocks: {uratio:.3} vs {ratio:.3}"
        );
    }

    #[test]
    fn empty_lists_behave() {
        let mut seg = SegmentList::with_config(Vec::new(), small_config()).unwrap();
        assert_eq!(seg.len(), 0);
        assert!(seg.is_empty());
        assert_eq!(seg.scan(0, 0, 5, None).unwrap(), (Vec::new(), 0));
        assert_eq!(seg.position_after_visible(0, None).unwrap(), 0);
        assert_eq!(seg.insert(element(0.5, 0, &[1])).unwrap(), 0);
        assert_eq!(seg.len(), 1);
    }

    #[test]
    fn near_overflow_payloads_split_instead_of_panicking() {
        // Regression for the former
        // `expect("segment payload exceeds u32 offsets")` panics: with a
        // small injected payload bound, builds and inserts must degrade by
        // splitting segments, never crash, and stay element-identical to
        // the reference layout.
        let config = SegmentConfig {
            block_len: 2,
            tail_threshold: 2,
            max_segment_elems: 64,
            max_segments: 3,
            max_payload_bytes: 96,
        };
        let elements: Vec<OrderedElement> = (0..24)
            .map(|i| element(1.0 - i as f64 / 24.0, (i % 2) as u32, &[i as u8; 20]))
            .collect();
        let mut seg = SegmentList::with_config(elements.clone(), config).unwrap();
        let mut vec = VecList::from_elements(elements);
        assert_eq!(seg.snapshot().unwrap(), vec.snapshot().unwrap());
        // Every segment respects the byte bound, so the stack is forced
        // deeper than max_segments would otherwise allow.
        assert!(seg.num_segments() > config.max_segments);
        // Inserts across the whole range (tail seals and interior rebuilds
        // both re-encode under the bound).
        for (i, trs) in [0.99, 0.5, 0.01, 0.5, 0.73].into_iter().enumerate() {
            let e = element(trs, (i % 2) as u32, &[7u8; 20]);
            assert_eq!(
                seg.insert(e.clone()).unwrap(),
                vec.insert(e).unwrap(),
                "probe {trs}"
            );
        }
        assert_eq!(seg.snapshot().unwrap(), vec.snapshot().unwrap());
        assert!(seg.ordering_ok());
    }

    #[test]
    fn oversized_single_elements_error_without_corrupting_the_list() {
        let config = SegmentConfig {
            max_payload_bytes: 128,
            ..small_config()
        };
        let mut seg = SegmentList::with_config(sorted_elements(8), config).unwrap();
        let before = seg.snapshot().unwrap();
        // One element whose ciphertext alone cannot fit under the bound at
        // any split granularity: a clean error, list untouched.
        let huge = element(0.5, 0, &[9u8; 256]);
        assert!(matches!(
            seg.insert(huge.clone()),
            Err(StoreError::SegmentOverflow)
        ));
        assert_eq!(seg.snapshot().unwrap(), before);
        // The same element poisons a fresh build the same way.
        let mut poisoned = sorted_elements(8);
        poisoned.insert(4, huge);
        assert!(matches!(
            SegmentList::with_config(poisoned, config),
            Err(StoreError::SegmentOverflow)
        ));
    }

    /// Re-encodes `bytes` with varint field `index` replaced by `value`
    /// (fields are the header varints in wire order; ciphertext payload is
    /// carried over untouched, starting where the block headers end).
    fn tamper_varint(bytes: &[u8], index: usize, value: u64, header_fields: usize) -> Vec<u8> {
        let mut fields = Vec::new();
        let mut pos = 0;
        for _ in 0..header_fields {
            let (v, p) = read_varint(bytes, pos).unwrap();
            fields.push(v);
            pos = p;
        }
        fields[index] = value;
        let mut out = Vec::new();
        for v in fields {
            write_varint(&mut out, v);
        }
        out.extend_from_slice(&bytes[pos..]);
        out
    }

    #[test]
    fn varint_consistent_header_tampering_is_rejected_as_corrupt() {
        // A single-block, single-group segment: header varints are
        // [magic, version, total_elems, num_blocks,
        //  elems, first, last, num_counts, group, count, byte_len].
        let elements: Vec<OrderedElement> = (0..4)
            .map(|i| element(1.0 - i as f64 / 8.0, 1, &[i as u8; 6]))
            .collect();
        let segment = Segment::from_elements(&elements, 8, u32::MAX as usize).unwrap();
        let bytes = segment.to_bytes();
        assert!(Segment::from_bytes(&bytes).is_ok());
        const FIELDS: usize = 11;
        // total_elems disagreeing with the per-block sum: rejected, not
        // mis-indexed.
        for bogus in [3u64, 5, 0, u64::from(u32::MAX) + 1] {
            let tampered = tamper_varint(&bytes, 2, bogus, FIELDS);
            assert!(
                Segment::from_bytes(&tampered).is_err(),
                "total_elems {bogus} must not decode"
            );
        }
        // Block element count drifting from the group counts / payload.
        for bogus in [3u64, 5] {
            assert!(Segment::from_bytes(&tamper_varint(&bytes, 4, bogus, FIELDS)).is_err());
        }
        // Group count no longer covering the block.
        assert!(Segment::from_bytes(&tamper_varint(&bytes, 9, 3, FIELDS)).is_err());
        // byte_len disagreeing with the actual payload length: the
        // truncated-but-varint-consistent page.
        for delta in [-1i64, 1, 7] {
            let (byte_len, _) = {
                let mut pos = 0;
                let mut value = 0;
                for _ in 0..FIELDS {
                    let (v, p) = read_varint(&bytes, pos).unwrap();
                    value = v;
                    pos = p;
                }
                (value, ())
            };
            let bogus = byte_len.checked_add_signed(delta).unwrap();
            assert!(
                Segment::from_bytes(&tamper_varint(&bytes, 10, bogus, FIELDS)).is_err(),
                "byte_len {byte_len}{delta:+} must not decode"
            );
        }
    }
}

#[cfg(test)]
mod fuzz {
    //! Property-based round-trip and corrupt-input tests, mirroring the
    //! posting-codec fuzz suite: the segment decoder faces untrusted bytes,
    //! so every truncation must error and arbitrary input must never panic.

    use proptest::prelude::*;

    use super::*;

    fn arbitrary_elements(items: Vec<(f64, u32, Vec<u8>)>) -> Vec<OrderedElement> {
        let mut elements: Vec<OrderedElement> = items
            .into_iter()
            .map(|(trs, group, ct)| OrderedElement {
                trs,
                group: GroupId(group % 8),
                sealed: EncryptedElement {
                    group: GroupId(group % 8),
                    ciphertext: ct,
                },
            })
            .collect();
        elements.sort_by(|a, b| b.trs.partial_cmp(&a.trs).expect("finite TRS"));
        elements
    }

    fn element_strategy() -> impl Strategy<Value = (f64, u32, Vec<u8>)> {
        (
            0.0f64..1.0,
            any::<u32>(),
            proptest::collection::vec(any::<u8>(), 0..24),
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        #[test]
        fn roundtrip_is_element_exact(
            items in proptest::collection::vec(element_strategy(), 1..80),
            block_len in 1usize..9
        ) {
            let elements = arbitrary_elements(items);
            let segment =
                Segment::from_elements(&elements, block_len, u32::MAX as usize).unwrap();
            prop_assert_eq!(segment.decode_all(), elements.clone());
            let back = Segment::from_bytes(&segment.to_bytes()).unwrap();
            prop_assert_eq!(back.decode_all(), elements);
        }

        #[test]
        fn group_uniform_segments_roundtrip_element_exact(
            items in proptest::collection::vec(
                (0.0f64..1.0, proptest::collection::vec(any::<u8>(), 0..24)),
                1..60,
            ),
            group in 0u32..8,
            block_len in 1usize..9
        ) {
            // Every element shares one group: all blocks take the
            // group-uniform mode and must still decode element-exactly,
            // in memory and through the wire format.
            let elements = arbitrary_elements(
                items.into_iter().map(|(trs, ct)| (trs, group, ct)).collect(),
            );
            let segment =
                Segment::from_elements(&elements, block_len, u32::MAX as usize).unwrap();
            prop_assert_eq!(segment.decode_all(), elements.clone());
            let back = Segment::from_bytes(&segment.to_bytes()).unwrap();
            prop_assert_eq!(back.decode_all(), elements);
        }

        #[test]
        fn every_truncation_is_rejected(
            items in proptest::collection::vec(element_strategy(), 1..40),
            cut in any::<usize>()
        ) {
            let bytes = Segment::from_elements(&arbitrary_elements(items), 4, u32::MAX as usize).unwrap().to_bytes();
            let cut = cut % bytes.len();
            prop_assert!(Segment::from_bytes(&bytes[..cut]).is_err());
        }

        #[test]
        fn arbitrary_bytes_never_panic_the_decoder(
            bytes in proptest::collection::vec(any::<u8>(), 0..512)
        ) {
            if let Ok(segment) = Segment::from_bytes(&bytes) {
                // If arbitrary bytes happen to decode, every claimed element
                // was backed by real bytes.
                prop_assert!(segment.num_elements() <= bytes.len());
            }
        }

        #[test]
        fn header_varint_tampering_never_panics_and_total_elems_is_validated(
            items in proptest::collection::vec(element_strategy(), 1..40),
            field in 2usize..4,
            value in any::<u64>()
        ) {
            // Rewrite one of the top-level header varints (total_elems or
            // num_blocks) with an arbitrary value while keeping the rest of
            // the page varint-consistent: the decoder must reject any claim
            // that disagrees with the per-block element counts / payload,
            // and must never panic or over-allocate.
            let bytes = Segment::from_elements(&arbitrary_elements(items), 4, u32::MAX as usize)
                .unwrap()
                .to_bytes();
            let mut fields = Vec::new();
            let mut pos = 0;
            for _ in 0..4 {
                let (v, p) = read_varint(&bytes, pos).unwrap();
                fields.push(v);
                pos = p;
            }
            let original = fields[field];
            fields[field] = value;
            let mut tampered = Vec::new();
            for v in fields {
                write_varint(&mut tampered, v);
            }
            tampered.extend_from_slice(&bytes[pos..]);
            let decoded = Segment::from_bytes(&tampered);
            if value != original {
                prop_assert!(decoded.is_err(), "field {field} tampered to {value} must not decode");
            } else {
                prop_assert!(decoded.is_ok());
            }
        }

        #[test]
        fn bit_flips_never_panic_the_decoder(
            items in proptest::collection::vec(element_strategy(), 1..40),
            flip in any::<(usize, u8)>()
        ) {
            let mut bytes = Segment::from_elements(&arbitrary_elements(items), 4, u32::MAX as usize).unwrap().to_bytes();
            let pos = flip.0 % bytes.len();
            bytes[pos] ^= flip.1 | 1;
            // Either a clean error or a differently-valued segment; the
            // decoder must not panic or loop.
            let _ = Segment::from_bytes(&bytes);
        }
    }
}
