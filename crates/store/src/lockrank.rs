//! Debug-only runtime lock-rank checker: turns lock-order inversions into
//! deterministic assertion failures instead of once-in-a-blue-moon
//! deadlocks.
//!
//! The global acquisition order is
//!
//! ```text
//! Pool  <  Store  <  Shard(0)  <  Shard(1)  <  ...
//! ```
//!
//! — worker-pool scheduling state first, then a replica's store-slot lock,
//! then shard locks in ascending shard-index order.  Each thread keeps a
//! stack of the ranks it holds; acquiring a rank that is not strictly above
//! the top of the stack (including re-acquiring a held rank) fires a
//! `debug_assert!` naming both ranks.  The check runs *before* blocking on
//! the lock, so an inversion that would deadlock under the right
//! interleaving is reported on **every** run that merely exercises the code
//! path.  Release builds compile the whole checker away: [`RankGuard`] is a
//! zero-sized no-op and no thread-local is touched.

/// Lock classes in their global acquisition order.  The numeric value is
/// the class's rank; ties within a class are broken by the `id` passed to
/// [`acquire`] (the shard index for [`LockClass::Shard`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LockClass {
    /// Worker-pool scheduling state (task queues, result sinks).
    Pool = 0,
    /// A replica's store-slot lock (the snapshot-swap `RwLock`).
    Store = 1,
    /// One shard of a sharded core, ranked by shard index.
    Shard = 2,
}

/// RAII witness of one ranked acquisition; dropping it releases the rank.
/// Keep it alive exactly as long as the lock guard it ranks — in a wrapper
/// struct, declare the lock guard field *first* so it drops before the
/// rank does.
#[must_use]
pub struct RankGuard {
    #[cfg(debug_assertions)]
    key: (u8, usize),
}

#[cfg(debug_assertions)]
mod held {
    use std::cell::RefCell;

    thread_local! {
        /// The ranks this thread currently holds, always strictly
        /// ascending (each push must exceed the top, and removals keep
        /// order).
        pub(super) static STACK: RefCell<Vec<(u8, usize)>> = const { RefCell::new(Vec::new()) };
    }
}

/// Records an acquisition of `(class, id)` on this thread, asserting that
/// it ranks strictly above every lock already held.  Call this *before*
/// blocking on the lock so an inversion panics instead of deadlocking.
#[track_caller]
pub fn acquire(class: LockClass, id: usize) -> RankGuard {
    #[cfg(debug_assertions)]
    {
        let key = (class as u8, id);
        held::STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(&top) = stack.last() {
                debug_assert!(
                    top < key,
                    "lock-rank inversion: acquiring {class:?}({id}) while already holding \
                     rank {top:?}; the order is Pool < Store < Shard(ascending index)"
                );
            }
            stack.push(key);
        });
        RankGuard { key }
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = (class, id);
        RankGuard {}
    }
}

/// Transient legality check for lock helpers that cannot tie a
/// [`RankGuard`] to their guard's lifetime (the worker pool's condvar
/// loops hand raw `MutexGuard`s to `Condvar::wait`): asserts the
/// acquisition *would* rank above everything held, without tracking it.
#[track_caller]
pub fn check(class: LockClass, id: usize) {
    #[cfg(debug_assertions)]
    held::STACK.with(|stack| {
        if let Some(&top) = stack.borrow().last() {
            let key = (class as u8, id);
            debug_assert!(
                top < key,
                "lock-rank inversion: acquiring {class:?}({id}) while already holding \
                 rank {top:?}; the order is Pool < Store < Shard(ascending index)"
            );
        }
    });
    #[cfg(not(debug_assertions))]
    let _ = (class, id);
}

impl Drop for RankGuard {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        held::STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Guards may drop out of stack order (two guards in one scope
            // drop in reverse declaration order); remove the matching entry
            // wherever it sits — the stack stays sorted either way.
            if let Some(at) = stack.iter().rposition(|&k| k == self.key) {
                stack.remove(at);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascending_acquisitions_pass() {
        let a = acquire(LockClass::Pool, 0);
        let b = acquire(LockClass::Store, 0);
        let c = acquire(LockClass::Shard, 0);
        let d = acquire(LockClass::Shard, 1);
        check(LockClass::Shard, 2);
        drop(d);
        drop(c);
        drop(b);
        drop(a);
        // After release the same ranks are takeable again.
        let _again = acquire(LockClass::Pool, 0);
    }

    #[test]
    fn out_of_order_drops_keep_the_stack_consistent() {
        let a = acquire(LockClass::Shard, 1);
        let b = acquire(LockClass::Shard, 3);
        drop(a);
        let c = acquire(LockClass::Shard, 4);
        drop(b);
        drop(c);
        let _reuse = acquire(LockClass::Shard, 1);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-rank inversion")]
    fn descending_shard_acquisition_fires() {
        let _hi = acquire(LockClass::Shard, 3);
        let _lo = acquire(LockClass::Shard, 1);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-rank inversion")]
    fn reentrant_acquisition_fires() {
        let _a = acquire(LockClass::Shard, 2);
        let _b = acquire(LockClass::Shard, 2);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-rank inversion")]
    fn pool_below_shard_fires() {
        let _shard = acquire(LockClass::Shard, 0);
        check(LockClass::Pool, 0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-rank inversion")]
    fn store_below_shard_fires() {
        let _shard = acquire(LockClass::Shard, 0);
        let _store = acquire(LockClass::Store, 0);
    }
}
