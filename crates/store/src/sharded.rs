//! The concurrent sharded store, generic over the physical list layout.
//!
//! Merged posting lists are partitioned across N shards by `MergedListId`
//! (lists are dense `0..num_lists`, so `id % N` is a perfect hash).  Each
//! shard is a [`ListTable`] behind its own `RwLock`: queries on different
//! lists never contend, concurrent queries on the same shard share a read
//! lock, and an insert write-locks exactly one shard.
//!
//! Cursor sessions live *inside* the shard that owns their list, so the
//! position adjustment an insert must apply to open cursors happens under
//! the same write lock as the insert itself — no separate session lock, no
//! position races.
//!
//! [`ShardedCore`] carries all of that machinery once, generic over an
//! [`OrderedList`]; the two public engines are instantiations:
//!
//! * [`ShardedStore`] — the reference `Vec<OrderedElement>` layout,
//! * [`SegmentStore`] — the compressed segment layout of
//!   [`crate::segment`].
//!
//! Because the session, generation and locking logic is shared, the engines
//! answer element-for-element identically by construction; only the physical
//! representation (and its byte footprint / scan cost) differs.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};
use zerber_base::{MergePlan, MergedListId};
use zerber_corpus::GroupId;
use zerber_r::{OrderedElement, OrderedIndex};

use crate::error::StoreError;
use crate::lockrank::{self, LockClass};
use crate::segment::{SegmentConfig, SegmentList};
use crate::store::{
    CursorId, ListStore, ListTable, OrderedList, RangedBatch, RangedFetch, SessionStats,
    ShardBucketOutput, ShardJobBucket, ShardJobPlan, StoreJob, VecList,
};

/// Upper bound on shards: cursor ids embed the shard index in their low byte.
pub const MAX_SHARDS: usize = 256;

/// The sharded, concurrently accessible store over an arbitrary physical
/// list layout.
#[derive(Debug)]
pub struct ShardedCore<L: OrderedList> {
    shards: Vec<RwLock<ListTable<L>>>,
    plan: MergePlan,
    next_cursor: AtomicU64,
    /// Shard-lock acquisitions by the serving paths (see
    /// [`ListStore::lock_acquisitions`]).
    lock_meter: AtomicU64,
}

/// The sharded store over the reference `Vec<OrderedElement>` layout.
pub type ShardedStore = ShardedCore<VecList>;

/// The sharded store over the compressed segment layout: immutable
/// block-encoded segments with per-block skip entries plus a mutable tail.
pub type SegmentStore = ShardedCore<SegmentList>;

/// A ranked shard read guard: the lock rank is registered *before* blocking
/// on the lock and released after the guard drops (field order: the lock
/// guard is declared first, so it drops before the rank pops).
pub(crate) struct ShardRead<'a, L: OrderedList> {
    guard: RwLockReadGuard<'a, ListTable<L>>,
    _rank: lockrank::RankGuard,
}

impl<L: OrderedList> Deref for ShardRead<'_, L> {
    type Target = ListTable<L>;

    fn deref(&self) -> &ListTable<L> {
        &self.guard
    }
}

/// A ranked shard write guard; see [`ShardRead`].
pub(crate) struct ShardWrite<'a, L: OrderedList> {
    guard: RwLockWriteGuard<'a, ListTable<L>>,
    _rank: lockrank::RankGuard,
}

impl<L: OrderedList> Deref for ShardWrite<'_, L> {
    type Target = ListTable<L>;

    fn deref(&self) -> &ListTable<L> {
        &self.guard
    }
}

impl<L: OrderedList> DerefMut for ShardWrite<'_, L> {
    fn deref_mut(&mut self) -> &mut ListTable<L> {
        &mut self.guard
    }
}

/// The shard count matched to the machine (`available_parallelism`, clamped
/// to `[1, 64]`).
pub(crate) fn default_shards() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 64)
}

impl<L: OrderedList> ShardedCore<L> {
    /// Builds a store partitioned across `num_shards` shards, materializing
    /// each list through `make` (which receives the shard index the list
    /// lands in, so layouts with per-shard backing state — the on-disk spill
    /// engine's page files — attach to the right shard).
    pub(crate) fn build(
        index: OrderedIndex,
        num_shards: usize,
        mut make: impl FnMut(usize, Vec<OrderedElement>) -> Result<L, StoreError>,
    ) -> Result<Self, StoreError> {
        let num_shards = num_shards.clamp(1, MAX_SHARDS);
        let (lists, plan) = index.into_parts();
        let mut shards: Vec<ListTable<L>> = (0..num_shards).map(|_| ListTable::default()).collect();
        for (id, list) in lists.into_iter().enumerate() {
            let shard = id % num_shards;
            shards[shard].push_list(make(shard, list)?);
        }
        Ok(ShardedCore {
            shards: shards.into_iter().map(RwLock::new).collect(),
            plan,
            next_cursor: AtomicU64::new(1),
            lock_meter: AtomicU64::new(0),
        })
    }

    /// Meters one shard-lock acquisition (called just before a serving-path
    /// `read()`/`write()`; audit accessors stay unmetered).
    fn meter_lock(&self) {
        self.lock_meter.fetch_add(1, Ordering::Relaxed);
    }

    fn slot(&self, list: MergedListId) -> (usize, usize) {
        let id = list.0 as usize;
        (id % self.shards.len(), id / self.shards.len())
    }

    fn known(&self, list: MergedListId) -> Result<(usize, usize), StoreError> {
        if (list.0 as usize) < self.plan.num_lists() {
            Ok(self.slot(list))
        } else {
            Err(StoreError::UnknownList(list.0))
        }
    }

    pub(crate) fn cursor_shard(&self, cursor: CursorId) -> Result<usize, StoreError> {
        let shard = (cursor.0 & 0xff) as usize;
        if cursor.is_some() && shard < self.shards.len() {
            Ok(shard)
        } else {
            Err(StoreError::UnknownCursor(cursor.0))
        }
    }

    /// Acquires one shard's read lock under the lock-rank discipline.
    ///
    /// **Lock order** (enforced at runtime in debug builds by
    /// [`crate::lockrank`]): worker-pool state, then a replica's store-slot
    /// lock, then shard locks in *ascending shard-index* order.  Cursor
    /// sessions live inside the shard that owns their list, so there is no
    /// separate session lock to order — the store slot always ranks before
    /// any shard ("store before session").  Every shard acquisition in this
    /// module funnels through here or [`Self::shard_write`].
    pub(crate) fn shard_read(&self, shard: usize) -> ShardRead<'_, L> {
        let rank = lockrank::acquire(LockClass::Shard, shard);
        ShardRead {
            guard: self.shards[shard].read(),
            _rank: rank,
        }
    }

    /// Acquires one shard's write lock under the lock-rank discipline; see
    /// [`Self::shard_read`] for the global order.
    pub(crate) fn shard_write(&self, shard: usize) -> ShardWrite<'_, L> {
        let rank = lockrank::acquire(LockClass::Shard, shard);
        ShardWrite {
            guard: self.shards[shard].write(),
            _rank: rank,
        }
    }

    /// Runs `f` under one shard's read lock (maintenance passes; unmetered —
    /// the lock meter counts serving-path acquisitions only).
    pub(crate) fn with_shard_read<R>(&self, shard: usize, f: impl FnOnce(&ListTable<L>) -> R) -> R {
        let guard = self.shard_read(shard);
        f(&guard)
    }

    /// Runs `f` under one shard's write lock (maintenance passes; unmetered).
    pub(crate) fn with_shard_write<R>(
        &self,
        shard: usize,
        f: impl FnOnce(&mut ListTable<L>) -> R,
    ) -> R {
        let mut guard = self.shard_write(shard);
        f(&mut guard)
    }

    /// Resolves a list id to its `(shard, slot)` coordinates, rejecting
    /// unknown lists (recovery replay routes WAL records through this).
    pub(crate) fn locate(&self, list: MergedListId) -> Result<(usize, usize), StoreError> {
        self.known(list)
    }

    /// Reassembles a store from already-materialized per-shard lists (the
    /// durable recovery path).  `tables[s]` holds shard `s`'s lists in slot
    /// order, i.e. `tables[s][j]` is merged list `j * num_shards + s` —
    /// the same arrangement [`Self::build`] produces.
    pub(crate) fn assemble(plan: MergePlan, tables: Vec<Vec<L>>) -> Result<Self, StoreError> {
        let total: usize = tables.iter().map(Vec::len).sum();
        if total != plan.num_lists() || tables.is_empty() || tables.len() > MAX_SHARDS {
            return Err(StoreError::RecoveryFailed(format!(
                "recovered {} lists across {} shards, plan expects {}",
                total,
                tables.len(),
                plan.num_lists()
            )));
        }
        let mut shards = Vec::with_capacity(tables.len());
        for lists in tables {
            let mut table = ListTable::default();
            for list in lists {
                table.push_list(list);
            }
            shards.push(RwLock::new(table));
        }
        Ok(ShardedCore {
            shards,
            plan,
            next_cursor: AtomicU64::new(1),
            lock_meter: AtomicU64::new(0),
        })
    }

    /// Inserts like [`ListStore::insert`], additionally invoking `log` with
    /// the element's shard *after* the in-memory apply but under the same
    /// shard write lock — so the write-ahead log's record order is exactly
    /// the apply order and an acknowledged insert is always logged.  A `log`
    /// failure surfaces as the insert's error.
    pub(crate) fn insert_logged(
        &self,
        list: MergedListId,
        element: OrderedElement,
        log: impl FnOnce(usize, &OrderedElement) -> Result<(), StoreError>,
    ) -> Result<usize, StoreError> {
        let (shard, slot) = self.known(list)?;
        self.meter_lock();
        let mut guard = self.shard_write(shard);
        let pos = guard.insert(slot, element.clone())?;
        log(shard, &element)?;
        Ok(pos)
    }
}

impl ShardedStore {
    /// Builds a store from an ordered index with a machine-matched shard
    /// count.
    pub fn new(index: OrderedIndex) -> Self {
        Self::with_shards(index, default_shards())
    }

    /// Builds a store partitioned across exactly `num_shards` shards.
    pub fn with_shards(index: OrderedIndex, num_shards: usize) -> Self {
        Self::build(index, num_shards, |_, list| {
            Ok(VecList::from_elements(list))
        })
        // analyze::allow(panic): build only fails when the builder closure
        // does, and this closure always returns Ok
        .expect("the Vec layout builds infallibly")
    }
}

impl SegmentStore {
    /// Builds a compressed-segment store with a machine-matched shard count.
    pub fn new(index: OrderedIndex) -> Result<Self, StoreError> {
        Self::with_shards(index, default_shards())
    }

    /// Builds a compressed-segment store across exactly `num_shards` shards
    /// with the default segment layout.
    pub fn with_shards(index: OrderedIndex, num_shards: usize) -> Result<Self, StoreError> {
        Self::with_config(index, num_shards, SegmentConfig::default())
    }

    /// Builds a compressed-segment store with explicit layout tuning (block
    /// length, tail threshold, compaction and payload bounds).  Fails with
    /// [`StoreError::SegmentOverflow`] only if a single element cannot be
    /// encoded under the payload bound.
    pub fn with_config(
        index: OrderedIndex,
        num_shards: usize,
        config: SegmentConfig,
    ) -> Result<Self, StoreError> {
        Self::build(index, num_shards, move |_, list| {
            SegmentList::with_config(list, config)
        })
    }
}

impl<L: OrderedList> ListStore for ShardedCore<L> {
    fn plan(&self) -> &MergePlan {
        &self.plan
    }

    fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, list: MergedListId) -> usize {
        self.slot(list).0
    }

    fn num_elements(&self) -> usize {
        (0..self.shards.len())
            .map(|s| self.shard_read(s).num_elements())
            .sum()
    }

    fn stored_bytes(&self) -> usize {
        (0..self.shards.len())
            .map(|s| self.shard_read(s).stored_bytes())
            .sum()
    }

    fn ciphertext_bytes(&self) -> usize {
        (0..self.shards.len())
            .map(|s| self.shard_read(s).ciphertext_bytes())
            .sum()
    }

    fn resident_bytes(&self) -> usize {
        (0..self.shards.len())
            .map(|s| self.shard_read(s).resident_bytes())
            .sum()
    }

    fn list_len(&self, list: MergedListId) -> Result<usize, StoreError> {
        let (shard, slot) = self.known(list)?;
        Ok(self.shard_read(shard).list(slot).len())
    }

    fn visible_len(
        &self,
        list: MergedListId,
        accessible: Option<&[GroupId]>,
    ) -> Result<usize, StoreError> {
        let (shard, slot) = self.known(list)?;
        Ok(self.shard_read(shard).visible_total(slot, accessible))
    }

    fn snapshot_list(&self, list: MergedListId) -> Result<Vec<OrderedElement>, StoreError> {
        let (shard, slot) = self.known(list)?;
        self.shard_read(shard).list(slot).snapshot()
    }

    fn fetch_ranged(
        &self,
        fetch: &RangedFetch,
        accessible: Option<&[GroupId]>,
    ) -> Result<RangedBatch, StoreError> {
        let (shard, slot) = self.known(fetch.list)?;
        self.meter_lock();
        self.shard_read(shard)
            .fetch(slot, fetch.offset, fetch.count, accessible)
    }

    fn plan_shard_batch(&self, jobs: &[StoreJob], max_bucket_jobs: usize) -> ShardJobPlan {
        // Group job indices by shard — ranged jobs route by list id, cursor
        // jobs by the shard index embedded in the cursor.
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        let mut unroutable = Vec::new();
        for (i, job) in jobs.iter().enumerate() {
            let routed = if job.cursor.is_some() {
                self.cursor_shard(job.cursor)
            } else {
                self.known(job.fetch.list).map(|(shard, _)| shard)
            };
            match routed {
                Ok(shard) => by_shard[shard].push(i),
                Err(e) => unroutable.push((i, e)),
            }
        }
        let max_bucket_jobs = max_bucket_jobs.max(1);
        let mut buckets = Vec::new();
        for (shard, mut indices) in by_shard.into_iter().enumerate() {
            if indices.is_empty() {
                continue;
            }
            // Within the shard, serve ranged jobs grouped by list and
            // cursor resumptions grouped by session (stable, so same-cursor
            // resumptions keep their input order and answer exactly like a
            // sequential run): a layout that pages cold state in from disk
            // then faults each touched page at most once per round of
            // ranged jobs, and same-session follow-ups share their faults
            // too.  (A resume job's `fetch.list` is a placeholder — the
            // session knows its own list — so cursors group by id, not
            // list.)
            let key = |i: usize| {
                let job = &jobs[i];
                if job.cursor.is_some() {
                    (1u8, job.cursor.0)
                } else {
                    (0u8, job.fetch.list.0)
                }
            };
            indices.sort_by_key(|&i| key(i));
            // Slice into buckets of at most `max_bucket_jobs`, extending a
            // bucket past the cap rather than splitting one list's / one
            // cursor session's run of jobs across concurrently executable
            // buckets (same-session order must match a sequential round).
            let mut start = 0usize;
            while start < indices.len() {
                let mut end = (start + max_bucket_jobs).min(indices.len());
                while end < indices.len() && key(indices[end]) == key(indices[end - 1]) {
                    end += 1;
                }
                buckets.push(ShardJobBucket {
                    shard,
                    jobs: indices[start..end].to_vec(),
                });
                start = end;
            }
        }
        ShardJobPlan {
            buckets,
            unroutable,
        }
    }

    fn execute_shard_bucket(
        &self,
        jobs: &[StoreJob],
        bucket: &ShardJobBucket,
    ) -> ShardBucketOutput {
        let shard = bucket.shard;
        self.meter_lock();
        let (results, sweep_due) = {
            let guard = self.shard_read(shard);
            let results = bucket
                .jobs
                .iter()
                .map(|&i| {
                    let job = &jobs[i];
                    if job.cursor.is_some() {
                        guard.cursor_fetch(
                            job.cursor.0,
                            job.owner,
                            job.fetch.count,
                            job.accessible(),
                        )
                    } else {
                        let (_, slot) = self.slot(job.fetch.list);
                        guard.fetch(slot, job.fetch.offset, job.fetch.count, job.accessible())
                    }
                })
                .collect();
            (results, guard.ttl_sweep_due())
        };
        if sweep_due {
            self.meter_lock();
            self.shard_write(shard).sweep_expired();
        }
        ShardBucketOutput {
            results,
            lock_acquisitions: 1,
        }
    }

    fn lock_acquisitions(&self) -> u64 {
        self.lock_meter.load(Ordering::Relaxed)
    }

    fn open_cursor(
        &self,
        list: MergedListId,
        owner: u64,
        batch: &RangedBatch,
        delivered: usize,
        accessible: Option<&[GroupId]>,
    ) -> Result<CursorId, StoreError> {
        let (shard, slot) = self.known(list)?;
        let seq = self.next_cursor.fetch_add(1, Ordering::Relaxed);
        let raw = (seq << 8) | shard as u64;
        self.meter_lock();
        self.shard_write(shard)
            .open_cursor(raw, slot, owner, batch, delivered, accessible)?;
        Ok(CursorId(raw))
    }

    fn cursor_fetch(
        &self,
        cursor: CursorId,
        owner: u64,
        count: usize,
        accessible: Option<&[GroupId]>,
    ) -> Result<RangedBatch, StoreError> {
        let shard = self.cursor_shard(cursor)?;
        self.meter_lock();
        let (result, sweep_due) = {
            let guard = self.shard_read(shard);
            let result = guard.cursor_fetch(cursor.0, owner, count, accessible);
            (result, guard.ttl_sweep_due())
        };
        if sweep_due {
            // A TTL sweep is due (at most once per TTL window): upgrade to
            // the write lock so a read-heavy workload with stable cursors
            // still reclaims idle sessions.
            self.meter_lock();
            self.shard_write(shard).sweep_expired();
        }
        result
    }

    fn close_cursor(&self, cursor: CursorId, owner: u64) {
        if let Ok(shard) = self.cursor_shard(cursor) {
            self.meter_lock();
            self.shard_write(shard).close_cursor(cursor.0, owner);
        }
    }

    fn open_cursors(&self) -> usize {
        (0..self.shards.len())
            .map(|s| self.shard_read(s).open_cursors())
            .sum()
    }

    fn session_stats(&self) -> SessionStats {
        SessionStats::aggregate((0..self.shards.len()).map(|s| self.shard_read(s).session_stats()))
    }

    fn visibility_scan_cost(&self) -> u64 {
        (0..self.shards.len())
            .map(|s| self.shard_read(s).visibility_scan_cost())
            .sum()
    }

    fn insert(&self, list: MergedListId, element: OrderedElement) -> Result<usize, StoreError> {
        let (shard, slot) = self.known(list)?;
        self.meter_lock();
        self.shard_write(shard).insert(slot, element)
    }

    fn verify_ordering(&self) -> bool {
        (0..self.shards.len()).all(|s| self.shard_read(s).ordering_ok())
    }
}
