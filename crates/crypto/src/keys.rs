//! Group key hierarchy.
//!
//! The collaboration scenario of Section 2 assigns every document to a group;
//! only members of the group may decrypt its posting elements.  This module
//! derives per-group keys from a master secret with HKDF:
//!
//! * an AEAD key pair used to seal posting-element payloads,
//! * a term-token key used as a PRF to map term strings to opaque tokens
//!   (so the server can address posting lists without learning the term).
//!
//! A compromised index server therefore sees only ciphertexts and PRF
//! outputs; group members holding the group secret can decrypt and filter.

use crate::aead::AeadKey;
use crate::hkdf::derive_key32;
use crate::hmac::HmacSha256;

/// Length in bytes of a term token.
pub const TERM_TOKEN_LEN: usize = 16;

/// An opaque, deterministic per-group token identifying a term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermToken(pub [u8; TERM_TOKEN_LEN]);

impl TermToken {
    /// Renders the token as hex (used in protocol messages and logs).
    pub fn to_hex(&self) -> String {
        crate::sha256::to_hex(&self.0)
    }
}

/// The master secret of an enterprise deployment.
#[derive(Clone)]
pub struct MasterKey {
    secret: [u8; 32],
}

impl std::fmt::Debug for MasterKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MasterKey(..)")
    }
}

impl MasterKey {
    /// Wraps raw key material.
    pub fn new(secret: [u8; 32]) -> Self {
        MasterKey { secret }
    }

    /// Derives a master key from a passphrase (iterated, salted hashing; this
    /// reproduction does not aim for password-hardening guarantees, only for
    /// deterministic key material).
    pub fn from_passphrase(passphrase: &str, salt: &[u8]) -> Self {
        let mut state = derive_key32(salt, passphrase.as_bytes(), b"zerber/master/v1");
        for _ in 0..1024 {
            state = derive_key32(salt, &state, b"zerber/master/stretch");
        }
        MasterKey { secret: state }
    }

    /// Derives the key set of one collaboration group.
    pub fn group_keys(&self, group: u32) -> GroupKeys {
        let ctx_enc = format!("zerber/group/{group}/enc");
        let ctx_mac = format!("zerber/group/{group}/mac");
        let ctx_term = format!("zerber/group/{group}/term");
        GroupKeys {
            group,
            aead: AeadKey::new(
                derive_key32(b"zerber-salt", &self.secret, ctx_enc.as_bytes()),
                derive_key32(b"zerber-salt", &self.secret, ctx_mac.as_bytes()),
            ),
            term_key: derive_key32(b"zerber-salt", &self.secret, ctx_term.as_bytes()),
        }
    }
}

/// Key material shared by the members of one group.
#[derive(Clone)]
pub struct GroupKeys {
    group: u32,
    aead: AeadKey,
    term_key: [u8; 32],
}

impl std::fmt::Debug for GroupKeys {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "GroupKeys(group={}, ..)", self.group)
    }
}

impl GroupKeys {
    /// The group these keys belong to.
    pub fn group(&self) -> u32 {
        self.group
    }

    /// The AEAD key pair for sealing posting-element payloads.
    pub fn aead(&self) -> &AeadKey {
        &self.aead
    }

    /// Deterministically maps a term string to an opaque token.
    ///
    /// The same term always maps to the same token within a group, so clients
    /// can address posting lists; different groups produce unrelated tokens.
    pub fn term_token(&self, term: &str) -> TermToken {
        let mac = HmacSha256::mac(&self.term_key, term.as_bytes());
        let mut token = [0u8; TERM_TOKEN_LEN];
        token.copy_from_slice(&mac[..TERM_TOKEN_LEN]);
        TermToken(token)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn master() -> MasterKey {
        MasterKey::new([0xA5; 32])
    }

    #[test]
    fn group_keys_are_deterministic_and_distinct() {
        let m = master();
        let g0a = m.group_keys(0);
        let g0b = m.group_keys(0);
        let g1 = m.group_keys(1);
        let sealed_a = g0a.aead().seal(&[0u8; 12], b"x", b"").unwrap();
        let sealed_b = g0b.aead().seal(&[0u8; 12], b"x", b"").unwrap();
        assert_eq!(sealed_a, sealed_b, "same group, same keys");
        assert!(
            g1.aead().open(&sealed_a, b"").is_err(),
            "other group cannot decrypt"
        );
        assert_eq!(g0a.group(), 0);
        assert_eq!(g1.group(), 1);
    }

    #[test]
    fn term_tokens_are_stable_within_a_group() {
        let g = master().group_keys(3);
        assert_eq!(g.term_token("imclone"), g.term_token("imclone"));
        assert_ne!(g.term_token("imclone"), g.term_token("and"));
    }

    #[test]
    fn term_tokens_differ_across_groups() {
        let m = master();
        assert_ne!(
            m.group_keys(0).term_token("imclone"),
            m.group_keys(1).term_token("imclone")
        );
    }

    #[test]
    fn passphrase_derivation_is_deterministic_and_salted() {
        let a = MasterKey::from_passphrase("pcc advisory board", b"salt-1");
        let b = MasterKey::from_passphrase("pcc advisory board", b"salt-1");
        let c = MasterKey::from_passphrase("pcc advisory board", b"salt-2");
        assert_eq!(
            a.group_keys(0).term_token("x"),
            b.group_keys(0).term_token("x")
        );
        assert_ne!(
            a.group_keys(0).term_token("x"),
            c.group_keys(0).term_token("x")
        );
    }

    #[test]
    fn debug_output_hides_secrets() {
        let m = master();
        assert_eq!(format!("{m:?}"), "MasterKey(..)");
        let g = m.group_keys(9);
        assert!(format!("{g:?}").contains("group=9"));
        assert!(!format!("{g:?}").contains("a5"));
    }

    #[test]
    fn token_hex_has_expected_length() {
        let g = master().group_keys(0);
        assert_eq!(g.term_token("alpha").to_hex().len(), TERM_TOKEN_LEN * 2);
    }
}
