//! Cryptographic substrate for the Zerber / Zerber+R reproduction.
//!
//! The paper treats encryption of posting elements as a black box; what the
//! systems experiments need is (a) opaque, authenticated posting-element
//! payloads, (b) per-group keys so access control can be enforced
//! cryptographically, and (c) deterministic term tokens so clients can address
//! posting lists without revealing terms.  All primitives are implemented
//! from scratch (DESIGN.md §5) and validated against published test vectors:
//!
//! * [`sha256`] — SHA-256 (FIPS 180-4),
//! * [`hmac`] — HMAC-SHA-256 (RFC 2104, vectors from RFC 4231),
//! * [`hkdf`] — HKDF (RFC 5869),
//! * [`chacha20`] — ChaCha20 (RFC 8439),
//! * [`aead`] — encrypt-then-MAC authenticated encryption,
//! * [`keys`] — master / group key hierarchy and term tokens,
//! * [`rng`] — deterministic ChaCha20-based randomness for reproducible
//!   experiments.
//!
//! # Security disclaimer
//!
//! This code exists to reproduce the *systems* behaviour of the paper
//! (ciphertext sizes, key distribution, protocol structure).  It has not been
//! audited and must not be used to protect real data.

pub mod aead;
pub mod chacha20;
pub mod error;
pub mod hkdf;
pub mod hmac;
pub mod keys;
pub mod rng;
pub mod sha256;

pub use aead::{AeadKey, OVERHEAD, TAG_LEN};
pub use chacha20::{ChaCha20, KEY_LEN, NONCE_LEN};
pub use error::CryptoError;
pub use hmac::HmacSha256;
pub use keys::{GroupKeys, MasterKey, TermToken, TERM_TOKEN_LEN};
pub use rng::DeterministicRng;
pub use sha256::Sha256;
