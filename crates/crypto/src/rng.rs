//! Deterministic cryptographically-styled random generator.
//!
//! Nonces and random placements (the random distribution of posting elements
//! inside a merged posting list, Definition 2) need unpredictable-looking but
//! *reproducible* randomness so experiments can be replayed bit-for-bit.
//! This generator runs ChaCha20 in counter mode over a seed key; it is not a
//! substitute for an OS CSPRNG in a real deployment, which is documented in
//! the README's security notes.

use crate::chacha20::{ChaCha20, BLOCK_LEN, NONCE_LEN};

/// Deterministic random byte stream seeded from 32 bytes.
#[derive(Debug, Clone)]
pub struct DeterministicRng {
    cipher: ChaCha20,
    counter: u32,
    buffer: [u8; BLOCK_LEN],
    used: usize,
}

impl DeterministicRng {
    /// Creates a generator from a 32-byte seed.
    pub fn from_seed(seed: [u8; 32]) -> Self {
        DeterministicRng {
            cipher: ChaCha20::new(&seed).expect("seed length is fixed at 32 bytes"),
            counter: 0,
            buffer: [0u8; BLOCK_LEN],
            used: BLOCK_LEN,
        }
    }

    /// Creates a generator from a 64-bit seed (expanded by hashing).
    pub fn from_u64(seed: u64) -> Self {
        let digest = crate::sha256::Sha256::digest(&seed.to_le_bytes());
        Self::from_seed(digest)
    }

    fn refill(&mut self) {
        let nonce = [0u8; NONCE_LEN];
        self.buffer = self
            .cipher
            .block(self.counter, &nonce)
            .expect("nonce length is fixed");
        self.counter = self.counter.wrapping_add(1);
        self.used = 0;
    }

    /// Fills `out` with random bytes.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        for byte in out.iter_mut() {
            if self.used == BLOCK_LEN {
                self.refill();
            }
            *byte = self.buffer[self.used];
            self.used += 1;
        }
    }

    /// Returns the next random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill_bytes(&mut b);
        u64::from_le_bytes(b)
    }

    /// Returns a uniformly distributed value in `[0, bound)` using rejection
    /// sampling (`bound` must be non-zero).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Returns a fresh 12-byte nonce.
    pub fn nonce(&mut self) -> [u8; NONCE_LEN] {
        let mut n = [0u8; NONCE_LEN];
        self.fill_bytes(&mut n);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn same_seed_gives_same_stream() {
        let mut a = DeterministicRng::from_u64(99);
        let mut b = DeterministicRng::from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let mut a = DeterministicRng::from_u64(1);
        let mut b = DeterministicRng::from_u64(2);
        let va: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn nonces_do_not_repeat_quickly() {
        let mut rng = DeterministicRng::from_u64(7);
        let mut seen = HashSet::new();
        for _ in 0..1000 {
            assert!(seen.insert(rng.nonce()), "nonce repeated");
        }
    }

    #[test]
    fn next_below_respects_the_bound_and_covers_it() {
        let mut rng = DeterministicRng::from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.next_below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    #[should_panic]
    fn next_below_zero_panics() {
        DeterministicRng::from_u64(0).next_below(0);
    }

    #[test]
    fn fill_bytes_crosses_block_boundaries() {
        let mut rng = DeterministicRng::from_u64(5);
        let mut big = vec![0u8; 200];
        rng.fill_bytes(&mut big);
        // Not all zero and not all equal.
        assert!(big.iter().any(|&b| b != 0));
        assert!(big.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn byte_stream_is_unbiased_enough() {
        let mut rng = DeterministicRng::from_u64(11);
        let mut buf = vec![0u8; 65_536];
        rng.fill_bytes(&mut buf);
        let ones: u32 = buf.iter().map(|b| b.count_ones()).sum();
        let total_bits = (buf.len() * 8) as f64;
        let ratio = f64::from(ones) / total_bits;
        assert!((ratio - 0.5).abs() < 0.01, "bit ratio {ratio}");
    }
}
