//! HKDF (RFC 5869) with HMAC-SHA-256.
//!
//! The Zerber group-key hierarchy derives one encryption key and one MAC key
//! per collaboration group from a master secret (see [`crate::keys`]); HKDF is
//! the extract-and-expand construction used for these derivations.

use crate::error::CryptoError;
use crate::hmac::{HmacSha256, MAC_LEN};

/// Extract step: computes the pseudorandom key `PRK = HMAC(salt, ikm)`.
pub fn extract(salt: &[u8], ikm: &[u8]) -> [u8; MAC_LEN] {
    HmacSha256::mac(salt, ikm)
}

/// Expand step: derives `len` output bytes from `prk` and `info`.
///
/// Fails with [`CryptoError::OutputTooLong`] if more than `255 * 32` bytes
/// are requested.
pub fn expand(prk: &[u8], info: &[u8], len: usize) -> Result<Vec<u8>, CryptoError> {
    if len > 255 * MAC_LEN {
        return Err(CryptoError::OutputTooLong);
    }
    let mut okm = Vec::with_capacity(len);
    let mut previous: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while okm.len() < len {
        let mut h = HmacSha256::new(prk);
        h.update(&previous);
        h.update(info);
        h.update(&[counter]);
        let block = h.finalize();
        let take = (len - okm.len()).min(MAC_LEN);
        okm.extend_from_slice(&block[..take]);
        previous = block.to_vec();
        counter = counter.wrapping_add(1);
    }
    Ok(okm)
}

/// Combined extract-then-expand.
pub fn derive(salt: &[u8], ikm: &[u8], info: &[u8], len: usize) -> Result<Vec<u8>, CryptoError> {
    let prk = extract(salt, ikm);
    expand(&prk, info, len)
}

/// Derives exactly 32 bytes into a fixed-size key array.
pub fn derive_key32(salt: &[u8], ikm: &[u8], info: &[u8]) -> [u8; 32] {
    let okm = derive(salt, ikm, info, 32).expect("32 bytes is always a valid HKDF length");
    let mut key = [0u8; 32];
    key.copy_from_slice(&okm);
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::to_hex;

    #[test]
    fn rfc5869_test_case_1() {
        let ikm = [0x0bu8; 22];
        let salt: Vec<u8> = (0x00..=0x0c).collect();
        let info: Vec<u8> = (0xf0..=0xf9).collect();
        let prk = extract(&salt, &ikm);
        assert_eq!(
            to_hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let okm = expand(&prk, &info, 42).unwrap();
        assert_eq!(
            to_hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    #[test]
    fn rfc5869_test_case_3_empty_salt_and_info() {
        let ikm = [0x0bu8; 22];
        let okm = derive(&[], &ikm, &[], 42).unwrap();
        assert_eq!(
            to_hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn output_length_is_respected() {
        for len in [0usize, 1, 31, 32, 33, 64, 100] {
            assert_eq!(derive(b"s", b"ikm", b"info", len).unwrap().len(), len);
        }
    }

    #[test]
    fn over_long_output_is_rejected() {
        assert_eq!(
            expand(&[0u8; 32], b"", 255 * 32 + 1).unwrap_err(),
            CryptoError::OutputTooLong
        );
        assert!(expand(&[0u8; 32], b"", 255 * 32).is_ok());
    }

    #[test]
    fn different_info_separates_keys() {
        let a = derive_key32(b"salt", b"master", b"group-0/enc");
        let b = derive_key32(b"salt", b"master", b"group-0/mac");
        let c = derive_key32(b"salt", b"master", b"group-1/enc");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(
            derive_key32(b"salt", b"ikm", b"info"),
            derive_key32(b"salt", b"ikm", b"info")
        );
    }
}
