//! HMAC-SHA-256 (RFC 2104 / FIPS 198-1).
//!
//! Used for message authentication in the encrypt-then-MAC AEAD and as the
//! PRF inside HKDF.  Validated against the RFC 4231 test vectors.

use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// Output length of HMAC-SHA-256 in bytes.
pub const MAC_LEN: usize = DIGEST_LEN;

/// Incremental HMAC-SHA-256.
#[derive(Debug, Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    outer_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Creates an HMAC context keyed with `key` (any length).
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let digest = Sha256::digest(key);
            key_block[..DIGEST_LEN].copy_from_slice(&digest);
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = key_block[i] ^ 0x36;
            opad[i] = key_block[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 {
            inner,
            outer_key: opad,
        }
    }

    /// Absorbs message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finishes and returns the 32-byte tag.
    pub fn finalize(self) -> [u8; MAC_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.outer_key);
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// One-shot MAC computation.
    pub fn mac(key: &[u8], data: &[u8]) -> [u8; MAC_LEN] {
        let mut h = HmacSha256::new(key);
        h.update(data);
        h.finalize()
    }

    /// Constant-time comparison of an expected and received tag.
    ///
    /// Avoids the classic early-exit timing side channel when the index
    /// server (or an adversary controlling it) probes tag verification.
    pub fn verify(key: &[u8], data: &[u8], tag: &[u8]) -> bool {
        let expected = Self::mac(key, data);
        constant_time_eq(&expected, tag)
    }
}

/// Constant-time equality over byte slices (false if lengths differ).
pub fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::to_hex;

    #[test]
    fn rfc4231_test_case_1() {
        let key = [0x0bu8; 20];
        let tag = HmacSha256::mac(&key, b"Hi There");
        assert_eq!(
            to_hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_test_case_2() {
        let tag = HmacSha256::mac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            to_hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_test_case_3_long_data() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = HmacSha256::mac(&key, &data);
        assert_eq!(
            to_hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_test_case_6_long_key() {
        let key = [0xaau8; 131];
        let tag = HmacSha256::mac(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            to_hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn incremental_equals_one_shot() {
        let key = b"group-key";
        let data = b"posting element payload bytes";
        let mut h = HmacSha256::new(key);
        for chunk in data.chunks(5) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), HmacSha256::mac(key, data));
    }

    #[test]
    fn verify_accepts_valid_and_rejects_invalid_tags() {
        let key = b"k";
        let data = b"payload";
        let mut tag = HmacSha256::mac(key, data);
        assert!(HmacSha256::verify(key, data, &tag));
        tag[0] ^= 1;
        assert!(!HmacSha256::verify(key, data, &tag));
        assert!(!HmacSha256::verify(key, data, &tag[..16]));
    }

    #[test]
    fn constant_time_eq_basic_properties() {
        assert!(constant_time_eq(b"same", b"same"));
        assert!(!constant_time_eq(b"same", b"sama"));
        assert!(!constant_time_eq(b"short", b"longer"));
        assert!(constant_time_eq(b"", b""));
    }

    #[test]
    fn different_keys_give_different_tags() {
        assert_ne!(HmacSha256::mac(b"k1", b"m"), HmacSha256::mac(b"k2", b"m"));
    }
}
