//! Error type for the cryptographic substrate.

use std::fmt;

/// Errors produced by the crypto substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// Authentication tag verification failed (ciphertext was tampered with
    /// or the wrong key was used).
    AuthenticationFailed,
    /// The ciphertext is too short to contain the nonce and tag.
    CiphertextTooShort,
    /// A key had the wrong length.
    InvalidKeyLength { expected: usize, got: usize },
    /// A nonce had the wrong length.
    InvalidNonceLength { expected: usize, got: usize },
    /// HKDF output length request exceeded the RFC 5869 limit (255 blocks).
    OutputTooLong,
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::AuthenticationFailed => write!(f, "authentication tag mismatch"),
            CryptoError::CiphertextTooShort => write!(f, "ciphertext too short"),
            CryptoError::InvalidKeyLength { expected, got } => {
                write!(
                    f,
                    "invalid key length: expected {expected} bytes, got {got}"
                )
            }
            CryptoError::InvalidNonceLength { expected, got } => {
                write!(
                    f,
                    "invalid nonce length: expected {expected} bytes, got {got}"
                )
            }
            CryptoError::OutputTooLong => write!(f, "requested HKDF output is too long"),
        }
    }
}

impl std::error::Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(CryptoError::AuthenticationFailed
            .to_string()
            .contains("tag"));
        let e = CryptoError::InvalidKeyLength {
            expected: 32,
            got: 16,
        };
        assert!(e.to_string().contains("32"));
        assert!(e.to_string().contains("16"));
        assert!(CryptoError::OutputTooLong.to_string().contains("HKDF"));
    }
}
