//! Authenticated encryption (encrypt-then-MAC) for posting elements.
//!
//! Zerber stores term id, document id and ranking information of every
//! posting element in encrypted form (Section 3.1).  This module provides the
//! authenticated-encryption primitive used for those payloads:
//! ChaCha20 for confidentiality and a truncated HMAC-SHA-256 tag for
//! integrity, composed as encrypt-then-MAC.
//!
//! Wire format of a sealed box: `nonce (12 bytes) || ciphertext || tag (16
//! bytes)`.  Associated data (e.g. the merged-posting-list id) is
//! authenticated but not encrypted.

use crate::chacha20::{ChaCha20, KEY_LEN, NONCE_LEN};
use crate::error::CryptoError;
use crate::hmac::{constant_time_eq, HmacSha256};

/// Truncated tag length in bytes.
pub const TAG_LEN: usize = 16;
/// Total ciphertext expansion: nonce plus tag.
pub const OVERHEAD: usize = NONCE_LEN + TAG_LEN;

/// A key pair for authenticated encryption.
#[derive(Clone)]
pub struct AeadKey {
    enc_key: [u8; KEY_LEN],
    mac_key: [u8; KEY_LEN],
}

impl std::fmt::Debug for AeadKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        write!(f, "AeadKey(..)")
    }
}

impl AeadKey {
    /// Creates a key pair from raw key material.
    pub fn new(enc_key: [u8; KEY_LEN], mac_key: [u8; KEY_LEN]) -> Self {
        AeadKey { enc_key, mac_key }
    }

    /// Encrypts `plaintext` with the supplied unique `nonce`, authenticating
    /// `aad` alongside.
    pub fn seal(
        &self,
        nonce: &[u8; NONCE_LEN],
        plaintext: &[u8],
        aad: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        let cipher = ChaCha20::new(&self.enc_key)?;
        let ciphertext = cipher.encrypt(nonce, 1, plaintext)?;
        let tag = self.tag(nonce, &ciphertext, aad);
        let mut out = Vec::with_capacity(OVERHEAD + ciphertext.len());
        out.extend_from_slice(nonce);
        out.extend_from_slice(&ciphertext);
        out.extend_from_slice(&tag[..TAG_LEN]);
        Ok(out)
    }

    /// Verifies and decrypts a sealed box produced by [`AeadKey::seal`].
    pub fn open(&self, sealed: &[u8], aad: &[u8]) -> Result<Vec<u8>, CryptoError> {
        if sealed.len() < OVERHEAD {
            return Err(CryptoError::CiphertextTooShort);
        }
        let (nonce, rest) = sealed.split_at(NONCE_LEN);
        let (ciphertext, tag) = rest.split_at(rest.len() - TAG_LEN);
        let expected = self.tag(nonce, ciphertext, aad);
        if !constant_time_eq(&expected[..TAG_LEN], tag) {
            return Err(CryptoError::AuthenticationFailed);
        }
        let cipher = ChaCha20::new(&self.enc_key)?;
        cipher.encrypt(nonce, 1, ciphertext)
    }

    fn tag(&self, nonce: &[u8], ciphertext: &[u8], aad: &[u8]) -> [u8; 32] {
        let mut mac = HmacSha256::new(&self.mac_key);
        mac.update(&(aad.len() as u64).to_le_bytes());
        mac.update(aad);
        mac.update(nonce);
        mac.update(ciphertext);
        mac.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> AeadKey {
        AeadKey::new([0x11; 32], [0x22; 32])
    }

    #[test]
    fn roundtrip_restores_plaintext() {
        let k = key();
        let sealed = k
            .seal(&[1u8; 12], b"term=imclone doc=7 score=0.4", b"list-3")
            .unwrap();
        let opened = k.open(&sealed, b"list-3").unwrap();
        assert_eq!(opened, b"term=imclone doc=7 score=0.4");
        assert_eq!(sealed.len(), 28 + OVERHEAD);
    }

    #[test]
    fn tampered_ciphertext_is_rejected() {
        let k = key();
        let mut sealed = k.seal(&[2u8; 12], b"secret", b"").unwrap();
        let mid = sealed.len() / 2;
        sealed[mid] ^= 0x01;
        assert_eq!(
            k.open(&sealed, b"").unwrap_err(),
            CryptoError::AuthenticationFailed
        );
    }

    #[test]
    fn tampered_tag_is_rejected() {
        let k = key();
        let mut sealed = k.seal(&[3u8; 12], b"secret", b"").unwrap();
        let last = sealed.len() - 1;
        sealed[last] ^= 0x80;
        assert_eq!(
            k.open(&sealed, b"").unwrap_err(),
            CryptoError::AuthenticationFailed
        );
    }

    #[test]
    fn wrong_aad_is_rejected() {
        let k = key();
        let sealed = k.seal(&[4u8; 12], b"secret", b"list-1").unwrap();
        assert!(k.open(&sealed, b"list-2").is_err());
        assert!(k.open(&sealed, b"list-1").is_ok());
    }

    #[test]
    fn wrong_key_is_rejected() {
        let sealed = key().seal(&[5u8; 12], b"secret", b"").unwrap();
        let other = AeadKey::new([0x33; 32], [0x44; 32]);
        assert!(other.open(&sealed, b"").is_err());
    }

    #[test]
    fn truncated_input_is_rejected() {
        let k = key();
        assert_eq!(
            k.open(&[0u8; 10], b"").unwrap_err(),
            CryptoError::CiphertextTooShort
        );
        let sealed = k.seal(&[6u8; 12], b"", b"").unwrap();
        // Empty plaintext still produces a full-sized sealed box.
        assert_eq!(sealed.len(), OVERHEAD);
        assert_eq!(k.open(&sealed, b"").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn distinct_nonces_give_distinct_ciphertexts() {
        let k = key();
        let a = k.seal(&[7u8; 12], b"same message", b"").unwrap();
        let b = k.seal(&[8u8; 12], b"same message", b"").unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn debug_does_not_leak_key_material() {
        let k = key();
        let s = format!("{k:?}");
        assert!(!s.contains("11"));
        assert!(s.contains("AeadKey"));
    }
}
