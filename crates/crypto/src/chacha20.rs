//! ChaCha20 stream cipher (RFC 8439 / RFC 7539), implemented from scratch.
//!
//! ChaCha20 produces the keystream that encrypts posting-element payloads
//! (term id, document id, raw relevance score).  The paper only requires an
//! IND-CPA cipher that turns posting elements into opaque fixed-size blobs;
//! ChaCha20 is chosen because it is easy to implement correctly in portable
//! Rust and has published test vectors.

use crate::error::CryptoError;

/// Key length in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce length in bytes.
pub const NONCE_LEN: usize = 12;
/// Keystream block length in bytes.
pub const BLOCK_LEN: usize = 64;

/// A ChaCha20 cipher instance bound to a key.
#[derive(Debug, Clone)]
pub struct ChaCha20 {
    key_words: [u32; 8],
}

impl ChaCha20 {
    /// Creates a cipher from a 32-byte key.
    pub fn new(key: &[u8]) -> Result<Self, CryptoError> {
        if key.len() != KEY_LEN {
            return Err(CryptoError::InvalidKeyLength {
                expected: KEY_LEN,
                got: key.len(),
            });
        }
        let mut key_words = [0u32; 8];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            key_words[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        Ok(ChaCha20 { key_words })
    }

    /// Generates the 64-byte keystream block for `(counter, nonce)`.
    pub fn block(&self, counter: u32, nonce: &[u8]) -> Result<[u8; BLOCK_LEN], CryptoError> {
        if nonce.len() != NONCE_LEN {
            return Err(CryptoError::InvalidNonceLength {
                expected: NONCE_LEN,
                got: nonce.len(),
            });
        }
        let mut nonce_words = [0u32; 3];
        for (i, chunk) in nonce.chunks_exact(4).enumerate() {
            nonce_words[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(&self.key_words);
        state[12] = counter;
        state[13..16].copy_from_slice(&nonce_words);

        let mut working = state;
        for _ in 0..10 {
            // Column rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        let mut out = [0u8; BLOCK_LEN];
        for i in 0..16 {
            let word = working[i].wrapping_add(state[i]);
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        Ok(out)
    }

    /// XORs `data` with the keystream starting at block `initial_counter`.
    ///
    /// Encryption and decryption are the same operation.
    pub fn apply_keystream(
        &self,
        nonce: &[u8],
        initial_counter: u32,
        data: &mut [u8],
    ) -> Result<(), CryptoError> {
        let mut counter = initial_counter;
        for chunk in data.chunks_mut(BLOCK_LEN) {
            let ks = self.block(counter, nonce)?;
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
            counter = counter.wrapping_add(1);
        }
        Ok(())
    }

    /// Convenience: returns the encryption of `data` without mutating it.
    pub fn encrypt(
        &self,
        nonce: &[u8],
        initial_counter: u32,
        data: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        let mut out = data.to_vec();
        self.apply_keystream(nonce, initial_counter, &mut out)?;
        Ok(out)
    }
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::to_hex;

    fn rfc_key() -> Vec<u8> {
        (0u8..32).collect()
    }

    #[test]
    fn rfc8439_block_function_vector() {
        // RFC 8439 §2.3.2.
        let cipher = ChaCha20::new(&rfc_key()).unwrap();
        let nonce = [
            0x00, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let block = cipher.block(1, &nonce).unwrap();
        assert_eq!(
            to_hex(&block),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    #[test]
    fn rfc8439_encryption_vector_prefix() {
        // RFC 8439 §2.4.2: the "sunscreen" plaintext with counter 1.
        let cipher = ChaCha20::new(&rfc_key()).unwrap();
        let nonce = [
            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it.";
        let ct = cipher.encrypt(&nonce, 1, plaintext).unwrap();
        assert_eq!(ct.len(), plaintext.len());
        assert_eq!(
            to_hex(&ct[..32]),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
        );
    }

    #[test]
    fn decryption_inverts_encryption() {
        let cipher = ChaCha20::new(&[7u8; 32]).unwrap();
        let nonce = [3u8; 12];
        let msg = b"posting element: term=imclone doc=1.txt score=0.4";
        let ct = cipher.encrypt(&nonce, 0, msg).unwrap();
        assert_ne!(&ct[..], &msg[..]);
        let pt = cipher.encrypt(&nonce, 0, &ct).unwrap();
        assert_eq!(&pt[..], &msg[..]);
    }

    #[test]
    fn keystream_differs_across_nonces_and_counters() {
        let cipher = ChaCha20::new(&[9u8; 32]).unwrap();
        let b1 = cipher.block(0, &[0u8; 12]).unwrap();
        let b2 = cipher.block(1, &[0u8; 12]).unwrap();
        let b3 = cipher.block(0, &[1u8; 12]).unwrap();
        assert_ne!(b1, b2);
        assert_ne!(b1, b3);
    }

    #[test]
    fn wrong_key_or_nonce_length_is_rejected() {
        assert!(matches!(
            ChaCha20::new(&[0u8; 16]),
            Err(CryptoError::InvalidKeyLength {
                expected: 32,
                got: 16
            })
        ));
        let cipher = ChaCha20::new(&[0u8; 32]).unwrap();
        assert!(matches!(
            cipher.block(0, &[0u8; 8]),
            Err(CryptoError::InvalidNonceLength {
                expected: 12,
                got: 8
            })
        ));
    }

    #[test]
    fn multi_block_messages_are_handled() {
        let cipher = ChaCha20::new(&[1u8; 32]).unwrap();
        let nonce = [2u8; 12];
        let msg = vec![0xabu8; 300];
        let ct = cipher.encrypt(&nonce, 5, &msg).unwrap();
        let pt = cipher.encrypt(&nonce, 5, &ct).unwrap();
        assert_eq!(pt, msg);
        // A different starting counter must give a different ciphertext.
        let ct2 = cipher.encrypt(&nonce, 6, &msg).unwrap();
        assert_ne!(ct, ct2);
    }
}
