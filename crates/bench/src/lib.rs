//! Shared infrastructure for the figure/table harness binaries.
//!
//! Every binary in `src/bin/` regenerates one figure or table of the paper's
//! evaluation section (see DESIGN.md §4 for the index).  Output is printed as
//! aligned text tables plus machine-readable CSV lines prefixed with `csv,`,
//! so results can be both read in the terminal and post-processed.
//!
//! All binaries accept:
//!
//! * `--scale <f>`  — corpus scale relative to the paper's datasets
//!   (default 0.03 for quick laptop runs),
//! * `--full`       — shortcut for `--scale 1.0` (paper-scale corpora;
//!   slow),
//! * `--seed <n>`   — RNG seed (default 42).

use zerber_corpus::DatasetProfile;
use zerber_workload::{TestBed, TestBedConfig};

/// Command-line options shared by all harness binaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HarnessOptions {
    /// Corpus scale factor.
    pub scale: f64,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        HarnessOptions {
            scale: 0.03,
            seed: 42,
        }
    }
}

impl HarnessOptions {
    /// Parses `--scale`, `--full` and `--seed` from the process arguments.
    pub fn from_args() -> Self {
        let mut options = HarnessOptions::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--full" => options.scale = 1.0,
                "--scale" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse::<f64>().ok()) {
                        options.scale = v;
                        i += 1;
                    }
                }
                "--seed" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse::<u64>().ok()) {
                        options.seed = v;
                        i += 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        options
    }

    /// Builds the experiment test bed for one of the paper's two datasets.
    pub fn build_bed(&self, dataset: DatasetProfile) -> TestBed {
        // The ODP corpus is ~28x larger than StudIP; apply the same scale to
        // both so "--scale 1.0" means paper scale for each.
        let config = TestBedConfig {
            scale: self.scale,
            seed: self.seed,
            ..TestBedConfig::small(dataset)
        };
        TestBed::build(config).expect("test bed builds")
    }

    /// Both datasets of Section 6.1.
    pub fn datasets() -> [DatasetProfile; 2] {
        [DatasetProfile::StudIp, DatasetProfile::OdpWeb]
    }
}

/// Prints a section heading.
pub fn heading(title: &str) {
    println!("\n=== {title} ===");
}

/// Prints an aligned text table and the equivalent CSV rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    heading(title);
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{:>w$}", h, w = widths[i]))
        .collect();
    println!("{}", line.join(" | "));
    println!("{}", "-".repeat(line.join(" | ").len()));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(0)))
            .collect();
        println!("{}", line.join(" | "));
    }
    // CSV mirror.
    println!("csv,{}", headers.join(","));
    for row in rows {
        println!("csv,{}", row.join(","));
    }
}

/// Formats a float compactly.
pub fn fmt(value: f64) -> String {
    if value == 0.0 {
        "0".to_string()
    } else if value.abs() >= 1000.0 {
        format!("{value:.0}")
    } else if value.abs() >= 1.0 {
        format!("{value:.3}")
    } else {
        format!("{value:.6}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_are_small_scale() {
        let o = HarnessOptions::default();
        assert!(o.scale < 0.1);
        assert_eq!(o.seed, 42);
        assert_eq!(HarnessOptions::datasets().len(), 2);
    }

    #[test]
    fn fmt_uses_compact_representations() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(1234.6), "1235");
        assert_eq!(fmt(2.34559), "2.346");
        assert_eq!(fmt(0.000123456), "0.000123");
    }

    #[test]
    fn small_bed_builds_for_both_datasets() {
        let options = HarnessOptions {
            scale: 0.01,
            seed: 1,
        };
        for dataset in HarnessOptions::datasets() {
            let bed = options.build_bed(dataset);
            assert!(bed.corpus.num_docs() > 0);
        }
    }
}
