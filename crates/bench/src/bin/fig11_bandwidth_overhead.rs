//! Figure 11: average bandwidth overhead (Equation 13) as a function of the
//! initial response size `b`, for k = 1, 10, 50, on both test collections.
//!
//! The paper's finding: the minimal bandwidth overhead for a top-k query is
//! achieved around b = k; enlarging the initial response further only
//! increases the overhead.

use zerber_bench::{fmt, print_table, HarnessOptions};
use zerber_r::GrowthPolicy;
use zerber_workload::{average_bandwidth_overhead, QueryLogConfig};

fn main() {
    let options = HarnessOptions::from_args();
    let ks = [1usize, 10, 50];
    let bs = [1usize, 2, 5, 10, 20, 50, 100, 200];
    for dataset in HarnessOptions::datasets() {
        let bed = options.build_bed(dataset.clone());
        let log = bed
            .query_log(&QueryLogConfig {
                distinct_terms: 800,
                total_queries: 500_000,
                sample_queries: 0,
                ..QueryLogConfig::default()
            })
            .expect("query log");
        let mut rows = Vec::new();
        for &b in &bs {
            let mut row = vec![b.to_string()];
            for &k in &ks {
                let samples = bed
                    .run_workload(&log, k, b, GrowthPolicy::Doubling)
                    .expect("workload runs");
                row.push(fmt(average_bandwidth_overhead(&samples, k)));
            }
            rows.push(row);
        }
        print_table(
            &format!(
                "Figure 11 — average bandwidth overhead AvBO vs initial response size b ({}, scale {})",
                dataset.name(),
                options.scale
            ),
            &["b", "AvBO k=1", "AvBO k=10", "AvBO k=50"],
            &rows,
        );
    }
    println!(
        "\nExpected shape (paper): for each k the overhead is lowest around b = k and grows\n\
         once b exceeds k (returning around k elements per round is the sweet spot)."
    );
}
