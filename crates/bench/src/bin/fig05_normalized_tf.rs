//! Figure 5: log-log plot of the *normalized* term frequency distributions
//! (`TF/|d|`, Equation 4) of the same frequent and less frequent terms as
//! Figure 4.
//!
//! The point of the figure: even after length normalization the distributions
//! stay term specific — which is exactly why raw relevance scores cannot be
//! stored in the clear and the RSTF is needed.

use zerber_bench::{fmt, heading, print_table, HarnessOptions};
use zerber_corpus::DatasetProfile;
use zerber_r::math::ks_two_sample;

fn main() {
    let options = HarnessOptions::from_args();
    let bed = options.build_bed(DatasetProfile::StudIp);
    heading("Figure 5 — normalized TF distributions (StudIP stand-in)");

    let order = bed.stats.terms_by_doc_freq();
    let frequent = order[0];
    let less_frequent = order
        .iter()
        .copied()
        .find(|&t| {
            let df = bed.stats.doc_freq(t).unwrap_or(0);
            df >= 10 && df * 8 <= bed.stats.doc_freq(frequent).unwrap_or(0)
        })
        .unwrap_or(order[order.len() / 20]);

    let mut rows = Vec::new();
    let mut distributions = Vec::new();
    for (label, term) in [("frequent", frequent), ("less-frequent", less_frequent)] {
        let stats = bed.stats.term(term).unwrap();
        let norm = stats.normalized_tf_distribution();
        distributions.push(norm.clone());
        let mut rank = 1usize;
        while rank <= norm.len() {
            rows.push(vec![
                label.to_string(),
                rank.to_string(),
                fmt(norm[rank - 1]),
                fmt((rank as f64).log10()),
                fmt(norm[rank - 1].max(1e-9).log10()),
            ]);
            rank = (rank as f64 * 1.6).ceil() as usize;
        }
    }
    print_table(
        "normalized TF by document rank",
        &["term", "rank", "tf/|d|", "log10(rank)", "log10(tf/|d|)"],
        &rows,
    );
    let ks = ks_two_sample(&distributions[0], &distributions[1]);
    println!(
        "\nterm-specificity check: two-sample KS distance between the two normalized-TF\n\
         distributions = {:.3} (the paper's claim: distributions are still term specific,\n\
         so an attacker could identify terms from them; compare with the TRS columns of\n\
         tab_security_guarantees where this distance collapses).",
        ks
    );
}
