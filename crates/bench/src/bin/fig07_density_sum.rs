//! Figure 7: probability density accumulated from five training values.
//!
//! The paper illustrates the Gaussian-sum model (Equation 5): each training
//! relevance score contributes one Gaussian bell; their sum approximates the
//! term's score density.  The harness uses five training scores and prints
//! both the individual bells and their accumulated density on a grid.

use zerber_bench::{fmt, heading, print_table, HarnessOptions};
use zerber_r::math::std_normal_pdf;
use zerber_r::GaussianSum;

fn main() {
    let _options = HarnessOptions::from_args();
    heading("Figure 7 — probability density from 5 training values (Equation 5)");

    // Five training relevance scores, mimicking the clustered-plus-outlier
    // shape of the paper's illustration.
    let training = [0.12, 0.18, 0.22, 0.27, 0.55];
    let sigma = 18.0;
    let model = GaussianSum::new(&training, sigma).expect("valid model");
    println!("training values: {training:?}, sigma (rate) = {sigma}");

    let mut rows = Vec::new();
    for (x, total) in model.sample_curve(0.0, 0.8, 33) {
        let bells: Vec<String> = training
            .iter()
            .map(|&mu| fmt(sigma * std_normal_pdf(sigma * (x - mu)) / training.len() as f64))
            .collect();
        let mut row = vec![fmt(x), fmt(total)];
        row.extend(bells);
        rows.push(row);
    }
    print_table(
        "density curve (accumulated + per-training-value bells)",
        &[
            "score x", "sum f(x)", "bell_1", "bell_2", "bell_3", "bell_4", "bell_5",
        ],
        &rows,
    );
    println!(
        "\nExpected shape (paper): the dashed accumulated curve is highest where training\n\
         values cluster (around 0.1-0.3) and shows a smaller bump at the isolated value."
    );
}
