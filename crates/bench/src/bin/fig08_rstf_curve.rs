//! Figure 8: an example RSTF for one term.
//!
//! The paper plots the RSTF of the German term "Vergütung" (reimbursement)
//! learned from the StudIP training set: a monotone S-shaped curve mapping
//! raw relevance scores to TRS values in [0, 1], steep where training scores
//! are dense.  The harness trains the full model on the synthetic StudIP
//! stand-in, picks a comparable mid-frequency term and prints its curve.

use zerber_bench::{fmt, heading, print_table, HarnessOptions};
use zerber_corpus::DatasetProfile;

fn main() {
    let options = HarnessOptions::from_args();
    let bed = options.build_bed(DatasetProfile::StudIp);
    heading("Figure 8 — example RSTF for a mid-frequency term (StudIP stand-in)");

    // "Vergütung" is a content word of moderate document frequency; pick the
    // trained term closest to df = 20.
    let mut best: Option<(zerber_corpus::TermId, u32)> = None;
    for t in bed.stats.terms() {
        if bed.model.rstf(t.term).is_none() {
            continue;
        }
        let better = match best {
            None => true,
            Some((_, df)) => (t.doc_freq as i64 - 20).abs() < (df as i64 - 20).abs(),
        };
        if better {
            best = Some((t.term, t.doc_freq));
        }
    }
    let (term, df) = best.expect("some trained term exists");
    let rstf = bed.model.rstf(term).expect("trained");
    println!(
        "term {term}: document frequency {df}, trained on {} scores, sigma = {:.1}, kernel = {:?}",
        rstf.training_len(),
        rstf.sigma(),
        rstf.kernel()
    );

    let max_score = bed
        .stats
        .term(term)
        .unwrap()
        .normalized_tf_distribution()
        .first()
        .copied()
        .unwrap_or(0.2);
    let hi = (max_score * 1.5).min(1.0);
    let rows: Vec<Vec<String>> = rstf
        .sample_curve(0.0, hi, 41)
        .into_iter()
        .map(|(x, y)| vec![fmt(x), fmt(y)])
        .collect();
    print_table(
        "RSTF curve: input relevance score -> output TRS",
        &["relevance score", "TRS"],
        &rows,
    );
    println!(
        "\nExpected shape (paper): monotonically increasing from ~0 to ~1, steepest where\n\
         the term's training scores are concentrated."
    );
}
