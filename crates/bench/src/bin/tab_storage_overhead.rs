//! Section 6.3 — storage overhead.
//!
//! The paper's claim: Zerber+R attaches one transformed relevance score per
//! posting element, which is exactly what an ordinary inverted index stores
//! for ranking, so it introduces **no storage overhead** compared to the
//! ordinary index.  The harness measures both indexes over both collections
//! using (a) the paper's 64-bit-per-element accounting and (b) the real
//! on-disk byte counts of this implementation (which additionally carries the
//! encryption overhead of the Zerber substrate).

use zerber_bench::{fmt, print_table, HarnessOptions};
use zerber_r::TRS_BYTES;

fn main() {
    let options = HarnessOptions::from_args();
    let mut rows = Vec::new();
    for dataset in HarnessOptions::datasets() {
        let bed = options.build_bed(dataset.clone());
        let plain = bed.plain_index.size_report();
        let ordered = bed.index.size_report();
        rows.push(vec![
            dataset.name().to_string(),
            plain.num_postings.to_string(),
            plain.plain_bytes.to_string(),
            ordered.plain_bytes.to_string(),
            fmt(ordered.overhead_vs(&plain) * 100.0),
            plain.compressed_bytes.to_string(),
            bed.index.stored_bytes().to_string(),
        ]);
    }
    print_table(
        &format!(
            "Section 6.3 — storage per index (scale {}, 64-bit score per element as in the paper)",
            options.scale
        ),
        &[
            "collection",
            "posting elements",
            "ordinary bytes (8 B/elem)",
            "Zerber+R bytes (8 B TRS/elem)",
            "ranking-info overhead %",
            "ordinary compressed bytes",
            "Zerber+R stored bytes (incl. encryption)",
        ],
        &rows,
    );
    println!(
        "\nRanking information: both indexes store exactly one {TRS_BYTES}-byte score per posting\n\
         element, so the overhead attributable to Zerber+R's ranking support is 0% — the\n\
         paper's claim.  The last column shows the full cost of this implementation's\n\
         encrypted elements (nonce + ciphertext + MAC), which is inherited from the Zerber\n\
         substrate and exists with or without server-side top-k."
    );
}
