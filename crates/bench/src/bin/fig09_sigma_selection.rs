//! Figure 9: TRS variance in the control set depending on the selected σ.
//!
//! The paper's cross-validation sweep: for each candidate σ the RSTF is fit
//! on the training scores and the variance of the control-set TRS values with
//! respect to the uniform distribution is measured.  The curve is U-shaped —
//! too small a σ underfits (all TRS cluster around 0.5), too large a σ
//! overfits (control values collapse onto the training quantile staircase) —
//! and a good σ reaches a variance close to the uniform-sample floor.

use zerber_bench::{fmt, heading, print_table, HarnessOptions};
use zerber_corpus::DatasetProfile;
use zerber_r::{cross_validate, default_sigma_grid, RstfKernel};

fn main() {
    let options = HarnessOptions::from_args();
    let bed = options.build_bed(DatasetProfile::StudIp);
    heading("Figure 9 — TRS variance vs sigma (cross-validation)");

    // Per-term sweep for the most document-frequent trained term (enough
    // training and control scores for a stable curve), plus the pooled curve
    // the global strategy uses.
    let training_docs: std::collections::HashSet<_> = bed.split.training.iter().copied().collect();
    let control_docs: std::collections::HashSet<_> = bed.split.control.iter().copied().collect();
    let term = bed
        .stats
        .terms_by_doc_freq()
        .into_iter()
        .find(|&t| bed.model.rstf(t).is_some())
        .expect("a trained term exists");
    let stats = bed.stats.term(term).unwrap();
    let mut training = Vec::new();
    let mut control = Vec::new();
    for &(doc, _, rel) in &stats.postings {
        if training_docs.contains(&doc) {
            training.push(rel);
        } else if control_docs.contains(&doc) {
            control.push(rel);
        }
    }
    println!(
        "term {term}: {} training scores, {} control scores",
        training.len(),
        control.len()
    );
    let grid = default_sigma_grid();
    let selection = cross_validate(&training, &control, &grid, RstfKernel::Logistic)
        .expect("cross-validation succeeds");
    let erf_selection = cross_validate(&training, &control, &grid, RstfKernel::Erf)
        .expect("cross-validation succeeds");

    let rows: Vec<Vec<String>> = selection
        .curve
        .iter()
        .zip(erf_selection.curve.iter())
        .map(|(log_pt, erf_pt)| {
            vec![
                fmt(log_pt.sigma),
                fmt(log_pt.variance),
                fmt(erf_pt.variance),
            ]
        })
        .collect();
    print_table(
        "control-set TRS variance per candidate sigma",
        &[
            "sigma",
            "variance (logistic kernel)",
            "variance (erf kernel)",
        ],
        &rows,
    );

    let floor = 1.0 / (6.0 * (control.len() as f64 + 2.0));
    println!(
        "\nselected sigma (logistic) = {:.1} with variance {:.2e}  (erf: {:.1} / {:.2e})",
        selection.best_sigma,
        selection.best_variance,
        erf_selection.best_sigma,
        erf_selection.best_variance
    );
    println!(
        "uniform-sample variance floor for {} control values: {:.2e}",
        control.len(),
        floor
    );
    if let Some(global) = bed.model.global_selection() {
        println!(
            "global (pooled) cross-validation over frequent terms selected sigma = {:.1} (variance {:.2e})",
            global.best_sigma, global.best_variance
        );
    }
    println!(
        "\nExpected shape (paper): variance first falls with growing sigma, reaches a\n\
         minimum (the optimal sigma), then rises again as overfitting sets in; the paper\n\
         reports a minimum below 2e-5 for its (larger) control sets."
    );
}
