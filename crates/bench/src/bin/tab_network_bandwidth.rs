//! Section 6.6 — network bandwidth.
//!
//! The paper's accounting over the ODP collection and the real query log:
//! about 85 posting elements per query term on average (≈0.7 KB at 64 bits
//! per element), 2.4 terms per query, 2.5 KB of snippets for the top-10, a
//! total of ≈3.5 KB per top-10 answer, roughly 750 queries per second on a
//! 100 Mb/s server link — compared with 15/37/59 KB top-10 pages from
//! Google/Altavista/Yahoo.

use zerber_bench::{fmt, heading, print_table, HarnessOptions};
use zerber_corpus::DatasetProfile;
use zerber_protocol::{
    NetworkModel, ResponseBreakdown, ALTAVISTA_TOP10_BYTES, GOOGLE_TOP10_BYTES, SNIPPET_BYTES,
    YAHOO_TOP10_BYTES,
};
use zerber_r::GrowthPolicy;
use zerber_workload::QueryLogConfig;

fn main() {
    let options = HarnessOptions::from_args();
    let k = 10usize;
    let bed = options.build_bed(DatasetProfile::OdpWeb);
    let log = bed
        .query_log(&QueryLogConfig {
            distinct_terms: 1_500,
            total_queries: 1_000_000,
            sample_queries: 0,
            ..QueryLogConfig::default()
        })
        .expect("query log");
    let samples = bed
        .run_workload(&log, k, k, GrowthPolicy::Doubling)
        .expect("workload runs");
    let total_weight: f64 = samples.iter().map(|s| s.query_freq as f64).sum();
    let avg_elements: f64 = samples
        .iter()
        .map(|s| s.elements_transferred as f64 * s.query_freq as f64)
        .sum::<f64>()
        / total_weight;
    let avg_requests: f64 = samples
        .iter()
        .map(|s| s.requests as f64 * s.query_freq as f64)
        .sum::<f64>()
        / total_weight;
    let terms_per_query = 2.4f64;
    let net = NetworkModel::paper_intranet();

    heading(&format!(
        "Section 6.6 — network bandwidth (ODP stand-in, scale {}, k = b = 10)",
        options.scale
    ));
    println!(
        "measured: {:.1} posting elements / query term, {:.2} requests / query term",
        avg_elements, avg_requests
    );

    // Paper accounting: 64-bit posting elements.
    let paper_per_term = ResponseBreakdown::with_paper_elements(avg_elements.round() as usize, 0);
    let paper_total_bytes =
        (terms_per_query * paper_per_term.posting_bytes as f64) + (k * SNIPPET_BYTES) as f64;
    // This implementation's wire format (encrypted elements + headers).
    let impl_per_element =
        zerber_base::SEALED_PAYLOAD_BYTES + zerber_protocol::ELEMENT_HEADER_BYTES;
    let impl_per_term = ResponseBreakdown::new(avg_elements.round() as usize, impl_per_element, 0);
    let impl_total_bytes =
        (terms_per_query * impl_per_term.posting_bytes as f64) + (k * SNIPPET_BYTES) as f64;

    let rows = vec![
        vec![
            "posting elements per query term".into(),
            "~85".into(),
            fmt(avg_elements),
        ],
        vec![
            "posting bytes per query term (64-bit elements)".into(),
            "~700 B (0.7 KB)".into(),
            format!("{} B", paper_per_term.posting_bytes),
        ],
        vec!["terms per query".into(), "2.4".into(), fmt(terms_per_query)],
        vec![
            "snippet bytes for top-10".into(),
            "2500 B".into(),
            format!("{} B", k * SNIPPET_BYTES),
        ],
        vec![
            "total top-10 response (paper accounting)".into(),
            "~3.5 KB".into(),
            format!("{:.1} KB", paper_total_bytes / 1024.0),
        ],
        vec![
            "total top-10 response (this implementation's wire format)".into(),
            "-".into(),
            format!("{:.1} KB", impl_total_bytes / 1024.0),
        ],
        vec![
            "server throughput on 100 Mb/s (bandwidth bound)".into(),
            "~750 queries/s (incl. processing)".into(),
            format!(
                "{:.0} queries/s",
                net.server_queries_per_second(paper_total_bytes)
            ),
        ],
        vec![
            "client latency on 56 Kb/s modem".into(),
            "-".into(),
            format!(
                "{:.2} s",
                net.query_latency_seconds(
                    (avg_requests * terms_per_query).ceil() as usize,
                    (terms_per_query * 64.0) as usize,
                    paper_total_bytes as usize
                )
            ),
        ],
        vec![
            "Google top-10 page".into(),
            "15 KB".into(),
            format!("{} KB", GOOGLE_TOP10_BYTES / 1024),
        ],
        vec![
            "Altavista top-10 page".into(),
            "37 KB".into(),
            format!("{} KB", ALTAVISTA_TOP10_BYTES / 1024),
        ],
        vec![
            "Yahoo top-10 page".into(),
            "59 KB".into(),
            format!("{} KB", YAHOO_TOP10_BYTES / 1024),
        ],
    ];
    print_table(
        "bandwidth accounting: paper vs this reproduction",
        &["quantity", "paper", "measured / derived"],
        &rows,
    );
    println!(
        "\nExpected outcome (paper): a Zerber+R top-10 answer is a small multiple of the bare\n\
         k results and several times smaller than conventional engines' uncompressed top-10\n\
         pages; the absolute element count depends on the corpus scale used here."
    );
}
