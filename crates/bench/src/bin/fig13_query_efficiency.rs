//! Figure 13: efficiency in query answering `QRatio_eff = k / TRes`
//! (Equation 14) for top-10 requests with initial response sizes b = 10, 20
//! and 50, plotted over the query workload ordered by efficiency.
//!
//! The paper's finding: with b = 10 about 60% of the workload reaches
//! `QRatio_eff = 1` (no wasted elements); larger initial responses push the
//! whole curve down.

use zerber_bench::{fmt, print_table, HarnessOptions};
use zerber_r::GrowthPolicy;
use zerber_workload::{efficiency_at_percentiles, QueryLogConfig};

fn main() {
    let options = HarnessOptions::from_args();
    let k = 10usize;
    let bs = [10usize, 20, 50];
    let percentiles: Vec<f64> = (1..=10).map(|i| i as f64 * 10.0).collect();
    for dataset in HarnessOptions::datasets() {
        let bed = options.build_bed(dataset.clone());
        let log = bed
            .query_log(&QueryLogConfig {
                distinct_terms: 800,
                total_queries: 500_000,
                sample_queries: 0,
                ..QueryLogConfig::default()
            })
            .expect("query log");
        let mut per_b = Vec::new();
        for &b in &bs {
            let samples = bed
                .run_workload(&log, k, b, GrowthPolicy::Doubling)
                .expect("workload runs");
            per_b.push(efficiency_at_percentiles(&samples, k, &percentiles));
        }
        let rows: Vec<Vec<String>> = percentiles
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let mut row = vec![format!("{p:.0}%")];
                for curve in &per_b {
                    row.push(fmt(curve[i].1));
                }
                row
            })
            .collect();
        print_table(
            &format!(
                "Figure 13 — QRatio_eff over the workload (k = 10, {}, scale {})",
                dataset.name(),
                options.scale
            ),
            &["workload percentile", "b=10", "b=20", "b=50"],
            &rows,
        );
    }
    println!(
        "\nExpected shape (paper): with b = 10 roughly the first 60% of the workload sits at\n\
         QRatio_eff = 1 and the tail drops towards ~0.1; b = 20 and b = 50 lower the curve\n\
         everywhere (the initial response already overshoots k)."
    );
}
