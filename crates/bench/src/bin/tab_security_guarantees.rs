//! Section 6.2 — security guarantees, quantified.
//!
//! The paper argues (without a table) that (a) TRS values introduce no
//! additional attack surface because every term's TRS distribution is equally
//! uniform, and (b) BFM merging keeps follow-up request counts
//! indistinguishable across the terms of a merged list.  This harness turns
//! both arguments into numbers by running the adversary crate's attacks
//! against the ordinary index (raw scores) and the Zerber+R index (TRS), and
//! against BFM vs frequency-spanning merging.

use std::collections::HashMap;

use zerber_adversary::{
    identification_experiment, request_counting_attack, unmerge_attack, Background, ObservedElement,
};
use zerber_bench::{fmt, print_table, HarnessOptions};
use zerber_corpus::{DatasetProfile, TermId};
use zerber_r::uniformity_variance;
use zerber_workload::{MergeKind, TestBed, TestBedConfig};

fn main() {
    let options = HarnessOptions::from_args();
    let bed = options.build_bed(DatasetProfile::StudIp);
    let min_df = 15u32;

    // --- TRS uniformity per term -------------------------------------------
    let mut raw_vars = Vec::new();
    let mut trs_vars = Vec::new();
    for t in bed.stats.terms() {
        if t.doc_freq < min_df {
            continue;
        }
        let raw: Vec<f64> = t.relevance_scores();
        let trs: Vec<f64> = t
            .postings
            .iter()
            .map(|&(doc, _, rel)| bed.model.transform(t.term, doc, rel))
            .collect();
        raw_vars.push(uniformity_variance(&raw));
        trs_vars.push(uniformity_variance(&trs));
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    print_table(
        "TRS uniformity (variance w.r.t. the uniform distribution, terms with df >= 15)",
        &[
            "score exposed to the server",
            "mean variance",
            "max variance",
            "terms",
        ],
        &[
            vec![
                "raw normalized TF".into(),
                fmt(mean(&raw_vars)),
                fmt(raw_vars.iter().cloned().fold(0.0, f64::max)),
                raw_vars.len().to_string(),
            ],
            vec![
                "TRS (Zerber+R)".into(),
                fmt(mean(&trs_vars)),
                fmt(trs_vars.iter().cloned().fold(0.0, f64::max)),
                trs_vars.len().to_string(),
            ],
        ],
    );

    // --- Attack 1: distribution fingerprinting ------------------------------
    let background = Background::from_stats(&bed.stats);
    let raw_obs: HashMap<TermId, Vec<f64>> = bed
        .stats
        .terms()
        .filter(|t| t.doc_freq >= min_df)
        .map(|t| (t.term, t.relevance_scores()))
        .collect();
    let trs_obs: HashMap<TermId, Vec<f64>> = bed
        .stats
        .terms()
        .filter(|t| t.doc_freq >= min_df)
        .map(|t| {
            (
                t.term,
                t.postings
                    .iter()
                    .map(|&(doc, _, rel)| bed.model.transform(t.term, doc, rel))
                    .collect(),
            )
        })
        .collect();
    let raw_fp = identification_experiment(&background, &raw_obs, 4, min_df as usize, options.seed);
    let trs_fp = identification_experiment(&background, &trs_obs, 4, min_df as usize, options.seed);
    print_table(
        "attack 1 — term identification from score distributions (5 candidates, chance 20%)",
        &["index", "accuracy", "advantage over chance", "trials"],
        &[
            vec![
                "ordinary (raw scores)".into(),
                fmt(raw_fp.accuracy()),
                fmt(raw_fp.advantage()),
                raw_fp.trials.to_string(),
            ],
            vec![
                "Zerber+R (TRS)".into(),
                fmt(trs_fp.accuracy()),
                fmt(trs_fp.advantage()),
                trs_fp.trials.to_string(),
            ],
        ],
    );

    // --- Attack 2: unmerging a frequent+rare list (Figure 3 scenario) -------
    let order = bed.stats.terms_by_doc_freq();
    let frequent = order[0];
    let rare = order
        .iter()
        .copied()
        .find(|&t| (8..=25).contains(&bed.stats.doc_freq(t).unwrap_or(0)))
        .unwrap_or(order[order.len() / 2]);
    let pair = [frequent, rare];
    let priors: HashMap<TermId, f64> = pair
        .iter()
        .map(|&t| (t, bed.stats.probability(t).unwrap_or(0.0)))
        .collect();
    let background_scores: HashMap<TermId, Vec<f64>> = pair
        .iter()
        .map(|&t| (t, bed.stats.term(t).unwrap().relevance_scores()))
        .collect();
    let mut raw_elems = Vec::new();
    let mut trs_elems = Vec::new();
    for &t in &pair {
        for &(doc, _, rel) in &bed.stats.term(t).unwrap().postings {
            raw_elems.push(ObservedElement {
                truth: t,
                visible_score: rel,
            });
            trs_elems.push(ObservedElement {
                truth: t,
                visible_score: bed.model.transform(t, doc, rel),
            });
        }
    }
    let raw_um = unmerge_attack(&raw_elems, &background_scores, &priors);
    let trs_um = unmerge_attack(&trs_elems, &background_scores, &priors);
    print_table(
        "attack 2 — element attribution in a frequent+rare merged list",
        &[
            "score exposed",
            "accuracy",
            "prior baseline",
            "amplification",
            "bound r",
        ],
        &[
            vec![
                "raw normalized TF".into(),
                fmt(raw_um.accuracy()),
                fmt(raw_um.prior_accuracy()),
                fmt(raw_um.amplification()),
                fmt(bed.config.r),
            ],
            vec![
                "TRS (Zerber+R)".into(),
                fmt(trs_um.accuracy()),
                fmt(trs_um.prior_accuracy()),
                fmt(trs_um.amplification()),
                fmt(bed.config.r),
            ],
        ],
    );

    // --- Attack 3: follow-up request counting, BFM vs mixed -----------------
    let mixed = TestBed::build(TestBedConfig {
        merge: MergeKind::Mixed,
        scale: options.scale,
        seed: options.seed,
        ..TestBedConfig::small(DatasetProfile::StudIp)
    })
    .expect("mixed bed");
    let bfm_rc = request_counting_attack(&bed.index, &bed.stats, &bed.all_memberships, 10, 40)
        .expect("attack runs");
    let mixed_rc =
        request_counting_attack(&mixed.index, &mixed.stats, &mixed.all_memberships, 10, 40)
            .expect("attack runs");
    print_table(
        "attack 3 — identifying the rare merged term from follow-up request counts (k = b = 10)",
        &[
            "merging scheme",
            "rare term identified",
            "mean request spread",
            "mean requests",
            "lists",
        ],
        &[
            vec![
                "BFM (paper)".into(),
                fmt(bfm_rc.success_rate()),
                fmt(bfm_rc.mean_request_spread),
                fmt(bfm_rc.mean_requests),
                bfm_rc.lists_tested.to_string(),
            ],
            vec![
                "mixed (ablation)".into(),
                fmt(mixed_rc.success_rate()),
                fmt(mixed_rc.mean_request_spread),
                fmt(mixed_rc.mean_requests),
                mixed_rc.lists_tested.to_string(),
            ],
        ],
    );
    println!(
        "\nExpected outcome (paper, Section 6.2): the Zerber+R rows stay near the chance /\n\
         prior baselines while the raw-score and mixed-merging rows do not."
    );
}
