//! Figure 4: log-log plot of the term frequency distributions of a frequent
//! and a less frequent term.
//!
//! The paper shows the German terms "nicht" (frequent) and "management"
//! (less frequent) over the StudIP collection; both follow a power law but
//! with term-specific slope and value range.  The harness picks the analogous
//! terms of the synthetic StudIP stand-in: the most document-frequent term
//! and a mid-frequency term, and prints their TF-by-rank series (the series
//! the paper plots on log-log axes).

use zerber_bench::{fmt, heading, print_table, HarnessOptions};
use zerber_corpus::DatasetProfile;

fn main() {
    let options = HarnessOptions::from_args();
    let bed = options.build_bed(DatasetProfile::StudIp);
    heading("Figure 4 — term frequency distributions (StudIP stand-in)");
    println!(
        "corpus: {} docs, {} terms (scale {})",
        bed.corpus.num_docs(),
        bed.corpus.num_terms(),
        options.scale
    );

    let order = bed.stats.terms_by_doc_freq();
    let frequent = order[0];
    let less_frequent = order
        .iter()
        .copied()
        .find(|&t| {
            let df = bed.stats.doc_freq(t).unwrap_or(0);
            df >= 10 && df * 8 <= bed.stats.doc_freq(frequent).unwrap_or(0)
        })
        .unwrap_or(order[order.len() / 20]);

    let mut rows = Vec::new();
    for (label, term) in [("frequent", frequent), ("less-frequent", less_frequent)] {
        let stats = bed.stats.term(term).unwrap();
        let tf = stats.tf_distribution();
        println!(
            "{label} term {term}: document frequency {}, max TF {}",
            stats.doc_freq,
            tf.first().copied().unwrap_or(0)
        );
        // Log-spaced ranks, as read off a log-log plot.
        let mut rank = 1usize;
        while rank <= tf.len() {
            rows.push(vec![
                label.to_string(),
                rank.to_string(),
                tf[rank - 1].to_string(),
                fmt((rank as f64).log10()),
                fmt(f64::from(tf[rank - 1]).max(1.0).log10()),
            ]);
            rank = (rank as f64 * 1.6).ceil() as usize;
        }
    }
    print_table(
        "TF by document rank (paper: power law, term-specific slope)",
        &["term", "rank", "tf", "log10(rank)", "log10(tf)"],
        &rows,
    );
    println!(
        "\nExpected shape (paper): both series are roughly straight lines on the log-log\n\
         scale; the frequent term sits higher and spans a wider TF range."
    );
}
