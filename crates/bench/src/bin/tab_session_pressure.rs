//! Session-table pressure under the query workload.
//!
//! The server keeps resumable cursor sessions per shard, bounded two ways:
//! capacity eviction (oldest-first once a shard table holds
//! `MAX_CURSORS_PER_TABLE` sessions) and time-based expiry (sessions idle
//! for more than `SESSION_TTL_TICKS` logical clock ticks — one tick per
//! request — are swept on the next table write).  This harness drives three
//! phases against one server and reports the table occupancy and eviction
//! counters after each, so the bounds can be seen doing their work:
//!
//! 1. **walkers** — clients walk lists to exhaustion via cursor follow-ups
//!    and their sessions close cleanly;
//! 2. **abandon** — clients open follow-up sessions and never come back,
//!    driving occupancy toward the capacity bound;
//! 3. **expire** — plain request traffic ticks the logical clock past the
//!    TTL, and the next session open sweeps the abandoned table.

use zerber_bench::{heading, print_table, HarnessOptions};
use zerber_corpus::DatasetProfile;
use zerber_protocol::{IndexServer, QueryRequest};
use zerber_store::SESSION_TTL_TICKS;
use zerber_workload::{TestBed, TestBedConfig};

const SHARDS: usize = 2;
const USERS: usize = 4;

fn request(user: &str, list: u64, offset: u64, count: u32) -> QueryRequest {
    QueryRequest {
        user: user.into(),
        list,
        offset,
        cursor: 0,
        count,
        k: count,
    }
}

fn stats_row(phase: &str, server: &IndexServer) -> Vec<String> {
    let stats = server.store().session_stats();
    vec![
        phase.to_string(),
        stats.open.to_string(),
        stats.opened_total.to_string(),
        stats.capacity_evictions.to_string(),
        stats.ttl_evictions.to_string(),
        stats.clock.to_string(),
    ]
}

fn main() {
    let options = HarnessOptions::from_args();
    let bed = TestBed::build(TestBedConfig {
        scale: options.scale,
        seed: options.seed,
        ..TestBedConfig::small(DatasetProfile::StudIp)
    })
    .expect("test bed builds");
    let server = bed.build_server(SHARDS, USERS);
    let users = TestBed::server_users(USERS);
    let tokens: Vec<_> = users.iter().map(|u| server.acl().issue_token(u)).collect();
    let lists: Vec<u64> = (0..server.num_lists() as u64).collect();
    let mut rows = vec![stats_row("initial", &server)];

    // Phase 1: well-behaved walkers — follow-ups open sessions, exhaustion
    // closes them.  Walk the busiest lists so the walks actually take
    // multiple rounds.
    let mut busiest = lists.clone();
    busiest.sort_by_key(|&l| {
        std::cmp::Reverse(
            server
                .store()
                .list_len(zerber_base::MergedListId(l))
                .unwrap_or(0),
        )
    });
    for (i, &list) in busiest.iter().take(64).enumerate() {
        let user = &users[i % users.len()];
        let token = &tokens[i % users.len()];
        let mut offset = 0u64;
        let mut cursor = 0u64;
        let mut visible = u64::MAX;
        while offset < visible {
            let response = server
                .handle_query(
                    &QueryRequest {
                        cursor,
                        // Small steps so even short lists take follow-ups
                        // (which is what opens sessions).
                        ..request(user, list, offset, 2)
                    },
                    token,
                )
                .expect("walker request succeeds");
            if response.elements.is_empty() {
                break;
            }
            offset += response.elements.len() as u64;
            cursor = response.cursor;
            visible = response.visible_total;
        }
    }
    rows.push(stats_row("walkers (sessions close)", &server));

    // Phase 2: abandoned sessions — a follow-up opens a session that is
    // never resumed or closed.  Occupancy climbs until capacity eviction.
    let abandon_rounds = 3_000usize;
    for i in 0..abandon_rounds {
        let user = &users[i % users.len()];
        let token = &tokens[i % users.len()];
        let list = lists[i % lists.len()];
        // offset 1 marks a follow-up, which opens a server-side session.
        let _ = server.handle_query(&request(user, list, 1, 2), token);
    }
    rows.push(stats_row("abandon (capacity bound)", &server));

    // Phase 3: plain traffic ticks the logical clock past the TTL; the next
    // session open on each shard sweeps the stale table.  Clocks are
    // per-shard, so budget enough requests for every shard to age its
    // sessions past the TTL.
    let ticks = SHARDS * (SESSION_TTL_TICKS as usize + abandon_rounds + 16);
    for i in 0..ticks {
        let user = &users[i % users.len()];
        let token = &tokens[i % users.len()];
        let _ = server.handle_query(&request(user, lists[i % lists.len()], 0, 1), token);
    }
    for &list in lists.iter().take(2 * SHARDS) {
        let _ = server.handle_query(&request(&users[0], list, 1, 2), &tokens[0]);
    }
    rows.push(stats_row("expire (TTL sweep)", &server));

    print_table(
        &format!(
            "Session-table pressure (scale {}, {SHARDS} shards, TTL {SESSION_TTL_TICKS} ticks)",
            options.scale
        ),
        &[
            "phase",
            "open sessions",
            "opened total",
            "capacity evictions",
            "ttl evictions",
            "logical clock",
        ],
        &rows,
    );
    heading("Reading the table");
    println!(
        "Walkers leave no residue: exhausted sessions close server-side.  Abandoned\n\
         follow-ups accumulate until the per-shard capacity bound evicts oldest-first.\n\
         Once request traffic ticks the logical clock past the TTL, the next session\n\
         open sweeps the idle table — abandoned sessions cost bounded memory for\n\
         bounded (logical) time."
    );
}
