//! Figure 12: average number of requests needed to obtain the top-k elements
//! as a function of the initial response size `b`, for k = 1, 10, 50, on both
//! test collections.
//!
//! The paper's finding: with an initial response of about 10 elements most
//! query terms obtain their top-10 within 2 requests; pushing the request
//! count further down requires a much larger initial response, which is not
//! worth the bandwidth (Figure 11).

use zerber_bench::{fmt, print_table, HarnessOptions};
use zerber_r::GrowthPolicy;
use zerber_workload::{average_requests, single_request_fraction, QueryLogConfig};

fn main() {
    let options = HarnessOptions::from_args();
    let ks = [1usize, 10, 50];
    let bs = [1usize, 2, 5, 10, 20, 50, 100, 200];
    for dataset in HarnessOptions::datasets() {
        let bed = options.build_bed(dataset.clone());
        let log = bed
            .query_log(&QueryLogConfig {
                distinct_terms: 800,
                total_queries: 500_000,
                sample_queries: 0,
                ..QueryLogConfig::default()
            })
            .expect("query log");
        let mut rows = Vec::new();
        for &b in &bs {
            let mut row = vec![b.to_string()];
            for &k in &ks {
                let samples = bed
                    .run_workload(&log, k, b, GrowthPolicy::Doubling)
                    .expect("workload runs");
                row.push(fmt(average_requests(&samples)));
            }
            // Extra column: share of the k=10 workload answered in one round.
            let samples = bed
                .run_workload(&log, 10, b, GrowthPolicy::Doubling)
                .expect("workload runs");
            row.push(fmt(single_request_fraction(&samples) * 100.0));
            rows.push(row);
        }
        print_table(
            &format!(
                "Figure 12 — average number of requests vs initial response size b ({}, scale {})",
                dataset.name(),
                options.scale
            ),
            &[
                "b",
                "requests k=1",
                "requests k=10",
                "requests k=50",
                "% of k=10 workload in 1 request",
            ],
            &rows,
        );
    }
    println!(
        "\nExpected shape (paper): request counts fall as b grows; at b ≈ 10 most of the\n\
         top-10 workload completes within 2 requests (≈30 elements in total)."
    );
}
