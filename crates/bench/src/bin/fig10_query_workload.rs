//! Figure 10: correlation of query frequency and cumulative query workload
//! for top-10 retrieval.
//!
//! The paper orders the query-log terms by decreasing query frequency
//! (log-scale x axis) and plots the cumulative workload cost (Equation 9) —
//! showing that the most frequent queries constitute nearly the whole
//! workload, which motivates tuning the initial response size for them.

use zerber_bench::{fmt, heading, print_table, HarnessOptions};
use zerber_workload::{cumulative_workload_curve, workload_cost, QueryLogConfig};

fn main() {
    let options = HarnessOptions::from_args();
    let k = 10usize;
    for dataset in HarnessOptions::datasets() {
        let bed = options.build_bed(dataset.clone());
        let log = bed
            .query_log(&QueryLogConfig {
                distinct_terms: 2_000,
                total_queries: 1_000_000,
                sample_queries: 0,
                ..QueryLogConfig::default()
            })
            .expect("query log");
        let (total, per_term) = workload_cost(&bed.stats, &bed.plan, &log, k).expect("cost model");
        let curve = cumulative_workload_curve(&per_term);
        heading(&format!(
            "Figure 10 — query frequency vs cumulative top-{k} workload ({})",
            dataset.name()
        ));
        println!(
            "{} distinct query terms, {} queries, total analytical workload {} elements",
            log.distinct_terms(),
            log.total_queries(),
            fmt(total)
        );
        // Log-spaced ranks, as read off the log-scale x axis.  Besides the
        // Equation 9 cost the table also shows the cumulative share of raw
        // query volume, which is the quantity that saturates fastest.
        let total_freq: f64 = curve.iter().map(|p| p.query_freq as f64).sum();
        let mut cumulative_freq = vec![0.0f64; curve.len()];
        let mut acc = 0.0;
        for (i, p) in curve.iter().enumerate() {
            acc += p.query_freq as f64;
            cumulative_freq[i] = acc / total_freq;
        }
        let mut rows = Vec::new();
        let mut rank = 1usize;
        while rank <= curve.len() {
            let point = curve[rank - 1];
            rows.push(vec![
                rank.to_string(),
                point.query_freq.to_string(),
                fmt(cumulative_freq[rank - 1] * 100.0),
                fmt(point.cumulative_cost_fraction * 100.0),
            ]);
            rank = (rank as f64 * 1.8).ceil() as usize;
        }
        if let Some(last) = curve.last() {
            rows.push(vec![
                last.rank.to_string(),
                last.query_freq.to_string(),
                fmt(100.0),
                fmt(last.cumulative_cost_fraction * 100.0),
            ]);
        }
        print_table(
            "cumulative workload by query-frequency rank",
            &[
                "rank (log axis)",
                "query freq",
                "cumulative queries %",
                "cumulative top-10 workload % (Eq. 9)",
            ],
            &rows,
        );
    }
    println!(
        "\nExpected shape (paper): the cumulative workload saturates quickly — the most\n\
         frequent queries account for nearly the whole workload."
    );
}
