//! Quick probe of the pipelined fast path and pool handoff overhead:
//! prints raw-driver and pipelined queries/sec per configuration so the
//! bench guards can be checked without a full criterion run.

use zerber_corpus::DatasetProfile;
use zerber_protocol::{
    drive_pipelined_queries, drive_raw_queries, IndexServer, LoadConfig, PipelineConfig,
    StoreEngine,
};
use zerber_workload::{QueryLogConfig, TestBed, TestBedConfig};

const TOTAL_QUERIES: usize = 4000;

fn workload_lists(bed: &TestBed) -> Vec<u64> {
    let log = bed
        .query_log(&QueryLogConfig {
            distinct_terms: 200,
            total_queries: 100_000,
            sample_queries: 0,
            ..QueryLogConfig::default()
        })
        .expect("query log generates");
    let mut lists = Vec::new();
    for &(term, _freq) in log.term_frequencies() {
        if let Ok(list) = bed.plan.list_of(term) {
            if !lists.contains(&list.0) {
                lists.push(list.0);
            }
        }
    }
    lists.truncate(32);
    lists
}

fn piped(server: &IndexServer, users: &[String], lists: &[u64], batch: usize, par: usize) -> f64 {
    drive_pipelined_queries(
        server,
        users,
        lists,
        &PipelineConfig {
            workers: 4,
            queries_per_worker: TOTAL_QUERIES / 4,
            k: 10,
            parallelism: par,
            ..PipelineConfig::for_batch(batch)
        },
    )
    .expect("pipelined run succeeds")
    .queries_per_second
}

fn raw(server: &IndexServer, users: &[String], lists: &[u64]) -> f64 {
    drive_raw_queries(
        server,
        users,
        lists,
        &LoadConfig {
            threads: 1,
            queries_per_thread: TOTAL_QUERIES,
            k: 10,
        },
    )
    .expect("raw run succeeds")
    .queries_per_second
}

fn main() {
    let bed = TestBed::build(TestBedConfig {
        scale: 0.02,
        ..TestBedConfig::small(DatasetProfile::StudIp)
    })
    .expect("test bed builds");
    let users = TestBed::server_users(8);
    let lists = workload_lists(&bed);
    let server = bed.build_engine_server(StoreEngine::Sharded, 8, 8);

    for round in 0..5 {
        let r = raw(&server, &users, &lists);
        let b1 = piped(&server, &users, &lists, 1, 0);
        let b64 = piped(&server, &users, &lists, 64, 0);
        let b64w1 = piped(&server, &users, &lists, 64, 1);
        server.set_shard_workers(0);
        println!(
            "round {round}: raw {r:9.0}  b1 {b1:9.0} ({:.2}x)  b64 {b64:9.0}  b64w1 {b64w1:9.0} ({:.2}x)",
            b1 / r,
            b64w1 / b64,
        );
    }
}
