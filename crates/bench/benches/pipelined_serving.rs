//! Pipelined serving throughput: queries/sec of the cross-user batched shard
//! scheduler (`IndexServer::handle_query_stream` driven by
//! `drive_pipelined_queries`) at batch sizes 1/4/16/64 across all three
//! storage engines, against the per-query thread-pool driver as baseline —
//! plus a shard-worker sweep (1/2/4/#cores persistent pool workers at
//! batch 64) against the sequential in-thread scheduler.
//!
//! Queries/sec is computed over *serving* time (wall clock minus the
//! scheduler's idle wait for submissions), so producer-bound runs do not
//! deflate the server-side measurement.
//!
//! Besides the criterion timings, the bench writes a machine-readable
//! `BENCH_pipelined_serving.json` to the repository root with, per
//! (engine, batch-size, parallelism) point, the measured queries/sec, plus
//! the single-mutex raw-driver baseline at 1 thread and the ratio of every
//! sharded batched point to it — the acceptance target is that batching
//! erases the sharded engine's single-thread deficit (>= 1.0x at
//! batch >= 16).  The bench asserts that batch=1 throughput stays within
//! noise of the raw driver and that the 1-worker pool stays within 0.9x of
//! the sequential scheduler, so neither the unbatched fast path nor the
//! pool handoff overhead can regress silently; the guards re-measure both
//! sides back-to-back and keep the best of several attempts, so load drift
//! on shared hardware cancels instead of failing them spuriously.  Worker
//! counts above the host's hardware threads cannot speed anything up —
//! read the sweep against the recorded `hardware_threads`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use zerber_corpus::DatasetProfile;
use zerber_protocol::{
    drive_pipelined_queries, drive_raw_queries, IndexServer, LoadConfig, PipelineConfig,
    StoreEngine,
};
use zerber_workload::{QueryLogConfig, TestBed, TestBedConfig};

const BATCH_SIZES: [usize; 4] = [1, 4, 16, 64];
const ENGINES: [(&str, StoreEngine); 3] = [
    ("sharded", StoreEngine::Sharded),
    ("single_mutex", StoreEngine::SingleMutex),
    ("segment", StoreEngine::Segment),
];
/// Queries per measured run.  Large enough that thread spawn/teardown of the
/// drivers amortizes to noise at the measured >100k q/s rates.
const TOTAL_QUERIES: usize = 4000;
const WORKERS: usize = 4;
const SHARDS: usize = 8;
const USERS: usize = 8;
/// Recorded points take the best of this many runs, damping scheduler noise
/// on shared hardware.
const RUNS: usize = 3;

fn bed() -> TestBed {
    TestBed::build(TestBedConfig {
        scale: 0.02,
        ..TestBedConfig::small(DatasetProfile::StudIp)
    })
    .expect("test bed builds")
}

/// The fig10-style query workload: merged lists of the query-log's most
/// frequent terms (same workload as the store-engines bench).
fn workload_lists(bed: &TestBed) -> Vec<u64> {
    let log = bed
        .query_log(&QueryLogConfig {
            distinct_terms: 200,
            total_queries: 100_000,
            sample_queries: 0,
            ..QueryLogConfig::default()
        })
        .expect("query log generates");
    let mut lists = Vec::new();
    for &(term, _freq) in log.term_frequencies() {
        if let Ok(list) = bed.plan.list_of(term) {
            if !lists.contains(&list.0) {
                lists.push(list.0);
            }
        }
    }
    lists.truncate(32);
    assert!(!lists.is_empty(), "workload must cover some merged lists");
    lists
}

/// Shard-worker counts of the sweep: 1, 2, 4 and the host's hardware
/// threads, deduplicated (on a 4-core host the sweep is exactly 1/2/4).
fn worker_counts() -> Vec<usize> {
    let hardware = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut counts = vec![1, 2, 4, hardware];
    counts.sort_unstable();
    counts.dedup();
    counts
}

fn pipeline(batch_size: usize, parallelism: usize) -> PipelineConfig {
    PipelineConfig {
        workers: WORKERS,
        queries_per_worker: TOTAL_QUERIES / WORKERS,
        k: 10,
        parallelism,
        ..PipelineConfig::for_batch(batch_size)
    }
}

fn measure_piped(
    server: &IndexServer,
    users: &[String],
    lists: &[u64],
    batch: usize,
    parallelism: usize,
) -> f64 {
    drive_pipelined_queries(server, users, lists, &pipeline(batch, parallelism))
        .expect("pipelined run succeeds")
        .queries_per_second
}

fn measure_raw(server: &IndexServer, users: &[String], lists: &[u64]) -> f64 {
    drive_raw_queries(
        server,
        users,
        lists,
        &LoadConfig {
            threads: 1,
            queries_per_thread: TOTAL_QUERIES,
            k: 10,
        },
    )
    .expect("raw run succeeds")
    .queries_per_second
}

fn best_of<F: FnMut() -> f64>(mut f: F) -> f64 {
    (0..RUNS).map(|_| f()).fold(0.0, f64::max)
}

/// Best `num() / den()` ratio over up to `attempts` adjacent re-measurements
/// (early exit once `threshold` is met).  The regression guards measure both
/// sides back-to-back per attempt so load drift on shared hardware cancels
/// out instead of failing the guard spuriously.
fn best_ratio<N: FnMut() -> f64, D: FnMut() -> f64>(
    mut num: N,
    mut den: D,
    threshold: f64,
    attempts: usize,
) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..attempts {
        let den = den();
        if den > 0.0 {
            best = best.max(num() / den);
        }
        if best >= threshold {
            break;
        }
    }
    best
}

struct Point {
    engine: &'static str,
    batch_size: usize,
    /// Pool workers serving the rounds (0 = sequential in-thread scheduler).
    parallelism: usize,
    queries_per_second: f64,
}

fn bench_pipelined_serving(c: &mut Criterion) {
    let bed = bed();
    let users = TestBed::server_users(USERS);
    let lists = workload_lists(&bed);
    let servers: Vec<(&'static str, IndexServer)> = ENGINES
        .iter()
        .map(|&(name, engine)| (name, bed.build_engine_server(engine, SHARDS, USERS)))
        .collect();

    // Raw-driver baselines at 1 thread: the numbers the batched path is
    // measured against (single-mutex is the paper baseline architecture).
    let raw_sharded = best_of(|| measure_raw(&servers[0].1, &users, &lists));
    let raw_single = best_of(|| measure_raw(&servers[1].1, &users, &lists));

    let mut group = c.benchmark_group("pipelined_serving");
    group.sample_size(10);
    let mut points = Vec::new();
    for &(name, _) in &ENGINES {
        let server = &servers.iter().find(|(n, _)| *n == name).unwrap().1;
        for &batch in &BATCH_SIZES {
            group.bench_with_input(BenchmarkId::new(name, batch), &batch, |b, &batch| {
                b.iter(|| measure_piped(server, &users, &lists, batch, 0))
            });
            points.push(Point {
                engine: name,
                batch_size: batch,
                parallelism: 0,
                queries_per_second: best_of(|| measure_piped(server, &users, &lists, batch, 0)),
            });
        }
    }
    group.finish();

    // Shard-worker sweep at the most amortized batch size: the pool's
    // scaling (and its 1-worker handoff overhead) relative to the
    // sequential scheduler measured above.
    const SWEEP_BATCH: usize = 64;
    for &(name, _) in &ENGINES {
        let server = &servers.iter().find(|(n, _)| *n == name).unwrap().1;
        for workers in worker_counts() {
            points.push(Point {
                engine: name,
                batch_size: SWEEP_BATCH,
                parallelism: workers,
                queries_per_second: best_of(|| {
                    measure_piped(server, &users, &lists, SWEEP_BATCH, workers)
                }),
            });
        }
        // The sweep leaves a pool installed; drop back to the sequential
        // scheduler so later measurements are unaffected.
        server.set_shard_workers(0);
    }

    // Regression guard: an unbatched pipelined round must stay within noise
    // of the per-query driver — the fast path cannot silently regress.
    for name in ["sharded", "single_mutex"] {
        let server = &servers.iter().find(|(n, _)| *n == name).unwrap().1;
        let ratio = best_ratio(
            || measure_piped(server, &users, &lists, 1, 0),
            || measure_raw(server, &users, &lists),
            0.75,
            5,
        );
        assert!(
            ratio >= 0.75,
            "{name} batch=1 pipelined throughput fell to {ratio:.2}x of the raw driver"
        );
    }
    // Pool-overhead guard: a 1-worker pool adds only a queue handoff per
    // bucket, so it must stay within 0.9x of the sequential scheduler.
    for &(name, _) in &ENGINES {
        let server = &servers.iter().find(|(n, _)| *n == name).unwrap().1;
        let ratio = best_ratio(
            || measure_piped(server, &users, &lists, SWEEP_BATCH, 1),
            || measure_piped(server, &users, &lists, SWEEP_BATCH, 0),
            0.9,
            5,
        );
        server.set_shard_workers(0);
        assert!(
            ratio >= 0.9,
            "{name} 1-worker pool throughput fell to {ratio:.2}x of the sequential scheduler"
        );
    }

    write_report(&points, raw_sharded, raw_single, lists.len());
}

fn write_report(points: &[Point], raw_sharded: f64, raw_single: f64, workload_lists: usize) {
    let points_json = points
        .iter()
        .map(|p| {
            format!(
                "{{\"engine\":\"{}\",\"batch_size\":{},\"parallelism\":{},\"queries_per_second\":{:.1}}}",
                p.engine, p.batch_size, p.parallelism, p.queries_per_second
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let worker_scaling = points
        .iter()
        .filter(|p| p.parallelism > 0)
        .map(|p| {
            let sequential = points
                .iter()
                .find(|q| {
                    q.engine == p.engine && q.batch_size == p.batch_size && q.parallelism == 0
                })
                .map(|q| q.queries_per_second)
                .unwrap_or(0.0);
            format!(
                "{{\"engine\":\"{}\",\"workers\":{},\"queries_per_second\":{:.1},\"vs_sequential\":{:.3}}}",
                p.engine,
                p.parallelism,
                p.queries_per_second,
                if sequential > 0.0 {
                    p.queries_per_second / sequential
                } else {
                    0.0
                }
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let ratios = BATCH_SIZES
        .iter()
        .map(|&batch| {
            let sharded = points
                .iter()
                .find(|p| p.engine == "sharded" && p.batch_size == batch && p.parallelism == 0)
                .map(|p| p.queries_per_second)
                .unwrap_or(0.0);
            format!(
                "{{\"batch_size\":{batch},\"sharded_batched_over_single_mutex_raw\":{:.3}}}",
                if raw_single > 0.0 {
                    sharded / raw_single
                } else {
                    0.0
                }
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let json = format!(
        "{{\n  \"bench\": \"pipelined_serving\",\n  \"workload\": \"fig10-style query-log lists\",\n  \
         \"workload_lists\": {workload_lists},\n  \"total_queries_per_run\": {TOTAL_QUERIES},\n  \
         \"workers\": {WORKERS},\n  \"hardware_threads\": {},\n  \
         \"raw_driver_1thread\": {{\"sharded\": {raw_sharded:.1}, \"single_mutex\": {raw_single:.1}}},\n  \
         \"points\": [{points_json}],\n  \"worker_scaling_at_batch_64\": [{worker_scaling}],\n  \
         \"speedup_vs_raw_single_mutex\": [{ratios}]\n}}\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_pipelined_serving.json"
    );
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

criterion_group!(benches, bench_pipelined_serving);
criterion_main!(benches);
