//! Pipelined serving throughput: queries/sec of the cross-user batched shard
//! scheduler (`IndexServer::handle_query_stream` driven by
//! `drive_pipelined_queries`) at batch sizes 1/4/16/64 across all three
//! storage engines, against the per-query thread-pool driver as baseline.
//!
//! Besides the criterion timings, the bench writes a machine-readable
//! `BENCH_pipelined_serving.json` to the repository root with, per
//! (engine, batch-size) point, the measured queries/sec, plus the
//! single-mutex raw-driver baseline at 1 thread and the ratio of every
//! sharded batched point to it — the acceptance target is that batching
//! erases the sharded engine's single-thread deficit (>= 1.0x at
//! batch >= 16).  The bench asserts that batch=1 throughput stays within
//! noise of the raw driver, so the unbatched fast path cannot regress
//! silently.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use zerber_corpus::DatasetProfile;
use zerber_protocol::{
    drive_pipelined_queries, drive_raw_queries, IndexServer, LoadConfig, PipelineConfig,
    StoreEngine,
};
use zerber_workload::{QueryLogConfig, TestBed, TestBedConfig};

const BATCH_SIZES: [usize; 4] = [1, 4, 16, 64];
const ENGINES: [(&str, StoreEngine); 3] = [
    ("sharded", StoreEngine::Sharded),
    ("single_mutex", StoreEngine::SingleMutex),
    ("segment", StoreEngine::Segment),
];
/// Queries per measured run.  Large enough that thread spawn/teardown of the
/// drivers amortizes to noise at the measured >100k q/s rates.
const TOTAL_QUERIES: usize = 4000;
const WORKERS: usize = 4;
const SHARDS: usize = 8;
const USERS: usize = 8;
/// Recorded points take the best of this many runs, damping scheduler noise
/// on shared hardware.
const RUNS: usize = 3;

fn bed() -> TestBed {
    TestBed::build(TestBedConfig {
        scale: 0.02,
        ..TestBedConfig::small(DatasetProfile::StudIp)
    })
    .expect("test bed builds")
}

/// The fig10-style query workload: merged lists of the query-log's most
/// frequent terms (same workload as the store-engines bench).
fn workload_lists(bed: &TestBed) -> Vec<u64> {
    let log = bed
        .query_log(&QueryLogConfig {
            distinct_terms: 200,
            total_queries: 100_000,
            sample_queries: 0,
            ..QueryLogConfig::default()
        })
        .expect("query log generates");
    let mut lists = Vec::new();
    for &(term, _freq) in log.term_frequencies() {
        if let Ok(list) = bed.plan.list_of(term) {
            if !lists.contains(&list.0) {
                lists.push(list.0);
            }
        }
    }
    lists.truncate(32);
    assert!(!lists.is_empty(), "workload must cover some merged lists");
    lists
}

fn pipeline(batch_size: usize) -> PipelineConfig {
    PipelineConfig {
        workers: WORKERS,
        queries_per_worker: TOTAL_QUERIES / WORKERS,
        k: 10,
        ..PipelineConfig::for_batch(batch_size)
    }
}

fn measure_piped(server: &IndexServer, users: &[String], lists: &[u64], batch: usize) -> f64 {
    drive_pipelined_queries(server, users, lists, &pipeline(batch))
        .expect("pipelined run succeeds")
        .queries_per_second
}

fn measure_raw(server: &IndexServer, users: &[String], lists: &[u64]) -> f64 {
    drive_raw_queries(
        server,
        users,
        lists,
        &LoadConfig {
            threads: 1,
            queries_per_thread: TOTAL_QUERIES,
            k: 10,
        },
    )
    .expect("raw run succeeds")
    .queries_per_second
}

fn best_of<F: FnMut() -> f64>(mut f: F) -> f64 {
    (0..RUNS).map(|_| f()).fold(0.0, f64::max)
}

struct Point {
    engine: &'static str,
    batch_size: usize,
    queries_per_second: f64,
}

fn bench_pipelined_serving(c: &mut Criterion) {
    let bed = bed();
    let users = TestBed::server_users(USERS);
    let lists = workload_lists(&bed);
    let servers: Vec<(&'static str, IndexServer)> = ENGINES
        .iter()
        .map(|&(name, engine)| (name, bed.build_engine_server(engine, SHARDS, USERS)))
        .collect();

    // Raw-driver baselines at 1 thread: the numbers the batched path is
    // measured against (single-mutex is the paper baseline architecture).
    let raw_sharded = best_of(|| measure_raw(&servers[0].1, &users, &lists));
    let raw_single = best_of(|| measure_raw(&servers[1].1, &users, &lists));

    let mut group = c.benchmark_group("pipelined_serving");
    group.sample_size(10);
    let mut points = Vec::new();
    for &(name, _) in &ENGINES {
        let server = &servers.iter().find(|(n, _)| *n == name).unwrap().1;
        for &batch in &BATCH_SIZES {
            group.bench_with_input(BenchmarkId::new(name, batch), &batch, |b, &batch| {
                b.iter(|| measure_piped(server, &users, &lists, batch))
            });
            points.push(Point {
                engine: name,
                batch_size: batch,
                queries_per_second: best_of(|| measure_piped(server, &users, &lists, batch)),
            });
        }
    }
    group.finish();

    let of = |engine: &str, batch: usize| {
        points
            .iter()
            .find(|p| p.engine == engine && p.batch_size == batch)
            .map(|p| p.queries_per_second)
            .expect("point was measured")
    };
    // Regression guard: an unbatched pipelined round must stay within noise
    // of the per-query driver — the fast path cannot silently regress.
    for (name, raw) in [("sharded", raw_sharded), ("single_mutex", raw_single)] {
        let ratio = of(name, 1) / raw;
        assert!(
            ratio >= 0.75,
            "{name} batch=1 pipelined throughput fell to {ratio:.2}x of the raw driver"
        );
    }

    write_report(&points, raw_sharded, raw_single, lists.len());
}

fn write_report(points: &[Point], raw_sharded: f64, raw_single: f64, workload_lists: usize) {
    let points_json = points
        .iter()
        .map(|p| {
            format!(
                "{{\"engine\":\"{}\",\"batch_size\":{},\"queries_per_second\":{:.1}}}",
                p.engine, p.batch_size, p.queries_per_second
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let ratios = BATCH_SIZES
        .iter()
        .map(|&batch| {
            let sharded = points
                .iter()
                .find(|p| p.engine == "sharded" && p.batch_size == batch)
                .map(|p| p.queries_per_second)
                .unwrap_or(0.0);
            format!(
                "{{\"batch_size\":{batch},\"sharded_batched_over_single_mutex_raw\":{:.3}}}",
                if raw_single > 0.0 {
                    sharded / raw_single
                } else {
                    0.0
                }
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let json = format!(
        "{{\n  \"bench\": \"pipelined_serving\",\n  \"workload\": \"fig10-style query-log lists\",\n  \
         \"workload_lists\": {workload_lists},\n  \"total_queries_per_run\": {TOTAL_QUERIES},\n  \
         \"workers\": {WORKERS},\n  \"hardware_threads\": {},\n  \
         \"raw_driver_1thread\": {{\"sharded\": {raw_sharded:.1}, \"single_mutex\": {raw_single:.1}}},\n  \
         \"points\": [{points_json}],\n  \"speedup_vs_raw_single_mutex\": [{ratios}]\n}}\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_pipelined_serving.json"
    );
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

criterion_group!(benches, bench_pipelined_serving);
criterion_main!(benches);
