//! Storage-engine comparison: resident memory and serving throughput of the
//! compressed `SegmentStore` and the on-disk `SpillStore` versus the
//! plain-`Vec` `ShardedStore` on a fig10-style (query-log-weighted)
//! workload.
//!
//! Besides the criterion timings, the bench writes a machine-readable
//! `BENCH_store_engines.json` to the repository root recording, per engine,
//! the resident bytes of the physical index representation (plus the spill
//! engine's on-disk bytes and page-fault counters), the measured
//! queries/sec per thread count, and a pipelined shard-worker sweep
//! (sequential scheduler vs 1/2/4/#cores pool workers at batch 64), with
//! the ratios the acceptance targets
//! read: segment resident <= 75% of the arena `Vec` layout, spill resident
//! <= 50% of the segment engine at the stated q/s ratio, and
//! `spilled + resident ~ segment resident` (the same encoded pages, cold
//! ones on disk).
//!
//! A final churn phase compares two tight-budget spill servers — static
//! placement (tiering disabled) vs self-managing tiering — under
//! interleaved inserts and Zipf-skewed queries, and asserts the tiering
//! acceptance targets: `page_file_bytes / spilled_bytes <= 1.1` after
//! compaction, and hot-list q/s at least matching the static baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use zerber_corpus::{DatasetProfile, GroupId};
use zerber_protocol::{
    drive_pipelined_queries, drive_raw_queries, IndexServer, InsertRequest, LoadConfig,
    PipelineConfig, StoreEngine,
};
use zerber_store::{SegmentConfig, SpillConfig};
use zerber_workload::{QueryLogConfig, TestBed, TestBedConfig};

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];
const TOTAL_QUERIES: usize = 240;
const SHARDS: usize = 8;
const USERS: usize = 8;
/// Batch size of the pipelined shard-worker sweep (the most amortized
/// regime of the pipelined bench).
const SWEEP_BATCH: usize = 64;

/// Shard-worker counts of the pipelined sweep: the sequential scheduler
/// (0), then 1, 2, 4 and the host's hardware threads, deduplicated.
fn worker_counts() -> Vec<usize> {
    let hardware = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut counts = vec![0, 1, 2, 4, hardware];
    counts.sort_unstable();
    counts.dedup();
    counts
}

fn bed() -> TestBed {
    TestBed::build(TestBedConfig {
        scale: 0.02,
        ..TestBedConfig::small(DatasetProfile::StudIp)
    })
    .expect("test bed builds")
}

fn load(threads: usize) -> LoadConfig {
    LoadConfig {
        threads,
        queries_per_thread: TOTAL_QUERIES / threads,
        k: 10,
    }
}

/// The spill tuning of the bench: spill every sealed segment (budget 0),
/// small segments so a list's hot head is one page, and a page cache sized
/// to hold the workload's hot pages after warm-up.
fn spill_tuning() -> (SpillConfig, SegmentConfig) {
    (
        SpillConfig {
            resident_budget_bytes: 0,
            page_cache_pages: 48,
            ..SpillConfig::default()
        },
        SegmentConfig {
            block_len: 64,
            max_segment_elems: 256,
            ..SegmentConfig::default()
        },
    )
}

/// The fig10-style query workload: merged lists of the query-log's most
/// frequent terms, frequency order (duplicates dropped, misses skipped).
fn workload_lists(bed: &TestBed) -> Vec<u64> {
    let log = bed
        .query_log(&QueryLogConfig {
            distinct_terms: 200,
            total_queries: 100_000,
            sample_queries: 0,
            ..QueryLogConfig::default()
        })
        .expect("query log generates");
    let mut lists = Vec::new();
    for &(term, _freq) in log.term_frequencies() {
        if let Ok(list) = bed.plan.list_of(term) {
            if !lists.contains(&list.0) {
                lists.push(list.0);
            }
        }
    }
    lists.truncate(32);
    assert!(!lists.is_empty(), "workload must cover some merged lists");
    lists
}

fn measure(server: &IndexServer, users: &[String], lists: &[u64], threads: usize) -> f64 {
    let report =
        drive_raw_queries(server, users, lists, &load(threads)).expect("load run succeeds");
    report.queries_per_second
}

/// Batched throughput through the pipelined scheduler with `workers` pool
/// workers (0 = sequential in-thread rounds).  Resets the server's stats
/// window around the run so the returned point carries the page-cache
/// hit/fault deltas of exactly this sweep point.
fn measure_piped(
    server: &IndexServer,
    engine: &'static str,
    users: &[String],
    lists: &[u64],
    workers: usize,
) -> PipedPoint {
    server.reset_stats();
    let report = drive_pipelined_queries(
        server,
        users,
        lists,
        &PipelineConfig {
            workers: 4,
            queries_per_worker: TOTAL_QUERIES / 4,
            k: 10,
            parallelism: workers,
            ..PipelineConfig::for_batch(SWEEP_BATCH)
        },
    )
    .expect("pipelined run succeeds");
    let stats = server.stats();
    PipedPoint {
        engine,
        workers,
        queries_per_second: report.queries_per_second,
        page_cache_hits: stats.page_cache_hits,
        page_faults: stats.page_faults,
    }
}

struct EnginePoint {
    engine: &'static str,
    threads: usize,
    queries_per_second: f64,
}

struct PipedPoint {
    engine: &'static str,
    workers: usize,
    queries_per_second: f64,
    page_cache_hits: u64,
    page_faults: u64,
}

impl PipedPoint {
    /// Page-cache hit rate of this sweep point (1.0 when the engine never
    /// touched the pager at all — nothing missed).
    fn hit_rate(&self) -> f64 {
        let total = self.page_cache_hits + self.page_faults;
        if total == 0 {
            1.0
        } else {
            self.page_cache_hits as f64 / total as f64
        }
    }
}

struct SpillFootprint {
    resident_bytes: usize,
    spilled_bytes: usize,
    page_file_bytes: usize,
    dead_page_bytes: usize,
    page_faults: u64,
    page_evictions: u64,
    page_cache_hits: u64,
}

fn bench_store_engines(c: &mut Criterion) {
    let bed = bed();
    let users = TestBed::server_users(USERS);
    let sharded = bed.build_engine_server(StoreEngine::Sharded, SHARDS, USERS);
    let segment = bed.build_engine_server(StoreEngine::Segment, SHARDS, USERS);
    let (spill_config, spill_segment) = spill_tuning();
    let spill = bed.build_tuned_spill_server(SHARDS, USERS, spill_config, spill_segment);
    let lists = workload_lists(&bed);

    let sharded_resident = sharded.store().resident_bytes();
    let segment_resident = segment.store().resident_bytes();

    // Warm the spill engine's page cache with one run, then freeze the
    // steady-state footprint the acceptance ratio reads.
    measure(&spill, &users, &lists, 1);
    let spill_footprint = SpillFootprint {
        resident_bytes: spill.store().resident_bytes(),
        spilled_bytes: spill.store().spilled_bytes(),
        page_file_bytes: spill.store().page_file_bytes(),
        dead_page_bytes: spill.store().dead_page_bytes(),
        page_faults: spill.store().page_faults(),
        page_evictions: spill.store().page_evictions(),
        page_cache_hits: spill.store().page_cache_hits(),
    };

    let mut group = c.benchmark_group("store_engines");
    group.sample_size(5);
    let mut points = Vec::new();
    for &threads in &THREAD_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("sharded_vec", threads),
            &threads,
            |b, &threads| b.iter(|| measure(&sharded, &users, &lists, threads)),
        );
        group.bench_with_input(
            BenchmarkId::new("segment", threads),
            &threads,
            |b, &threads| b.iter(|| measure(&segment, &users, &lists, threads)),
        );
        group.bench_with_input(
            BenchmarkId::new("spill", threads),
            &threads,
            |b, &threads| b.iter(|| measure(&spill, &users, &lists, threads)),
        );
        points.push(EnginePoint {
            engine: "sharded_vec",
            threads,
            queries_per_second: measure(&sharded, &users, &lists, threads),
        });
        points.push(EnginePoint {
            engine: "segment",
            threads,
            queries_per_second: measure(&segment, &users, &lists, threads),
        });
        points.push(EnginePoint {
            engine: "spill",
            threads,
            queries_per_second: measure(&spill, &users, &lists, threads),
        });
    }
    group.finish();

    // Pipelined shard-worker sweep: batched rounds through the sequential
    // scheduler (workers = 0) and through persistent worker pools, per
    // engine.  Worker counts above `hardware_threads` cannot help.
    let mut piped_points = Vec::new();
    for (name, server) in [
        ("sharded_vec", &sharded),
        ("segment", &segment),
        ("spill", &spill),
    ] {
        for workers in worker_counts() {
            piped_points.push(measure_piped(server, name, &users, &lists, workers));
        }
        server.set_shard_workers(0);
    }

    let churn = churn_phase(&bed, &users, &lists);

    write_report(
        &points,
        &piped_points,
        sharded_resident,
        segment_resident,
        &spill_footprint,
        &churn,
        sharded.stored_bytes(),
        sharded.num_elements(),
        lists.len(),
    );
}

/// Per-engine outcome of the churn phase.
struct ChurnSide {
    spilled_bytes: usize,
    page_file_bytes: usize,
    dead_page_bytes: usize,
    compactions: u64,
    promotions: u64,
    demotions: u64,
    hot_queries_per_second: f64,
}

struct ChurnReport {
    statically_placed: ChurnSide,
    tiering: ChurnSide,
}

fn churn_side(server: &IndexServer, hot_qps: f64) -> ChurnSide {
    ChurnSide {
        spilled_bytes: server.store().spilled_bytes(),
        page_file_bytes: server.store().page_file_bytes(),
        dead_page_bytes: server.store().dead_page_bytes(),
        compactions: server.store().compactions(),
        promotions: server.store().promotions(),
        demotions: server.store().demotions(),
        hot_queries_per_second: hot_qps,
    }
}

/// Interleaved inserts + Zipf-skewed queries against one churn server.  The
/// insert TRS values are a deterministic pseudo-random walk over [0, 1), so
/// both servers see the identical stream.
fn run_churn(server: &IndexServer, users: &[String], traffic: &[u64], all_lists: &[u64]) {
    let token = server.acl().issue_token(&users[0]);
    let mut op: u64 = 0;
    for _round in 0..CHURN_ROUNDS {
        for &list in all_lists {
            let trs = (op.wrapping_mul(2_654_435_761) % 1000) as f64 / 1000.0;
            server
                .handle_insert(
                    &InsertRequest {
                        user: users[0].clone(),
                        list,
                        group: GroupId(0),
                        trs,
                        ciphertext: vec![0xC5; 24],
                    },
                    &token,
                )
                .expect("churn insert succeeds");
            op += 1;
        }
        drive_raw_queries(
            server,
            users,
            traffic,
            &LoadConfig {
                threads: 2,
                queries_per_thread: 60,
                k: 10,
            },
        )
        .expect("churn queries succeed");
    }
}

/// How many insert-then-query rounds the churn phase runs per engine.
const CHURN_ROUNDS: usize = 6;
/// How many of the highest-id (latest-built, so coldest under static
/// placement) workload lists the skewed churn traffic hammers.
const HOT_LISTS: usize = 8;

/// The tiering acceptance experiment: two tight-budget spill servers over
/// the same corpus — one with static seal-time placement (tiering
/// disabled), one self-managing — run the identical insert+query churn.
/// Asserts the two acceptance guards before returning the report.
fn churn_phase(bed: &TestBed, users: &[String], lists: &[u64]) -> ChurnReport {
    let segment = SegmentConfig {
        block_len: 16,
        max_segment_elems: 64,
        ..SegmentConfig::default()
    };
    // Probe the fully-resident charge under this segment tuning, then give
    // each churn server a third of it: build order hands the budget to the
    // earliest-built (lowest-id) lists of every shard.
    let probe = bed.build_tuned_spill_server(
        SHARDS,
        1,
        SpillConfig {
            resident_budget_bytes: usize::MAX,
            page_cache_pages: 0,
            ..SpillConfig::default().without_tiering()
        },
        segment,
    );
    let per_shard_budget = probe.store().resident_bytes() / (3 * SHARDS);
    drop(probe);
    let tiering_config = SpillConfig {
        resident_budget_bytes: per_shard_budget,
        page_cache_pages: 0,
        compact_dead_percent: 5,
        compact_min_dead_bytes: 1024,
        retier_interval: 64,
        heat_decay_window: 0,
    };
    let static_server =
        bed.build_tuned_spill_server(SHARDS, USERS, tiering_config.without_tiering(), segment);
    let tiering_server = bed.build_tuned_spill_server(SHARDS, USERS, tiering_config, segment);

    // The hot set: the latest-built workload lists, which exhaust the
    // budget under static placement and therefore start cold on both sides.
    let mut hot: Vec<u64> = lists.to_vec();
    hot.sort_unstable_by(|a, b| b.cmp(a));
    hot.truncate(HOT_LISTS);
    // Zipf-skewed churn traffic: every workload list once, the hot set
    // eight times over.
    let mut traffic: Vec<u64> = lists.to_vec();
    for _ in 0..8 {
        traffic.extend_from_slice(&hot);
    }

    run_churn(&static_server, users, &traffic, lists);
    run_churn(&tiering_server, users, &traffic, lists);

    // Hot-list throughput after the churn settles; re-measure on a noisy
    // host before concluding the self-managing server lost.
    let hot_load = |server: &IndexServer| measure(server, users, &hot, 2);
    let mut static_hot = hot_load(&static_server);
    let mut tiering_hot = hot_load(&tiering_server);
    for _ in 0..3 {
        if tiering_hot >= static_hot {
            break;
        }
        static_hot = hot_load(&static_server);
        tiering_hot = hot_load(&tiering_server);
    }

    let report = ChurnReport {
        statically_placed: churn_side(&static_server, static_hot),
        tiering: churn_side(&tiering_server, tiering_hot),
    };
    assert_eq!(
        report.statically_placed.compactions, 0,
        "the static baseline must not compact"
    );
    assert!(
        report.tiering.compactions > 0,
        "churn must trigger at least one compaction pass"
    );
    assert!(
        report.tiering.promotions > 0 && report.tiering.demotions > 0,
        "skewed traffic must re-tier the budget"
    );
    let ratio = report.tiering.page_file_bytes as f64 / report.tiering.spilled_bytes.max(1) as f64;
    assert!(
        ratio <= 1.1,
        "tiering page_file/spilled must stay within 1.1 after compaction, got {ratio:.3}"
    );
    assert!(
        report.tiering.hot_queries_per_second >= report.statically_placed.hot_queries_per_second,
        "tiering hot-list q/s ({:.1}) must at least match static placement ({:.1})",
        report.tiering.hot_queries_per_second,
        report.statically_placed.hot_queries_per_second,
    );
    report
}

#[allow(clippy::too_many_arguments)]
fn write_report(
    points: &[EnginePoint],
    piped_points: &[PipedPoint],
    sharded_resident: usize,
    segment_resident: usize,
    spill: &SpillFootprint,
    churn: &ChurnReport,
    stored_bytes: usize,
    elements: usize,
    workload_lists: usize,
) {
    let points_json = points
        .iter()
        .map(|p| {
            format!(
                "{{\"engine\":\"{}\",\"threads\":{},\"queries_per_second\":{:.1}}}",
                p.engine, p.threads, p.queries_per_second
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let piped_json = piped_points
        .iter()
        .map(|p| {
            format!(
                "{{\"engine\":\"{}\",\"workers\":{},\"queries_per_second\":{:.1},\
                 \"page_cache_hits\":{},\"page_faults\":{},\"page_cache_hit_rate\":{:.3}}}",
                p.engine,
                p.workers,
                p.queries_per_second,
                p.page_cache_hits,
                p.page_faults,
                p.hit_rate()
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let churn_side_json = |side: &ChurnSide| {
        format!(
            "{{\"spilled_bytes\": {}, \"page_file_bytes\": {}, \"dead_page_bytes\": {}, \
             \"compactions\": {}, \"promotions\": {}, \"demotions\": {}, \
             \"hot_queries_per_second\": {:.1}}}",
            side.spilled_bytes,
            side.page_file_bytes,
            side.dead_page_bytes,
            side.compactions,
            side.promotions,
            side.demotions,
            side.hot_queries_per_second,
        )
    };
    let churn_json = format!(
        "{{\"rounds\": {CHURN_ROUNDS}, \"hot_lists\": {HOT_LISTS}, \
         \"static\": {}, \"tiering\": {}, \
         \"tiering_page_file_over_spilled\": {:.3}, \"tiering_hot_qps_over_static\": {:.3}}}",
        churn_side_json(&churn.statically_placed),
        churn_side_json(&churn.tiering),
        churn.tiering.page_file_bytes as f64 / churn.tiering.spilled_bytes.max(1) as f64,
        churn.tiering.hot_queries_per_second
            / churn
                .statically_placed
                .hot_queries_per_second
                .max(f64::MIN_POSITIVE),
    );
    let qps_ratio = THREAD_COUNTS
        .iter()
        .map(|&t| {
            let of = |engine: &str| {
                points
                    .iter()
                    .find(|p| p.engine == engine && p.threads == t)
                    .map(|p| p.queries_per_second)
                    .unwrap_or(0.0)
            };
            let ratio = |num: f64, den: f64| if den > 0.0 { num / den } else { 0.0 };
            format!(
                "{{\"threads\":{t},\"segment_over_sharded\":{:.3},\"spill_over_segment\":{:.3}}}",
                ratio(of("segment"), of("sharded_vec")),
                ratio(of("spill"), of("segment")),
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let json = format!(
        "{{\n  \"bench\": \"store_engines\",\n  \"workload\": \"fig10-style query-log lists\",\n  \
         \"workload_lists\": {workload_lists},\n  \"total_queries_per_run\": {TOTAL_QUERIES},\n  \
         \"hardware_threads\": {},\n  \"elements\": {elements},\n  \
         \"stored_bytes_logical\": {stored_bytes},\n  \
         \"resident_bytes\": {{\"sharded_vec\": {sharded_resident}, \"segment\": {segment_resident}, \
         \"spill\": {}, \"segment_over_sharded\": {:.3}, \"spill_over_segment\": {:.3}}},\n  \
         \"spill\": {{\"spilled_bytes\": {}, \"page_file_bytes\": {}, \"dead_page_bytes\": {}, \
         \"page_faults\": {}, \"page_evictions\": {}, \"page_cache_hits\": {}, \
         \"resident_plus_spilled_over_segment_resident\": {:.3}}},\n  \
         \"points\": [{points_json}],\n  \
         \"pipelined_worker_sweep\": {{\"batch_size\": {SWEEP_BATCH}, \"points\": [{piped_json}]}},\n  \
         \"churn\": {churn_json},\n  \
         \"qps_ratio\": [{qps_ratio}]\n}}\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        spill.resident_bytes,
        segment_resident as f64 / sharded_resident as f64,
        spill.resident_bytes as f64 / segment_resident as f64,
        spill.spilled_bytes,
        spill.page_file_bytes,
        spill.dead_page_bytes,
        spill.page_faults,
        spill.page_evictions,
        spill.page_cache_hits,
        (spill.resident_bytes + spill.spilled_bytes) as f64 / segment_resident as f64,
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_store_engines.json"
    );
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

criterion_group!(benches, bench_store_engines);
criterion_main!(benches);
