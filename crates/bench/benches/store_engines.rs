//! Storage-engine comparison: resident memory and serving throughput of the
//! compressed `SegmentStore` and the on-disk `SpillStore` versus the
//! plain-`Vec` `ShardedStore` on a fig10-style (query-log-weighted)
//! workload.
//!
//! Besides the criterion timings, the bench writes a machine-readable
//! `BENCH_store_engines.json` to the repository root recording, per engine,
//! the resident bytes of the physical index representation (plus the spill
//! engine's on-disk bytes and page-fault counters), the measured
//! queries/sec per thread count, and a pipelined shard-worker sweep
//! (sequential scheduler vs 1/2/4/#cores pool workers at batch 64), with
//! the ratios the acceptance targets
//! read: segment resident <= 75% of the arena `Vec` layout, spill resident
//! <= 50% of the segment engine at the stated q/s ratio, and
//! `spilled + resident ~ segment resident` (the same encoded pages, cold
//! ones on disk).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use zerber_corpus::DatasetProfile;
use zerber_protocol::{
    drive_pipelined_queries, drive_raw_queries, IndexServer, LoadConfig, PipelineConfig,
    StoreEngine,
};
use zerber_store::{SegmentConfig, SpillConfig};
use zerber_workload::{QueryLogConfig, TestBed, TestBedConfig};

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];
const TOTAL_QUERIES: usize = 240;
const SHARDS: usize = 8;
const USERS: usize = 8;
/// Batch size of the pipelined shard-worker sweep (the most amortized
/// regime of the pipelined bench).
const SWEEP_BATCH: usize = 64;

/// Shard-worker counts of the pipelined sweep: the sequential scheduler
/// (0), then 1, 2, 4 and the host's hardware threads, deduplicated.
fn worker_counts() -> Vec<usize> {
    let hardware = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut counts = vec![0, 1, 2, 4, hardware];
    counts.sort_unstable();
    counts.dedup();
    counts
}

fn bed() -> TestBed {
    TestBed::build(TestBedConfig {
        scale: 0.02,
        ..TestBedConfig::small(DatasetProfile::StudIp)
    })
    .expect("test bed builds")
}

fn load(threads: usize) -> LoadConfig {
    LoadConfig {
        threads,
        queries_per_thread: TOTAL_QUERIES / threads,
        k: 10,
    }
}

/// The spill tuning of the bench: spill every sealed segment (budget 0),
/// small segments so a list's hot head is one page, and a page cache sized
/// to hold the workload's hot pages after warm-up.
fn spill_tuning() -> (SpillConfig, SegmentConfig) {
    (
        SpillConfig {
            resident_budget_bytes: 0,
            page_cache_pages: 48,
        },
        SegmentConfig {
            block_len: 64,
            max_segment_elems: 256,
            ..SegmentConfig::default()
        },
    )
}

/// The fig10-style query workload: merged lists of the query-log's most
/// frequent terms, frequency order (duplicates dropped, misses skipped).
fn workload_lists(bed: &TestBed) -> Vec<u64> {
    let log = bed
        .query_log(&QueryLogConfig {
            distinct_terms: 200,
            total_queries: 100_000,
            sample_queries: 0,
            ..QueryLogConfig::default()
        })
        .expect("query log generates");
    let mut lists = Vec::new();
    for &(term, _freq) in log.term_frequencies() {
        if let Ok(list) = bed.plan.list_of(term) {
            if !lists.contains(&list.0) {
                lists.push(list.0);
            }
        }
    }
    lists.truncate(32);
    assert!(!lists.is_empty(), "workload must cover some merged lists");
    lists
}

fn measure(server: &IndexServer, users: &[String], lists: &[u64], threads: usize) -> f64 {
    let report =
        drive_raw_queries(server, users, lists, &load(threads)).expect("load run succeeds");
    report.queries_per_second
}

/// Batched throughput through the pipelined scheduler with `workers` pool
/// workers (0 = sequential in-thread rounds).
fn measure_piped(server: &IndexServer, users: &[String], lists: &[u64], workers: usize) -> f64 {
    let report = drive_pipelined_queries(
        server,
        users,
        lists,
        &PipelineConfig {
            workers: 4,
            queries_per_worker: TOTAL_QUERIES / 4,
            k: 10,
            parallelism: workers,
            ..PipelineConfig::for_batch(SWEEP_BATCH)
        },
    )
    .expect("pipelined run succeeds");
    report.queries_per_second
}

struct EnginePoint {
    engine: &'static str,
    threads: usize,
    queries_per_second: f64,
}

struct PipedPoint {
    engine: &'static str,
    workers: usize,
    queries_per_second: f64,
}

struct SpillFootprint {
    resident_bytes: usize,
    spilled_bytes: usize,
    page_faults: u64,
    page_evictions: u64,
}

fn bench_store_engines(c: &mut Criterion) {
    let bed = bed();
    let users = TestBed::server_users(USERS);
    let sharded = bed.build_engine_server(StoreEngine::Sharded, SHARDS, USERS);
    let segment = bed.build_engine_server(StoreEngine::Segment, SHARDS, USERS);
    let (spill_config, spill_segment) = spill_tuning();
    let spill = bed.build_tuned_spill_server(SHARDS, USERS, spill_config, spill_segment);
    let lists = workload_lists(&bed);

    let sharded_resident = sharded.store().resident_bytes();
    let segment_resident = segment.store().resident_bytes();

    // Warm the spill engine's page cache with one run, then freeze the
    // steady-state footprint the acceptance ratio reads.
    measure(&spill, &users, &lists, 1);
    let spill_footprint = SpillFootprint {
        resident_bytes: spill.store().resident_bytes(),
        spilled_bytes: spill.store().spilled_bytes(),
        page_faults: spill.store().page_faults(),
        page_evictions: spill.store().page_evictions(),
    };

    let mut group = c.benchmark_group("store_engines");
    group.sample_size(5);
    let mut points = Vec::new();
    for &threads in &THREAD_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("sharded_vec", threads),
            &threads,
            |b, &threads| b.iter(|| measure(&sharded, &users, &lists, threads)),
        );
        group.bench_with_input(
            BenchmarkId::new("segment", threads),
            &threads,
            |b, &threads| b.iter(|| measure(&segment, &users, &lists, threads)),
        );
        group.bench_with_input(
            BenchmarkId::new("spill", threads),
            &threads,
            |b, &threads| b.iter(|| measure(&spill, &users, &lists, threads)),
        );
        points.push(EnginePoint {
            engine: "sharded_vec",
            threads,
            queries_per_second: measure(&sharded, &users, &lists, threads),
        });
        points.push(EnginePoint {
            engine: "segment",
            threads,
            queries_per_second: measure(&segment, &users, &lists, threads),
        });
        points.push(EnginePoint {
            engine: "spill",
            threads,
            queries_per_second: measure(&spill, &users, &lists, threads),
        });
    }
    group.finish();

    // Pipelined shard-worker sweep: batched rounds through the sequential
    // scheduler (workers = 0) and through persistent worker pools, per
    // engine.  Worker counts above `hardware_threads` cannot help.
    let mut piped_points = Vec::new();
    for (name, server) in [
        ("sharded_vec", &sharded),
        ("segment", &segment),
        ("spill", &spill),
    ] {
        for workers in worker_counts() {
            piped_points.push(PipedPoint {
                engine: name,
                workers,
                queries_per_second: measure_piped(server, &users, &lists, workers),
            });
        }
        server.set_shard_workers(0);
    }

    write_report(
        &points,
        &piped_points,
        sharded_resident,
        segment_resident,
        &spill_footprint,
        sharded.stored_bytes(),
        sharded.num_elements(),
        lists.len(),
    );
}

#[allow(clippy::too_many_arguments)]
fn write_report(
    points: &[EnginePoint],
    piped_points: &[PipedPoint],
    sharded_resident: usize,
    segment_resident: usize,
    spill: &SpillFootprint,
    stored_bytes: usize,
    elements: usize,
    workload_lists: usize,
) {
    let points_json = points
        .iter()
        .map(|p| {
            format!(
                "{{\"engine\":\"{}\",\"threads\":{},\"queries_per_second\":{:.1}}}",
                p.engine, p.threads, p.queries_per_second
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let piped_json = piped_points
        .iter()
        .map(|p| {
            format!(
                "{{\"engine\":\"{}\",\"workers\":{},\"queries_per_second\":{:.1}}}",
                p.engine, p.workers, p.queries_per_second
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let qps_ratio = THREAD_COUNTS
        .iter()
        .map(|&t| {
            let of = |engine: &str| {
                points
                    .iter()
                    .find(|p| p.engine == engine && p.threads == t)
                    .map(|p| p.queries_per_second)
                    .unwrap_or(0.0)
            };
            let ratio = |num: f64, den: f64| if den > 0.0 { num / den } else { 0.0 };
            format!(
                "{{\"threads\":{t},\"segment_over_sharded\":{:.3},\"spill_over_segment\":{:.3}}}",
                ratio(of("segment"), of("sharded_vec")),
                ratio(of("spill"), of("segment")),
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let json = format!(
        "{{\n  \"bench\": \"store_engines\",\n  \"workload\": \"fig10-style query-log lists\",\n  \
         \"workload_lists\": {workload_lists},\n  \"total_queries_per_run\": {TOTAL_QUERIES},\n  \
         \"hardware_threads\": {},\n  \"elements\": {elements},\n  \
         \"stored_bytes_logical\": {stored_bytes},\n  \
         \"resident_bytes\": {{\"sharded_vec\": {sharded_resident}, \"segment\": {segment_resident}, \
         \"spill\": {}, \"segment_over_sharded\": {:.3}, \"spill_over_segment\": {:.3}}},\n  \
         \"spill\": {{\"spilled_bytes\": {}, \"page_faults\": {}, \"page_evictions\": {}, \
         \"resident_plus_spilled_over_segment_resident\": {:.3}}},\n  \
         \"points\": [{points_json}],\n  \
         \"pipelined_worker_sweep\": {{\"batch_size\": {SWEEP_BATCH}, \"points\": [{piped_json}]}},\n  \
         \"qps_ratio\": [{qps_ratio}]\n}}\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        spill.resident_bytes,
        segment_resident as f64 / sharded_resident as f64,
        spill.resident_bytes as f64 / segment_resident as f64,
        spill.spilled_bytes,
        spill.page_faults,
        spill.page_evictions,
        (spill.resident_bytes + spill.spilled_bytes) as f64 / segment_resident as f64,
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_store_engines.json"
    );
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

criterion_group!(benches, bench_store_engines);
criterion_main!(benches);
