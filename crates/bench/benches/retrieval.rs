//! Criterion benchmarks for the headline systems comparison: server-side
//! top-k over the Zerber+R ordered index versus (a) the plaintext inverted
//! index and (b) base Zerber's download-the-whole-list client-side top-k.
//! Also covers index construction (plaintext vs encrypted ordered).

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::HashMap;
use zerber_base::build_bfm_index;
use zerber_corpus::{DatasetProfile, GroupId};
use zerber_crypto::MasterKey;
use zerber_index::InvertedIndex;
use zerber_r::{retrieve_topk, OrderedIndex, RetrievalConfig};
use zerber_workload::{TestBed, TestBedConfig};

fn bed() -> TestBed {
    TestBed::build(TestBedConfig {
        scale: 0.02,
        ..TestBedConfig::small(DatasetProfile::StudIp)
    })
    .expect("test bed builds")
}

fn bench_topk_paths(c: &mut Criterion) {
    let bed = bed();
    let master = MasterKey::new([1u8; 32]);
    let (zerber_index, _) = build_bfm_index(&bed.corpus, bed.config.r, &master, 5).unwrap();
    let zerber_memberships: HashMap<GroupId, _> = (0..bed.corpus.num_groups() as u32)
        .map(|g| (GroupId(g), master.group_keys(g)))
        .collect();
    let term = bed.stats.terms_by_doc_freq()[2];
    let config = RetrievalConfig::for_k(10);

    let mut group = c.benchmark_group("top10_single_term");
    group.sample_size(30);
    group.bench_function("plaintext_inverted_index", |b| {
        b.iter(|| {
            bed.plain_index
                .query_term(std::hint::black_box(term), 10)
                .unwrap()
        })
    });
    group.bench_function("zerber_r_server_side", |b| {
        b.iter(|| {
            retrieve_topk(
                &bed.index,
                std::hint::black_box(term),
                &bed.all_memberships,
                &config,
            )
            .unwrap()
        })
    });
    group.bench_function("zerber_base_client_side_whole_list", |b| {
        b.iter(|| {
            zerber_index
                .client_topk(std::hint::black_box(term), 10, &zerber_memberships)
                .unwrap()
        })
    });
    group.finish();
}

fn bench_index_build(c: &mut Criterion) {
    let bed = bed();
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    group.bench_function("plaintext_inverted_index", |b| {
        b.iter(|| InvertedIndex::build(std::hint::black_box(&bed.corpus)))
    });
    group.bench_function("zerber_r_ordered_encrypted", |b| {
        b.iter(|| {
            OrderedIndex::build(
                std::hint::black_box(&bed.corpus),
                bed.plan.clone(),
                &bed.model,
                &bed.master,
                9,
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_topk_paths, bench_index_build);
criterion_main!(benches);
