//! Criterion micro-benchmarks for the RSTF: transformation throughput for
//! both kernels and the cost of the σ cross-validation sweep.  The
//! logistic-vs-erf comparison is the kernel ablation called out in
//! DESIGN.md §6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zerber_r::{cross_validate, Rstf, RstfKernel};

fn training_scores(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen();
            u.powi(3) * 0.4 + 0.005
        })
        .collect()
}

fn bench_transform(c: &mut Criterion) {
    let mut group = c.benchmark_group("rstf_transform");
    for &n in &[8usize, 64, 512] {
        let training = training_scores(n, 1);
        for kernel in [RstfKernel::Logistic, RstfKernel::Erf] {
            let rstf = Rstf::fit(&training, 200.0, kernel).unwrap();
            group.bench_with_input(
                BenchmarkId::new(format!("{kernel:?}"), n),
                &rstf,
                |b, rstf| {
                    let mut x = 0.001f64;
                    b.iter(|| {
                        x = (x + 0.00317) % 0.5;
                        std::hint::black_box(rstf.transform(x))
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_sigma_selection(c: &mut Criterion) {
    let training = training_scores(300, 2);
    let control = training_scores(100, 3);
    let grid: Vec<f64> = vec![5.0, 20.0, 80.0, 320.0, 1280.0];
    let mut group = c.benchmark_group("sigma_cross_validation");
    group.sample_size(10);
    group.bench_function("300train_100control_5sigmas", |b| {
        b.iter(|| {
            cross_validate(
                std::hint::black_box(&training),
                std::hint::black_box(&control),
                &grid,
                RstfKernel::Logistic,
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_transform, bench_sigma_selection
);
criterion_main!(benches);
