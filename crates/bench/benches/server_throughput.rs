//! Serving-engine throughput: queries/sec sustained by the sharded store
//! versus the single-global-mutex baseline at 1, 2, 4 and 8 client threads.
//!
//! Besides the criterion timings, the bench writes a machine-readable
//! `BENCH_server_throughput.json` to the repository root with the measured
//! queries/sec per (engine, thread-count) point and the sharded-over-mutex
//! speedup per thread count.  On a multi-core machine the sharded engine
//! should reach >= 2x the mutex baseline at 4+ threads; on a single
//! hardware thread the two degenerate to the same serial throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use zerber_corpus::DatasetProfile;
use zerber_protocol::{drive_raw_queries, IndexServer, LoadConfig};
use zerber_workload::{throughput_speedup, TestBed, TestBedConfig, ThroughputPoint};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const TOTAL_QUERIES: usize = 240;
const SHARDS: usize = 8;
const USERS: usize = 8;

fn bed() -> TestBed {
    TestBed::build(TestBedConfig {
        scale: 0.02,
        ..TestBedConfig::small(DatasetProfile::StudIp)
    })
    .expect("test bed builds")
}

fn load(threads: usize) -> LoadConfig {
    LoadConfig {
        threads,
        queries_per_thread: TOTAL_QUERIES / threads,
        k: 10,
    }
}

fn busiest_lists(server: &IndexServer, n: usize) -> Vec<u64> {
    let mut lists: Vec<u64> = (0..server.num_lists() as u64).collect();
    lists.sort_by_key(|&l| {
        std::cmp::Reverse(
            server
                .store()
                .list_len(zerber_base::MergedListId(l))
                .unwrap_or(0),
        )
    });
    lists.truncate(n);
    lists
}

fn measure(server: &IndexServer, users: &[String], lists: &[u64], threads: usize) -> f64 {
    let report =
        drive_raw_queries(server, users, lists, &load(threads)).expect("load run succeeds");
    report.queries_per_second
}

fn bench_server_throughput(c: &mut Criterion) {
    let bed = bed();
    let users = TestBed::server_users(USERS);
    let sharded = bed.build_server(SHARDS, USERS);
    let single = bed.build_single_mutex_server(USERS);
    let lists = busiest_lists(&sharded, 16);

    let mut group = c.benchmark_group("server_throughput");
    group.sample_size(5);
    let mut sharded_points = Vec::new();
    let mut single_points = Vec::new();
    for &threads in &THREAD_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("sharded", threads),
            &threads,
            |b, &threads| b.iter(|| measure(&sharded, &users, &lists, threads)),
        );
        group.bench_with_input(
            BenchmarkId::new("single_mutex", threads),
            &threads,
            |b, &threads| b.iter(|| measure(&single, &users, &lists, threads)),
        );
        sharded_points.push(ThroughputPoint {
            shards: SHARDS,
            threads,
            queries_per_second: measure(&sharded, &users, &lists, threads),
        });
        single_points.push(ThroughputPoint {
            shards: 0,
            threads,
            queries_per_second: measure(&single, &users, &lists, threads),
        });
    }
    group.finish();

    let speedup = throughput_speedup(&sharded_points, &single_points);
    write_report(&sharded_points, &single_points, &speedup);
}

fn json_points(points: &[ThroughputPoint], engine: &str) -> String {
    points
        .iter()
        .map(|p| {
            format!(
                "{{\"engine\":\"{engine}\",\"shards\":{},\"threads\":{},\"queries_per_second\":{:.1}}}",
                p.shards, p.threads, p.queries_per_second
            )
        })
        .collect::<Vec<_>>()
        .join(",")
}

fn write_report(sharded: &[ThroughputPoint], single: &[ThroughputPoint], speedup: &[(usize, f64)]) {
    let speedup_json = speedup
        .iter()
        .map(|(threads, s)| format!("{{\"threads\":{threads},\"speedup\":{s:.3}}}"))
        .collect::<Vec<_>>()
        .join(",");
    let json = format!(
        "{{\n  \"bench\": \"server_throughput\",\n  \"total_queries_per_run\": {},\n  \
         \"hardware_threads\": {},\n  \"points\": [{},{}],\n  \
         \"speedup_sharded_vs_single_mutex\": [{}]\n}}\n",
        TOTAL_QUERIES,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        json_points(sharded, "sharded"),
        json_points(single, "single_mutex"),
        speedup_json,
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_server_throughput.json"
    );
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

criterion_group!(benches, bench_server_throughput);
criterion_main!(benches);
