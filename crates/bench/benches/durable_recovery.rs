//! Recovery-time bench for the durable `SpillStore`: how long
//! `SpillStore::open` takes to bring a crashed store back to serving, for
//! the two shapes recovery meets in practice —
//!
//! * **WAL-replay-heavy**: every insert since the last checkpoint sits in
//!   the per-shard write-ahead logs and is re-applied through the insert
//!   path (CRC check, decode, position-preserving insert);
//! * **checkpointed**: the same data sealed into manifest-referenced page
//!   files, loaded through checksum + full segment validation with only an
//!   empty WAL tail to scan.
//!
//! Besides the criterion timings the bench writes
//! `BENCH_durable_recovery.json` to the repository root with the median
//! open latency and recovery throughput (elements/sec) of both shapes —
//! the numbers quoted in the README's durability section.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use zerber_base::{EncryptedElement, MergePlan, MergedListId};
use zerber_corpus::{GroupId, TermId};
use zerber_r::{OrderedElement, OrderedIndex};
use zerber_store::{DurableConfig, ListStore, SpillConfig, SpillStore, SyncPolicy};

const NUM_LISTS: usize = 8;
const NUM_SHARDS: usize = 4;
const INSERTS: usize = 8_192;

fn bench_root(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("zerber-durable-bench")
        .join(format!("{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spill_config() -> SpillConfig {
    SpillConfig {
        resident_budget_bytes: 0,
        page_cache_pages: 8,
        ..SpillConfig::default().without_tiering()
    }
}

fn durable_config() -> DurableConfig {
    DurableConfig {
        sync: SyncPolicy::Never,
        checkpoint_wal_bytes: 1 << 30,
    }
}

/// Builds a durable store holding `INSERTS` elements and drops it; with
/// `checkpoint` the data is sealed into pages, without it the data lives
/// entirely in the write-ahead logs.
fn build_fixture(dir: &PathBuf, checkpoint: bool) {
    let plan = MergePlan::from_term_lists(
        (0..NUM_LISTS).map(|i| vec![TermId(i as u32)]).collect(),
        "durable-recovery-bench",
        2.0,
    );
    let index = OrderedIndex::from_parts(vec![Vec::new(); NUM_LISTS], plan);
    let store =
        SpillStore::create_durable(index, dir, NUM_SHARDS, spill_config(), durable_config())
            .expect("fixture store builds");
    for i in 0..INSERTS {
        let group = GroupId((i % 4) as u32);
        // Descending TRS insertion order keeps each insert an append.
        let element = OrderedElement {
            trs: (INSERTS - i) as f64,
            group,
            sealed: EncryptedElement {
                group,
                ciphertext: vec![0xA5; 16],
            },
        };
        store
            .insert(MergedListId((i % NUM_LISTS) as u64), element)
            .expect("fixture insert");
    }
    if checkpoint {
        store.checkpoint().expect("fixture checkpoint");
    }
}

/// One recovery: opens the fixture and touches it enough to prove it
/// serves, returning the elapsed wall time.
fn timed_open(dir: &PathBuf) -> Duration {
    let start = Instant::now();
    let store = SpillStore::open(dir, spill_config(), durable_config()).expect("recovery opens");
    assert_eq!(store.num_elements(), INSERTS);
    start.elapsed()
}

fn median_ms(dir: &PathBuf, runs: usize) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| timed_open(dir).as_secs_f64() * 1e3)
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn bench_durable_recovery(c: &mut Criterion) {
    let wal_dir = bench_root("wal-replay");
    let page_dir = bench_root("checkpointed");
    build_fixture(&wal_dir, false);
    build_fixture(&page_dir, true);

    let mut group = c.benchmark_group("durable_open");
    group.sample_size(10);
    group.bench_function(format!("wal_replay_{INSERTS}"), |b| {
        b.iter(|| timed_open(&wal_dir))
    });
    group.bench_function(format!("checkpointed_{INSERTS}"), |b| {
        b.iter(|| timed_open(&page_dir))
    });
    group.finish();

    let wal_ms = median_ms(&wal_dir, 15);
    let page_ms = median_ms(&page_dir, 15);
    let json = format!(
        "{{\n  \"bench\": \"durable_recovery\",\n  \"elements\": {INSERTS},\n  \
         \"lists\": {NUM_LISTS},\n  \"shards\": {NUM_SHARDS},\n  \
         \"wal_replay_open_ms\": {wal_ms:.3},\n  \
         \"checkpointed_open_ms\": {page_ms:.3},\n  \
         \"wal_replay_elements_per_sec\": {:.0},\n  \
         \"checkpointed_elements_per_sec\": {:.0},\n  \
         \"checkpoint_speedup\": {:.2}\n}}\n",
        INSERTS as f64 / (wal_ms / 1e3),
        INSERTS as f64 / (page_ms / 1e3),
        wal_ms / page_ms,
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_durable_recovery.json"
    );
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }

    let _ = std::fs::remove_dir_all(wal_dir.parent().expect("bench root has a parent"));
}

criterion_group!(benches, bench_durable_recovery);
criterion_main!(benches);
