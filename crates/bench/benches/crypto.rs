//! Criterion micro-benchmarks for the crypto substrate: hashing, keystream
//! and posting-element seal/open throughput.  These bound the index build and
//! insert rates reported in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use zerber_base::{EncryptedElement, MergedListId, PostingPayload};
use zerber_corpus::{DocId, GroupId, TermId};
use zerber_crypto::{ChaCha20, DeterministicRng, HmacSha256, MasterKey, Sha256};

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("digest_{size}B"), |b| {
            b.iter(|| Sha256::digest(std::hint::black_box(&data)))
        });
    }
    group.finish();
}

fn bench_hmac_and_chacha(c: &mut Criterion) {
    let mut group = c.benchmark_group("keyed_primitives");
    let data = vec![0x5au8; 1024];
    group.throughput(Throughput::Bytes(1024));
    group.bench_function("hmac_sha256_1KiB", |b| {
        b.iter(|| HmacSha256::mac(b"key", std::hint::black_box(&data)))
    });
    let cipher = ChaCha20::new(&[7u8; 32]).unwrap();
    group.bench_function("chacha20_1KiB", |b| {
        b.iter(|| {
            cipher
                .encrypt(&[1u8; 12], 0, std::hint::black_box(&data))
                .unwrap()
        })
    });
    group.finish();
}

fn bench_posting_element_seal_open(c: &mut Criterion) {
    let keys = MasterKey::new([9u8; 32]).group_keys(0);
    let payload = PostingPayload {
        term: TermId(42),
        doc: DocId(7),
        tf: 3,
        doc_len: 120,
    };
    let mut rng = DeterministicRng::from_u64(1);
    let sealed =
        EncryptedElement::seal(&payload, GroupId(0), &keys, MergedListId(3), &mut rng).unwrap();
    let mut group = c.benchmark_group("posting_element");
    group.bench_function("seal", |b| {
        b.iter(|| {
            EncryptedElement::seal(
                std::hint::black_box(&payload),
                GroupId(0),
                &keys,
                MergedListId(3),
                &mut rng,
            )
            .unwrap()
        })
    });
    group.bench_function("open", |b| {
        b.iter(|| sealed.open(&keys, MergedListId(3)).unwrap())
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_sha256, bench_hmac_and_chacha, bench_posting_element_seal_open
);
criterion_main!(benches);
