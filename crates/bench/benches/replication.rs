//! Replication bench: what the primary→replica stream costs and what it
//! buys.  Three measurements, written to `BENCH_replication.json`:
//!
//! * **catch-up throughput** — bringing a fresh replica to the primary's
//!   head via the two transport shapes: a checkpointed snapshot (page
//!   files + manifest over the wire, recovery-validated on install) vs a
//!   WAL-tail replay (every insert streamed as a frame and re-applied
//!   through the logged insert path);
//! * **steady-state lag** — a fig10-style mixed workload: the primary
//!   absorbs bursts of inserts while the replica pumps between bursts and
//!   serves reads; the per-pump lag is recorded;
//! * **read scale-out** — queries/sec of 1, 2 and 4 caught-up replicas
//!   (one thread hammering each) against the single primary baseline,
//!   with the guard that a lag-free replica serves at least 0.9× the
//!   primary's single-threaded rate: the staleness check must be noise.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use zerber_base::{EncryptedElement, MergePlan, MergedListId};
use zerber_corpus::{GroupId, TermId};
use zerber_r::{OrderedElement, OrderedIndex};
use zerber_store::{
    DurableConfig, InProcessTransport, ListStore, RangedFetch, Replica, ReplicaConfig,
    ReplicaTransport, ReplicationSource, SpillConfig, SpillStore, SyncPolicy,
};

const NUM_LISTS: usize = 8;
const NUM_SHARDS: usize = 4;
const INSERTS: usize = 8_192;
const QUERIES: usize = 32_768;

fn bench_root(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("zerber-replica-bench")
        .join(format!("{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spill_config() -> SpillConfig {
    SpillConfig {
        resident_budget_bytes: 0,
        page_cache_pages: 8,
        ..SpillConfig::default().without_tiering()
    }
}

fn durable_config() -> DurableConfig {
    DurableConfig {
        sync: SyncPolicy::Never,
        checkpoint_wal_bytes: 1 << 30,
    }
}

fn replica_config() -> ReplicaConfig {
    ReplicaConfig {
        spill: spill_config(),
        durable: durable_config(),
        batch_frames: 512,
        backoff_base: Duration::ZERO,
        backoff_cap: Duration::ZERO,
        ..ReplicaConfig::default()
    }
}

fn sealed(i: usize, trs: f64) -> OrderedElement {
    let group = GroupId((i % 4) as u32);
    OrderedElement {
        trs,
        group,
        sealed: EncryptedElement {
            group,
            ciphertext: vec![0xA5; 16],
        },
    }
}

/// A fresh durable primary holding `preloaded` inserts (checkpointed when
/// asked, so the data ships as pages instead of WAL frames).
fn build_primary(dir: &PathBuf, preloaded: usize, checkpoint: bool) -> Arc<SpillStore> {
    let plan = MergePlan::from_term_lists(
        (0..NUM_LISTS).map(|i| vec![TermId(i as u32)]).collect(),
        "replication-bench",
        2.0,
    );
    let index = OrderedIndex::from_parts(vec![Vec::new(); NUM_LISTS], plan);
    let store = Arc::new(
        SpillStore::create_durable(index, dir, NUM_SHARDS, spill_config(), durable_config())
            .expect("primary builds"),
    );
    for i in 0..preloaded {
        store
            .insert(
                MergedListId((i % NUM_LISTS) as u64),
                sealed(i, (INSERTS - i) as f64),
            )
            .expect("preload insert");
    }
    if checkpoint {
        store.checkpoint().expect("primary checkpoint");
    }
    store
}

/// Full catch-up from empty replica to a checkpointed primary's head: the
/// data ships as a snapshot (page files + manifest) and installs through
/// the validating recovery path.
fn timed_snapshot_catch_up(root: &PathBuf) -> Duration {
    let _ = std::fs::remove_dir_all(root);
    let primary = build_primary(&root.join("primary"), INSERTS, true);
    let source = ReplicationSource::new(Arc::clone(&primary)).expect("durable source");
    let transport = InProcessTransport::new(source);
    let start = Instant::now();
    let mut replica = Replica::bootstrap(
        transport as Arc<dyn ReplicaTransport>,
        root.join("replica"),
        replica_config(),
    )
    .expect("replica bootstraps");
    replica.catch_up(10_000).expect("replica catches up");
    let elapsed = start.elapsed();
    assert_eq!(replica.store().num_elements(), INSERTS);
    elapsed
}

/// The WAL-tail shape with a live stream: bootstrap first, then the
/// primary writes `INSERTS` elements which the replica pulls as frames.
fn timed_tail_replay(root: &PathBuf) -> Duration {
    let _ = std::fs::remove_dir_all(root);
    let primary = build_primary(&root.join("primary"), 0, true);
    let source = ReplicationSource::new(Arc::clone(&primary)).expect("durable source");
    let transport = InProcessTransport::new(source);
    let mut replica = Replica::bootstrap(
        transport as Arc<dyn ReplicaTransport>,
        root.join("replica"),
        replica_config(),
    )
    .expect("replica bootstraps");
    for i in 0..INSERTS {
        primary
            .insert(
                MergedListId((i % NUM_LISTS) as u64),
                sealed(i, (INSERTS - i) as f64),
            )
            .expect("stream insert");
    }
    let start = Instant::now();
    replica.catch_up(10_000).expect("replica catches up");
    let elapsed = start.elapsed();
    assert_eq!(replica.store().num_elements(), INSERTS);
    assert_eq!(replica.stats().frames_streamed, INSERTS as u64);
    elapsed
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// Single-threaded queries/sec of one store: `QUERIES` ranged fetches
/// cycling lists and offsets.
fn qps(store: &dyn ListStore) -> f64 {
    let start = Instant::now();
    for q in 0..QUERIES {
        let fetch = RangedFetch {
            list: MergedListId((q % NUM_LISTS) as u64),
            offset: (q * 7) % 64,
            count: 10,
        };
        let batch = store.fetch_ranged(&fetch, None).expect("query serves");
        assert!(batch.visible_total > 0);
    }
    QUERIES as f64 / start.elapsed().as_secs_f64()
}

/// Aggregate queries/sec of `replicas` caught-up replicas, one thread each.
fn fleet_qps(replicas: &[Replica]) -> f64 {
    let start = Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = replicas
            .iter()
            .map(|r| {
                let serving = r.serving_store();
                scope.spawn(move || qps(&serving))
            })
            .collect();
        handles.into_iter().for_each(|h| {
            h.join().expect("reader thread");
        });
    });
    (QUERIES * replicas.len()) as f64 / start.elapsed().as_secs_f64()
}

fn bench_replication(c: &mut Criterion) {
    let snap_root = bench_root("catchup-snapshot");
    let wal_root = bench_root("catchup-wal");
    let mut group = c.benchmark_group("replication_catch_up");
    group.sample_size(10);
    group.bench_function(format!("snapshot_{INSERTS}"), |b| {
        b.iter(|| timed_snapshot_catch_up(&snap_root))
    });
    group.bench_function(format!("wal_tail_{INSERTS}"), |b| {
        b.iter(|| timed_tail_replay(&wal_root))
    });
    group.finish();

    let snapshot_ms = median(
        (0..5)
            .map(|_| timed_snapshot_catch_up(&snap_root).as_secs_f64() * 1e3)
            .collect(),
    );
    let tail_ms = median(
        (0..5)
            .map(|_| timed_tail_replay(&wal_root).as_secs_f64() * 1e3)
            .collect(),
    );

    // Steady-state lag under a write+query mix: bursts of inserts against
    // one pump per burst, reads served from the replica throughout.
    let mix_root = bench_root("steady-state");
    let primary = build_primary(&mix_root.join("primary"), 256, true);
    let source = ReplicationSource::new(Arc::clone(&primary)).expect("durable source");
    let transport = InProcessTransport::new(source);
    let mut replica = Replica::bootstrap(
        transport as Arc<dyn ReplicaTransport>,
        mix_root.join("replica"),
        replica_config(),
    )
    .expect("replica bootstraps");
    let serving = replica.serving_store();
    let (mut lag_sum, mut lag_max, rounds) = (0u64, 0u64, 64usize);
    for round in 0..rounds {
        for i in 0..64usize {
            let n = 256 + round * 64 + i;
            primary
                .insert(
                    MergedListId((n % NUM_LISTS) as u64),
                    sealed(n, 1.0 / (n + 1) as f64),
                )
                .expect("mix insert");
        }
        replica.pump().expect("pump survives");
        for q in 0..16usize {
            let fetch = RangedFetch {
                list: MergedListId((q % NUM_LISTS) as u64),
                offset: 0,
                count: 10,
            };
            serving
                .fetch_ranged(&fetch, None)
                .expect("mixed read serves");
        }
        let lag = replica.lag();
        lag_sum += lag;
        lag_max = lag_max.max(lag);
    }
    let lag_mean = lag_sum as f64 / rounds as f64;
    replica.catch_up(10_000).expect("final catch-up");

    // Read scale-out: primary baseline, then 1/2/4 caught-up replicas.
    let scale_root = bench_root("scale-out");
    let primary = build_primary(&scale_root.join("primary"), INSERTS, true);
    let source = ReplicationSource::new(Arc::clone(&primary)).expect("durable source");
    let primary_qps = median((0..5).map(|_| qps(&*primary)).collect());
    let replicas: Vec<Replica> = (0..4)
        .map(|i| {
            let transport = InProcessTransport::new(Arc::clone(&source));
            let mut r = Replica::bootstrap(
                transport as Arc<dyn ReplicaTransport>,
                scale_root.join(format!("replica-{i}")),
                replica_config(),
            )
            .expect("fleet replica bootstraps");
            r.catch_up(10_000).expect("fleet replica catches up");
            assert_eq!(r.lag(), 0);
            r
        })
        .collect();
    // The 1-replica number uses the same single-threaded harness as the
    // primary baseline, so the guard compares serving paths, not thread
    // spawn overhead.
    let solo = replicas[0].serving_store();
    let replica_qps_1 = median((0..5).map(|_| qps(&solo)).collect());
    let replica_qps_2 = fleet_qps(&replicas[..2]);
    let replica_qps_4 = fleet_qps(&replicas[..4]);
    // The staleness guard must be noise: a lag-free replica serves at
    // least 0.9x the primary's single-threaded rate.
    assert!(
        replica_qps_1 >= 0.9 * primary_qps,
        "lag-free replica too slow: {replica_qps_1:.0} q/s vs primary {primary_qps:.0} q/s"
    );

    let hardware_threads = std::thread::available_parallelism().map_or(0, |n| n.get());
    let json = format!(
        "{{\n  \"bench\": \"replication\",\n  \"elements\": {INSERTS},\n  \
         \"lists\": {NUM_LISTS},\n  \"shards\": {NUM_SHARDS},\n  \
         \"hardware_threads\": {hardware_threads},\n  \
         \"snapshot_catchup_ms\": {snapshot_ms:.3},\n  \
         \"wal_tail_catchup_ms\": {tail_ms:.3},\n  \
         \"snapshot_elements_per_sec\": {:.0},\n  \
         \"wal_tail_frames_per_sec\": {:.0},\n  \
         \"steady_state_mean_lag_frames\": {lag_mean:.2},\n  \
         \"steady_state_max_lag_frames\": {lag_max},\n  \
         \"primary_read_qps\": {primary_qps:.0},\n  \
         \"replica_read_qps_1\": {replica_qps_1:.0},\n  \
         \"replica_read_qps_2\": {replica_qps_2:.0},\n  \
         \"replica_read_qps_4\": {replica_qps_4:.0},\n  \
         \"replica_over_primary_qps\": {:.3}\n}}\n",
        INSERTS as f64 / (snapshot_ms / 1e3),
        INSERTS as f64 / (tail_ms / 1e3),
        replica_qps_1 / primary_qps,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_replication.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }

    for root in [&snap_root, &wal_root, &mix_root, &scale_root] {
        let _ = std::fs::remove_dir_all(root);
    }
    let _ = std::fs::remove_dir_all(snap_root.parent().expect("bench root has a parent"));
}

criterion_group!(benches, bench_replication);
criterion_main!(benches);
