//! Error type for the client/server query protocol.

use std::fmt;

/// Errors produced by the protocol layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// The user failed authentication.
    AuthenticationFailed(String),
    /// The user is authenticated but not a member of the required group.
    AccessDenied { user: String, group: u32 },
    /// The requested merged list does not exist on the server.
    UnknownList(u64),
    /// An invalid request parameter (k = 0, empty query, ...).
    InvalidRequest(String),
    /// An error bubbled up from the Zerber+R core.
    Core(String),
    /// A message could not be decoded.
    Codec(String),
    /// The replica that received the request is lagging the primary past
    /// its bounded-staleness guard; the client should retry on the primary
    /// instead of accepting stale results.
    Degraded { lag: u64, max_lag: u64 },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::AuthenticationFailed(user) => {
                write!(f, "authentication failed for user {user:?}")
            }
            ProtocolError::AccessDenied { user, group } => {
                write!(f, "user {user:?} is not a member of group {group}")
            }
            ProtocolError::UnknownList(id) => write!(f, "unknown merged posting list {id}"),
            ProtocolError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            ProtocolError::Core(msg) => write!(f, "core error: {msg}"),
            ProtocolError::Codec(msg) => write!(f, "message codec error: {msg}"),
            ProtocolError::Degraded { lag, max_lag } => write!(
                f,
                "replica lag {lag} exceeds the staleness bound {max_lag}; retry on the primary"
            ),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<zerber_r::ZerberRError> for ProtocolError {
    fn from(e: zerber_r::ZerberRError) -> Self {
        ProtocolError::Core(e.to_string())
    }
}

impl From<zerber_base::ZerberError> for ProtocolError {
    fn from(e: zerber_base::ZerberError) -> Self {
        ProtocolError::Core(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(ProtocolError::AuthenticationFailed("john".into())
            .to_string()
            .contains("john"));
        let e = ProtocolError::AccessDenied {
            user: "john".into(),
            group: 4,
        };
        assert!(e.to_string().contains('4'));
        assert!(ProtocolError::UnknownList(2).to_string().contains('2'));
    }

    #[test]
    fn conversions_work() {
        let e: ProtocolError = zerber_r::ZerberRError::UnknownList(1).into();
        assert!(matches!(e, ProtocolError::Core(_)));
        let e: ProtocolError = zerber_base::ZerberError::UnknownList(1).into();
        assert!(matches!(e, ProtocolError::Core(_)));
    }
}
