//! User authentication and group-based access control.
//!
//! Section 4.1: "To execute a keyword query, the user first authenticates
//! herself to an index server and supplies the query terms ... The index
//! server determines the user's access rights".  The reproduction models this
//! with HMAC-based bearer tokens derived from a server secret and a per-user
//! group membership table.

use std::collections::{HashMap, HashSet};

use zerber_corpus::GroupId;
use zerber_crypto::HmacSha256;

use crate::error::ProtocolError;

/// An authentication token presented by a client.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AuthToken(pub [u8; 32]);

/// Server-side user directory: who exists and which groups they belong to.
#[derive(Debug, Clone, Default)]
pub struct AccessControl {
    server_secret: Vec<u8>,
    memberships: HashMap<String, HashSet<GroupId>>,
}

impl AccessControl {
    /// Creates a directory with the given server secret.
    pub fn new(server_secret: &[u8]) -> Self {
        AccessControl {
            server_secret: server_secret.to_vec(),
            memberships: HashMap::new(),
        }
    }

    /// Registers a user with her groups (replaces previous memberships).
    pub fn register_user(&mut self, user: &str, groups: &[GroupId]) {
        self.memberships
            .insert(user.to_string(), groups.iter().copied().collect());
    }

    /// Adds a user to an additional group.
    pub fn grant(&mut self, user: &str, group: GroupId) {
        self.memberships
            .entry(user.to_string())
            .or_default()
            .insert(group);
    }

    /// Removes a user from a group.
    pub fn revoke(&mut self, user: &str, group: GroupId) {
        if let Some(set) = self.memberships.get_mut(user) {
            set.remove(&group);
        }
    }

    /// Number of registered users.
    pub fn num_users(&self) -> usize {
        self.memberships.len()
    }

    /// The token a legitimate user obtains out of band (e.g. from the
    /// enterprise identity provider).
    pub fn issue_token(&self, user: &str) -> AuthToken {
        AuthToken(HmacSha256::mac(&self.server_secret, user.as_bytes()))
    }

    /// Verifies the token and returns the user's groups.
    pub fn authenticate(
        &self,
        user: &str,
        token: &AuthToken,
    ) -> Result<Vec<GroupId>, ProtocolError> {
        let expected = self.issue_token(user);
        if expected != *token {
            return Err(ProtocolError::AuthenticationFailed(user.to_string()));
        }
        let groups = self
            .memberships
            .get(user)
            .ok_or_else(|| ProtocolError::AuthenticationFailed(user.to_string()))?;
        let mut out: Vec<GroupId> = groups.iter().copied().collect();
        out.sort();
        Ok(out)
    }

    /// Checks that a user may access a specific group.
    pub fn check_member(
        &self,
        user: &str,
        token: &AuthToken,
        group: GroupId,
    ) -> Result<(), ProtocolError> {
        let groups = self.authenticate(user, token)?;
        if groups.contains(&group) {
            Ok(())
        } else {
            Err(ProtocolError::AccessDenied {
                user: user.to_string(),
                group: group.0,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acl() -> AccessControl {
        let mut acl = AccessControl::new(b"server-secret");
        acl.register_user("john", &[GroupId(0), GroupId(2)]);
        acl.register_user("alice", &[GroupId(1)]);
        acl
    }

    #[test]
    fn valid_tokens_authenticate_and_list_groups() {
        let acl = acl();
        let token = acl.issue_token("john");
        let groups = acl.authenticate("john", &token).unwrap();
        assert_eq!(groups, vec![GroupId(0), GroupId(2)]);
        assert_eq!(acl.num_users(), 2);
    }

    #[test]
    fn forged_or_foreign_tokens_are_rejected() {
        let acl = acl();
        let alice_token = acl.issue_token("alice");
        assert!(matches!(
            acl.authenticate("john", &alice_token),
            Err(ProtocolError::AuthenticationFailed(_))
        ));
        let forged = AuthToken([0u8; 32]);
        assert!(acl.authenticate("alice", &forged).is_err());
    }

    #[test]
    fn unknown_users_are_rejected_even_with_a_consistent_token() {
        let acl = acl();
        let token = acl.issue_token("mallory");
        assert!(matches!(
            acl.authenticate("mallory", &token),
            Err(ProtocolError::AuthenticationFailed(_))
        ));
    }

    #[test]
    fn group_membership_checks_enforce_access() {
        let acl = acl();
        let token = acl.issue_token("john");
        assert!(acl.check_member("john", &token, GroupId(0)).is_ok());
        assert!(matches!(
            acl.check_member("john", &token, GroupId(1)),
            Err(ProtocolError::AccessDenied { group: 1, .. })
        ));
    }

    #[test]
    fn grant_and_revoke_update_memberships() {
        let mut acl = acl();
        let token = acl.issue_token("alice");
        assert!(acl.check_member("alice", &token, GroupId(3)).is_err());
        acl.grant("alice", GroupId(3));
        assert!(acl.check_member("alice", &token, GroupId(3)).is_ok());
        acl.revoke("alice", GroupId(3));
        assert!(acl.check_member("alice", &token, GroupId(3)).is_err());
    }

    #[test]
    fn different_server_secrets_produce_different_tokens() {
        let a = AccessControl::new(b"secret-a");
        let b = AccessControl::new(b"secret-b");
        assert_ne!(a.issue_token("john"), b.issue_token("john"));
    }
}
