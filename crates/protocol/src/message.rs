//! Wire messages exchanged between client and index server, with exact byte
//! accounting.
//!
//! The bandwidth experiments of Sections 6.4–6.6 reason in posting elements
//! and bytes.  To report faithful numbers the protocol serializes every
//! message to a concrete byte layout; the encoded sizes are what the network
//! model charges for.

use serde::{Deserialize, Serialize};
use zerber_corpus::GroupId;
use zerber_r::OrderedElement;

use crate::error::ProtocolError;

/// Fixed size of the per-element header on the wire: 8-byte TRS + 4-byte
/// group + 2-byte payload length.
pub const ELEMENT_HEADER_BYTES: usize = 14;

/// Size of a query request message: list id (8) + offset (8) + cursor (8) +
/// count (4) + k (4) + user-name length prefix (2).
pub const REQUEST_FIXED_BYTES: usize = 34;

/// A top-k query request (initial or follow-up).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryRequest {
    /// Authenticated user issuing the request.
    pub user: String,
    /// The merged posting list addressed by the client.
    pub list: u64,
    /// Number of already received elements (0 for the initial request).
    pub offset: u64,
    /// Cursor session to resume (0 = none; the server opens one on the
    /// initial request and returns its id in the response).  A server that
    /// evicted the session falls back to the stateless `offset` scan.
    pub cursor: u64,
    /// Number of elements requested in this round.
    pub count: u32,
    /// The k the client ultimately wants (the server may log it; Section 4.1
    /// assumes the adversary knows it).
    pub k: u32,
}

impl QueryRequest {
    /// Size of the encoded request in bytes.
    pub fn encoded_bytes(&self) -> usize {
        REQUEST_FIXED_BYTES + self.user.len()
    }
}

/// One posting element as shipped to the client.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireElement {
    /// Transformed relevance score (visible to everyone).
    pub trs: f64,
    /// Access-control group of the element.
    pub group: GroupId,
    /// The sealed posting payload.
    pub ciphertext: Vec<u8>,
}

impl WireElement {
    /// Builds the wire representation of an index element.
    pub fn from_element(e: &OrderedElement) -> Self {
        WireElement {
            trs: e.trs,
            group: e.group,
            ciphertext: e.sealed.ciphertext.clone(),
        }
    }

    /// Size of the encoded element in bytes.
    pub fn encoded_bytes(&self) -> usize {
        ELEMENT_HEADER_BYTES + self.ciphertext.len()
    }
}

/// A query response (one round).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryResponse {
    /// Elements in descending TRS order.
    pub elements: Vec<WireElement>,
    /// Total number of elements of the list visible to this user; lets the
    /// client know when the list is exhausted.
    pub visible_total: u64,
    /// Cursor id for follow-up requests (0 once the list is exhausted).
    pub cursor: u64,
}

impl QueryResponse {
    /// Size of the encoded response in bytes (4-byte count + 8-byte total +
    /// 8-byte cursor + the elements).
    pub fn encoded_bytes(&self) -> usize {
        20 + self
            .elements
            .iter()
            .map(WireElement::encoded_bytes)
            .sum::<usize>()
    }

    /// Serializes the response to a flat byte buffer (length-prefixed
    /// elements).  Provided so tests can confirm the byte accounting matches
    /// a real encoding.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_bytes());
        out.extend_from_slice(&(self.elements.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.visible_total.to_le_bytes());
        out.extend_from_slice(&self.cursor.to_le_bytes());
        for e in &self.elements {
            out.extend_from_slice(&e.trs.to_le_bytes());
            out.extend_from_slice(&e.group.0.to_le_bytes());
            out.extend_from_slice(&(e.ciphertext.len() as u16).to_le_bytes());
            out.extend_from_slice(&e.ciphertext);
        }
        out
    }

    /// Decodes a buffer produced by [`QueryResponse::encode`].
    pub fn decode(buf: &[u8]) -> Result<Self, ProtocolError> {
        // Borrows exactly `N` bytes at `pos` as an array, or reports a
        // truncated buffer — fixed-width fields decode through this so a
        // short response surfaces as a codec error, never a panic.
        fn take<const N: usize>(buf: &[u8], pos: usize) -> Result<[u8; N], ProtocolError> {
            pos.checked_add(N)
                .and_then(|end| buf.get(pos..end))
                .and_then(|s| <[u8; N]>::try_from(s).ok())
                .ok_or_else(|| ProtocolError::Codec("truncated response".into()))
        }
        let need = |cond: bool| {
            if cond {
                Ok(())
            } else {
                Err(ProtocolError::Codec("truncated response".into()))
            }
        };
        need(buf.len() >= 20)?;
        let count = u32::from_le_bytes(take(buf, 0)?) as usize;
        let visible_total = u64::from_le_bytes(take(buf, 4)?);
        let cursor = u64::from_le_bytes(take(buf, 12)?);
        let mut pos = 20usize;
        // Don't trust the untrusted count for allocation: every element
        // takes at least 14 header bytes, so a corrupt count can't trigger a
        // huge pre-allocation before the per-element bounds checks fail.
        let plausible = count.min((buf.len() - pos) / ELEMENT_HEADER_BYTES + 1);
        let mut elements = Vec::with_capacity(plausible);
        for _ in 0..count {
            need(buf.len() >= pos + 14)?;
            let trs = f64::from_le_bytes(take(buf, pos)?);
            let group = u32::from_le_bytes(take(buf, pos + 8)?);
            let len = u16::from_le_bytes(take(buf, pos + 12)?) as usize;
            pos += 14;
            need(buf.len() >= pos + len)?;
            let ciphertext = buf[pos..pos + len].to_vec();
            pos += len;
            elements.push(WireElement {
                trs,
                group: GroupId(group),
                ciphertext,
            });
        }
        if pos != buf.len() {
            return Err(ProtocolError::Codec("trailing bytes".into()));
        }
        Ok(QueryResponse {
            elements,
            visible_total,
            cursor,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn element(trs: f64, group: u32, len: usize) -> WireElement {
        WireElement {
            trs,
            group: GroupId(group),
            ciphertext: vec![0xAB; len],
        }
    }

    #[test]
    fn request_size_includes_user_name() {
        let r = QueryRequest {
            user: "john".into(),
            list: 1,
            offset: 0,
            cursor: 0,
            count: 10,
            k: 10,
        };
        assert_eq!(r.encoded_bytes(), REQUEST_FIXED_BYTES + 4);
    }

    #[test]
    fn response_roundtrips_through_encode_decode() {
        let resp = QueryResponse {
            elements: vec![element(0.9, 1, 44), element(0.7, 2, 44)],
            visible_total: 123,
            cursor: 0x1f00,
        };
        let buf = resp.encode();
        assert_eq!(buf.len(), resp.encoded_bytes());
        let back = QueryResponse::decode(&buf).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn empty_response_is_valid() {
        let resp = QueryResponse {
            elements: vec![],
            visible_total: 0,
            cursor: 0,
        };
        let buf = resp.encode();
        assert_eq!(buf.len(), 20);
        assert_eq!(QueryResponse::decode(&buf).unwrap(), resp);
    }

    #[test]
    fn huge_claimed_count_errors_without_allocating() {
        // A header claiming u32::MAX elements over an empty body must come
        // back as a codec error, not an allocation abort.
        let mut buf = vec![0u8; 20];
        buf[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(QueryResponse::decode(&buf).is_err());
    }

    #[test]
    fn truncated_or_padded_buffers_are_rejected() {
        let resp = QueryResponse {
            elements: vec![element(0.5, 0, 44)],
            visible_total: 5,
            cursor: 7 << 8,
        };
        let mut buf = resp.encode();
        assert!(QueryResponse::decode(&buf[..buf.len() - 1]).is_err());
        buf.push(0);
        assert!(QueryResponse::decode(&buf).is_err());
        assert!(QueryResponse::decode(&[0u8; 3]).is_err());
    }

    #[test]
    fn encoded_bytes_matches_encode_for_various_sizes() {
        for n in [0usize, 1, 7, 50] {
            let resp = QueryResponse {
                elements: (0..n)
                    .map(|i| element(i as f64 / 10.0, i as u32, 44))
                    .collect(),
                visible_total: n as u64,
                cursor: n as u64,
            };
            assert_eq!(resp.encode().len(), resp.encoded_bytes());
        }
    }
}
