//! The querying / inserting client.
//!
//! A client holds the group keys of the groups she belongs to, the published
//! merge plan (term → merged list) and the published RSTF model.  For a
//! query she addresses the merged list of her term, asks for the top-`b`
//! elements, decrypts and filters locally, and sends doubling follow-up
//! requests until she has `k` results (Section 5.2).  Follow-ups resume the
//! server-side cursor session opened by the initial request; multi-term
//! queries send their initial round as one batch so the server visits each
//! shard once.  All exchanged bytes are accounted so the harness can
//! reproduce the bandwidth figures.

use std::collections::HashMap;

use zerber_base::{EncryptedElement, MergePlan, PostingPayload};
use zerber_corpus::{DocId, GroupId, TermId};
use zerber_crypto::{DeterministicRng, GroupKeys};
use zerber_r::{GrowthPolicy, RetrievalConfig, RstfModel};

use crate::acl::AuthToken;
use crate::error::ProtocolError;
use crate::message::{QueryRequest, QueryResponse};
use crate::server::{IndexServer, InsertRequest};

/// Byte/traffic outcome of one client-side query.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientQueryOutcome {
    /// Ranked `(doc, raw relevance)` results, best first, at most `k`.
    pub results: Vec<(DocId, f64)>,
    /// Requests sent (initial + follow-ups).
    pub requests: usize,
    /// Posting elements received.
    pub elements_received: usize,
    /// Bytes sent to the server.
    pub bytes_sent: usize,
    /// Bytes received from the server.
    pub bytes_received: usize,
    /// Whether `k` results were collected before the list was exhausted.
    pub satisfied: bool,
}

/// Merged multi-term ranking plus the per-term query outcomes behind it.
pub type MultiQueryOutcome = (Vec<(DocId, f64)>, Vec<ClientQueryOutcome>);

impl ClientQueryOutcome {
    /// Query efficiency `k / TRes` (Equation 14).
    pub fn efficiency(&self, k: usize) -> f64 {
        if self.elements_received == 0 {
            return 1.0;
        }
        (k as f64 / self.elements_received as f64).min(1.0)
    }
}

/// Client-side progress of one single-term retrieval: what has been received,
/// decrypted and accounted so far, plus the cursor session to resume.
#[derive(Debug)]
struct TermRun {
    term: TermId,
    list: u64,
    config: RetrievalConfig,
    results: Vec<(DocId, f64)>,
    offset: u64,
    cursor: u64,
    requests: usize,
    elements_received: usize,
    bytes_sent: usize,
    bytes_received: usize,
    visible_total: u64,
    done: bool,
}

impl TermRun {
    fn new(
        plan: &MergePlan,
        term: TermId,
        config: &RetrievalConfig,
    ) -> Result<Self, ProtocolError> {
        if config.k == 0 || config.initial_response == 0 {
            return Err(ProtocolError::InvalidRequest(
                "k and b must be greater than 0".into(),
            ));
        }
        let list = plan
            .list_of(term)
            .map_err(|e| ProtocolError::InvalidRequest(e.to_string()))?;
        Ok(TermRun {
            term,
            list: list.0,
            config: *config,
            results: Vec::with_capacity(config.k),
            offset: 0,
            cursor: 0,
            requests: 0,
            elements_received: 0,
            bytes_sent: 0,
            bytes_received: 0,
            visible_total: u64::MAX,
            done: false,
        })
    }

    fn finished(&self) -> bool {
        self.done || self.results.len() >= self.config.k || self.offset >= self.visible_total
    }

    fn next_request(&self, user: &str) -> QueryRequest {
        let count = match self.config.growth {
            GrowthPolicy::Doubling => self.config.initial_response << self.requests.min(30),
            GrowthPolicy::Constant => self.config.initial_response,
        } as u32;
        QueryRequest {
            user: user.to_string(),
            list: self.list,
            offset: self.offset,
            cursor: self.cursor,
            count,
            k: self.config.k as u32,
        }
    }

    /// Accounts one request/response exchange and decrypts the batch.
    fn absorb(
        &mut self,
        request: &QueryRequest,
        response: &QueryResponse,
        keys: &HashMap<GroupId, GroupKeys>,
    ) -> Result<(), ProtocolError> {
        let list = zerber_base::MergedListId(self.list);
        self.bytes_sent += request.encoded_bytes();
        self.bytes_received += response.encoded_bytes();
        self.requests += 1;
        self.elements_received += response.elements.len();
        self.visible_total = response.visible_total;
        self.cursor = response.cursor;
        for wire in &response.elements {
            let Some(keys) = keys.get(&wire.group) else {
                // The server should not have sent this; skip defensively.
                continue;
            };
            let sealed = EncryptedElement {
                group: wire.group,
                ciphertext: wire.ciphertext.clone(),
            };
            let payload = sealed
                .open(keys, list)
                .map_err(|e| ProtocolError::Core(e.to_string()))?;
            if payload.term == self.term {
                self.results.push((payload.doc, payload.relevance()));
                if self.results.len() == self.config.k {
                    break;
                }
            }
        }
        self.offset += response.elements.len() as u64;
        if response.elements.is_empty() {
            self.done = true;
        }
        Ok(())
    }

    /// Releases the server-side session if the run stopped before the list
    /// was exhausted.
    fn release(&mut self, server: &IndexServer, user: &str) {
        if self.cursor != 0 {
            server.close_cursor(self.cursor, user);
            self.cursor = 0;
        }
    }

    fn finish(mut self) -> ClientQueryOutcome {
        self.results.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        let satisfied = self.results.len() >= self.config.k;
        ClientQueryOutcome {
            results: self.results,
            requests: self.requests,
            elements_received: self.elements_received,
            bytes_sent: self.bytes_sent,
            bytes_received: self.bytes_received,
            satisfied,
        }
    }
}

/// A collaboration-group member interacting with the index server.
#[derive(Debug)]
pub struct Client {
    user: String,
    token: AuthToken,
    keys: HashMap<GroupId, GroupKeys>,
    rng: DeterministicRng,
}

impl Client {
    /// Creates a client for `user` holding keys for `keys` groups.
    pub fn new(
        user: impl Into<String>,
        token: AuthToken,
        keys: HashMap<GroupId, GroupKeys>,
    ) -> Self {
        Client {
            user: user.into(),
            token,
            keys,
            rng: DeterministicRng::from_u64(0xc11e47),
        }
    }

    /// The user name.
    pub fn user(&self) -> &str {
        &self.user
    }

    /// The groups this client can decrypt.
    pub fn groups(&self) -> Vec<GroupId> {
        let mut g: Vec<GroupId> = self.keys.keys().copied().collect();
        g.sort();
        g
    }

    /// Drives one term run to completion with individual requests.  The
    /// server-side session is released on every exit path — a failed
    /// follow-up must not leak an open cursor.
    fn drive(&self, server: &IndexServer, run: &mut TermRun) -> Result<(), ProtocolError> {
        let result = (|| {
            while !run.finished() {
                let request = run.next_request(&self.user);
                let response = server.handle_query(&request, &self.token)?;
                run.absorb(&request, &response, &self.keys)?;
            }
            Ok(())
        })();
        run.release(server, &self.user);
        result
    }

    /// Executes a single-term top-k query against `server`.
    pub fn query(
        &self,
        server: &IndexServer,
        plan: &MergePlan,
        term: TermId,
        config: &RetrievalConfig,
    ) -> Result<ClientQueryOutcome, ProtocolError> {
        let mut run = TermRun::new(plan, term, config)?;
        self.drive(server, &mut run)?;
        Ok(run.finish())
    }

    /// Builds the initial request of a top-k query for `term`, paired with
    /// this client's token — ready to be submitted into a cross-user round
    /// through [`IndexServer::handle_query_stream`].  Many clients' initial
    /// requests form one round; the server authenticates each user once and
    /// visits each storage shard once for the whole round.
    pub fn prepare_initial(
        &self,
        plan: &MergePlan,
        term: TermId,
        config: &RetrievalConfig,
    ) -> Result<(QueryRequest, AuthToken), ProtocolError> {
        let run = TermRun::new(plan, term, config)?;
        Ok((run.next_request(&self.user), self.token.clone()))
    }

    /// Completes a top-k query whose initial round was served out-of-band
    /// (via a cross-user batched round): absorbs the initial response, then
    /// drives the usual doubling follow-up protocol individually.  The
    /// server-side session is released on every error path, exactly like
    /// [`Client::query`].
    pub fn complete_query(
        &self,
        server: &IndexServer,
        plan: &MergePlan,
        term: TermId,
        config: &RetrievalConfig,
        request: &QueryRequest,
        response: &QueryResponse,
    ) -> Result<ClientQueryOutcome, ProtocolError> {
        let mut run = TermRun::new(plan, term, config)?;
        run.cursor = response.cursor;
        if let Err(e) = run.absorb(request, response, &self.keys) {
            run.release(server, &self.user);
            return Err(e);
        }
        self.drive(server, &mut run)?;
        Ok(run.finish())
    }

    /// Executes a multi-term query (Section 3.2) and merges rankings by
    /// summed relevance.  The initial round of all terms is sent as one
    /// batch — the server authenticates once and visits each storage shard
    /// once — and each term then continues with its own follow-up requests.
    pub fn query_multi(
        &self,
        server: &IndexServer,
        plan: &MergePlan,
        terms: &[TermId],
        config: &RetrievalConfig,
    ) -> Result<MultiQueryOutcome, ProtocolError> {
        if terms.is_empty() {
            return Err(ProtocolError::InvalidRequest("empty query".into()));
        }
        let mut runs = terms
            .iter()
            .map(|&t| TermRun::new(plan, t, config))
            .collect::<Result<Vec<_>, _>>()?;
        let initial: Vec<QueryRequest> = runs
            .iter()
            .map(|run| run.next_request(&self.user))
            .collect();
        let responses = server.handle_query_batch(&initial, &self.token)?;
        let mut error = None;
        for ((run, request), response) in runs.iter_mut().zip(&initial).zip(responses) {
            match response {
                Ok(response) => {
                    // Record the session id unconditionally: after an
                    // earlier error the response is not absorbed, but the
                    // release pass below must still close its cursor.
                    run.cursor = response.cursor;
                    if error.is_none() {
                        if let Err(e) = run.absorb(request, &response, &self.keys) {
                            error = Some(e);
                        }
                    }
                }
                Err(e) => {
                    if error.is_none() {
                        error = Some(e);
                    }
                }
            }
        }
        let mut acc: HashMap<DocId, f64> = HashMap::new();
        let mut per_term = Vec::with_capacity(terms.len());
        for mut run in runs {
            // After a failure, only release the sessions of the remaining
            // runs instead of abandoning them server-side.
            if error.is_none() {
                if let Err(e) = self.drive(server, &mut run) {
                    error = Some(e);
                    continue;
                }
                let outcome = run.finish();
                for &(doc, rel) in &outcome.results {
                    *acc.entry(doc).or_insert(0.0) += rel;
                }
                per_term.push(outcome);
            } else {
                run.release(server, &self.user);
            }
        }
        if let Some(e) = error {
            return Err(e);
        }
        let mut merged: Vec<(DocId, f64)> = acc.into_iter().collect();
        merged.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        merged.truncate(config.k);
        Ok((merged, per_term))
    }

    /// Indexes one document the way Section 5 describes: for every term the
    /// owner builds the posting element, seals it, computes the TRS with the
    /// published RSTF and sends everything to the server.
    ///
    /// Returns the number of posting elements inserted.
    pub fn insert_document(
        &mut self,
        server: &IndexServer,
        plan: &MergePlan,
        model: &RstfModel,
        doc: DocId,
        group: GroupId,
        term_counts: &[(TermId, u32)],
    ) -> Result<usize, ProtocolError> {
        let keys = self
            .keys
            .get(&group)
            .ok_or(ProtocolError::AccessDenied {
                user: self.user.clone(),
                group: group.0,
            })?
            .clone();
        let doc_len: u32 = term_counts.iter().map(|&(_, c)| c).sum();
        let mut inserted = 0usize;
        for &(term, tf) in term_counts {
            let list = plan
                .list_of(term)
                .map_err(|e| ProtocolError::InvalidRequest(e.to_string()))?;
            let payload = PostingPayload {
                term,
                doc,
                tf,
                doc_len,
            };
            let sealed = EncryptedElement::seal(&payload, group, &keys, list, &mut self.rng)
                .map_err(|e| ProtocolError::Core(e.to_string()))?;
            let trs = model.transform(term, doc, payload.relevance());
            server.handle_insert(
                &InsertRequest {
                    user: self.user.clone(),
                    list: list.0,
                    group,
                    trs,
                    ciphertext: sealed.ciphertext,
                },
                &self.token,
            )?;
            inserted += 1;
        }
        Ok(inserted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acl::AccessControl;
    use zerber_base::{BfmMerge, ConfidentialityParam, MergeScheme};
    use zerber_corpus::{
        sample_split, Corpus, CorpusGenerator, CorpusStats, CustomProfile, DatasetProfile,
        SplitConfig, SynthConfig,
    };
    use zerber_crypto::MasterKey;
    use zerber_index::InvertedIndex;
    use zerber_r::{OrderedIndex, RstfConfig};

    struct Fixture {
        corpus: Corpus,
        stats: CorpusStats,
        plan: MergePlan,
        model: RstfModel,
        server: IndexServer,
        master: MasterKey,
    }

    fn fixture() -> Fixture {
        let config = SynthConfig {
            profile: DatasetProfile::Custom(CustomProfile {
                num_docs: 200,
                num_groups: 2,
                vocab_size: 500,
                general_vocab_fraction: 0.6,
                topic_mix: 0.25,
                zipf_exponent: 1.0,
                doc_length_median: 60.0,
                doc_length_sigma: 0.6,
                min_doc_length: 15,
                max_doc_length: 250,
            }),
            scale: 1.0,
            seed: 321,
        };
        let corpus = CorpusGenerator::new(config).generate().unwrap();
        let stats = CorpusStats::compute(&corpus);
        let split = sample_split(&corpus, SplitConfig::default()).unwrap();
        let model = RstfModel::train(&corpus, &split, &RstfConfig::default()).unwrap();
        let plan = BfmMerge
            .plan(&stats, ConfidentialityParam::new(3.0).unwrap())
            .unwrap();
        let master = MasterKey::new([6u8; 32]);
        let index = OrderedIndex::build(&corpus, plan.clone(), &model, &master, 9).unwrap();
        let mut acl = AccessControl::new(b"s3");
        acl.register_user("john", &[GroupId(0), GroupId(1)]);
        acl.register_user("alice", &[GroupId(1)]);
        let server = IndexServer::new(index, acl);
        Fixture {
            corpus,
            stats,
            plan,
            model,
            server,
            master,
        }
    }

    fn client(f: &Fixture, user: &str, groups: &[u32]) -> Client {
        let token = f.server.acl().issue_token(user);
        let keys: HashMap<GroupId, GroupKeys> = groups
            .iter()
            .map(|&g| (GroupId(g), f.master.group_keys(g)))
            .collect();
        Client::new(user, token, keys)
    }

    #[test]
    fn full_member_query_matches_plaintext_ranking() {
        let f = fixture();
        let john = client(&f, "john", &[0, 1]);
        let plain = InvertedIndex::build(&f.corpus);
        let k = 10;
        for &term in f.stats.terms_by_doc_freq().iter().take(10) {
            let outcome = john
                .query(&f.server, &f.plan, term, &RetrievalConfig::for_k(k))
                .unwrap();
            let reference = plain.query_term(term, k).unwrap();
            let got: Vec<f64> = outcome.results.iter().map(|r| r.1).collect();
            let want: Vec<f64> = reference.iter().map(|p| p.score).collect();
            assert_eq!(got.len(), want.len().min(k));
            for (g, w) in got.iter().zip(want.iter()) {
                assert!((g - w).abs() < 1e-9);
            }
            assert!(outcome.bytes_received > 0);
            assert!(outcome.bytes_sent > 0);
            assert!(outcome.requests >= 1);
        }
    }

    #[test]
    fn restricted_member_only_sees_her_groups() {
        let f = fixture();
        let alice = client(&f, "alice", &[1]);
        let term = f.stats.terms_by_doc_freq()[0];
        let outcome = alice
            .query(&f.server, &f.plan, term, &RetrievalConfig::for_k(10))
            .unwrap();
        for &(doc, _) in &outcome.results {
            assert_eq!(f.corpus.doc(doc).unwrap().group, GroupId(1));
        }
        assert_eq!(alice.groups(), vec![GroupId(1)]);
        assert_eq!(alice.user(), "alice");
    }

    #[test]
    fn frequent_term_top_10_needs_few_requests_with_b_10() {
        // Section 6.4: with b = k = 10, most frequent query terms finish
        // within two requests.
        let f = fixture();
        let john = client(&f, "john", &[0, 1]);
        let term = f.stats.terms_by_doc_freq()[0];
        let outcome = john
            .query(&f.server, &f.plan, term, &RetrievalConfig::for_k(10))
            .unwrap();
        assert!(outcome.satisfied);
        assert!(outcome.requests <= 2, "got {} requests", outcome.requests);
    }

    #[test]
    fn server_traffic_counters_match_client_accounting() {
        let f = fixture();
        f.server.reset_stats();
        let john = client(&f, "john", &[0, 1]);
        let term = f.stats.terms_by_doc_freq()[3];
        let outcome = john
            .query(&f.server, &f.plan, term, &RetrievalConfig::for_k(5))
            .unwrap();
        let stats = f.server.stats();
        assert_eq!(stats.requests_served as usize, outcome.requests);
        assert_eq!(stats.elements_sent as usize, outcome.elements_received);
        assert_eq!(stats.bytes_out as usize, outcome.bytes_received);
        assert_eq!(stats.bytes_in as usize, outcome.bytes_sent);
    }

    #[test]
    fn queries_release_their_cursor_sessions() {
        let f = fixture();
        let john = client(&f, "john", &[0, 1]);
        // A mid-frequency term needs follow-ups (cursor opened) and a rare
        // term exhausts its list (cursor closed by the server).
        let order = f.stats.terms_by_doc_freq();
        for &term in [order[0], order[order.len() / 2], *order.last().unwrap()].iter() {
            john.query(&f.server, &f.plan, term, &RetrievalConfig::for_k(7))
                .unwrap();
            assert_eq!(f.server.open_cursors(), 0, "term {term} leaked a session");
        }
    }

    #[test]
    fn client_insert_roundtrips_through_a_query() {
        let f = fixture();
        let mut john = client(&f, "john", &[0, 1]);
        let term = f.stats.terms_by_doc_freq()[0];
        // A short new document where the term dominates: relevance 0.8.
        let new_doc = DocId(90_000);
        let inserted = john
            .insert_document(
                &f.server,
                &f.plan,
                &f.model,
                new_doc,
                GroupId(0),
                &[(term, 8), (f.stats.terms_by_doc_freq()[1], 2)],
            )
            .unwrap();
        assert_eq!(inserted, 2);
        let outcome = john
            .query(&f.server, &f.plan, term, &RetrievalConfig::for_k(3))
            .unwrap();
        assert!(
            outcome.results.iter().any(|&(d, _)| d == new_doc),
            "newly inserted high-relevance document should reach the top-3"
        );
    }

    #[test]
    fn insert_into_foreign_group_is_denied() {
        let f = fixture();
        let mut alice = client(&f, "alice", &[1]);
        let term = f.stats.terms_by_doc_freq()[0];
        let err = alice.insert_document(
            &f.server,
            &f.plan,
            &f.model,
            DocId(91_000),
            GroupId(0),
            &[(term, 1)],
        );
        assert!(matches!(err, Err(ProtocolError::AccessDenied { .. })));
    }

    #[test]
    fn multi_term_queries_and_invalid_parameters() {
        let f = fixture();
        let john = client(&f, "john", &[0, 1]);
        let terms = [
            f.stats.terms_by_doc_freq()[0],
            f.stats.terms_by_doc_freq()[1],
        ];
        let (merged, per_term) = john
            .query_multi(&f.server, &f.plan, &terms, &RetrievalConfig::for_k(5))
            .unwrap();
        assert_eq!(per_term.len(), 2);
        assert!(merged.len() <= 5);
        assert!(john
            .query_multi(&f.server, &f.plan, &[], &RetrievalConfig::for_k(5))
            .is_err());
        assert!(john
            .query(
                &f.server,
                &f.plan,
                terms[0],
                &RetrievalConfig {
                    k: 0,
                    initial_response: 1,
                    growth: GrowthPolicy::Doubling
                }
            )
            .is_err());
    }

    #[test]
    fn batched_multi_term_query_equals_sequential_single_term_queries() {
        let f = fixture();
        let john = client(&f, "john", &[0, 1]);
        let order = f.stats.terms_by_doc_freq();
        let terms = [order[0], order[3], order[order.len() / 4]];
        let config = RetrievalConfig::for_k(8);
        f.server.reset_stats();
        let (_, per_term) = john
            .query_multi(&f.server, &f.plan, &terms, &config)
            .unwrap();
        let multi_stats = f.server.stats();
        f.server.reset_stats();
        for (term, batched) in terms.iter().zip(&per_term) {
            let single = john.query(&f.server, &f.plan, *term, &config).unwrap();
            assert_eq!(&single, batched, "term {term}");
        }
        // Traffic is metered identically; the batched round is strictly
        // cheaper on authentication and takes no more lock acquisitions.
        let sequential_stats = f.server.stats();
        assert_eq!(
            multi_stats.requests_served,
            sequential_stats.requests_served
        );
        assert_eq!(multi_stats.elements_sent, sequential_stats.elements_sent);
        assert_eq!(multi_stats.bytes_in, sequential_stats.bytes_in);
        assert_eq!(multi_stats.bytes_out, sequential_stats.bytes_out);
        assert!(multi_stats.auth_checks < sequential_stats.auth_checks);
        assert!(multi_stats.lock_acquisitions <= sequential_stats.lock_acquisitions);
    }

    #[test]
    fn cross_user_rounds_complete_to_the_same_outcome_as_solo_queries() {
        let f = fixture();
        let john = client(&f, "john", &[0, 1]);
        let alice = client(&f, "alice", &[1]);
        let order = f.stats.terms_by_doc_freq();
        let config = RetrievalConfig::for_k(6);
        // Two users' initial requests travel as ONE cross-user round.
        let plans = [
            (&john, order[0]),
            (&alice, order[0]),
            (&john, order[2]),
            (&alice, order[order.len() / 2]),
        ];
        let round: Vec<(QueryRequest, AuthToken)> = plans
            .iter()
            .map(|(c, term)| c.prepare_initial(&f.plan, *term, &config).unwrap())
            .collect();
        let responses = f.server.handle_query_stream(&round);
        for (((client, term), (request, _)), response) in plans.iter().zip(&round).zip(responses) {
            let outcome = client
                .complete_query(
                    &f.server,
                    &f.plan,
                    *term,
                    &config,
                    request,
                    &response.unwrap(),
                )
                .unwrap();
            let solo = client.query(&f.server, &f.plan, *term, &config).unwrap();
            assert_eq!(outcome, solo, "term {term}");
        }
        assert_eq!(f.server.open_cursors(), 0, "rounds must not leak sessions");
    }

    #[test]
    fn efficiency_metric_is_bounded() {
        let f = fixture();
        let john = client(&f, "john", &[0, 1]);
        let term = f.stats.terms_by_doc_freq()[2];
        let outcome = john
            .query(&f.server, &f.plan, term, &RetrievalConfig::for_k(10))
            .unwrap();
        let eff = outcome.efficiency(10);
        assert!((0.0..=1.0).contains(&eff));
    }
}
