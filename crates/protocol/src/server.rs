//! The untrusted index server.
//!
//! The server holds the ordered confidential index, authenticates users,
//! enforces group-level access control and answers ranged top-k requests by
//! TRS order (Section 5.2).  It never holds decryption keys.  All traffic is
//! metered so the bandwidth experiments can read exact byte counts.

use parking_lot::Mutex;
use zerber_base::MergedListId;
use zerber_corpus::GroupId;
use zerber_r::{OrderedElement, OrderedIndex};

use crate::acl::{AccessControl, AuthToken};
use crate::error::ProtocolError;
use crate::message::{QueryRequest, QueryResponse, WireElement, ELEMENT_HEADER_BYTES};

/// Cumulative traffic and request counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Number of query requests served (including follow-ups).
    pub requests_served: u64,
    /// Number of posting elements shipped to clients.
    pub elements_sent: u64,
    /// Bytes received from clients (requests + inserts).
    pub bytes_in: u64,
    /// Bytes sent to clients (responses).
    pub bytes_out: u64,
    /// Number of insert operations accepted.
    pub inserts_accepted: u64,
}

/// An insert request: the client has already sealed the payload and computed
/// the TRS with the published RSTF.
#[derive(Debug, Clone, PartialEq)]
pub struct InsertRequest {
    /// The inserting user.
    pub user: String,
    /// Target merged posting list.
    pub list: u64,
    /// Group of the underlying document.
    pub group: GroupId,
    /// Transformed relevance score computed by the client.
    pub trs: f64,
    /// Sealed posting payload.
    pub ciphertext: Vec<u8>,
}

impl InsertRequest {
    /// Encoded size in bytes: user-name length + fixed header (8 list + 4
    /// group + 8 trs + 2 length prefix + 2 name prefix) + ciphertext.
    pub fn encoded_bytes(&self) -> usize {
        self.user.len() + 24 + self.ciphertext.len()
    }
}

/// The index server.
#[derive(Debug)]
pub struct IndexServer {
    index: Mutex<OrderedIndex>,
    acl: AccessControl,
    stats: Mutex<ServerStats>,
}

impl IndexServer {
    /// Creates a server from a built index and a user directory.
    pub fn new(index: OrderedIndex, acl: AccessControl) -> Self {
        IndexServer {
            index: Mutex::new(index),
            acl,
            stats: Mutex::new(ServerStats::default()),
        }
    }

    /// Read-only access to the user directory.
    pub fn acl(&self) -> &AccessControl {
        &self.acl
    }

    /// Snapshot of the traffic counters.
    pub fn stats(&self) -> ServerStats {
        *self.stats.lock()
    }

    /// Resets the traffic counters (used between experiment phases).
    pub fn reset_stats(&self) {
        *self.stats.lock() = ServerStats::default();
    }

    /// Number of merged posting lists hosted.
    pub fn num_lists(&self) -> usize {
        self.index.lock().num_lists()
    }

    /// Total number of posting elements hosted.
    pub fn num_elements(&self) -> usize {
        self.index.lock().num_elements()
    }

    /// Total bytes the server stores for the index.
    pub fn stored_bytes(&self) -> usize {
        self.index.lock().stored_bytes()
    }

    /// Handles one (initial or follow-up) query request.
    ///
    /// The response contains up to `request.count` elements of the list in
    /// descending TRS order, starting at `request.offset`, restricted to the
    /// groups the user belongs to.
    pub fn handle_query(
        &self,
        request: &QueryRequest,
        token: &AuthToken,
    ) -> Result<QueryResponse, ProtocolError> {
        if request.count == 0 || request.k == 0 {
            return Err(ProtocolError::InvalidRequest(
                "count and k must be greater than 0".into(),
            ));
        }
        let groups = self.acl.authenticate(&request.user, token)?;
        let list_id = MergedListId(request.list);
        let index = self.index.lock();
        let visible_total = index
            .visible_len(list_id, Some(&groups))
            .map_err(|_| ProtocolError::UnknownList(request.list))?;
        let batch = index.fetch(
            list_id,
            request.offset as usize,
            request.count as usize,
            Some(&groups),
        )?;
        let elements: Vec<WireElement> = batch.iter().map(|e| WireElement::from_element(e)).collect();
        drop(index);
        let response = QueryResponse {
            elements,
            visible_total: visible_total as u64,
        };
        let mut stats = self.stats.lock();
        stats.requests_served += 1;
        stats.elements_sent += response.elements.len() as u64;
        stats.bytes_in += request.encoded_bytes() as u64;
        stats.bytes_out += response.encoded_bytes() as u64;
        Ok(response)
    }

    /// Handles an insert: checks the user may write to the document's group,
    /// then places the sealed element at its TRS position.
    pub fn handle_insert(
        &self,
        request: &InsertRequest,
        token: &AuthToken,
    ) -> Result<(), ProtocolError> {
        self.acl.check_member(&request.user, token, request.group)?;
        if !(0.0..=1.0).contains(&request.trs) || !request.trs.is_finite() {
            return Err(ProtocolError::InvalidRequest(format!(
                "TRS must lie in [0,1], got {}",
                request.trs
            )));
        }
        let element = OrderedElement {
            trs: request.trs,
            group: request.group,
            sealed: zerber_base::EncryptedElement {
                group: request.group,
                ciphertext: request.ciphertext.clone(),
            },
        };
        self.index
            .lock()
            .insert_sealed(MergedListId(request.list), element)?;
        let mut stats = self.stats.lock();
        stats.inserts_accepted += 1;
        stats.bytes_in += request.encoded_bytes() as u64;
        Ok(())
    }

    /// Average bytes per element on the wire (header + sealed payload);
    /// useful for the Section 6.6 style bandwidth table.
    pub fn avg_wire_element_bytes(&self) -> f64 {
        let index = self.index.lock();
        let n = index.num_elements();
        if n == 0 {
            return 0.0;
        }
        let mut total = 0usize;
        for (list_id, _) in index.plan().iter() {
            for e in index.list(list_id).expect("list exists") {
                total += ELEMENT_HEADER_BYTES + e.sealed.ciphertext.len();
            }
        }
        total as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerber_base::{BfmMerge, ConfidentialityParam, MergeScheme, PostingPayload};
    use zerber_corpus::{
        sample_split, Corpus, CorpusBuilder, CorpusStats, Document, SplitConfig,
    };
    use zerber_crypto::{DeterministicRng, GroupKeys, MasterKey};
    use zerber_r::{RstfConfig, RstfModel};

    fn corpus() -> Corpus {
        let mut b = CorpusBuilder::new();
        for i in 0..60 {
            let group = GroupId((i % 2) as u32);
            b.add_document(Document::new(
                format!("d{i}"),
                group,
                format!(
                    "shared term{} report imclone {} filler words here",
                    i % 9,
                    "data ".repeat(i % 5 + 1)
                ),
            ))
            .unwrap();
        }
        b.build()
    }

    fn server_fixture() -> (Corpus, IndexServer, MasterKey, RstfModel) {
        let c = corpus();
        let stats = CorpusStats::compute(&c);
        let split = sample_split(&c, SplitConfig::default()).unwrap();
        let model = RstfModel::train(&c, &split, &RstfConfig::default()).unwrap();
        let plan = BfmMerge
            .plan(&stats, ConfidentialityParam::new(3.0).unwrap())
            .unwrap();
        let master = MasterKey::new([5u8; 32]);
        let index = zerber_r::OrderedIndex::build(&c, plan, &model, &master, 7).unwrap();
        let mut acl = AccessControl::new(b"srv");
        acl.register_user("john", &[GroupId(0), GroupId(1)]);
        acl.register_user("alice", &[GroupId(1)]);
        (c, IndexServer::new(index, acl), master, model)
    }

    fn list_for(c: &Corpus, server: &IndexServer, term_name: &str) -> u64 {
        let term = c.dictionary().get(term_name).unwrap();
        let index = server.index.lock();
        index.plan().list_of(term).unwrap().0
    }

    #[test]
    fn authenticated_query_returns_ordered_accessible_elements() {
        let (c, server, _, _) = server_fixture();
        let token = server.acl().issue_token("john");
        let list = list_for(&c, &server, "imclone");
        let resp = server
            .handle_query(
                &QueryRequest {
                    user: "john".into(),
                    list,
                    offset: 0,
                    count: 10,
                    k: 10,
                },
                &token,
            )
            .unwrap();
        assert!(!resp.elements.is_empty());
        assert!(resp.elements.windows(2).all(|w| w[0].trs >= w[1].trs));
        let stats = server.stats();
        assert_eq!(stats.requests_served, 1);
        assert_eq!(stats.elements_sent, resp.elements.len() as u64);
        assert!(stats.bytes_out > 0);
    }

    #[test]
    fn acl_restricts_which_groups_are_returned() {
        let (c, server, _, _) = server_fixture();
        let token = server.acl().issue_token("alice");
        let list = list_for(&c, &server, "imclone");
        let resp = server
            .handle_query(
                &QueryRequest {
                    user: "alice".into(),
                    list,
                    offset: 0,
                    count: 1000,
                    k: 10,
                },
                &token,
            )
            .unwrap();
        assert!(resp.elements.iter().all(|e| e.group == GroupId(1)));
    }

    #[test]
    fn bad_tokens_and_bad_requests_are_rejected() {
        let (c, server, _, _) = server_fixture();
        let list = list_for(&c, &server, "imclone");
        let forged = AuthToken([9u8; 32]);
        let req = QueryRequest {
            user: "john".into(),
            list,
            offset: 0,
            count: 10,
            k: 10,
        };
        assert!(server.handle_query(&req, &forged).is_err());
        let token = server.acl().issue_token("john");
        assert!(server
            .handle_query(&QueryRequest { count: 0, ..req.clone() }, &token)
            .is_err());
        assert!(server
            .handle_query(&QueryRequest { list: 99_999, ..req }, &token)
            .is_err());
        assert_eq!(server.stats().requests_served, 0);
    }

    #[test]
    fn insert_requires_group_membership_and_valid_trs() {
        let (c, server, master, model) = server_fixture();
        let term = c.dictionary().get("imclone").unwrap();
        let list = list_for(&c, &server, "imclone");
        let payload = PostingPayload {
            term,
            doc: zerber_corpus::DocId(7_000),
            tf: 5,
            doc_len: 10,
        };
        let keys: GroupKeys = master.group_keys(1);
        let mut rng = DeterministicRng::from_u64(3);
        let sealed = zerber_base::EncryptedElement::seal(
            &payload,
            GroupId(1),
            &keys,
            MergedListId(list),
            &mut rng,
        )
        .unwrap();
        let trs = model.transform(term, payload.doc, payload.relevance());
        let req = InsertRequest {
            user: "alice".into(),
            list,
            group: GroupId(1),
            trs,
            ciphertext: sealed.ciphertext.clone(),
        };
        let alice = server.acl().issue_token("alice");
        let before = server.num_elements();
        server.handle_insert(&req, &alice).unwrap();
        assert_eq!(server.num_elements(), before + 1);
        assert_eq!(server.stats().inserts_accepted, 1);

        // Alice is not in group 0: inserting there must fail.
        let denied = InsertRequest {
            group: GroupId(0),
            ..req.clone()
        };
        assert!(matches!(
            server.handle_insert(&denied, &alice),
            Err(ProtocolError::AccessDenied { .. })
        ));
        // Out-of-range TRS is rejected.
        let bad_trs = InsertRequest { trs: 1.5, ..req };
        assert!(server.handle_insert(&bad_trs, &alice).is_err());
    }

    #[test]
    fn inserted_elements_are_visible_to_subsequent_queries() {
        let (c, server, master, model) = server_fixture();
        let term = c.dictionary().get("imclone").unwrap();
        let list = list_for(&c, &server, "imclone");
        let keys = master.group_keys(0);
        let mut rng = DeterministicRng::from_u64(4);
        let payload = PostingPayload {
            term,
            doc: zerber_corpus::DocId(8_000),
            tf: 9,
            doc_len: 10,
        };
        let sealed = zerber_base::EncryptedElement::seal(
            &payload,
            GroupId(0),
            &keys,
            MergedListId(list),
            &mut rng,
        )
        .unwrap();
        let trs = model.transform(term, payload.doc, payload.relevance());
        let john = server.acl().issue_token("john");
        server
            .handle_insert(
                &InsertRequest {
                    user: "john".into(),
                    list,
                    group: GroupId(0),
                    trs,
                    ciphertext: sealed.ciphertext,
                },
                &john,
            )
            .unwrap();
        // A very high relevance (0.9) should appear in the head of the list.
        let resp = server
            .handle_query(
                &QueryRequest {
                    user: "john".into(),
                    list,
                    offset: 0,
                    count: 5,
                    k: 5,
                },
                &john,
            )
            .unwrap();
        let mut found = false;
        for e in &resp.elements {
            if e.group == GroupId(0) {
                let opened = zerber_base::EncryptedElement {
                    group: e.group,
                    ciphertext: e.ciphertext.clone(),
                }
                .open(&keys, MergedListId(list));
                if let Ok(p) = opened {
                    if p.doc == zerber_corpus::DocId(8_000) {
                        found = true;
                    }
                }
            }
        }
        assert!(found, "freshly inserted high-score element should be in the top-5");
    }

    #[test]
    fn stats_reset_and_size_accessors_work() {
        let (c, server, _, _) = server_fixture();
        let token = server.acl().issue_token("john");
        let list = list_for(&c, &server, "imclone");
        server
            .handle_query(
                &QueryRequest {
                    user: "john".into(),
                    list,
                    offset: 0,
                    count: 3,
                    k: 3,
                },
                &token,
            )
            .unwrap();
        assert!(server.stats().bytes_out > 0);
        server.reset_stats();
        assert_eq!(server.stats(), ServerStats::default());
        assert!(server.num_lists() > 0);
        assert!(server.stored_bytes() > 0);
        assert!(server.avg_wire_element_bytes() > 40.0);
    }
}
